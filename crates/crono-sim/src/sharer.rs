//! ACKWise limited-pointer sharer tracking (Table II: "Invalidation-based
//! MESI, ACKWise-4 directory").
//!
//! The directory entry tracks up to `K` sharers precisely; once a line has
//! more, it degrades to a broadcast entry that only counts sharers, and an
//! invalidation must be broadcast to every core.

/// Sharer set with `K` precise pointers and a broadcast fallback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharerSet {
    precise: Vec<u16>,
    max_pointers: usize,
    broadcast: bool,
    count: u32,
}

impl SharerSet {
    /// Creates an empty set with `max_pointers` precise slots.
    ///
    /// # Panics
    ///
    /// Panics if `max_pointers == 0`.
    pub fn new(max_pointers: usize) -> Self {
        assert!(max_pointers > 0, "ackwise needs at least one pointer");
        SharerSet {
            precise: Vec::with_capacity(max_pointers),
            max_pointers,
            broadcast: false,
            count: 0,
        }
    }

    /// Number of sharers currently tracked.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Whether the set has degraded to broadcast (counting) mode.
    pub fn is_broadcast(&self) -> bool {
        self.broadcast
    }

    /// Whether no core shares the line.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Adds `core` as a sharer. Idempotent in precise mode; in broadcast
    /// mode the count grows only if the directory does not already count
    /// this core — since broadcast mode cannot know, callers must add a
    /// core at most once per fill (which the cache protocol guarantees:
    /// a core that already holds the line never re-requests it).
    pub fn add(&mut self, core: u16) {
        if self.broadcast {
            self.count += 1;
            return;
        }
        if self.precise.contains(&core) {
            return;
        }
        if self.precise.len() < self.max_pointers {
            self.precise.push(core);
            self.count += 1;
        } else {
            // Pointer overflow: degrade to broadcast.
            self.broadcast = true;
            self.precise.clear();
            self.count += 1;
        }
    }

    /// Removes `core` from the set (e.g. after an L1 eviction notice).
    /// In broadcast mode only the count decreases.
    pub fn remove(&mut self, core: u16) {
        if self.broadcast {
            self.count = self.count.saturating_sub(1);
            if self.count <= 1 {
                // Few enough sharers to track precisely again — but their
                // identities are unknown, so stay conservative until the
                // set empties.
                if self.count == 0 {
                    self.broadcast = false;
                }
            }
        } else if let Some(pos) = self.precise.iter().position(|&c| c == core) {
            self.precise.swap_remove(pos);
            self.count -= 1;
        }
    }

    /// Empties the set (after a full invalidation round).
    pub fn clear(&mut self) {
        self.precise.clear();
        self.broadcast = false;
        self.count = 0;
    }

    /// The cores an invalidation must be sent to: `Some(list)` of precise
    /// sharers, or `None` meaning "broadcast to every core".
    pub fn invalidation_targets(&self) -> Option<&[u16]> {
        if self.broadcast {
            None
        } else {
            Some(&self.precise)
        }
    }

    /// Whether `core` may hold the line (exact in precise mode,
    /// conservatively `true` in broadcast mode).
    pub fn may_contain(&self, core: u16) -> bool {
        if self.broadcast {
            self.count > 0
        } else {
            self.precise.contains(&core)
        }
    }

    /// The single sharer, if exactly one is precisely tracked.
    pub fn sole_sharer(&self) -> Option<u16> {
        if !self.broadcast && self.precise.len() == 1 {
            Some(self.precise[0])
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precise_until_overflow() {
        let mut s = SharerSet::new(4);
        for core in 0..4 {
            s.add(core);
        }
        assert!(!s.is_broadcast());
        assert_eq!(s.count(), 4);
        assert_eq!(s.invalidation_targets().unwrap().len(), 4);

        s.add(4);
        assert!(s.is_broadcast());
        assert_eq!(s.count(), 5);
        assert!(s.invalidation_targets().is_none());
    }

    #[test]
    fn add_is_idempotent_in_precise_mode() {
        let mut s = SharerSet::new(4);
        s.add(7);
        s.add(7);
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn remove_in_precise_mode() {
        let mut s = SharerSet::new(2);
        s.add(1);
        s.add(2);
        s.remove(1);
        assert_eq!(s.count(), 1);
        assert!(s.may_contain(2));
        assert!(!s.may_contain(1));
        assert_eq!(s.sole_sharer(), Some(2));
    }

    #[test]
    fn broadcast_recovers_only_when_empty() {
        let mut s = SharerSet::new(1);
        s.add(0);
        s.add(1); // overflow
        assert!(s.is_broadcast());
        s.remove(0);
        assert!(s.is_broadcast(), "identities unknown, stay broadcast");
        s.remove(1);
        assert!(!s.is_broadcast(), "empty set recovers precise mode");
        assert!(s.is_empty());
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = SharerSet::new(1);
        s.add(0);
        s.add(1);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.is_broadcast());
        assert_eq!(s.sole_sharer(), None);
    }
}
