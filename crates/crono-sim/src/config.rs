//! Simulator configuration — the architectural parameters of Table II.

/// Core microarchitecture model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreModel {
    /// Single-issue in-order core: every memory-access latency stalls the
    /// pipeline (the paper's default configuration).
    InOrder,
    /// Single-issue out-of-order core (Table II: ROB 168, load queue 64,
    /// store queue 48): miss latency is hidden behind a bounded window of
    /// outstanding misses; stores retire through the store queue without
    /// stalling.
    OutOfOrder {
        /// Reorder-buffer entries.
        rob: u32,
        /// Load-queue entries.
        load_queue: u32,
        /// Store-queue entries.
        store_queue: u32,
    },
}

impl CoreModel {
    /// The paper's OOO configuration (Table II).
    pub fn paper_ooo() -> CoreModel {
        CoreModel::OutOfOrder {
            rob: 168,
            load_queue: 64,
            store_queue: 48,
        }
    }

    /// Maximum outstanding misses the core can overlap (memory-level
    /// parallelism). In-order cores have none; OOO cores sustain one miss
    /// per ~8 load-queue entries, clamped to a realistic 4–16.
    pub fn max_outstanding_misses(&self) -> usize {
        match *self {
            CoreModel::InOrder => 1,
            CoreModel::OutOfOrder { load_queue, .. } => {
                (load_queue as usize / 8).clamp(4, 16)
            }
        }
    }

    /// Whether stores retire without stalling the pipeline.
    pub fn has_store_buffer(&self) -> bool {
        matches!(self, CoreModel::OutOfOrder { .. })
    }
}

/// One cache level's geometry and access latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub associativity: usize,
    /// Access latency in cycles.
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets given `line_size`.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly or is zero-sized.
    pub fn num_sets(&self, line_size: u64) -> usize {
        assert!(
            self.size_bytes > 0 && self.associativity > 0,
            "cache must have capacity and associativity"
        );
        let lines = self.size_bytes / line_size;
        assert_eq!(
            self.size_bytes % line_size,
            0,
            "cache size must be a multiple of the line size"
        );
        let sets = lines as usize / self.associativity;
        assert!(
            sets > 0 && (lines as usize).is_multiple_of(self.associativity),
            "cache lines must divide evenly into sets"
        );
        sets
    }
}

/// Mesh routing policy.
///
/// The paper's configuration is XY dimension-ordered routing (Table II);
/// §VII-B suggests *oblivious routing* to reduce contention — implemented
/// here as O1TURN (each message picks XY or YX pseudo-randomly, spreading
/// load over both minimal-path families).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingPolicy {
    /// XY dimension-ordered routing (the paper's Table II default).
    #[default]
    XyDimensionOrder,
    /// O1TURN oblivious routing: per-message random choice of XY or YX.
    O1Turn,
}

/// On-chip network parameters (Table II: electrical 2-D mesh, XY routing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshConfig {
    /// Per-hop latency in cycles (1 router + 1 link = 2).
    pub hop_latency: u64,
    /// Flit width in bits.
    pub flit_bits: u64,
    /// Model link contention ("only link contention, infinite input
    /// buffers"). Disable for the NoC-contention ablation.
    pub link_contention: bool,
    /// Routing policy (§VII-B extension; the paper evaluates XY).
    pub routing: RoutingPolicy,
}

/// Off-chip memory parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Number of memory controllers (Table II: 8).
    pub controllers: usize,
    /// DRAM access latency in nanoseconds (Table II: 100 ns).
    pub latency_ns: u64,
    /// Per-controller bandwidth in GBps (Table II: 5 GBps).
    pub bandwidth_gbps: f64,
}

/// Full simulator configuration; [`SimConfig::default`] reproduces
/// Table II at 256 cores.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of cores (and maximum simulated threads).
    pub num_cores: usize,
    /// Core clock in GHz (Table II: 1 GHz).
    pub freq_ghz: f64,
    /// Core microarchitecture.
    pub core: CoreModel,
    /// Private L1 instruction cache.
    pub l1i: CacheConfig,
    /// Private L1 data cache.
    pub l1d: CacheConfig,
    /// Per-core L2 slice (shared NUCA, inclusive).
    pub l2: CacheConfig,
    /// Cache-line size in bytes.
    pub line_size: u64,
    /// ACKWise precise sharer pointers before falling back to broadcast
    /// (Table II: ACKWise-4).
    pub ackwise_pointers: usize,
    /// Mesh network parameters.
    pub mesh: MeshConfig,
    /// DRAM parameters.
    pub dram: DramConfig,
    /// Cycles charged for a lock acquire/release beyond coherence traffic.
    pub lock_overhead: u64,
    /// Cycles charged for passing a barrier beyond waiting for peers.
    pub barrier_overhead: u64,
    /// Grant Exclusive (E) state to sole readers (MESI). Disabling this
    /// degrades the protocol to MSI: a sole reader gets Shared and its
    /// first write pays an upgrade round trip — the `ablation_directory`
    /// bench quantifies what the E state buys graph workloads.
    pub enable_e_state: bool,
    /// Enable the locality-aware coherence protocol the paper proposes as
    /// future work (§VII-A, after Kurian et al. ISCA'13): a core's first
    /// touch of a line is served remotely at the L2 home (word-granularity
    /// reply, no L1 allocation); only lines with demonstrated reuse are
    /// cached privately, so low-locality data neither thrashes the L1 nor
    /// generates invalidation traffic.
    pub locality_aware: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            num_cores: 256,
            freq_ghz: 1.0,
            core: CoreModel::InOrder,
            l1i: CacheConfig {
                size_bytes: 32 * 1024,
                associativity: 4,
                latency: 1,
            },
            l1d: CacheConfig {
                size_bytes: 32 * 1024,
                associativity: 4,
                latency: 1,
            },
            l2: CacheConfig {
                size_bytes: 256 * 1024,
                associativity: 8,
                latency: 8,
            },
            line_size: 64,
            ackwise_pointers: 4,
            mesh: MeshConfig {
                hop_latency: 2,
                flit_bits: 64,
                link_contention: true,
                routing: RoutingPolicy::XyDimensionOrder,
            },
            dram: DramConfig {
                controllers: 8,
                latency_ns: 100,
                bandwidth_gbps: 5.0,
            },
            lock_overhead: 2,
            barrier_overhead: 4,
            enable_e_state: true,
            locality_aware: false,
        }
    }
}

impl SimConfig {
    /// Table II with the out-of-order core model (used by Figs. 7–8).
    pub fn paper_ooo() -> SimConfig {
        SimConfig {
            core: CoreModel::paper_ooo(),
            ..SimConfig::default()
        }
    }

    /// A small configuration for fast unit tests: 16 cores, tiny caches.
    pub fn tiny(num_cores: usize) -> SimConfig {
        SimConfig {
            num_cores,
            l1d: CacheConfig {
                size_bytes: 1024,
                associativity: 2,
                latency: 1,
            },
            l2: CacheConfig {
                size_bytes: 4096,
                associativity: 4,
                latency: 8,
            },
            ..SimConfig::default()
        }
    }

    /// DRAM latency in core cycles.
    pub fn dram_latency_cycles(&self) -> u64 {
        (self.dram.latency_ns as f64 * self.freq_ghz).round() as u64
    }

    /// Cycles one controller needs to stream out one cache line
    /// (serialization at the configured bandwidth).
    pub fn dram_service_cycles(&self) -> u64 {
        let bytes_per_cycle = self.dram.bandwidth_gbps / self.freq_ghz;
        (self.line_size as f64 / bytes_per_cycle).ceil() as u64
    }

    /// Flits in a data-bearing message: one header flit plus the line.
    pub fn data_flits(&self) -> u64 {
        1 + self.line_size * 8 / self.mesh.flit_bits
    }

    /// Flits in a control message.
    pub fn control_flits(&self) -> u64 {
        1
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (zero cores, cache geometry
    /// that does not divide, L2 slice smaller than L1).
    pub fn validate(&self) {
        assert!(self.num_cores > 0, "need at least one core");
        assert!(self.freq_ghz > 0.0, "clock frequency must be positive");
        let _ = self.l1d.num_sets(self.line_size);
        let _ = self.l2.num_sets(self.line_size);
        assert!(
            self.l2.size_bytes >= self.l1d.size_bytes,
            "inclusive L2 slice must be at least as large as the L1-D"
        );
        assert!(self.dram.controllers > 0, "need at least one controller");
        assert!(self.ackwise_pointers > 0, "ackwise needs pointers");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_ii() {
        let c = SimConfig::default();
        c.validate();
        assert_eq!(c.num_cores, 256);
        assert_eq!(c.l1d.num_sets(c.line_size), 128);
        assert_eq!(c.l2.num_sets(c.line_size), 512);
        assert_eq!(c.dram_latency_cycles(), 100);
        assert_eq!(c.dram_service_cycles(), 13); // 64 B / 5 B-per-cycle
        assert_eq!(c.data_flits(), 9);
        assert_eq!(c.mesh.hop_latency, 2);
    }

    #[test]
    fn ooo_core_parameters() {
        let c = SimConfig::paper_ooo();
        assert_eq!(
            c.core,
            CoreModel::OutOfOrder {
                rob: 168,
                load_queue: 64,
                store_queue: 48
            }
        );
        assert_eq!(c.core.max_outstanding_misses(), 8);
        assert!(c.core.has_store_buffer());
        assert_eq!(CoreModel::InOrder.max_outstanding_misses(), 1);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn bad_cache_geometry_rejected() {
        CacheConfig {
            size_bytes: 192,
            associativity: 4,
            latency: 1,
        }
        .num_sets(64);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        SimConfig {
            num_cores: 0,
            ..SimConfig::default()
        }
        .validate();
    }
}
