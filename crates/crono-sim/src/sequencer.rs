//! Deterministic hook-level scheduling for traced simulation runs.
//!
//! The simulator normally runs Graphite-style *lax*: thread clocks drift
//! freely and shared timing state (link epochs, home queues, lock
//! bookings, coherence inboxes) is touched in whatever order the host OS
//! schedules the threads. That is the right trade for speed, but it makes
//! the event stream — and therefore a trace — nondeterministic.
//!
//! The [`Sequencer`] restores determinism without changing the
//! programming model. It maintains a single **run token**: the thread
//! holding it is the only one allowed to execute between two hook
//! points, so every access to shared simulator state is serialized. At
//! each *shared-state* hook (memory ops, locks, barriers) the running
//! thread publishes its local clock, releases the token, and the token
//! is handed to the runnable thread with the minimum `(local clock,
//! thread id)` — a total order derived purely from simulated time, never
//! from host scheduling. The same run therefore always produces the same
//! interleaving, the same timings, and a byte-identical trace. Purely
//! thread-local hooks (`compute`, `record_active`) never touch the
//! token; their clock advances are published at the thread's next shared
//! hook.
//!
//! Blocking operations cooperate instead of spinning:
//!
//! * a thread entering the run barrier calls
//!   [`Sequencer::barrier_wait`], which releases the token and parks
//!   until the *last* participant arrives and flips every parked thread
//!   runnable at once — a collective rejoin, so no thread can race ahead
//!   while others are still waking (each then re-publishes its
//!   post-barrier clock with [`Sequencer::turn`], and the stale arrival
//!   clocks of threads that have not yet republished gate the token
//!   until every participant has);
//! * a thread that loses a lock race parks with [`Sequencer::block_on`]
//!   keyed by the lock word; the holder's unlock [`Sequencer::wake`]s the
//!   waiters, which re-enter the runnable set and re-contend in
//!   deterministic token order.

use std::sync::{Condvar, Mutex, MutexGuard};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    /// Parked at the run barrier, waiting for the collective rejoin.
    AtBarrier,
    /// Parked waiting for the lock word with this symbolic address.
    BlockedOn(u64),
    Done,
}

#[derive(Debug)]
struct SeqState {
    clocks: Vec<u64>,
    status: Vec<Status>,
    /// The thread currently holding the run token, if any.
    current: Option<usize>,
    /// Set when the run is cancelled (a worker panicked or timed out):
    /// every scheduling point returns immediately so the surviving
    /// threads can drain without waiting for a token that will never
    /// circulate again.
    aborted: bool,
}

impl SeqState {
    /// Whether `tid` is the unique minimum `(clock, tid)` among runnable
    /// threads — the next token holder.
    fn is_next(&self, tid: usize) -> bool {
        let me = (self.clocks[tid], tid);
        self.status
            .iter()
            .enumerate()
            .all(|(j, st)| j == tid || *st != Status::Runnable || (self.clocks[j], j) > me)
    }

    /// The runnable thread with the minimum `(clock, tid)` — the next
    /// token holder, if any thread is still runnable.
    fn next_runnable(&self) -> Option<usize> {
        self.status
            .iter()
            .enumerate()
            .filter(|(_, st)| **st == Status::Runnable)
            .min_by_key(|&(j, _)| (self.clocks[j], j))
            .map(|(j, _)| j)
    }

    fn release_if_held(&mut self, tid: usize) {
        if self.current == Some(tid) {
            self.current = None;
        }
    }
}

/// The scheduling monitor. One per traced [`crate::SimMachine`] run.
///
/// Wakeups are *targeted*: each thread parks on its own condvar and a
/// scheduling point notifies only the computed next token holder, so a
/// token handoff costs O(threads) scan inside the monitor but exactly
/// one thread wakeup. (The first implementation broadcast to a single
/// shared condvar; with 256 simulated cores that woke 255 losers per
/// hook — a context-switch storm that made sequenced runs orders of
/// magnitude slower than lax ones on small hosts.) A notify aimed at a
/// thread that is not parked (it is executing toward its next hook) is
/// intentionally droppable: that thread re-evaluates the schedule at its
/// next scheduling point, and the token stays free until then.
#[derive(Debug)]
pub(crate) struct Sequencer {
    state: Mutex<SeqState>,
    /// One condvar per thread; thread `tid` only ever waits on `cvs[tid]`.
    cvs: Vec<Condvar>,
}

impl Sequencer {
    pub(crate) fn new(threads: usize) -> Self {
        Sequencer {
            state: Mutex::new(SeqState {
                clocks: vec![0; threads],
                status: vec![Status::Runnable; threads],
                current: None,
                aborted: false,
            }),
            cvs: (0..threads).map(|_| Condvar::new()).collect(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, SeqState> {
        // Poison-transparent, like the workspace sync primitives: a
        // panicking sim thread must not mask its own panic message with a
        // poisoned-mutex abort in every other thread.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Notifies the next token holder, unless that is `self_tid` (the
    /// caller re-checks its own eligibility without a wakeup).
    fn notify_next(&self, s: &SeqState, self_tid: usize) {
        if let Some(next) = s.next_runnable() {
            if next != self_tid {
                self.cvs[next].notify_one();
            }
        }
    }

    /// Waits until the token is free and `tid` is the next holder, then
    /// takes it. Caller must already be `Runnable` with its clock
    /// published.
    fn acquire(&self, mut s: MutexGuard<'_, SeqState>, tid: usize) {
        loop {
            if s.aborted {
                return;
            }
            if s.current.is_none() && s.is_next(tid) {
                s.current = Some(tid);
                return;
            }
            s = self.cvs[tid].wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Publishes `clock`, releases the run token, and re-acquires it once
    /// this thread holds the minimum `(clock, tid)` among runnable
    /// threads. Hooks that touch shared simulator state call this on
    /// entry.
    pub(crate) fn turn(&self, tid: usize, clock: u64) {
        let mut s = self.lock();
        if s.aborted {
            return;
        }
        s.clocks[tid] = clock;
        s.release_if_held(tid);
        self.notify_next(&s, tid);
        self.acquire(s, tid);
    }

    /// Releases the token and parks at the run barrier. When the last
    /// live thread arrives, every parked thread is flipped runnable *in
    /// one step* — a collective rejoin, so which thread resumes first is
    /// decided by `(clock, tid)` order, never by wakeup timing. Callers
    /// must re-publish their post-barrier clock with [`Sequencer::turn`]
    /// before touching shared state again.
    pub(crate) fn barrier_wait(&self, tid: usize) {
        let mut s = self.lock();
        s.status[tid] = Status::AtBarrier;
        s.release_if_held(tid);
        let all_arrived = s
            .status
            .iter()
            .all(|st| matches!(st, Status::AtBarrier | Status::Done));
        if all_arrived {
            // Collective rejoin: every participant wakes (once per
            // barrier, not per hook) and runs thread-local post-barrier
            // code freely until its next shared hook republishes.
            for (j, st) in s.status.iter_mut().enumerate() {
                if *st == Status::AtBarrier {
                    *st = Status::Runnable;
                    if j != tid {
                        self.cvs[j].notify_one();
                    }
                }
            }
        } else {
            // Still threads running toward the barrier: hand the free
            // token to whichever of them is next.
            self.notify_next(&s, tid);
        }
        while s.status[tid] != Status::Runnable && !s.aborted {
            s = self.cvs[tid].wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Releases the token and parks until [`Sequencer::wake`] is called
    /// with `key` *and* the token comes around again. Used when a
    /// `try_acquire` on the lock word at symbolic address `key` fails.
    pub(crate) fn block_on(&self, tid: usize, key: u64) {
        let mut s = self.lock();
        if s.aborted {
            return;
        }
        s.status[tid] = Status::BlockedOn(key);
        s.release_if_held(tid);
        self.notify_next(&s, tid);
        loop {
            if s.aborted {
                return;
            }
            if s.status[tid] == Status::Runnable && s.current.is_none() && s.is_next(tid) {
                s.current = Some(tid);
                return;
            }
            s = self.cvs[tid].wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Makes every thread parked on `key` runnable again. The woken
    /// threads only resume once the token frees up and comes around to
    /// them — in deterministic `(clock, tid)` order. The unlocking caller
    /// normally still holds the token (its next scheduling point does the
    /// handoff); the notify below covers the defensive case where it does
    /// not.
    pub(crate) fn wake(&self, key: u64) {
        let mut s = self.lock();
        for st in s.status.iter_mut() {
            if *st == Status::BlockedOn(key) {
                *st = Status::Runnable;
            }
        }
        if s.current.is_none() {
            if let Some(next) = s.next_runnable() {
                self.cvs[next].notify_one();
            }
        }
    }

    /// Releases the token and removes a finished thread from the
    /// rotation forever.
    ///
    /// Departing may complete a pending collective rejoin: if every
    /// other thread is already parked at the barrier (or done), this
    /// thread leaving the rotation is the arrival the barrier was
    /// waiting for — e.g. a permanently dead core departing the run
    /// while the survivors sit at a kernel barrier. Without this check
    /// those waiters would park forever.
    pub(crate) fn done(&self, tid: usize) {
        let mut s = self.lock();
        s.status[tid] = Status::Done;
        s.release_if_held(tid);
        let all_arrived = s
            .status
            .iter()
            .all(|st| matches!(st, Status::AtBarrier | Status::Done));
        let any_at_barrier = s.status.iter().any(|st| *st == Status::AtBarrier);
        if all_arrived && any_at_barrier {
            for (j, st) in s.status.iter_mut().enumerate() {
                if *st == Status::AtBarrier {
                    *st = Status::Runnable;
                    self.cvs[j].notify_one();
                }
            }
        } else {
            self.notify_next(&s, tid);
        }
    }

    /// Cancels the schedule: drops the run token and releases every
    /// parked thread. All further scheduling points return immediately,
    /// so surviving threads drain without ever waiting on a dead peer.
    pub(crate) fn abort(&self) {
        let mut s = self.lock();
        s.aborted = true;
        s.current = None;
        for cv in &self.cvs {
            cv.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn turns_serialize_in_clock_order() {
        // Three threads each log (clock, tid) at every turn; the merged
        // log must be sorted by (clock, tid).
        let seq = Arc::new(Sequencer::new(3));
        let log = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|scope| {
            for tid in 0..3usize {
                let seq = Arc::clone(&seq);
                let log = Arc::clone(&log);
                scope.spawn(move || {
                    let mut clock = 0u64;
                    for step in 0..50u64 {
                        seq.turn(tid, clock);
                        log.lock().unwrap().push((clock, tid));
                        clock += 1 + (tid as u64 + step) % 3;
                    }
                    seq.done(tid);
                });
            }
        });
        let log = log.lock().unwrap();
        assert_eq!(log.len(), 150);
        for w in log.windows(2) {
            assert!(w[0] <= w[1], "out of order: {:?} then {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn token_holder_excludes_other_threads() {
        // A counter only the token holder increments: no two threads may
        // ever observe each other between turn points.
        let seq = Arc::new(Sequencer::new(4));
        let inside = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for tid in 0..4usize {
                let seq = Arc::clone(&seq);
                let inside = Arc::clone(&inside);
                scope.spawn(move || {
                    for step in 0..100u64 {
                        seq.turn(tid, step * 3 + tid as u64);
                        assert_eq!(inside.fetch_add(1, Ordering::SeqCst), 0);
                        inside.fetch_sub(1, Ordering::SeqCst);
                    }
                    seq.done(tid);
                });
            }
        });
    }

    #[test]
    fn done_completes_a_pending_collective_rejoin() {
        // Thread 1 parks at the barrier first; thread 0 then departs via
        // done() without ever reaching the barrier. The rejoin check
        // inside done() must release thread 1, not leave it parked
        // forever.
        let seq = Arc::new(Sequencer::new(2));
        let released = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            {
                let seq = Arc::clone(&seq);
                let released = Arc::clone(&released);
                scope.spawn(move || {
                    seq.barrier_wait(1);
                    released.store(1, Ordering::SeqCst);
                    seq.done(1);
                });
            }
            let seq0 = Arc::clone(&seq);
            scope.spawn(move || {
                // Give thread 1 time to park AtBarrier before departing.
                std::thread::sleep(std::time::Duration::from_millis(20));
                seq0.done(0);
            });
        });
        assert_eq!(released.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn wake_reactivates_only_matching_key() {
        let seq = Arc::new(Sequencer::new(2));
        let progressed = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            {
                let seq = Arc::clone(&seq);
                let progressed = Arc::clone(&progressed);
                scope.spawn(move || {
                    seq.turn(0, 0);
                    seq.block_on(0, 0xA);
                    progressed.store(1, Ordering::SeqCst);
                    seq.done(0);
                });
            }
            let seq1 = Arc::clone(&seq);
            let progressed1 = Arc::clone(&progressed);
            scope.spawn(move || {
                seq1.turn(1, 5);
                seq1.wake(0xB); // wrong key: thread 0 stays parked
                assert_eq!(progressed1.load(Ordering::SeqCst), 0);
                seq1.wake(0xA);
                seq1.done(1);
            });
        });
        assert_eq!(progressed.load(Ordering::SeqCst), 1);
    }
}
