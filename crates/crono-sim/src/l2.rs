//! The shared NUCA L2: one inclusive slice per core, with the integrated
//! MESI/ACKWise directory (Table II). A line's *home* slice is a hash of
//! its line number, so the directory for any line lives in exactly one
//! place.

use crate::cache::SetAssocCache;
use crate::config::SimConfig;
use crate::sharer::SharerSet;

/// Directory entry stored with each L2 line.
#[derive(Debug, Clone)]
pub struct DirEntry {
    /// Cores holding the line in Shared state (ACKWise tracking).
    pub sharers: SharerSet,
    /// Core holding the line Modified/Exclusive, if any.
    pub owner: Option<u16>,
    /// Whether the L2 copy is newer than DRAM.
    pub dirty: bool,
    /// Service-queue accounting epoch (requester cycles /
    /// [`HOME_EPOCH_CYCLES`]). Requests to one line serialize at the
    /// home ("L2Home-Waiting"); with lax thread clocks this must be
    /// tracked per epoch, like NoC link contention.
    pub queue_epoch: u64,
    /// Home-side service cycles already queued on this line within
    /// `queue_epoch`.
    pub queue_busy: u64,
}

/// Simulated cycles per home-serialization accounting epoch.
pub const HOME_EPOCH_CYCLES: u64 = 512;

impl DirEntry {
    fn new(max_pointers: usize) -> Self {
        DirEntry {
            sharers: SharerSet::new(max_pointers),
            owner: None,
            dirty: false,
            queue_epoch: 0,
            queue_busy: 0,
        }
    }
}

/// One L2 slice plus its slice-local statistics. Wrapped in a mutex by
/// the machine; each slice is an independent lock domain.
#[derive(Debug)]
pub struct L2Slice {
    cache: SetAssocCache<DirEntry>,
    max_pointers: usize,
    /// Accesses served by this slice.
    pub accesses: u64,
    /// Misses that went off-chip.
    pub misses: u64,
    /// Writebacks and fills exchanged with DRAM (traffic accounting).
    pub dram_writebacks: u64,
}

/// An L2 line evicted to make room (inclusive hierarchy: its L1 copies
/// must go too).
#[derive(Debug)]
pub struct VictimInfo {
    /// The evicted line.
    pub line: u64,
    /// L1 copies to invalidate: `Some(cores)` precise, `None` broadcast,
    /// absent if no core held it.
    pub invalidate: Option<Option<Vec<u16>>>,
    /// Whether the victim was dirty and must be written back to DRAM.
    pub writeback: bool,
}

/// Outcome of preparing a line at the home slice.
#[derive(Debug)]
pub struct HomeLine<'a> {
    /// The directory entry, resident after this call.
    pub entry: &'a mut DirEntry,
    /// Whether the line had to be fetched from DRAM (L2 miss).
    pub was_miss: bool,
    /// The L2 victim evicted by the fill, if any.
    pub victim: Option<VictimInfo>,
}

impl L2Slice {
    /// Builds the slice described by `config`.
    pub fn new(config: &SimConfig) -> Self {
        L2Slice {
            cache: SetAssocCache::new(
                config.l2.num_sets(config.line_size),
                config.l2.associativity,
            ),
            max_pointers: config.ackwise_pointers,
            accesses: 0,
            misses: 0,
            dram_writebacks: 0,
        }
    }

    /// Ensures `line` is resident and returns its directory entry plus
    /// what happened (miss, evictions). The caller handles all timing.
    pub fn prepare(&mut self, line: u64) -> HomeLine<'_> {
        self.accesses += 1;
        let mut was_miss = false;
        let mut victim = None;
        if self.cache.peek(line).is_none() {
            was_miss = true;
            self.misses += 1;
            let evicted = self.cache.insert(line, DirEntry::new(self.max_pointers));
            if let Some((vline, ventry)) = evicted {
                // Inclusive hierarchy: evicting an L2 line evicts every L1
                // copy. Collect targets for the machine to notify.
                let has_copies = ventry.owner.is_some() || !ventry.sharers.is_empty();
                let invalidate = if has_copies {
                    Some(match ventry.sharers.invalidation_targets() {
                        Some(list) => {
                            let mut t: Vec<u16> = list.to_vec();
                            if let Some(o) = ventry.owner {
                                if !t.contains(&o) {
                                    t.push(o);
                                }
                            }
                            Some(t)
                        }
                        None => None, // broadcast
                    })
                } else {
                    None
                };
                // Dirty in L2, or dirty in some owner's L1 (conservatively
                // written back on the invalidate): one DRAM writeback.
                let writeback = ventry.dirty || ventry.owner.is_some();
                if writeback {
                    self.dram_writebacks += 1;
                }
                victim = Some(VictimInfo {
                    line: vline,
                    invalidate,
                    writeback,
                });
            }
        }
        let entry = self
            .cache
            .lookup(line)
            .expect("line resident after insert");
        HomeLine {
            entry,
            was_miss,
            victim,
        }
    }

    /// Directory entry of `line`, if resident (no LRU update, no stats).
    pub fn peek(&self, line: u64) -> Option<&DirEntry> {
        self.cache.peek(line)
    }

    /// Mutable directory entry without miss handling (writebacks from L1
    /// evictions land on lines that are normally still resident).
    pub fn lookup_resident(&mut self, line: u64) -> Option<&mut DirEntry> {
        self.cache.lookup(line)
    }

    /// Number of resident lines.
    pub fn resident(&self) -> usize {
        self.cache.len()
    }
}

/// Home slice of `line` among `num_cores` slices (multiplicative hash so
/// strided arrays spread over the chip, as NUCA interleaving does).
pub fn home_of(line: u64, num_cores: usize) -> usize {
    ((line.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 33) as usize % num_cores
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slice() -> L2Slice {
        L2Slice::new(&SimConfig::tiny(4))
    }

    #[test]
    fn first_touch_is_miss_then_hit() {
        let mut s = slice();
        let h = s.prepare(100);
        assert!(h.was_miss);
        let h = s.prepare(100);
        assert!(!h.was_miss);
        assert_eq!(s.accesses, 2);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn directory_state_persists() {
        let mut s = slice();
        {
            let h = s.prepare(7);
            h.entry.sharers.add(3);
            h.entry.queue_busy = 99;
        }
        let e = s.peek(7).unwrap();
        assert_eq!(e.sharers.count(), 1);
        assert_eq!(e.queue_busy, 99);
    }

    #[test]
    fn eviction_reports_l1_invalidations() {
        // tiny(4): L2 = 4096 B, assoc 4, 64 sets... compute: 4096/64=64
        // lines, 64/4=16 sets. Lines k, k+16, ... collide.
        let mut s = slice();
        {
            let h = s.prepare(0);
            h.entry.sharers.add(1);
            h.entry.sharers.add(2);
        }
        for i in 1..4 {
            s.prepare(i * 16);
        }
        // Fifth line in set 0 evicts line 0 (LRU).
        let h = s.prepare(4 * 16);
        let v = h.victim.expect("a victim was evicted");
        assert_eq!(v.line, 0);
        let mut t = v.invalidate.expect("victim had sharers").expect("precise sharers");
        t.sort_unstable();
        assert_eq!(t, vec![1, 2]);
    }

    #[test]
    fn dirty_victim_triggers_writeback() {
        let mut s = slice();
        s.prepare(0).entry.dirty = true;
        for i in 1..4 {
            s.prepare(i * 16);
        }
        let h = s.prepare(4 * 16);
        assert!(h.victim.expect("victim evicted").writeback);
        assert_eq!(s.dram_writebacks, 1);
    }

    #[test]
    fn owner_included_in_victim_targets() {
        let mut s = slice();
        s.prepare(0).entry.owner = Some(9);
        for i in 1..4 {
            s.prepare(i * 16);
        }
        let h = s.prepare(4 * 16);
        let v = h.victim.unwrap();
        assert_eq!(v.invalidate.unwrap().unwrap(), vec![9]);
        assert!(v.writeback, "owner may hold dirty data");
    }

    #[test]
    fn home_hash_is_balanced() {
        let mut counts = vec![0usize; 16];
        for line in 0..16_000u64 {
            counts[home_of(line, 16)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 500), "roughly balanced: {counts:?}");
    }
}
