//! The private L1 data cache, including CRONO's three-way miss
//! classification (§IV-D): cold, capacity, and sharing misses.

use crate::cache::SetAssocCache;
use crate::config::{CacheConfig, SimConfig};
use std::collections::HashSet;

/// MESI states an L1 line can be in (Invalid = not resident).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum L1State {
    /// Clean, possibly also cached elsewhere.
    Shared,
    /// Clean, sole copy; writable without a directory round trip.
    Exclusive,
    /// Dirty, sole copy.
    Modified,
}

/// CRONO's L1 miss classification (§IV-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissClass {
    /// First access ever to this line by this core.
    Cold,
    /// Line was brought in previously but evicted for capacity/conflict.
    Capacity,
    /// Line was invalidated or downgraded by another core's request.
    Sharing,
}

/// Result of an L1 lookup for a given access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L1Lookup {
    /// The access completes in the L1.
    Hit,
    /// Write to a Shared line: data is present but exclusivity is not.
    UpgradeMiss,
    /// Line not resident.
    Miss,
}

/// A private L1 data cache with miss-classification bookkeeping.
#[derive(Debug)]
pub struct L1Cache {
    cache: SetAssocCache<L1State>,
    ever_seen: HashSet<u64>,
    coherence_lost: HashSet<u64>,
}

impl L1Cache {
    /// Builds the L1-D described by `config`.
    pub fn new(config: &SimConfig) -> Self {
        Self::with_geometry(&config.l1d, config.line_size)
    }

    /// Builds an L1 with explicit geometry (used by tests).
    pub fn with_geometry(cache: &CacheConfig, line_size: u64) -> Self {
        L1Cache {
            cache: SetAssocCache::new(cache.num_sets(line_size), cache.associativity),
            ever_seen: HashSet::new(),
            coherence_lost: HashSet::new(),
        }
    }

    /// Attempts to satisfy an access from the L1.
    pub fn access(&mut self, line: u64, write: bool) -> L1Lookup {
        match self.cache.lookup(line) {
            Some(state) => {
                if write {
                    match *state {
                        L1State::Modified => L1Lookup::Hit,
                        L1State::Exclusive => {
                            // Silent E -> M upgrade, no directory traffic.
                            *state = L1State::Modified;
                            L1Lookup::Hit
                        }
                        L1State::Shared => L1Lookup::UpgradeMiss,
                    }
                } else {
                    L1Lookup::Hit
                }
            }
            None => L1Lookup::Miss,
        }
    }

    /// Classifies a miss to `line` (call once per miss, *before*
    /// [`L1Cache::fill`]). Upgrade misses are sharing misses: exclusivity
    /// was lost to (or never granted because of) another core.
    pub fn classify_miss(&mut self, line: u64, upgrade: bool) -> MissClass {
        if upgrade {
            self.coherence_lost.remove(&line);
            return MissClass::Sharing;
        }
        if !self.ever_seen.contains(&line) {
            MissClass::Cold
        } else if self.coherence_lost.remove(&line) {
            MissClass::Sharing
        } else {
            MissClass::Capacity
        }
    }

    /// Records a first touch served remotely (locality-aware protocol):
    /// the line is not allocated, but the next access counts as reuse and
    /// will allocate.
    pub fn note_touch(&mut self, line: u64) {
        self.ever_seen.insert(line);
    }

    /// Installs `line` with `state`, returning the evicted victim
    /// `(line, state)` if the set was full. The caller must write back
    /// Modified victims.
    pub fn fill(&mut self, line: u64, state: L1State) -> Option<(u64, L1State)> {
        self.ever_seen.insert(line);
        self.cache.insert(line, state)
    }

    /// Promotes a resident line to Modified after an upgrade completes.
    pub fn promote(&mut self, line: u64) {
        if let Some(state) = self.cache.lookup(line) {
            *state = L1State::Modified;
        }
    }

    /// Processes a coherence invalidation: removes the line and remembers
    /// the loss for miss classification. Returns the state the line was
    /// in, if resident.
    pub fn coherence_invalidate(&mut self, line: u64) -> Option<L1State> {
        let state = self.cache.remove(line);
        if state.is_some() {
            self.coherence_lost.insert(line);
        }
        state
    }

    /// Processes a coherence downgrade (another core reads a line we own):
    /// M/E becomes S. Returns `true` if the line was Modified (dirty data
    /// must be written back).
    pub fn coherence_downgrade(&mut self, line: u64) -> bool {
        match self.cache.lookup(line) {
            Some(state) => {
                let was_dirty = *state == L1State::Modified;
                *state = L1State::Shared;
                // Exclusivity lost to sharing: a future write re-misses.
                self.coherence_lost.insert(line);
                was_dirty
            }
            None => false,
        }
    }

    /// Current state of `line`, if resident (does not disturb LRU).
    pub fn state(&self, line: u64) -> Option<L1State> {
        self.cache.peek(line).copied()
    }

    /// Number of resident lines.
    pub fn resident(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> L1Cache {
        L1Cache::with_geometry(
            &CacheConfig {
                size_bytes: 256, // 4 lines
                associativity: 2,
                latency: 1,
            },
            64,
        )
    }

    #[test]
    fn first_access_is_cold_miss() {
        let mut l1 = tiny();
        assert_eq!(l1.access(7, false), L1Lookup::Miss);
        assert_eq!(l1.classify_miss(7, false), MissClass::Cold);
        l1.fill(7, L1State::Shared);
        assert_eq!(l1.access(7, false), L1Lookup::Hit);
    }

    #[test]
    fn eviction_then_refetch_is_capacity_miss() {
        let mut l1 = tiny();
        // Lines 0, 2, 4 map to set 0 (2 sets, assoc 2).
        for line in [0u64, 2, 4] {
            assert_eq!(l1.access(line, false), L1Lookup::Miss);
            l1.classify_miss(line, false);
            l1.fill(line, L1State::Shared);
        }
        assert_eq!(l1.access(0, false), L1Lookup::Miss, "line 0 was evicted");
        assert_eq!(l1.classify_miss(0, false), MissClass::Capacity);
    }

    #[test]
    fn invalidation_then_refetch_is_sharing_miss() {
        let mut l1 = tiny();
        l1.access(3, false);
        l1.classify_miss(3, false);
        l1.fill(3, L1State::Shared);
        assert_eq!(l1.coherence_invalidate(3), Some(L1State::Shared));
        assert_eq!(l1.access(3, false), L1Lookup::Miss);
        assert_eq!(l1.classify_miss(3, false), MissClass::Sharing);
    }

    #[test]
    fn write_to_shared_is_upgrade_and_sharing() {
        let mut l1 = tiny();
        l1.fill(5, L1State::Shared);
        assert_eq!(l1.access(5, true), L1Lookup::UpgradeMiss);
        assert_eq!(l1.classify_miss(5, true), MissClass::Sharing);
        l1.promote(5);
        assert_eq!(l1.access(5, true), L1Lookup::Hit);
        assert_eq!(l1.state(5), Some(L1State::Modified));
    }

    #[test]
    fn exclusive_write_hit_is_silent() {
        let mut l1 = tiny();
        l1.fill(9, L1State::Exclusive);
        assert_eq!(l1.access(9, true), L1Lookup::Hit);
        assert_eq!(l1.state(9), Some(L1State::Modified));
    }

    #[test]
    fn downgrade_reports_dirtiness_and_marks_loss() {
        let mut l1 = tiny();
        l1.fill(11, L1State::Modified);
        assert!(l1.coherence_downgrade(11));
        assert_eq!(l1.state(11), Some(L1State::Shared));
        // A later write re-misses as a sharing (upgrade) miss.
        assert_eq!(l1.access(11, true), L1Lookup::UpgradeMiss);
        assert_eq!(l1.classify_miss(11, true), MissClass::Sharing);
    }

    #[test]
    fn invalidate_nonresident_is_noop() {
        let mut l1 = tiny();
        assert_eq!(l1.coherence_invalidate(42), None);
        assert!(!l1.coherence_downgrade(42));
        // A later miss on that line is still cold.
        l1.access(42, false);
        assert_eq!(l1.classify_miss(42, false), MissClass::Cold);
    }

    #[test]
    fn dirty_victim_returned_on_fill() {
        let mut l1 = tiny();
        l1.fill(0, L1State::Modified);
        l1.fill(2, L1State::Shared);
        let evicted = l1.fill(4, L1State::Shared);
        assert_eq!(evicted, Some((0, L1State::Modified)));
    }
}
