//! A Graphite-style many-core timing simulator for the CRONO benchmarks.
//!
//! CRONO (IISWC 2015) characterizes its benchmarks on the Graphite
//! simulator configured as a futuristic 256-core NoC-based multicore
//! (Table II). This crate reimplements that machine model from scratch:
//!
//! * **Direct execution with lax synchronization** — simulated threads run
//!   on host threads with independent cycle clocks, exactly Graphite's
//!   methodology ("Graphite relaxes cycle accuracy and uses multithreading
//!   for increased performance", §IV-B). Benchmarks execute for real; the
//!   simulator observes their access stream through the
//!   [`crono_runtime::ThreadCtx`] hooks.
//! * **Memory hierarchy** — per-core private L1-I/L1-D, a shared NUCA L2
//!   (one inclusive slice per core, line home = hash of address), an
//!   invalidation-based MESI directory with ACKWise-4 limited pointers,
//!   and 8 bandwidth-limited DRAM controllers.
//! * **Interconnect** — an electrical 2-D mesh with XY routing, 2-cycle
//!   hops, 64-bit flits, and link-only contention.
//! * **Cores** — single-issue in-order (default) and out-of-order
//!   (ROB 168 / LQ 64 / SQ 48) models; the OOO core hides miss latency in
//!   a bounded outstanding-miss window but cannot hide atomic RMWs.
//! * **Statistics** — completion time split into the paper's six §IV-D
//!   components, L1 misses classified cold/capacity/sharing, and the raw
//!   event counts the `crono-energy` model consumes.
//!
//! # Examples
//!
//! ```
//! use crono_sim::{SimConfig, SimMachine};
//! use crono_runtime::{Machine, SharedU32s, ThreadCtx};
//!
//! // Four threads hammer one shared counter: the line ping-pongs.
//! let machine = SimMachine::new(SimConfig::tiny(16), 4);
//! let counter = SharedU32s::new(1);
//! let outcome = machine.run(|ctx| {
//!     for _ in 0..8 {
//!         counter.fetch_add(ctx, 0, 1);
//!         ctx.barrier();
//!     }
//! });
//! assert_eq!(counter.get_plain(0), 32);
//! assert!(outcome.report.misses.sharing_misses > 0);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod dram;
mod fault;
mod inbox;
mod l1;
mod l2;
mod machine;
mod noc;
mod sequencer;
mod sharer;

pub use cache::SetAssocCache;
pub use config::{CacheConfig, CoreModel, DramConfig, MeshConfig, RoutingPolicy, SimConfig};
pub use dram::{Dram, DramAccess};
pub use fault::{
    DeadCore, DeadDramCtrl, DeadLink, EccOutcome, FaultPlan, FaultPlanError, LinkDir,
};
pub use l1::{L1Cache, L1Lookup, L1State, MissClass};
pub use l2::{home_of, DirEntry, HomeLine, L2Slice, VictimInfo, HOME_EPOCH_CYCLES};
pub use machine::{SimCtx, SimMachine};
pub use noc::{Mesh, RouteError, Traversal};
pub use sharer::SharerSet;
