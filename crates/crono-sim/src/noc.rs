//! The on-chip interconnect: an electrical 2-D mesh with XY dimension-
//! ordered routing, per Table II. Hop latency covers one router plus one
//! link; contention is modeled on links only ("infinite input buffers").
//!
//! Because simulated thread clocks advance independently (Graphite's lax
//! synchronization), contention cannot be modeled with absolute
//! reservations — a thread simulated far ahead would poison every link
//! for threads behind it. Instead each link tracks flit counts in
//! fixed-size *epochs* of simulated time: a message pays queueing delay
//! only when its own epoch's utilization exceeds the link's capacity
//! (1 flit/cycle), which is skew-tolerant and converges to the same
//! utilization-driven delays.

use crate::config::{MeshConfig, RoutingPolicy};
use crate::fault::{DeadLink, LinkDir};
use std::sync::atomic::{AtomicU64, Ordering};

/// Simulated cycles per contention-accounting epoch.
pub const EPOCH_CYCLES: u64 = 128;
/// Ring slots per link (tolerates `EPOCH_CYCLES × EPOCH_SLOTS` cycles of
/// clock skew between threads).
pub const EPOCH_SLOTS: usize = 64;
/// Queueing delay cap per hop (bounds pathological overload).
const MAX_HOP_DELAY: u64 = 8 * EPOCH_CYCLES;

/// Timing and traffic for one message traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Traversal {
    /// Cycle at which the tail flit arrives at the destination.
    pub arrival: u64,
    /// Flit-hops consumed (flits × hops), for router/link energy.
    pub flit_hops: u64,
    /// Hops beyond the Manhattan distance, paid to route around a dead
    /// link (0 on a healthy mesh or when the alternate dimension order
    /// sufficed).
    pub detour_hops: u64,
    /// Whether this message had to deviate from its preferred route to
    /// avoid a dead link (dimension-order flip or sidestep).
    pub detoured: bool,
}

/// A message that cannot be delivered: the active routing policy has no
/// path from `from` to `to` that avoids the dead link. Only XY
/// dimension-ordered routing (which cannot adapt) or degenerate meshes
/// (a single row/column with its only link dead) produce this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteError {
    /// Source core of the undeliverable message.
    pub from: usize,
    /// Destination core.
    pub to: usize,
    /// The dead link the path cannot avoid.
    pub dead: DeadLink,
    /// The routing policy that failed to find a path.
    pub policy: RoutingPolicy,
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let policy = match self.policy {
            RoutingPolicy::XyDimensionOrder => "xy dimension-ordered routing cannot avoid",
            RoutingPolicy::O1Turn => "o1turn routing found no detour around",
        };
        write!(
            f,
            "unroutable message core {} -> core {}: {} the dead {} link at router {}",
            self.from,
            self.to,
            policy,
            self.dead.dir.name(),
            self.dead.router
        )
    }
}

impl std::error::Error for RouteError {}

/// The mesh interconnect. Link utilization counters are atomics, so any
/// simulated core can route messages concurrently.
#[derive(Debug)]
pub struct Mesh {
    cols: usize,
    rows: usize,
    config: MeshConfig,
    /// `slots[(dir * cores + core) * EPOCH_SLOTS + (epoch % EPOCH_SLOTS)]`
    /// packs `(epoch_tag << 32) | flit_count` for the outgoing link of
    /// `core` in direction `dir`. Directions: 0=east, 1=west, 2=south,
    /// 3=north.
    slots: Vec<AtomicU64>,
    /// Per-core totals over all destinations, for analytic broadcast
    /// timing/traffic: `(sum of hops, max hops)`.
    hop_totals: Vec<(u64, u64)>,
    /// Message sequence counter (entropy for O1TURN route selection).
    msg_seq: AtomicU64,
    /// Permanently failed link, if armed (active once the message's
    /// departure cycle reaches its `at_cycle`).
    dead_link: Option<DeadLink>,
}

const EAST: usize = 0;
const WEST: usize = 1;
const SOUTH: usize = 2;
const NORTH: usize = 3;

fn dir_index(dir: LinkDir) -> usize {
    match dir {
        LinkDir::East => EAST,
        LinkDir::West => WEST,
        LinkDir::South => SOUTH,
        LinkDir::North => NORTH,
    }
}

fn pack(epoch: u64, count: u64) -> u64 {
    ((epoch & 0xFFFF_FFFF) << 32) | (count & 0xFFFF_FFFF)
}

fn unpack(v: u64) -> (u64, u64) {
    (v >> 32, v & 0xFFFF_FFFF)
}

impl Mesh {
    /// Builds a mesh for `num_cores` cores, as square as possible.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores == 0`.
    pub fn new(num_cores: usize, config: MeshConfig) -> Self {
        assert!(num_cores > 0, "mesh needs at least one core");
        let cols = (num_cores as f64).sqrt().ceil() as usize;
        let rows = num_cores.div_ceil(cols);
        let slots = (0..4 * cols * rows * EPOCH_SLOTS)
            .map(|_| AtomicU64::new(0))
            .collect();
        let mut mesh = Mesh {
            cols,
            rows,
            config,
            slots,
            hop_totals: Vec::new(),
            msg_seq: AtomicU64::new(0),
            dead_link: None,
        };
        mesh.hop_totals = (0..num_cores)
            .map(|from| {
                let mut sum = 0;
                let mut max = 0;
                for to in 0..num_cores {
                    let h = mesh.hops(from, to);
                    sum += h;
                    max = max.max(h);
                }
                (sum, max)
            })
            .collect();
        mesh
    }

    /// Mesh coordinates of `core`.
    pub fn position(&self, core: usize) -> (usize, usize) {
        (core / self.cols, core % self.cols)
    }

    /// Manhattan hop count between two cores.
    pub fn hops(&self, from: usize, to: usize) -> u64 {
        let (fr, fc) = self.position(from);
        let (tr, tc) = self.position(to);
        (fr.abs_diff(tr) + fc.abs_diff(tc)) as u64
    }

    /// Mesh dimensions `(rows, cols)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `(sum, max)` of hop distances from `core` to every core — the
    /// analytic cost of an ACKWise broadcast originating there.
    pub fn broadcast_hops(&self, core: usize) -> (u64, u64) {
        self.hop_totals[core]
    }

    /// Arms (or clears) the permanent dead-link fault. Call before the
    /// mesh is shared between threads.
    pub fn set_dead_link(&mut self, dead: Option<DeadLink>) {
        self.dead_link = dead;
    }

    /// Walks the dimension-ordered path from `from` to `to` (column hops
    /// first unless `y_first`), invoking `f(router, dir)` per hop. The
    /// single route walker: charging, dead-link checking, and detour
    /// evaluation all see exactly the same hop sequence.
    fn for_each_hop(&self, from: usize, to: usize, y_first: bool, mut f: impl FnMut(usize, usize)) {
        let (fr, fc) = self.position(from);
        let (tr, tc) = self.position(to);
        let (mut r, mut c) = (fr, fc);
        let cols_leg = |r: usize, c: &mut usize, f: &mut dyn FnMut(usize, usize)| {
            while *c != tc {
                let dir = if *c < tc { EAST } else { WEST };
                f(r * self.cols + *c, dir);
                *c = if *c < tc { *c + 1 } else { *c - 1 };
            }
        };
        let rows_leg = |r: &mut usize, c: usize, f: &mut dyn FnMut(usize, usize)| {
            while *r != tr {
                let dir = if *r < tr { SOUTH } else { NORTH };
                f(*r * self.cols + c, dir);
                *r = if *r < tr { *r + 1 } else { *r - 1 };
            }
        };
        if y_first {
            rows_leg(&mut r, c, &mut f);
            cols_leg(r, &mut c, &mut f);
        } else {
            cols_leg(r, &mut c, &mut f);
            rows_leg(&mut r, c, &mut f);
        }
    }

    /// Charges every hop of the dimension-ordered walk starting at cycle
    /// `t0`; returns `(tail_arrival_at_router, hops)`.
    fn charge_walk(&self, from: usize, to: usize, t0: u64, flits: u64, y_first: bool) -> (u64, u64) {
        let mut t = t0;
        let mut hops = 0u64;
        self.for_each_hop(from, to, y_first, |router, dir| {
            t = self.hop(router, dir, t, flits);
            hops += 1;
        });
        (t, hops)
    }

    /// Whether the dimension-ordered path crosses the (router, dir) link.
    fn path_crosses(&self, from: usize, to: usize, y_first: bool, router: usize, dir: usize) -> bool {
        let mut crosses = false;
        self.for_each_hop(from, to, y_first, |r, d| {
            if r == router && d == dir {
                crosses = true;
            }
        });
        crosses
    }

    fn charge_path(&self, from: usize, to: usize, depart: u64, flits: u64, y_first: bool) -> Traversal {
        let (t, hops) = self.charge_walk(from, to, depart, flits, y_first);
        Traversal {
            arrival: t + (flits - 1),
            flit_hops: hops * flits,
            detour_hops: 0,
            detoured: false,
        }
    }

    /// Routes a `flits`-flit message from `from` to `to`, departing at
    /// cycle `depart`. XY routing: all column (east/west) hops first, then
    /// row (south/north) hops; O1TURN alternates X-first/Y-first per
    /// message. Each hop charges the link's epoch utilization; the tail
    /// adds `flits − 1` serialization cycles at the destination.
    ///
    /// With a dead link armed and active, O1TURN re-routes around it
    /// (dimension-order flip, or a 2-hop sidestep for straight-line
    /// paths); XY cannot adapt and the message is undeliverable. Whether
    /// the link is dead is judged at the departure cycle — a pure
    /// function of the message's coordinates, like every fault decision.
    ///
    /// # Errors
    ///
    /// [`RouteError`] when no policy-legal path avoids the active dead
    /// link.
    pub fn try_traverse(
        &self,
        from: usize,
        to: usize,
        depart: u64,
        flits: u64,
    ) -> Result<Traversal, RouteError> {
        if from == to {
            return Ok(Traversal {
                arrival: depart,
                flit_hops: 0,
                detour_hops: 0,
                detoured: false,
            });
        }
        // O1TURN: route half the messages Y-first (per-message sequence
        // number as entropy, so back-to-back messages alternate paths).
        let y_first = match self.config.routing {
            RoutingPolicy::XyDimensionOrder => false,
            RoutingPolicy::O1Turn => self.msg_seq.fetch_add(1, Ordering::Relaxed) & 1 != 0,
        };
        let dead = match self.dead_link {
            Some(dl) if depart >= dl.at_cycle => Some(dl),
            _ => None,
        };
        let Some(dl) = dead else {
            return Ok(self.charge_path(from, to, depart, flits, y_first));
        };
        let (dr, dd) = (dl.router, dir_index(dl.dir));
        let route_error = || RouteError {
            from,
            to,
            dead: dl,
            policy: self.config.routing,
        };
        if !self.path_crosses(from, to, y_first, dr, dd) {
            // Preferred dimension order already avoids the dead link.
            return Ok(self.charge_path(from, to, depart, flits, y_first));
        }
        if self.config.routing == RoutingPolicy::XyDimensionOrder {
            // XY is deterministic dimension order: no legal alternate
            // path exists within the policy.
            return Err(route_error());
        }
        if !self.path_crosses(from, to, !y_first, dr, dd) {
            // The other turn order avoids it: same Manhattan distance,
            // different links.
            let mut t = self.charge_path(from, to, depart, flits, !y_first);
            t.detoured = true;
            return Ok(t);
        }
        // Both dimension orders are blocked — the path is a straight
        // line through the dead link. Sidestep: one hop to an adjacent
        // router, then dimension-ordered from there (+2 hops total).
        let (fr, fc) = self.position(from);
        let side_candidates = [
            (fr.wrapping_add(1), fc, SOUTH),
            (fr.wrapping_sub(1), fc, NORTH),
            (fr, fc.wrapping_add(1), EAST),
            (fr, fc.wrapping_sub(1), WEST),
        ];
        for (vr, vc, out_dir) in side_candidates {
            if vr >= self.rows || vc >= self.cols {
                continue;
            }
            if from == dr && out_dir == dd {
                continue; // the sidestep hop itself is the dead link
            }
            let via = vr * self.cols + vc;
            for leg_y_first in [y_first, !y_first] {
                if self.path_crosses(via, to, leg_y_first, dr, dd) {
                    continue;
                }
                let t1 = self.hop(from, out_dir, depart, flits);
                let (t2, leg_hops) = self.charge_walk(via, to, t1, flits, leg_y_first);
                let hops = 1 + leg_hops;
                return Ok(Traversal {
                    arrival: t2 + (flits - 1),
                    flit_hops: hops * flits,
                    detour_hops: hops - self.hops(from, to),
                    detoured: true,
                });
            }
        }
        Err(route_error())
    }

    /// Infallible [`Mesh::try_traverse`] for healthy meshes (and armed
    /// meshes whose policy can always detour).
    ///
    /// # Panics
    ///
    /// Panics with the [`RouteError`] message when the message is
    /// undeliverable.
    pub fn traverse(&self, from: usize, to: usize, depart: u64, flits: u64) -> Traversal {
        match self.try_traverse(from, to, depart, flits) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// Uncontended latency for a `flits`-flit message over `hops` hops.
    pub fn ideal_latency(&self, hops: u64, flits: u64) -> u64 {
        if hops == 0 {
            0
        } else {
            hops * self.config.hop_latency + (flits - 1)
        }
    }

    fn hop(&self, core: usize, dir: usize, t: u64, flits: u64) -> u64 {
        let delay = if self.config.link_contention {
            let epoch = t / EPOCH_CYCLES;
            let base = (dir * self.cols * self.rows + core) * EPOCH_SLOTS;
            let cell = &self.slots[base + (epoch as usize % EPOCH_SLOTS)];
            let mut cur = cell.load(Ordering::Relaxed);
            let occupied = loop {
                let (tag, count) = unpack(cur);
                let this_tag = epoch & 0xFFFF_FFFF;
                let (new, occupied) = if tag == this_tag {
                    (pack(this_tag, count + flits), count)
                } else {
                    // The slot belonged to a different (older or very
                    // future) epoch: claim it for ours.
                    (pack(this_tag, flits), 0)
                };
                match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed)
                {
                    Ok(_) => break occupied,
                    Err(actual) => cur = actual,
                }
            };
            // Link capacity is 1 flit/cycle: overload in this epoch queues.
            (occupied + flits).saturating_sub(EPOCH_CYCLES).min(MAX_HOP_DELAY)
        } else {
            0
        };
        t + self.config.hop_latency + delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh(n: usize, contention: bool) -> Mesh {
        Mesh::new(
            n,
            MeshConfig {
                hop_latency: 2,
                flit_bits: 64,
                link_contention: contention,
                routing: RoutingPolicy::XyDimensionOrder,
            },
        )
    }

    #[test]
    fn square_dimensions() {
        assert_eq!(mesh(256, true).dims(), (16, 16));
        assert_eq!(mesh(16, true).dims(), (4, 4));
        assert_eq!(mesh(5, true).dims(), (2, 3));
    }

    #[test]
    fn local_delivery_is_free() {
        let m = mesh(16, true);
        let t = m.traverse(3, 3, 100, 9);
        assert_eq!(t.arrival, 100);
        assert_eq!(t.flit_hops, 0);
    }

    #[test]
    fn uncontended_latency_matches_ideal() {
        let m = mesh(16, true);
        // core 0 = (0,0), core 15 = (3,3): 6 hops.
        let t = m.traverse(0, 15, 0, 1);
        assert_eq!(m.hops(0, 15), 6);
        assert_eq!(t.arrival, m.ideal_latency(6, 1));
        assert_eq!(t.flit_hops, 6);

        // 9-flit data message: serialization adds flits-1.
        let t = m.traverse(0, 15, 0, 9);
        assert_eq!(t.arrival, 6 * 2 + 8);
    }

    #[test]
    fn light_load_sees_no_contention() {
        let m = mesh(16, true);
        let a = m.traverse(0, 1, 0, 9);
        let b = m.traverse(0, 1, 0, 9);
        assert_eq!(a.arrival, b.arrival, "two messages fit one epoch");
    }

    #[test]
    fn saturating_an_epoch_queues_messages() {
        let m = mesh(16, true);
        let ideal = m.traverse(4, 5, 100_000, 9).arrival; // warm a far epoch
        let mut last = 0;
        for _ in 0..40 {
            last = m.traverse(0, 1, 0, 9).arrival;
        }
        // 40 × 9 = 360 flits into a 128-cycle epoch: the tail queues.
        assert!(
            last > ideal - 100_000 + 100,
            "saturated link must delay: last={last}"
        );
    }

    #[test]
    fn contention_is_per_epoch() {
        let m = mesh(16, true);
        for _ in 0..40 {
            m.traverse(0, 1, 0, 9);
        }
        // A message in a different epoch is unaffected.
        let far = m.traverse(0, 1, 10 * EPOCH_CYCLES, 9);
        assert_eq!(far.arrival, 10 * EPOCH_CYCLES + 2 + 8);
    }

    #[test]
    fn skewed_clocks_do_not_poison_links() {
        let m = mesh(16, true);
        // A thread far ahead in simulated time hammers the link...
        for _ in 0..100 {
            m.traverse(0, 1, 1_000_000, 9);
        }
        // ...but a thread at an earlier simulated time is unaffected.
        let early = m.traverse(0, 1, 0, 9);
        assert_eq!(early.arrival, 2 + 8);
    }

    #[test]
    fn no_contention_mode_ignores_load() {
        let m = mesh(16, false);
        for _ in 0..100 {
            m.traverse(0, 1, 0, 9);
        }
        assert_eq!(m.traverse(0, 1, 0, 9).arrival, 2 + 8);
    }

    #[test]
    fn xy_routing_is_deterministic_distance() {
        let m = mesh(64, false);
        for from in [0usize, 9, 17, 63] {
            for to in [0usize, 7, 56, 63] {
                let t = m.traverse(from, to, 0, 1);
                assert_eq!(t.flit_hops, m.hops(from, to));
            }
        }
    }

    #[test]
    fn delay_is_capped() {
        let m = mesh(16, true);
        for _ in 0..10_000 {
            m.traverse(0, 1, 0, 9);
        }
        let worst = m.traverse(0, 1, 0, 9);
        assert!(worst.arrival <= 2 + 8 + MAX_HOP_DELAY);
    }

    fn mesh_with_dead(n: usize, routing: RoutingPolicy, dead: DeadLink) -> Mesh {
        let mut m = Mesh::new(
            n,
            MeshConfig {
                hop_latency: 2,
                flit_bits: 64,
                link_contention: false,
                routing,
            },
        );
        m.set_dead_link(Some(dead));
        m
    }

    #[test]
    fn xy_on_dead_link_is_a_typed_error() {
        // 4x4 mesh; the east link of router 5 (row 1, col 1) dies at 0.
        let dead = DeadLink {
            router: 5,
            dir: LinkDir::East,
            at_cycle: 0,
        };
        let m = mesh_with_dead(16, RoutingPolicy::XyDimensionOrder, dead);
        // Core 4 -> core 7 is a same-row path through the dead link.
        let err = m.try_traverse(4, 7, 0, 1).expect_err("xy cannot avoid");
        assert_eq!(err.from, 4);
        assert_eq!(err.to, 7);
        assert_eq!(err.dead, dead);
        assert!(err.to_string().contains("east link at router 5"), "{err}");
        // A path that never touches the link still routes.
        assert!(m.try_traverse(0, 12, 0, 1).is_ok());
    }

    #[test]
    fn xy_dead_link_before_activation_routes_normally() {
        let dead = DeadLink {
            router: 5,
            dir: LinkDir::East,
            at_cycle: 1_000,
        };
        let m = mesh_with_dead(16, RoutingPolicy::XyDimensionOrder, dead);
        let before = m.try_traverse(4, 7, 0, 1).expect("link alive at cycle 0");
        assert_eq!(before.flit_hops, 3);
        assert!(!before.detoured);
        assert!(m.try_traverse(4, 7, 1_000, 1).is_err(), "dead from 1000 on");
    }

    #[test]
    fn o1turn_flips_dimension_order_around_dead_link() {
        // Core 4 (1,0) -> core 6 (1,2): same-row... pick an L-shaped pair
        // instead: 4 (1,0) -> 10 (2,2). X-first crosses (1,1)-east; the
        // Y-first order goes south first and avoids it.
        let dead = DeadLink {
            router: 5,
            dir: LinkDir::East,
            at_cycle: 0,
        };
        let m = mesh_with_dead(16, RoutingPolicy::O1Turn, dead);
        for _ in 0..8 {
            let t = m.try_traverse(4, 10, 0, 1).expect("o1turn must detour");
            assert_eq!(t.flit_hops, 3, "order flip keeps Manhattan distance");
            assert_eq!(t.detour_hops, 0);
        }
    }

    #[test]
    fn o1turn_sidesteps_straight_line_through_dead_link() {
        let dead = DeadLink {
            router: 5,
            dir: LinkDir::East,
            at_cycle: 0,
        };
        let m = mesh_with_dead(16, RoutingPolicy::O1Turn, dead);
        // Core 4 -> core 7: row 1 straight line; both dimension orders
        // cross (1,1)-east, so the message sidesteps (+2 hops).
        let t = m.try_traverse(4, 7, 0, 1).expect("o1turn must sidestep");
        assert_eq!(m.hops(4, 7), 3);
        assert_eq!(t.flit_hops, 5, "sidestep pays 2 extra hops");
        assert_eq!(t.detour_hops, 2);
        assert!(t.detoured);
    }

    #[test]
    fn o1turn_single_row_mesh_with_dead_link_is_unroutable() {
        // 2 cores -> 1x2 or 2x1 mesh; its only link dead = unroutable.
        let m2 = Mesh::new(
            2,
            MeshConfig {
                hop_latency: 2,
                flit_bits: 64,
                link_contention: false,
                routing: RoutingPolicy::O1Turn,
            },
        );
        let (rows, cols) = m2.dims();
        assert_eq!(rows * cols, 2);
        let dir = if cols == 2 { LinkDir::East } else { LinkDir::South };
        let mut m2 = m2;
        m2.set_dead_link(Some(DeadLink {
            router: 0,
            dir,
            at_cycle: 0,
        }));
        assert!(m2.try_traverse(0, 1, 0, 1).is_err());
    }

    #[test]
    fn armed_but_inactive_dead_link_is_timing_invisible() {
        let healthy = mesh(16, true);
        let armed = {
            let mut m = Mesh::new(
                16,
                MeshConfig {
                    hop_latency: 2,
                    flit_bits: 64,
                    link_contention: true,
                    routing: RoutingPolicy::XyDimensionOrder,
                },
            );
            m.set_dead_link(Some(DeadLink {
                router: 5,
                dir: LinkDir::East,
                at_cycle: u64::MAX,
            }));
            m
        };
        for (from, to) in [(0usize, 15usize), (4, 7), (15, 0), (3, 12)] {
            for _ in 0..20 {
                let a = healthy.traverse(from, to, 64, 9);
                let b = armed.traverse(from, to, 64, 9);
                assert_eq!(a, b);
            }
        }
    }
}
