//! The on-chip interconnect: an electrical 2-D mesh with XY dimension-
//! ordered routing, per Table II. Hop latency covers one router plus one
//! link; contention is modeled on links only ("infinite input buffers").
//!
//! Because simulated thread clocks advance independently (Graphite's lax
//! synchronization), contention cannot be modeled with absolute
//! reservations — a thread simulated far ahead would poison every link
//! for threads behind it. Instead each link tracks flit counts in
//! fixed-size *epochs* of simulated time: a message pays queueing delay
//! only when its own epoch's utilization exceeds the link's capacity
//! (1 flit/cycle), which is skew-tolerant and converges to the same
//! utilization-driven delays.

use crate::config::{MeshConfig, RoutingPolicy};
use std::sync::atomic::{AtomicU64, Ordering};

/// Simulated cycles per contention-accounting epoch.
pub const EPOCH_CYCLES: u64 = 128;
/// Ring slots per link (tolerates `EPOCH_CYCLES × EPOCH_SLOTS` cycles of
/// clock skew between threads).
pub const EPOCH_SLOTS: usize = 64;
/// Queueing delay cap per hop (bounds pathological overload).
const MAX_HOP_DELAY: u64 = 8 * EPOCH_CYCLES;

/// Timing and traffic for one message traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Traversal {
    /// Cycle at which the tail flit arrives at the destination.
    pub arrival: u64,
    /// Flit-hops consumed (flits × hops), for router/link energy.
    pub flit_hops: u64,
}

/// The mesh interconnect. Link utilization counters are atomics, so any
/// simulated core can route messages concurrently.
#[derive(Debug)]
pub struct Mesh {
    cols: usize,
    rows: usize,
    config: MeshConfig,
    /// `slots[(dir * cores + core) * EPOCH_SLOTS + (epoch % EPOCH_SLOTS)]`
    /// packs `(epoch_tag << 32) | flit_count` for the outgoing link of
    /// `core` in direction `dir`. Directions: 0=east, 1=west, 2=south,
    /// 3=north.
    slots: Vec<AtomicU64>,
    /// Per-core totals over all destinations, for analytic broadcast
    /// timing/traffic: `(sum of hops, max hops)`.
    hop_totals: Vec<(u64, u64)>,
    /// Message sequence counter (entropy for O1TURN route selection).
    msg_seq: AtomicU64,
}

const EAST: usize = 0;
const WEST: usize = 1;
const SOUTH: usize = 2;
const NORTH: usize = 3;

fn pack(epoch: u64, count: u64) -> u64 {
    ((epoch & 0xFFFF_FFFF) << 32) | (count & 0xFFFF_FFFF)
}

fn unpack(v: u64) -> (u64, u64) {
    (v >> 32, v & 0xFFFF_FFFF)
}

impl Mesh {
    /// Builds a mesh for `num_cores` cores, as square as possible.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores == 0`.
    pub fn new(num_cores: usize, config: MeshConfig) -> Self {
        assert!(num_cores > 0, "mesh needs at least one core");
        let cols = (num_cores as f64).sqrt().ceil() as usize;
        let rows = num_cores.div_ceil(cols);
        let slots = (0..4 * cols * rows * EPOCH_SLOTS)
            .map(|_| AtomicU64::new(0))
            .collect();
        let mut mesh = Mesh {
            cols,
            rows,
            config,
            slots,
            hop_totals: Vec::new(),
            msg_seq: AtomicU64::new(0),
        };
        mesh.hop_totals = (0..num_cores)
            .map(|from| {
                let mut sum = 0;
                let mut max = 0;
                for to in 0..num_cores {
                    let h = mesh.hops(from, to);
                    sum += h;
                    max = max.max(h);
                }
                (sum, max)
            })
            .collect();
        mesh
    }

    /// Mesh coordinates of `core`.
    pub fn position(&self, core: usize) -> (usize, usize) {
        (core / self.cols, core % self.cols)
    }

    /// Manhattan hop count between two cores.
    pub fn hops(&self, from: usize, to: usize) -> u64 {
        let (fr, fc) = self.position(from);
        let (tr, tc) = self.position(to);
        (fr.abs_diff(tr) + fc.abs_diff(tc)) as u64
    }

    /// Mesh dimensions `(rows, cols)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `(sum, max)` of hop distances from `core` to every core — the
    /// analytic cost of an ACKWise broadcast originating there.
    pub fn broadcast_hops(&self, core: usize) -> (u64, u64) {
        self.hop_totals[core]
    }

    /// Routes a `flits`-flit message from `from` to `to`, departing at
    /// cycle `depart`. XY routing: all column (east/west) hops first, then
    /// row (south/north) hops. Each hop charges the link's epoch
    /// utilization; the tail adds `flits − 1` serialization cycles at the
    /// destination.
    pub fn traverse(&self, from: usize, to: usize, depart: u64, flits: u64) -> Traversal {
        if from == to {
            return Traversal {
                arrival: depart,
                flit_hops: 0,
            };
        }
        let (fr, fc) = self.position(from);
        let (tr, tc) = self.position(to);
        // O1TURN: route half the messages Y-first (per-message sequence
        // number as entropy, so back-to-back messages alternate paths).
        let y_first = match self.config.routing {
            RoutingPolicy::XyDimensionOrder => false,
            RoutingPolicy::O1Turn => self.msg_seq.fetch_add(1, Ordering::Relaxed) & 1 != 0,
        };
        let mut t = depart;
        let mut hops = 0u64;
        let (mut r, mut c) = (fr, fc);
        let route_cols = |t: &mut u64, r: usize, c: &mut usize, hops: &mut u64| {
            while *c != tc {
                let dir = if *c < tc { EAST } else { WEST };
                *t = self.hop(r * self.cols + *c, dir, *t, flits);
                *c = if *c < tc { *c + 1 } else { *c - 1 };
                *hops += 1;
            }
        };
        let route_rows = |t: &mut u64, r: &mut usize, c: usize, hops: &mut u64| {
            while *r != tr {
                let dir = if *r < tr { SOUTH } else { NORTH };
                *t = self.hop(*r * self.cols + c, dir, *t, flits);
                *r = if *r < tr { *r + 1 } else { *r - 1 };
                *hops += 1;
            }
        };
        if y_first {
            route_rows(&mut t, &mut r, c, &mut hops);
            route_cols(&mut t, r, &mut c, &mut hops);
        } else {
            route_cols(&mut t, r, &mut c, &mut hops);
            route_rows(&mut t, &mut r, c, &mut hops);
        }
        Traversal {
            arrival: t + (flits - 1),
            flit_hops: hops * flits,
        }
    }

    /// Uncontended latency for a `flits`-flit message over `hops` hops.
    pub fn ideal_latency(&self, hops: u64, flits: u64) -> u64 {
        if hops == 0 {
            0
        } else {
            hops * self.config.hop_latency + (flits - 1)
        }
    }

    fn hop(&self, core: usize, dir: usize, t: u64, flits: u64) -> u64 {
        let delay = if self.config.link_contention {
            let epoch = t / EPOCH_CYCLES;
            let base = (dir * self.cols * self.rows + core) * EPOCH_SLOTS;
            let cell = &self.slots[base + (epoch as usize % EPOCH_SLOTS)];
            let mut cur = cell.load(Ordering::Relaxed);
            let occupied = loop {
                let (tag, count) = unpack(cur);
                let this_tag = epoch & 0xFFFF_FFFF;
                let (new, occupied) = if tag == this_tag {
                    (pack(this_tag, count + flits), count)
                } else {
                    // The slot belonged to a different (older or very
                    // future) epoch: claim it for ours.
                    (pack(this_tag, flits), 0)
                };
                match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed)
                {
                    Ok(_) => break occupied,
                    Err(actual) => cur = actual,
                }
            };
            // Link capacity is 1 flit/cycle: overload in this epoch queues.
            (occupied + flits).saturating_sub(EPOCH_CYCLES).min(MAX_HOP_DELAY)
        } else {
            0
        };
        t + self.config.hop_latency + delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh(n: usize, contention: bool) -> Mesh {
        Mesh::new(
            n,
            MeshConfig {
                hop_latency: 2,
                flit_bits: 64,
                link_contention: contention,
                routing: RoutingPolicy::XyDimensionOrder,
            },
        )
    }

    #[test]
    fn square_dimensions() {
        assert_eq!(mesh(256, true).dims(), (16, 16));
        assert_eq!(mesh(16, true).dims(), (4, 4));
        assert_eq!(mesh(5, true).dims(), (2, 3));
    }

    #[test]
    fn local_delivery_is_free() {
        let m = mesh(16, true);
        let t = m.traverse(3, 3, 100, 9);
        assert_eq!(t.arrival, 100);
        assert_eq!(t.flit_hops, 0);
    }

    #[test]
    fn uncontended_latency_matches_ideal() {
        let m = mesh(16, true);
        // core 0 = (0,0), core 15 = (3,3): 6 hops.
        let t = m.traverse(0, 15, 0, 1);
        assert_eq!(m.hops(0, 15), 6);
        assert_eq!(t.arrival, m.ideal_latency(6, 1));
        assert_eq!(t.flit_hops, 6);

        // 9-flit data message: serialization adds flits-1.
        let t = m.traverse(0, 15, 0, 9);
        assert_eq!(t.arrival, 6 * 2 + 8);
    }

    #[test]
    fn light_load_sees_no_contention() {
        let m = mesh(16, true);
        let a = m.traverse(0, 1, 0, 9);
        let b = m.traverse(0, 1, 0, 9);
        assert_eq!(a.arrival, b.arrival, "two messages fit one epoch");
    }

    #[test]
    fn saturating_an_epoch_queues_messages() {
        let m = mesh(16, true);
        let ideal = m.traverse(4, 5, 100_000, 9).arrival; // warm a far epoch
        let mut last = 0;
        for _ in 0..40 {
            last = m.traverse(0, 1, 0, 9).arrival;
        }
        // 40 × 9 = 360 flits into a 128-cycle epoch: the tail queues.
        assert!(
            last > ideal - 100_000 + 100,
            "saturated link must delay: last={last}"
        );
    }

    #[test]
    fn contention_is_per_epoch() {
        let m = mesh(16, true);
        for _ in 0..40 {
            m.traverse(0, 1, 0, 9);
        }
        // A message in a different epoch is unaffected.
        let far = m.traverse(0, 1, 10 * EPOCH_CYCLES, 9);
        assert_eq!(far.arrival, 10 * EPOCH_CYCLES + 2 + 8);
    }

    #[test]
    fn skewed_clocks_do_not_poison_links() {
        let m = mesh(16, true);
        // A thread far ahead in simulated time hammers the link...
        for _ in 0..100 {
            m.traverse(0, 1, 1_000_000, 9);
        }
        // ...but a thread at an earlier simulated time is unaffected.
        let early = m.traverse(0, 1, 0, 9);
        assert_eq!(early.arrival, 2 + 8);
    }

    #[test]
    fn no_contention_mode_ignores_load() {
        let m = mesh(16, false);
        for _ in 0..100 {
            m.traverse(0, 1, 0, 9);
        }
        assert_eq!(m.traverse(0, 1, 0, 9).arrival, 2 + 8);
    }

    #[test]
    fn xy_routing_is_deterministic_distance() {
        let m = mesh(64, false);
        for from in [0usize, 9, 17, 63] {
            for to in [0usize, 7, 56, 63] {
                let t = m.traverse(from, to, 0, 1);
                assert_eq!(t.flit_hops, m.hops(from, to));
            }
        }
    }

    #[test]
    fn delay_is_capped() {
        let m = mesh(16, true);
        for _ in 0..10_000 {
            m.traverse(0, 1, 0, 9);
        }
        let worst = m.traverse(0, 1, 0, 9);
        assert!(worst.arrival <= 2 + 8 + MAX_HOP_DELAY);
    }
}
