//! A generic set-associative cache array with true-LRU replacement, used
//! for both the private L1s and the L2 slices.

/// One resident line plus its replacement state and a caller-defined
/// payload (coherence state for L1, directory entry for L2).
#[derive(Debug, Clone)]
struct Entry<T> {
    line: u64,
    lru: u64,
    payload: T,
}

/// Set-associative cache with LRU replacement.
///
/// The set index is the low bits of the line number, as in real caches.
#[derive(Debug, Clone)]
pub struct SetAssocCache<T> {
    sets: Vec<Vec<Entry<T>>>,
    associativity: usize,
    tick: u64,
}

impl<T> SetAssocCache<T> {
    /// Creates a cache with `num_sets` sets of `associativity` ways.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(num_sets: usize, associativity: usize) -> Self {
        assert!(num_sets > 0 && associativity > 0, "degenerate cache");
        SetAssocCache {
            sets: (0..num_sets).map(|_| Vec::with_capacity(associativity)).collect(),
            associativity,
            tick: 0,
        }
    }

    fn set_index(&self, line: u64) -> usize {
        (line % self.sets.len() as u64) as usize
    }

    /// Looks up `line`, updating LRU on hit.
    pub fn lookup(&mut self, line: u64) -> Option<&mut T> {
        self.tick += 1;
        let tick = self.tick;
        let idx = self.set_index(line);
        self.sets[idx].iter_mut().find(|e| e.line == line).map(|e| {
            e.lru = tick;
            &mut e.payload
        })
    }

    /// Looks up `line` without touching LRU (directory peeks).
    pub fn peek(&self, line: u64) -> Option<&T> {
        let idx = self.set_index(line);
        self.sets[idx].iter().find(|e| e.line == line).map(|e| &e.payload)
    }

    /// Inserts `line` (which must not be resident), evicting the LRU line
    /// of its set if full. Returns the evicted `(line, payload)`.
    ///
    /// # Panics
    ///
    /// Debug-panics if `line` is already resident.
    pub fn insert(&mut self, line: u64, payload: T) -> Option<(u64, T)> {
        self.tick += 1;
        let tick = self.tick;
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        debug_assert!(
            set.iter().all(|e| e.line != line),
            "line {line} already resident"
        );
        let evicted = if set.len() == self.associativity {
            let victim = set
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.lru)
                .map(|(i, _)| i)
                .expect("full set has a victim");
            let e = set.swap_remove(victim);
            Some((e.line, e.payload))
        } else {
            None
        };
        set.push(Entry {
            line,
            lru: tick,
            payload,
        });
        evicted
    }

    /// Removes `line` if resident, returning its payload.
    pub fn remove(&mut self, line: u64) -> Option<T> {
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        set.iter()
            .position(|e| e.line == line)
            .map(|i| set.swap_remove(i).payload)
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over resident `(line, payload)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        self.sets
            .iter()
            .flat_map(|s| s.iter().map(|e| (e.line, &e.payload)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let mut c = SetAssocCache::new(4, 2);
        c.insert(10, "a");
        assert_eq!(c.lookup(10), Some(&mut "a"));
        assert_eq!(c.lookup(11), None);
    }

    #[test]
    fn evicts_lru_within_set() {
        let mut c = SetAssocCache::new(2, 2);
        // Lines 0, 2, 4 all map to set 0.
        c.insert(0, "l0");
        c.insert(2, "l2");
        c.lookup(0); // touch 0 so 2 becomes LRU
        let evicted = c.insert(4, "l4");
        assert_eq!(evicted, Some((2, "l2")));
        assert!(c.peek(0).is_some());
        assert!(c.peek(4).is_some());
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = SetAssocCache::new(2, 1);
        c.insert(0, ());
        assert_eq!(c.insert(1, ()), None, "odd line goes to set 1");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn remove_returns_payload() {
        let mut c = SetAssocCache::new(2, 2);
        c.insert(5, 42);
        assert_eq!(c.remove(5), Some(42));
        assert_eq!(c.remove(5), None);
        assert!(c.is_empty());
    }

    #[test]
    fn peek_does_not_disturb_lru() {
        let mut c = SetAssocCache::new(1, 2);
        c.insert(0, ());
        c.insert(1, ());
        c.peek(0); // must NOT refresh line 0
        let evicted = c.insert(2, ());
        assert_eq!(evicted, Some((0, ())), "peek left line 0 as LRU");
    }

    #[test]
    fn iter_visits_everything() {
        let mut c = SetAssocCache::new(4, 2);
        for l in 0..5 {
            c.insert(l, l * 10);
        }
        let mut seen: Vec<_> = c.iter().map(|(l, &p)| (l, p)).collect();
        seen.sort_unstable();
        assert_eq!(seen.len(), 5);
        assert_eq!(seen[4], (4, 40));
    }
}
