//! Off-chip memory: 8 controllers with finite per-controller bandwidth
//! (Table II: 5 GBps each, 100 ns latency). As with the NoC, queueing is
//! modeled with skew-tolerant epoch utilization counters rather than
//! absolute reservations (see `noc` module docs): a line access pays
//! queueing delay when its controller's epoch already holds more line
//! transfers than the bandwidth allows.

use crate::config::SimConfig;
use std::sync::atomic::{AtomicU64, Ordering};

/// Simulated cycles per DRAM accounting epoch.
pub const DRAM_EPOCH_CYCLES: u64 = 512;
/// Ring slots per controller.
pub const DRAM_EPOCH_SLOTS: usize = 32;
/// Queueing delay cap (bounds pathological overload).
const MAX_QUEUE_DELAY: u64 = 4 * DRAM_EPOCH_CYCLES;

/// Outcome of one DRAM line access.
#[derive(Debug, Clone, Copy)]
pub struct DramAccess {
    /// Cycle the data is available at the controller.
    pub ready: u64,
    /// Bandwidth-queueing delay paid (0 when the epoch had headroom).
    pub queued: u64,
}

/// The DRAM subsystem.
#[derive(Debug)]
pub struct Dram {
    /// Core index each controller is attached to (spread over the mesh).
    ctrl_cores: Vec<usize>,
    /// `slots[ctrl * DRAM_EPOCH_SLOTS + epoch % SLOTS]` packs
    /// `(epoch_tag << 32) | line_count`.
    slots: Vec<AtomicU64>,
    latency: u64,
    service: u64,
    /// Lines one controller can stream per epoch.
    lines_per_epoch: u64,
    accesses: AtomicU64,
}

impl Dram {
    /// Builds the DRAM subsystem for `config`.
    pub fn new(config: &SimConfig) -> Self {
        let n = config.dram.controllers.min(config.num_cores);
        let stride = config.num_cores / n;
        let service = config.dram_service_cycles();
        Dram {
            ctrl_cores: (0..n).map(|i| i * stride).collect(),
            slots: (0..n * DRAM_EPOCH_SLOTS).map(|_| AtomicU64::new(0)).collect(),
            latency: config.dram_latency_cycles(),
            service,
            lines_per_epoch: (DRAM_EPOCH_CYCLES / service).max(1),
            accesses: AtomicU64::new(0),
        }
    }

    /// Which controller serves `line`, and the core it is attached to.
    pub fn controller_for(&self, line: u64) -> (usize, usize) {
        let idx = (line.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.ctrl_cores.len();
        (idx, self.ctrl_cores[idx])
    }

    /// Services one line access arriving at the controller at cycle
    /// `arrive`; returns the cycle data is available at the controller.
    /// Epoch overload models the 5 GBps bandwidth limit.
    pub fn access(&self, ctrl: usize, arrive: u64) -> u64 {
        self.access_timed(ctrl, arrive).ready
    }

    /// As [`Dram::access`], additionally reporting the queueing delay the
    /// access paid (for tracing).
    pub fn access_timed(&self, ctrl: usize, arrive: u64) -> DramAccess {
        self.accesses.fetch_add(1, Ordering::Relaxed);
        let epoch = arrive / DRAM_EPOCH_CYCLES;
        let cell = &self.slots[ctrl * DRAM_EPOCH_SLOTS + (epoch as usize % DRAM_EPOCH_SLOTS)];
        let this_tag = epoch & 0xFFFF_FFFF;
        let mut cur = cell.load(Ordering::Relaxed);
        let occupied = loop {
            let (tag, count) = (cur >> 32, cur & 0xFFFF_FFFF);
            let (new, occupied) = if tag == this_tag {
                ((this_tag << 32) | (count + 1), count)
            } else {
                ((this_tag << 32) | 1, 0)
            };
            match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break occupied,
                Err(actual) => cur = actual,
            }
        };
        let over_lines = (occupied + 1).saturating_sub(self.lines_per_epoch);
        let delay = (over_lines * self.service).min(MAX_QUEUE_DELAY);
        DramAccess {
            ready: arrive + delay + self.latency,
            queued: delay,
        }
    }

    /// Total line transfers so far.
    pub fn total_accesses(&self) -> u64 {
        self.accesses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(&SimConfig::default())
    }

    #[test]
    fn latency_without_queueing() {
        let d = dram();
        assert_eq!(d.access(0, 1000), 1100);
    }

    #[test]
    fn epoch_capacity_matches_bandwidth() {
        let d = dram();
        // 512 cycles / 13 cycles-per-line = 39 lines per epoch.
        assert_eq!(d.lines_per_epoch, 39);
    }

    #[test]
    fn overload_queues_with_service_granularity() {
        let d = dram();
        let mut last = 0;
        for _ in 0..45 {
            last = d.access(0, 0);
        }
        // 45 lines into a 39-line epoch: 6 lines of overload.
        assert_eq!(last, 6 * 13 + 100);
        assert_eq!(d.total_accesses(), 45);
    }

    #[test]
    fn controllers_are_independent() {
        let d = dram();
        for _ in 0..100 {
            d.access(0, 0);
        }
        assert_eq!(d.access(1, 0), 100, "other controller unqueued");
    }

    #[test]
    fn skewed_clocks_do_not_poison_controllers() {
        let d = dram();
        for _ in 0..100 {
            d.access(0, 1_000_000);
        }
        assert_eq!(d.access(0, 0), 100, "earlier epoch unaffected");
    }

    #[test]
    fn queue_delay_is_capped() {
        let d = dram();
        for _ in 0..100_000 {
            d.access(0, 0);
        }
        assert!(d.access(0, 0) <= 4 * DRAM_EPOCH_CYCLES + 100);
    }

    #[test]
    fn controller_hash_covers_all_controllers() {
        let d = dram();
        let mut seen = std::collections::HashSet::new();
        for line in 0..10_000u64 {
            seen.insert(d.controller_for(line).0);
        }
        assert_eq!(seen.len(), 8, "all 8 controllers used");
    }
}
