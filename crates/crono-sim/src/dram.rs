//! Off-chip memory: 8 controllers with finite per-controller bandwidth
//! (Table II: 5 GBps each, 100 ns latency). As with the NoC, queueing is
//! modeled with skew-tolerant epoch utilization counters rather than
//! absolute reservations (see `noc` module docs): a line access pays
//! queueing delay when its controller's epoch already holds more line
//! transfers than the bandwidth allows.

use crate::config::SimConfig;
use crate::fault::DeadDramCtrl;
use std::sync::atomic::{AtomicU64, Ordering};

/// Simulated cycles per DRAM accounting epoch.
pub const DRAM_EPOCH_CYCLES: u64 = 512;
/// Ring slots per controller.
pub const DRAM_EPOCH_SLOTS: usize = 32;
/// Queueing delay cap (bounds pathological overload).
const MAX_QUEUE_DELAY: u64 = 4 * DRAM_EPOCH_CYCLES;
/// Cycles after a controller death during which re-homed accesses pay
/// the one-time migration surcharge (the survivor must pull the line
/// image off the dead controller's array while serving the request).
pub const MIGRATION_WINDOW: u64 = 8 * DRAM_EPOCH_CYCLES;

/// Outcome of one DRAM line access.
#[derive(Debug, Clone, Copy)]
pub struct DramAccess {
    /// Cycle the data is available at the controller.
    pub ready: u64,
    /// Bandwidth-queueing delay paid (0 when the epoch had headroom).
    pub queued: u64,
}

/// The DRAM subsystem.
#[derive(Debug)]
pub struct Dram {
    /// Core index each controller is attached to (spread over the mesh).
    ctrl_cores: Vec<usize>,
    /// `slots[ctrl * DRAM_EPOCH_SLOTS + epoch % SLOTS]` packs
    /// `(epoch_tag << 32) | line_count`.
    slots: Vec<AtomicU64>,
    latency: u64,
    service: u64,
    /// Lines one controller can stream per epoch.
    lines_per_epoch: u64,
    accesses: AtomicU64,
    /// Permanently failed controller, if armed (active once an access's
    /// cycle reaches its `at_cycle`).
    dead_ctrl: Option<DeadDramCtrl>,
}

impl Dram {
    /// Builds the DRAM subsystem for `config`.
    pub fn new(config: &SimConfig) -> Self {
        let n = config.dram.controllers.min(config.num_cores);
        let stride = config.num_cores / n;
        let service = config.dram_service_cycles();
        Dram {
            ctrl_cores: (0..n).map(|i| i * stride).collect(),
            slots: (0..n * DRAM_EPOCH_SLOTS).map(|_| AtomicU64::new(0)).collect(),
            latency: config.dram_latency_cycles(),
            service,
            lines_per_epoch: (DRAM_EPOCH_CYCLES / service).max(1),
            accesses: AtomicU64::new(0),
            dead_ctrl: None,
        }
    }

    /// Arms (or clears) the permanent dead-controller fault. Call before
    /// the subsystem is shared between threads.
    ///
    /// # Panics
    ///
    /// Panics if the controller index is out of range or it is the only
    /// controller (nothing to re-home onto).
    pub fn set_dead_ctrl(&mut self, dead: Option<DeadDramCtrl>) {
        if let Some(dc) = dead {
            assert!(
                dc.ctrl < self.ctrl_cores.len(),
                "dead DRAM controller {} out of range (machine has {})",
                dc.ctrl,
                self.ctrl_cores.len()
            );
            assert!(
                self.ctrl_cores.len() > 1,
                "cannot kill the only DRAM controller"
            );
        }
        self.dead_ctrl = dead;
    }

    /// Number of controllers.
    pub fn controllers(&self) -> usize {
        self.ctrl_cores.len()
    }

    /// Which controller serves `line`, and the core it is attached to
    /// (the healthy address map, ignoring any dead controller).
    pub fn controller_for(&self, line: u64) -> (usize, usize) {
        let idx = (line.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.ctrl_cores.len();
        (idx, self.ctrl_cores[idx])
    }

    /// Which controller serves `line` for an access at cycle `cycle`:
    /// the natural hash owner, or — when that owner is dead by `cycle` —
    /// a survivor chosen by a second pure hash of the line (so the dead
    /// controller's ranges spread evenly over the survivors). Returns
    /// `(ctrl, core, rehomed)`.
    pub fn controller_for_at(&self, line: u64, cycle: u64) -> (usize, usize, bool) {
        let (idx, core) = self.controller_for(line);
        match self.dead_ctrl {
            Some(dc) if cycle >= dc.at_cycle && idx == dc.ctrl => {
                let n = self.ctrl_cores.len() - 1;
                let h = (line.wrapping_mul(0xD1B5_4A32_D192_ED03) >> 32) as usize % n;
                let survivor = if h >= dc.ctrl { h + 1 } else { h };
                (survivor, self.ctrl_cores[survivor], true)
            }
            _ => (idx, core, false),
        }
    }

    /// Migration surcharge in cycles for an access at cycle `cycle`:
    /// re-homed accesses inside [`MIGRATION_WINDOW`] after the
    /// controller death pay one extra DRAM latency (the survivor pulls
    /// the migrating line image first); afterwards the line lives on the
    /// survivor and only the permanent queueing pressure remains.
    pub fn migration_surcharge(&self, rehomed: bool, cycle: u64) -> u64 {
        match self.dead_ctrl {
            Some(dc) if rehomed && cycle < dc.at_cycle.saturating_add(MIGRATION_WINDOW) => {
                self.latency
            }
            _ => 0,
        }
    }

    /// Services one line access arriving at the controller at cycle
    /// `arrive`; returns the cycle data is available at the controller.
    /// Epoch overload models the 5 GBps bandwidth limit.
    pub fn access(&self, ctrl: usize, arrive: u64) -> u64 {
        self.access_timed(ctrl, arrive).ready
    }

    /// As [`Dram::access`], additionally reporting the queueing delay the
    /// access paid (for tracing).
    pub fn access_timed(&self, ctrl: usize, arrive: u64) -> DramAccess {
        self.accesses.fetch_add(1, Ordering::Relaxed);
        let epoch = arrive / DRAM_EPOCH_CYCLES;
        let cell = &self.slots[ctrl * DRAM_EPOCH_SLOTS + (epoch as usize % DRAM_EPOCH_SLOTS)];
        let this_tag = epoch & 0xFFFF_FFFF;
        let mut cur = cell.load(Ordering::Relaxed);
        let occupied = loop {
            let (tag, count) = (cur >> 32, cur & 0xFFFF_FFFF);
            let (new, occupied) = if tag == this_tag {
                ((this_tag << 32) | (count + 1), count)
            } else {
                ((this_tag << 32) | 1, 0)
            };
            match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break occupied,
                Err(actual) => cur = actual,
            }
        };
        let over_lines = (occupied + 1).saturating_sub(self.lines_per_epoch);
        let delay = (over_lines * self.service).min(MAX_QUEUE_DELAY);
        DramAccess {
            ready: arrive + delay + self.latency,
            queued: delay,
        }
    }

    /// Total line transfers so far.
    pub fn total_accesses(&self) -> u64 {
        self.accesses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(&SimConfig::default())
    }

    #[test]
    fn latency_without_queueing() {
        let d = dram();
        assert_eq!(d.access(0, 1000), 1100);
    }

    #[test]
    fn epoch_capacity_matches_bandwidth() {
        let d = dram();
        // 512 cycles / 13 cycles-per-line = 39 lines per epoch.
        assert_eq!(d.lines_per_epoch, 39);
    }

    #[test]
    fn overload_queues_with_service_granularity() {
        let d = dram();
        let mut last = 0;
        for _ in 0..45 {
            last = d.access(0, 0);
        }
        // 45 lines into a 39-line epoch: 6 lines of overload.
        assert_eq!(last, 6 * 13 + 100);
        assert_eq!(d.total_accesses(), 45);
    }

    #[test]
    fn controllers_are_independent() {
        let d = dram();
        for _ in 0..100 {
            d.access(0, 0);
        }
        assert_eq!(d.access(1, 0), 100, "other controller unqueued");
    }

    #[test]
    fn skewed_clocks_do_not_poison_controllers() {
        let d = dram();
        for _ in 0..100 {
            d.access(0, 1_000_000);
        }
        assert_eq!(d.access(0, 0), 100, "earlier epoch unaffected");
    }

    #[test]
    fn queue_delay_is_capped() {
        let d = dram();
        for _ in 0..100_000 {
            d.access(0, 0);
        }
        assert!(d.access(0, 0) <= 4 * DRAM_EPOCH_CYCLES + 100);
    }

    #[test]
    fn controller_hash_covers_all_controllers() {
        let d = dram();
        let mut seen = std::collections::HashSet::new();
        for line in 0..10_000u64 {
            seen.insert(d.controller_for(line).0);
        }
        assert_eq!(seen.len(), 8, "all 8 controllers used");
    }

    #[test]
    fn dead_controller_rehomes_to_survivors() {
        let mut d = dram();
        d.set_dead_ctrl(Some(DeadDramCtrl {
            ctrl: 3,
            at_cycle: 10_000,
        }));
        let mut rehomed_seen = std::collections::HashSet::new();
        let mut rehomed_count = 0u64;
        for line in 0..10_000u64 {
            let (natural, _) = d.controller_for(line);
            let (before, _, r_before) = d.controller_for_at(line, 0);
            assert_eq!(before, natural, "before death the map is unchanged");
            assert!(!r_before);
            let (after, _, r_after) = d.controller_for_at(line, 10_000);
            assert_ne!(after, 3, "no access lands on the dead controller");
            if natural == 3 {
                assert!(r_after);
                rehomed_seen.insert(after);
                rehomed_count += 1;
            } else {
                assert_eq!(after, natural, "survivor-owned lines stay put");
                assert!(!r_after);
            }
        }
        assert!(rehomed_count > 500, "controller 3 owned ~1/8 of lines");
        assert!(
            rehomed_seen.len() == 7,
            "re-homed lines spread over all 7 survivors: {rehomed_seen:?}"
        );
    }

    #[test]
    fn rehoming_is_deterministic() {
        let mk = || {
            let mut d = dram();
            d.set_dead_ctrl(Some(DeadDramCtrl { ctrl: 0, at_cycle: 5 }));
            d
        };
        let (a, b) = (mk(), mk());
        for line in 0..2_000u64 {
            assert_eq!(a.controller_for_at(line, 99), b.controller_for_at(line, 99));
        }
    }

    #[test]
    fn migration_surcharge_is_bounded_to_the_window() {
        let mut d = dram();
        d.set_dead_ctrl(Some(DeadDramCtrl {
            ctrl: 1,
            at_cycle: 1_000,
        }));
        assert_eq!(d.migration_surcharge(true, 1_000), 100);
        assert_eq!(d.migration_surcharge(true, 1_000 + MIGRATION_WINDOW - 1), 100);
        assert_eq!(d.migration_surcharge(true, 1_000 + MIGRATION_WINDOW), 0);
        assert_eq!(d.migration_surcharge(false, 1_000), 0, "natural accesses free");
        let healthy = dram();
        assert_eq!(healthy.migration_surcharge(true, 0), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dead_controller_index_is_validated() {
        dram().set_dead_ctrl(Some(DeadDramCtrl {
            ctrl: 8,
            at_cycle: 0,
        }));
    }
}
