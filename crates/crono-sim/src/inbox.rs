//! Asynchronous coherence-message delivery between cores.
//!
//! The home directory updates its own state synchronously, but the
//! *holder's* private L1 belongs to another simulated thread. Messages are
//! therefore queued and drained lazily by the owning thread at its next
//! memory access — the same lax synchronization Graphite uses for cross-
//! core state.
//!
//! Precise invalidations go to per-core inboxes; ACKWise broadcast
//! invalidations go to a shared append-only log every core scans from its
//! own cursor (pushing 255 messages per broadcast would dominate run
//! time).

use crono_runtime::{CachePadded, Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// One coherence message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoherenceMsg {
    /// The affected cache line.
    pub line: u64,
    /// `true` = downgrade (M/E → S), `false` = invalidate.
    pub downgrade: bool,
}

/// Per-core inboxes plus the broadcast log.
#[derive(Debug)]
pub struct Inboxes {
    queues: Vec<Mutex<Vec<CoherenceMsg>>>,
    pending: Vec<CachePadded<AtomicUsize>>,
    /// Per-core "something may be waiting" flags, armed by senders on
    /// every push (including broadcasts) and cleared by the owning core
    /// in [`Inboxes::take_notified`]. The per-memory-op probe then reads
    /// one core-private padded flag with `Relaxed` ordering instead of
    /// hammering the globally shared `broadcast_len` line — see
    /// `take_notified` for why `Relaxed` is sound here.
    notify: Vec<CachePadded<AtomicBool>>,
    broadcast_log: RwLock<Vec<u64>>,
    broadcast_len: AtomicU64,
}

impl Inboxes {
    /// Creates inboxes for `num_cores` cores.
    pub fn new(num_cores: usize) -> Self {
        Inboxes {
            queues: (0..num_cores).map(|_| Mutex::new(Vec::new())).collect(),
            pending: (0..num_cores)
                .map(|_| CachePadded::new(AtomicUsize::new(0)))
                .collect(),
            notify: (0..num_cores)
                .map(|_| CachePadded::new(AtomicBool::new(false)))
                .collect(),
            broadcast_log: RwLock::new(Vec::new()),
            broadcast_len: AtomicU64::new(0),
        }
    }

    /// Queues `msg` for `core`.
    pub fn push(&self, core: usize, msg: CoherenceMsg) {
        self.queues[core].lock().push(msg);
        self.pending[core].fetch_add(1, Ordering::Release);
        self.notify[core].store(true, Ordering::Relaxed);
    }

    /// Records a broadcast invalidation of `line` (every core must drop
    /// it).
    pub fn push_broadcast(&self, line: u64) {
        {
            let mut log = self.broadcast_log.write();
            log.push(line);
            self.broadcast_len
                .store(log.len() as u64, Ordering::Release);
        }
        for flag in &self.notify {
            flag.store(true, Ordering::Relaxed);
        }
    }

    /// Checks and clears `core`'s notification flag: the once-per-memory-
    /// op probe. Only the owning core may call this.
    ///
    /// `Relaxed` is sound because the flag is advisory: a false positive
    /// costs one empty drain, and a racy clear can only *defer* a
    /// message to the next arm — acceptable under lax synchronization,
    /// where cross-core delivery timing is already best-effort (the
    /// messages carry timing state, never data). In traced mode the
    /// sequencer fully serializes threads, so arm/clear/drain never
    /// overlap and delivery points are exact and deterministic.
    #[inline]
    pub fn take_notified(&self, core: usize) -> bool {
        if self.notify[core].load(Ordering::Relaxed) {
            self.notify[core].store(false, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Exact check: does `core` have anything to drain beyond
    /// `broadcast_cursor`? Superseded on the hot path by the advisory
    /// [`Inboxes::take_notified`] flag; kept as the precise oracle the
    /// tests compare against.
    #[cfg_attr(not(test), allow(dead_code))]
    #[inline]
    pub fn has_pending(&self, core: usize, broadcast_cursor: u64) -> bool {
        self.pending[core].load(Ordering::Acquire) != 0
            || self.broadcast_len.load(Ordering::Acquire) > broadcast_cursor
    }

    /// Takes all queued precise messages for `core`.
    pub fn drain(&self, core: usize) -> Vec<CoherenceMsg> {
        if self.pending[core].load(Ordering::Acquire) == 0 {
            return Vec::new();
        }
        let mut q = self.queues[core].lock();
        let msgs = std::mem::take(&mut *q);
        self.pending[core].store(0, Ordering::Release);
        msgs
    }

    /// Calls `f` for every broadcast line recorded after
    /// `broadcast_cursor`; returns the new cursor.
    pub fn drain_broadcasts(&self, broadcast_cursor: u64, mut f: impl FnMut(u64)) -> u64 {
        let len = self.broadcast_len.load(Ordering::Acquire);
        if len <= broadcast_cursor {
            return broadcast_cursor;
        }
        let log = self.broadcast_log.read();
        for &line in &log[broadcast_cursor as usize..len as usize] {
            f(line);
        }
        len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_drain() {
        let ib = Inboxes::new(2);
        assert!(!ib.has_pending(0, 0));
        ib.push(
            0,
            CoherenceMsg {
                line: 7,
                downgrade: false,
            },
        );
        assert!(ib.has_pending(0, 0));
        assert!(!ib.has_pending(1, 0));
        let msgs = ib.drain(0);
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].line, 7);
        assert!(!ib.has_pending(0, 0));
        assert!(ib.drain(0).is_empty());
    }

    #[test]
    fn broadcasts_visible_to_all_cursors() {
        let ib = Inboxes::new(4);
        ib.push_broadcast(10);
        ib.push_broadcast(11);
        let mut seen = Vec::new();
        let cur = ib.drain_broadcasts(0, |l| seen.push(l));
        assert_eq!(seen, vec![10, 11]);
        assert_eq!(cur, 2);
        // Second drain from the new cursor sees nothing.
        let cur2 = ib.drain_broadcasts(cur, |_| panic!("nothing new"));
        assert_eq!(cur2, 2);
        // A fresh core (cursor 0) still sees both.
        assert!(ib.has_pending(3, 0));
        let mut seen2 = Vec::new();
        ib.drain_broadcasts(0, |l| seen2.push(l));
        assert_eq!(seen2, vec![10, 11]);
    }

    #[test]
    fn notify_flag_arms_on_push_and_broadcast() {
        let ib = Inboxes::new(3);
        assert!(!ib.take_notified(0));
        ib.push(
            1,
            CoherenceMsg {
                line: 3,
                downgrade: true,
            },
        );
        assert!(!ib.take_notified(0), "precise push targets one core");
        assert!(ib.take_notified(1));
        assert!(!ib.take_notified(1), "cleared by the take");
        ib.push_broadcast(9);
        for core in 0..3 {
            assert!(ib.take_notified(core), "broadcast arms every core");
        }
    }

    #[test]
    fn concurrent_pushes_are_not_lost() {
        let ib = Inboxes::new(1);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..100 {
                        ib.push(
                            0,
                            CoherenceMsg {
                                line: i,
                                downgrade: false,
                            },
                        );
                    }
                });
            }
        });
        assert_eq!(ib.drain(0).len(), 400);
    }
}
