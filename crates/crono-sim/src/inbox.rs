//! Asynchronous coherence-message delivery between cores.
//!
//! The home directory updates its own state synchronously, but the
//! *holder's* private L1 belongs to another simulated thread. Messages are
//! therefore queued and drained lazily by the owning thread at its next
//! memory access — the same lax synchronization Graphite uses for cross-
//! core state.
//!
//! Precise invalidations go to per-core inboxes; ACKWise broadcast
//! invalidations go to a shared append-only log every core scans from its
//! own cursor (pushing 255 messages per broadcast would dominate run
//! time).

use crono_runtime::{CachePadded, Mutex, RwLock};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One coherence message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoherenceMsg {
    /// The affected cache line.
    pub line: u64,
    /// `true` = downgrade (M/E → S), `false` = invalidate.
    pub downgrade: bool,
}

/// Per-core inboxes plus the broadcast log.
#[derive(Debug)]
pub struct Inboxes {
    queues: Vec<Mutex<Vec<CoherenceMsg>>>,
    pending: Vec<CachePadded<AtomicUsize>>,
    broadcast_log: RwLock<Vec<u64>>,
    broadcast_len: AtomicU64,
}

impl Inboxes {
    /// Creates inboxes for `num_cores` cores.
    pub fn new(num_cores: usize) -> Self {
        Inboxes {
            queues: (0..num_cores).map(|_| Mutex::new(Vec::new())).collect(),
            pending: (0..num_cores)
                .map(|_| CachePadded::new(AtomicUsize::new(0)))
                .collect(),
            broadcast_log: RwLock::new(Vec::new()),
            broadcast_len: AtomicU64::new(0),
        }
    }

    /// Queues `msg` for `core`.
    pub fn push(&self, core: usize, msg: CoherenceMsg) {
        self.queues[core].lock().push(msg);
        self.pending[core].fetch_add(1, Ordering::Release);
    }

    /// Records a broadcast invalidation of `line` (every core must drop
    /// it).
    pub fn push_broadcast(&self, line: u64) {
        let mut log = self.broadcast_log.write();
        log.push(line);
        self.broadcast_len
            .store(log.len() as u64, Ordering::Release);
    }

    /// Cheap check: does `core` have anything to drain beyond
    /// `broadcast_cursor`?
    #[inline]
    pub fn has_pending(&self, core: usize, broadcast_cursor: u64) -> bool {
        self.pending[core].load(Ordering::Acquire) != 0
            || self.broadcast_len.load(Ordering::Acquire) > broadcast_cursor
    }

    /// Takes all queued precise messages for `core`.
    pub fn drain(&self, core: usize) -> Vec<CoherenceMsg> {
        if self.pending[core].load(Ordering::Acquire) == 0 {
            return Vec::new();
        }
        let mut q = self.queues[core].lock();
        let msgs = std::mem::take(&mut *q);
        self.pending[core].store(0, Ordering::Release);
        msgs
    }

    /// Calls `f` for every broadcast line recorded after
    /// `broadcast_cursor`; returns the new cursor.
    pub fn drain_broadcasts(&self, broadcast_cursor: u64, mut f: impl FnMut(u64)) -> u64 {
        let len = self.broadcast_len.load(Ordering::Acquire);
        if len <= broadcast_cursor {
            return broadcast_cursor;
        }
        let log = self.broadcast_log.read();
        for &line in &log[broadcast_cursor as usize..len as usize] {
            f(line);
        }
        len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_drain() {
        let ib = Inboxes::new(2);
        assert!(!ib.has_pending(0, 0));
        ib.push(
            0,
            CoherenceMsg {
                line: 7,
                downgrade: false,
            },
        );
        assert!(ib.has_pending(0, 0));
        assert!(!ib.has_pending(1, 0));
        let msgs = ib.drain(0);
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].line, 7);
        assert!(!ib.has_pending(0, 0));
        assert!(ib.drain(0).is_empty());
    }

    #[test]
    fn broadcasts_visible_to_all_cursors() {
        let ib = Inboxes::new(4);
        ib.push_broadcast(10);
        ib.push_broadcast(11);
        let mut seen = Vec::new();
        let cur = ib.drain_broadcasts(0, |l| seen.push(l));
        assert_eq!(seen, vec![10, 11]);
        assert_eq!(cur, 2);
        // Second drain from the new cursor sees nothing.
        let cur2 = ib.drain_broadcasts(cur, |_| panic!("nothing new"));
        assert_eq!(cur2, 2);
        // A fresh core (cursor 0) still sees both.
        assert!(ib.has_pending(3, 0));
        let mut seen2 = Vec::new();
        ib.drain_broadcasts(0, |l| seen2.push(l));
        assert_eq!(seen2, vec![10, 11]);
    }

    #[test]
    fn concurrent_pushes_are_not_lost() {
        let ib = Inboxes::new(1);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..100 {
                        ib.push(
                            0,
                            CoherenceMsg {
                                line: i,
                                downgrade: false,
                            },
                        );
                    }
                });
            }
        });
        assert_eq!(ib.drain(0).len(), 400);
    }
}
