//! The simulated backend: Graphite-style direct execution.
//!
//! Each simulated thread runs on its own host thread, owns its private L1
//! model and a local cycle clock, and interacts with shared state (L2
//! slices with the directory, the mesh, DRAM, locks, barriers) through
//! fine-grain locks and atomics. Thread clocks advance independently and
//! meet at synchronization points — the same *lax synchronization* the
//! Graphite paper describes, which is what lets a 256-core simulation run
//! on a laptop.
//!
//! With [`SimMachine::with_tracing`] the run additionally records a
//! `crono-trace` event stream (algorithm phases, lock and barrier waits,
//! L1 miss classes, directory invalidations, NoC flit traffic, DRAM
//! queueing) timestamped in simulated cycles — and switches the lax
//! scheduling for the deterministic [`crate::sequencer::Sequencer`], so
//! the same seed and configuration always produce a byte-identical trace.

use crate::config::SimConfig;
use crate::dram::Dram;
use crate::fault::{EccOutcome, FaultPlan};
use crate::inbox::{CoherenceMsg, Inboxes};
use crate::l1::{L1Cache, L1Lookup, L1State, MissClass};
use crate::l2::{home_of, L2Slice};
use crate::noc::{Mesh, Traversal};
use crate::sequencer::Sequencer;
use crono_runtime::{
    panic_payload, Addr, Breakdown, CancelCause, EnergyCounters, FaultCounters, LockSet, Machine,
    MissStats, RunError, RunGate, RunOptions, RunOutcome, RunReport, ThreadCtx, ThreadReport,
};
use crono_runtime::Mutex;
use crono_trace::{ThreadTracer, TraceConfig};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The Graphite-style simulated multicore backend (paper §IV-B).
///
/// # Examples
///
/// ```
/// use crono_sim::{SimConfig, SimMachine};
/// use crono_runtime::{Machine, SharedU64s};
///
/// let machine = SimMachine::new(SimConfig::tiny(16), 4);
/// let counters = SharedU64s::new(1);
/// let outcome = machine.run(|ctx| {
///     counters.fetch_add(ctx, 0, 1);
/// });
/// assert_eq!(counters.get_plain(0), 4);
/// assert!(outcome.report.completion > 0);
/// ```
#[derive(Debug, Clone)]
pub struct SimMachine {
    config: SimConfig,
    threads: usize,
    trace: Option<TraceConfig>,
    faults: Option<FaultPlan>,
    /// Run under the deterministic sequencer even without a tracer
    /// attached (fault-injection experiments need reproducible runs but
    /// not necessarily traces).
    deterministic: bool,
}

impl SimMachine {
    /// Creates a simulated machine running `threads` threads on
    /// `config.num_cores` cores (threads are spread evenly over the mesh).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`, `threads > config.num_cores`, or the
    /// configuration is invalid.
    pub fn new(config: SimConfig, threads: usize) -> Self {
        config.validate();
        assert!(threads > 0, "need at least one thread");
        assert!(
            threads <= config.num_cores,
            "cannot run {threads} threads on {} cores",
            config.num_cores
        );
        SimMachine {
            config,
            threads,
            trace: None,
            faults: None,
            deterministic: false,
        }
    }

    /// As [`SimMachine::new`], with per-thread event tracing enabled.
    /// Each [`ThreadReport`](crono_runtime::ThreadReport) then carries a
    /// trace timestamped in simulated cycles, and the run executes under
    /// the deterministic sequencer: shared simulator state is touched in
    /// `(clock, thread id)` order, so identical inputs yield identical
    /// traces — at the cost of serializing the host threads.
    ///
    /// # Panics
    ///
    /// Same conditions as [`SimMachine::new`].
    pub fn with_tracing(config: SimConfig, threads: usize, trace: TraceConfig) -> Self {
        let mut m = Self::new(config, threads);
        m.trace = Some(trace);
        m
    }

    /// As [`SimMachine::new`], with deterministic fault injection
    /// enabled: the run executes under the deterministic sequencer (so
    /// identical inputs in a fresh process give byte-identical counters)
    /// and `plan` decides every NoC, DRAM-ECC, and core-stall fault.
    /// Injected fault counts land in
    /// [`RunReport::faults`](crono_runtime::RunReport::faults).
    ///
    /// # Panics
    ///
    /// Same conditions as [`SimMachine::new`], plus an invalid `plan`
    /// (see [`FaultPlan::validate`]).
    pub fn with_faults(config: SimConfig, threads: usize, plan: FaultPlan) -> Self {
        Self::new(config, threads).fault_plan(plan)
    }

    /// Attaches a fault plan to this machine (composable with
    /// [`SimMachine::with_tracing`]); also forces deterministic
    /// sequenced execution, like [`SimMachine::with_faults`].
    ///
    /// # Panics
    ///
    /// Panics if `plan` is invalid (see [`FaultPlan::validate`]).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        if let Err(e) = plan.validate() {
            panic!("invalid fault plan: {e}");
        }
        if let Some(dl) = plan.dead_link {
            assert!(
                dl.router < self.config.num_cores,
                "dead link router {} out of range for {} cores",
                dl.router,
                self.config.num_cores
            );
        }
        if let Some(dc) = plan.dead_core {
            assert!(
                dc.core < self.config.num_cores,
                "dead core {} out of range for {} cores",
                dc.core,
                self.config.num_cores
            );
        }
        self.faults = Some(plan);
        self.deterministic = true;
        self
    }

    /// Forces deterministic sequenced execution even without a tracer
    /// or fault plan: shared simulator state is touched in
    /// `(clock, thread id)` order, so identical inputs give
    /// byte-identical counters — at the cost of serializing the host
    /// threads. The ablation sweeps use this for the schedule-sensitive
    /// work-stealing variants, so `crono ablation` output is
    /// reproducible across invocations.
    pub fn deterministic(mut self) -> Self {
        self.deterministic = true;
        self
    }

    /// The architectural configuration in force.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }
}

impl Machine for SimMachine {
    type Ctx = SimCtx;

    fn num_threads(&self) -> usize {
        self.threads
    }

    fn backend_name(&self) -> &'static str {
        "sim"
    }

    fn try_run_with<F, R>(&self, opts: &RunOptions, body: F) -> Result<RunOutcome<R>, RunError>
    where
        F: Fn(&mut Self::Ctx) -> R + Sync,
        R: Send,
    {
        let shared = Arc::new(SimShared::new(
            &self.config,
            self.threads,
            self.trace.is_some() || self.deterministic,
            self.faults.as_ref(),
        ));
        let start = Instant::now();
        type Slot<R> = (WorkerExit<R>, ThreadReport, MissStats, EnergyCounters, FaultCounters);
        let mut results: Vec<Option<Slot<R>>> = Vec::new();
        results.resize_with(self.threads, || None);
        std::thread::scope(|scope| {
            if let Some(timeout) = opts.timeout {
                let shared = Arc::clone(&shared);
                scope.spawn(move || {
                    shared.gate.watchdog(timeout);
                    // A cancelled deterministic run must also tear down
                    // the sequencer, or parked threads never wake.
                    if shared.gate.is_cancelled() {
                        if let Some(seq) = &shared.seq {
                            seq.abort();
                        }
                    }
                });
            }
            let mut handles = Vec::with_capacity(self.threads);
            for tid in 0..self.threads {
                let body = &body;
                let shared = Arc::clone(&shared);
                let trace = self.trace;
                let faults = self.faults;
                handles.push(scope.spawn(move || {
                    let mut ctx = SimCtx::new(Arc::clone(&shared), tid, trace, faults);
                    // Contain panics: cancel the gate (releases barrier
                    // waiters) and abort the sequencer (releases parked
                    // turn-takers), then let survivors drain. The context
                    // outlives the closure, so the thread's partial
                    // report survives its panic.
                    let r = match catch_unwind(AssertUnwindSafe(|| body(&mut ctx))) {
                        Ok(v) => WorkerExit::Finished(v),
                        // A permanently dead core leaving at a barrier is
                        // a graceful exit, not a failure: the gate was
                        // already re-sized by `depart()`, and `finish()`
                        // below completes any pending sequencer rejoin —
                        // so neither the gate nor the sequencer is torn
                        // down, and the survivors keep running.
                        Err(p) if p.downcast_ref::<CoreDeparted>().is_some() => {
                            WorkerExit::Departed
                        }
                        Err(p) => {
                            shared.gate.cancel(CancelCause::WorkerPanic);
                            if let Some(seq) = &shared.seq {
                                seq.abort();
                            }
                            WorkerExit::Panicked(panic_payload(p))
                        }
                    };
                    let (report, misses, energy, faults) = ctx.finish();
                    (r, report, misses, energy, faults)
                }));
            }
            for (tid, h) in handles.into_iter().enumerate() {
                // The worker caught its own panic; join only fails if the
                // panic payload itself panicked while being dropped.
                results[tid] = Some(h.join().expect("simulated thread vanished"));
            }
            shared.gate.finish();
        });
        let wall = start.elapsed();
        let mut per_thread = Vec::with_capacity(self.threads);
        let mut threads = Vec::with_capacity(self.threads);
        let mut misses = MissStats::default();
        let mut energy = EnergyCounters::default();
        let mut faults = FaultCounters::default();
        let mut first_panic: Option<(usize, String)> = None;
        for (tid, slot) in results.into_iter().enumerate() {
            let (r, t, m, e, fc) = slot.expect("every thread joined");
            threads.push(t);
            misses.merge(&m);
            energy.merge(&e);
            faults.merge(&fc);
            match r {
                WorkerExit::Finished(v) => per_thread.push(v),
                WorkerExit::Departed => {}
                WorkerExit::Panicked(payload) if first_panic.is_none() => {
                    first_panic = Some((tid, payload));
                }
                WorkerExit::Panicked(_) => {}
            }
        }
        let completion = threads.iter().map(|t| t.finish_time).max().unwrap_or(0);
        let report = RunReport {
            backend: self.backend_name(),
            wall,
            completion,
            threads,
            misses,
            energy,
            faults,
        };
        // An unroutable message also unwinds its worker, so check the
        // typed route error before the generic panic mapping.
        if let Some((tid, detail)) = shared.unroutable.lock().take() {
            return Err(RunError::Unroutable { tid, detail, report });
        }
        if let Some((tid, payload)) = first_panic {
            return Err(RunError::WorkerPanicked { tid, payload, report });
        }
        if shared.gate.cause() == Some(CancelCause::Timeout) {
            return Err(RunError::TimedOut {
                timeout: opts.timeout.unwrap_or_default(),
                report,
            });
        }
        Ok(RunOutcome { per_thread, report })
    }
}

/// State shared by all simulated threads of one run.
#[derive(Debug)]
struct SimShared {
    config: SimConfig,
    mesh: Mesh,
    dram: Dram,
    shards: Vec<Mutex<L2Slice>>,
    inboxes: Inboxes,
    /// Run barrier + cancellation token + watchdog hook: releases its
    /// waiters when a worker panics or the run times out.
    gate: RunGate,
    /// Sense-rotating barrier clock slots (see `SimCtx::barrier`).
    barrier_slots: [AtomicU64; 4],
    /// Core index each thread is pinned to.
    core_map: Vec<usize>,
    /// Deterministic turn-taking for traced/fault runs (`None` ⇒ lax
    /// mode).
    seq: Option<Sequencer>,
    /// First unroutable message of the run — `(tid, route error)` — set
    /// by the worker that hit a dead link its routing policy cannot
    /// avoid, and mapped to [`RunError::Unroutable`] after the join.
    unroutable: Mutex<Option<(usize, String)>>,
}

impl SimShared {
    fn new(
        config: &SimConfig,
        threads: usize,
        sequenced: bool,
        faults: Option<&FaultPlan>,
    ) -> Self {
        let stride = config.num_cores / threads;
        let mut mesh = Mesh::new(config.num_cores, config.mesh);
        let mut dram = Dram::new(config);
        if let Some(plan) = faults {
            mesh.set_dead_link(plan.dead_link);
            if let Some(dc) = plan.dead_dram_ctrl {
                dram.set_dead_ctrl(Some(dc));
            }
        }
        SimShared {
            config: config.clone(),
            mesh,
            dram,
            shards: (0..config.num_cores)
                .map(|_| Mutex::new(L2Slice::new(config)))
                .collect(),
            inboxes: Inboxes::new(config.num_cores),
            gate: RunGate::new(threads),
            barrier_slots: Default::default(),
            core_map: (0..threads).map(|t| t * stride).collect(),
            seq: sequenced.then(|| Sequencer::new(threads)),
            unroutable: Mutex::new(None),
        }
    }
}

/// Panic payload a permanently-dead core unwinds with when it departs
/// the run at a barrier. `try_run_with` recognizes it and records the
/// worker as departed — no cancellation, no panic report.
struct CoreDeparted;

/// How one worker's region ended.
enum WorkerExit<R> {
    /// `body` returned normally.
    Finished(R),
    /// The worker's core died mid-run and it left at a barrier; the
    /// survivors completed without it.
    Departed,
    /// The worker panicked (kernel bug, or an unroutable message).
    Panicked(String),
}

/// Cap on the per-request serialization wait charged at an L2 home
/// (bounds queueing behind a hot line at several epochs of backlog).
const HOME_WAIT_CAP: u64 = 4096;

/// One outstanding miss in the out-of-order window.
#[derive(Debug, Clone, Copy)]
struct PendingMiss {
    completion: u64,
    comps: Breakdown,
}

/// Timing of one directory transaction.
#[derive(Debug, Clone, Copy)]
struct MissTiming {
    completion: u64,
    comps: Breakdown,
    /// Whether the line was granted in Exclusive state.
    exclusive: bool,
}

/// Per-thread context of the [`SimMachine`] backend.
#[derive(Debug)]
pub struct SimCtx {
    shared: Arc<SimShared>,
    tid: usize,
    core: usize,
    clock: u64,
    l1: L1Cache,
    breakdown: Breakdown,
    misses: MissStats,
    energy: EnergyCounters,
    instructions: u64,
    window: Vec<PendingMiss>,
    mlp: usize,
    store_buffer: bool,
    generation: u64,
    broadcast_cursor: u64,
    /// Reusable buffer for draining broadcast invalidations (hoisted out
    /// of `drain_coherence`, which runs once per simulated memory op).
    bcast_scratch: Vec<u64>,
    /// Acquire clocks of currently-held locks, keyed by lock-word
    /// address (for booking hold times at unlock).
    held_since: std::collections::HashMap<u64, u64>,
    /// This thread's own `(epoch, cycles)` bookings per lock word, so it
    /// never queues behind itself.
    my_bookings: std::collections::HashMap<u64, (u64, u64)>,
    active_samples: Vec<(u64, u64)>,
    tracer: Option<ThreadTracer>,
    /// Emit per-router `noc_route` geometry instants (from
    /// [`TraceConfig::noc_geometry`]; meaningless without a tracer).
    noc_geometry: bool,
    /// Deterministic fault-injection plan (`None` ⇒ no faults; decisions
    /// are pure functions, so each thread carries its own copy).
    faults: Option<FaultPlan>,
    fault_counters: FaultCounters,
    /// Last core-stall decision window evaluated, so each window is
    /// decided at most once per thread.
    last_stall_window: Option<u64>,
    /// Set once this thread's core passes its permanent-death cycle
    /// (`FaultPlan::dead_core`): `departed()` turns `true`, the task
    /// layer stops handing it work, and the next barrier unwinds it out
    /// of the run.
    dying: bool,
}

impl SimCtx {
    fn new(
        shared: Arc<SimShared>,
        tid: usize,
        trace: Option<TraceConfig>,
        faults: Option<FaultPlan>,
    ) -> Self {
        let core = shared.core_map[tid];
        let l1 = L1Cache::new(&shared.config);
        let mlp = shared.config.core.max_outstanding_misses();
        let store_buffer = shared.config.core.has_store_buffer();
        SimCtx {
            shared,
            tid,
            core,
            clock: 0,
            l1,
            breakdown: Breakdown::default(),
            misses: MissStats::default(),
            energy: EnergyCounters::default(),
            instructions: 0,
            window: Vec::new(),
            mlp,
            store_buffer,
            generation: 0,
            broadcast_cursor: 0,
            bcast_scratch: Vec::new(),
            held_since: std::collections::HashMap::new(),
            my_bookings: std::collections::HashMap::new(),
            active_samples: Vec::new(),
            tracer: trace.map(|c| ThreadTracer::from_config(&c)),
            noc_geometry: trace.is_some_and(|c| c.noc_geometry),
            faults,
            fault_counters: FaultCounters::default(),
            last_stall_window: None,
            dying: false,
        }
    }

    /// Waits for this thread's deterministic turn before a hook touches
    /// shared simulator state. A no-op in lax (untraced) mode.
    #[inline]
    fn sync_turn(&self) {
        if let Some(seq) = &self.shared.seq {
            seq.turn(self.tid, self.clock);
        }
    }

    /// The simulated cycle clock of this thread.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// The mesh core this thread is pinned to.
    pub fn core(&self) -> usize {
        self.core
    }

    fn finish(mut self) -> (ThreadReport, MissStats, EnergyCounters, FaultCounters) {
        self.drain_window();
        // Leave the deterministic rotation first: threads finishing at
        // different simulated times must not stall the still-running ones.
        if let Some(seq) = &self.shared.seq {
            seq.done(self.tid);
        }
        self.energy.l1i_accesses = self.instructions;
        self.energy.l1d_accesses = self.misses.l1d_accesses;
        let report = ThreadReport {
            instructions: self.instructions,
            finish_time: self.clock,
            breakdown: self.breakdown,
            active_samples: self.active_samples,
            trace: self.tracer.map(ThreadTracer::finish),
        };
        (report, self.misses, self.energy, self.fault_counters)
    }

    // ------------------------------------------------------------------
    // Coherence message handling (lax, Graphite-style).

    /// Runs once per simulated memory op, so the fast path must stay
    /// allocation- and refcount-free: one `Relaxed` load of a core-
    /// private flag, no `Arc` traffic, and a reusable broadcast buffer
    /// instead of a fresh `Vec` (all purely host-side — delivery points
    /// are unchanged, as the golden counter-invariance test enforces).
    fn drain_coherence(&mut self) {
        if !self.shared.inboxes.take_notified(self.core) {
            return;
        }
        // `drain` returns the queue by value, so the `self.shared`
        // borrow ends before `apply_msg` needs `&mut self`.
        for msg in self.shared.inboxes.drain(self.core) {
            self.apply_msg(msg);
        }
        let mut lines = std::mem::take(&mut self.bcast_scratch);
        self.broadcast_cursor = self
            .shared
            .inboxes
            .drain_broadcasts(self.broadcast_cursor, |l| lines.push(l));
        for line in lines.drain(..) {
            self.apply_msg(CoherenceMsg {
                line,
                downgrade: false,
            });
        }
        self.bcast_scratch = lines;
    }

    fn apply_msg(&mut self, msg: CoherenceMsg) {
        if msg.downgrade {
            self.l1.coherence_downgrade(msg.line);
        } else {
            self.l1.coherence_invalidate(msg.line);
        }
    }

    // ------------------------------------------------------------------
    // The memory-access state machine.

    fn mem_op(&mut self, addr: Addr, write: bool, serialize: bool) {
        // Stall faults land before the clock is published to the
        // sequencer, so the stalled clock orders the turn-taking.
        self.apply_core_stall();
        self.note_core_death();
        // Inboxes, home slices, the mesh, and DRAM are shared: traced
        // runs serialize here in deterministic `(clock, tid)` order.
        self.sync_turn();
        self.instructions += 1;
        self.misses.l1d_accesses += 1;
        self.drain_coherence();
        let l1_lat = self.shared.config.l1d.latency;
        self.clock += l1_lat;
        self.breakdown.compute += l1_lat;
        let line = addr.line();
        let lookup = self.l1.access(line, write);
        if lookup == L1Lookup::Hit {
            if serialize {
                self.drain_window();
            }
            return;
        }
        let upgrade = lookup == L1Lookup::UpgradeMiss;
        let class = self.l1.classify_miss(line, upgrade);
        match class {
            MissClass::Cold => self.misses.cold_misses += 1,
            MissClass::Capacity => self.misses.capacity_misses += 1,
            MissClass::Sharing => self.misses.sharing_misses += 1,
        }
        if let Some(tr) = self.tracer.as_mut() {
            let name = match class {
                MissClass::Cold => "l1_miss_cold",
                MissClass::Capacity => "l1_miss_capacity",
                MissClass::Sharing => "l1_miss_sharing",
            };
            tr.instant("mem", name, self.clock, line);
        }
        if serialize {
            // Atomic RMWs order the pipeline: everything older retires
            // first, and the RMW itself stalls to completion.
            self.drain_window();
        }
        // Locality-aware coherence (§VII-A extension): a first touch is
        // served remotely at the home — word-granularity reply, no L1
        // allocation — so low-locality lines never thrash the L1 or join
        // the sharer set. Reuse (any later touch) allocates normally.
        let remote = self.shared.config.locality_aware && !upgrade && class == MissClass::Cold;
        let timing = self.transaction(line, write, upgrade, !remote);
        if upgrade {
            self.l1.promote(line);
        } else if remote {
            self.l1.note_touch(line);
        } else {
            let state = if write {
                L1State::Modified
            } else if timing.exclusive {
                L1State::Exclusive
            } else {
                L1State::Shared
            };
            if let Some((vline, vstate)) = self.l1.fill(line, state) {
                if vstate == L1State::Modified {
                    self.writeback_victim(vline);
                }
            }
        }
        let hide = !serialize && self.mlp > 1 && (self.store_buffer || !write);
        if hide {
            self.window.push(PendingMiss {
                completion: timing.completion,
                comps: timing.comps,
            });
            if self.window.len() >= self.mlp {
                self.retire_one();
            }
        } else {
            self.stall_until(timing.completion, &timing.comps);
        }
    }

    fn stall_until(&mut self, completion: u64, comps: &Breakdown) {
        if completion <= self.clock {
            return;
        }
        let visible = completion - self.clock;
        let total = comps.total();
        self.add_scaled(comps, visible, total.max(1));
        self.clock = completion;
    }

    fn retire_one(&mut self) {
        let idx = self
            .window
            .iter()
            .enumerate()
            .min_by_key(|(_, p)| p.completion)
            .map(|(i, _)| i)
            .expect("retire_one on non-empty window");
        let p = self.window.swap_remove(idx);
        self.stall_until(p.completion, &p.comps);
    }

    fn drain_window(&mut self) {
        while !self.window.is_empty() {
            self.retire_one();
        }
    }

    fn add_scaled(&mut self, comps: &Breakdown, num: u64, den: u64) {
        let scale = |x: u64| ((x as u128 * num as u128) / den as u128) as u64;
        self.breakdown.l1_to_l2home += scale(comps.l1_to_l2home);
        self.breakdown.l2home_waiting += scale(comps.l2home_waiting);
        self.breakdown.l2home_sharers += scale(comps.l2home_sharers);
        self.breakdown.l2home_offchip += scale(comps.l2home_offchip);
    }

    fn note_traffic(&mut self, flit_hops: u64) {
        self.energy.router_flit_hops += flit_hops;
        self.energy.link_flit_hops += flit_hops;
    }

    /// A critical-path mesh traversal with fault injection: when the
    /// fault plan declares a transient link fault on this traversal, the
    /// message is retransmitted — the retry departs when the corrupted
    /// copy would have arrived, doubling latency and flit traffic.
    fn route(&mut self, mesh: &Mesh, from: usize, to: usize, depart: u64, flits: u64) -> Traversal {
        let t = self.routed(mesh, from, to, depart, flits);
        if let Some(plan) = self.faults {
            if plan.noc_fault(from, to, depart) {
                // The retry departs after the corrupted copy arrived —
                // and must dodge a dead link just like the original.
                let retry = self.routed(mesh, from, to, t.arrival, flits);
                self.fault_counters.noc_retransmits += 1;
                if let Some(tr) = self.tracer.as_mut() {
                    tr.instant("fault", "noc_retransmit", depart, 1);
                }
                return Traversal {
                    arrival: retry.arrival,
                    flit_hops: t.flit_hops + retry.flit_hops,
                    detour_hops: t.detour_hops + retry.detour_hops,
                    detoured: t.detoured || retry.detoured,
                };
            }
        }
        t
    }

    /// One mesh traversal with permanent dead-link handling: a detour
    /// (O1TURN dodging the dead link) is counted, and an unroutable
    /// message — XY dimension-ordered routing whose fixed path crosses
    /// the dead link — records the typed route error for
    /// `try_run_with` and unwinds this worker (the run fails with
    /// [`RunError::Unroutable`], never a hang).
    fn routed(&mut self, mesh: &Mesh, from: usize, to: usize, depart: u64, flits: u64) -> Traversal {
        let t = match mesh.try_traverse(from, to, depart, flits) {
            Ok(t) => t,
            Err(e) => {
                let mut slot = self.shared.unroutable.lock();
                if slot.is_none() {
                    *slot = Some((self.tid, e.to_string()));
                }
                drop(slot);
                panic!("{e}");
            }
        };
        self.note_traffic(t.flit_hops);
        if t.detoured {
            self.fault_counters.noc_detours += 1;
            self.fault_counters.noc_detour_hops += t.detour_hops;
            if let Some(tr) = self.tracer.as_mut() {
                tr.instant("fault", "noc_detour", depart, t.detour_hops);
            }
        }
        t
    }

    /// Permanent core-death faults: past the plan's activation cycle
    /// this core is disabled. The decision is a pure clock comparison —
    /// a plan armed at `u64::MAX` never fires and stays
    /// timing-invisible.
    fn note_core_death(&mut self) {
        if self.dying {
            return;
        }
        let Some(plan) = self.faults else { return };
        let Some(dead) = plan.dead_core else { return };
        if dead.core == self.core && self.clock >= dead.at_cycle {
            self.dying = true;
            self.fault_counters.cores_lost += 1;
            if let Some(tr) = self.tracer.as_mut() {
                tr.instant("fault", "core_dead", self.clock, 1);
            }
        }
    }

    /// Core stall faults: at most once per `stall_window`-cycle window,
    /// the plan may declare this core unresponsive — modeled as a lump
    /// of lost cycles before the next memory operation issues.
    fn apply_core_stall(&mut self) {
        let Some(plan) = self.faults else { return };
        if plan.stall_rate <= 0.0 {
            return;
        }
        let window = self.clock / plan.stall_window;
        if self.last_stall_window.is_some_and(|w| w >= window) {
            return;
        }
        self.last_stall_window = Some(window);
        if plan.core_stall(self.core, window) {
            self.clock += plan.stall_cycles;
            self.breakdown.compute += plan.stall_cycles;
            self.fault_counters.core_stalls += 1;
            self.fault_counters.core_stall_cycles += plan.stall_cycles;
            if let Some(tr) = self.tracer.as_mut() {
                tr.instant("fault", "core_stall", self.clock, plan.stall_cycles);
            }
        }
    }

    /// One full directory transaction at the line's home, returning its
    /// completion time and component split. Home-side directory state is
    /// updated synchronously; remote L1 state via inbox messages (lax).
    /// With `allocate == false` the access is served remotely (word
    /// reply, requester not registered in the directory).
    fn transaction(&mut self, line: u64, write: bool, upgrade: bool, allocate: bool) -> MissTiming {
        let shared = Arc::clone(&self.shared);
        let cfg = &shared.config;
        let me = self.core as u16;
        let issue = self.clock;
        let home = home_of(line, cfg.num_cores);
        let ctrl = cfg.control_flits();
        let data = cfg.data_flits();

        // Trace bookkeeping for this transaction (dead weight in lax mode).
        let flits_before = self.energy.router_flit_hops;
        let mut invalidations = 0u64;
        let mut downgrades = 0u64;
        let mut broadcast = false;
        let mut dram_queued: Option<u64> = None;

        let req = self.route(&shared.mesh, self.core, home, issue, ctrl);

        let waiting;
        let mut offchip = 0;
        let mut sharers_time = 0;
        let reply_depart;
        let mut exclusive = false;
        {
            let mut slice = shared.shards[home].lock();
            let crate::l2::HomeLine {
                entry,
                was_miss,
                victim,
            } = slice.prepare(line);
            // Requests to one line serialize at the home: a request
            // queues behind the service time already booked on the line
            // within its own accounting epoch (skew-tolerant — see the
            // `noc` module docs for why absolute timestamps cannot work
            // under lax thread clocks).
            let epoch = req.arrival / crate::l2::HOME_EPOCH_CYCLES;
            if entry.queue_epoch != epoch {
                entry.queue_epoch = epoch;
                entry.queue_busy = 0;
            }
            waiting = entry.queue_busy.min(HOME_WAIT_CAP);
            let serve = req.arrival + waiting;
            let mut t = serve + cfg.l2.latency;
            // Clean shared-read hits pipeline at the home; only fills and
            // ownership changes serialize later requests.
            let mut serializes = was_miss || write;
            self.misses.l2_accesses += 1;
            self.energy.l2_accesses += 1;
            self.energy.directory_accesses += 1;

            // Inclusive-hierarchy victim handling (off the critical path:
            // traffic and directory state only).
            if let Some(v) = victim {
                if let Some(targets) = v.invalidate {
                    match targets {
                        Some(list) => {
                            for tgt in list {
                                self.energy.router_flit_hops +=
                                    shared.mesh.hops(home, tgt as usize) * ctrl;
                                self.energy.link_flit_hops +=
                                    shared.mesh.hops(home, tgt as usize) * ctrl;
                                shared.inboxes.push(
                                    tgt as usize,
                                    CoherenceMsg {
                                        line: v.line,
                                        downgrade: false,
                                    },
                                );
                            }
                        }
                        None => {
                            let (sum, _) = shared.mesh.broadcast_hops(home);
                            self.note_traffic(sum * ctrl);
                            shared.inboxes.push_broadcast(v.line);
                        }
                    }
                }
                if v.writeback {
                    let (c, ccore, rehomed) = shared.dram.controller_for_at(v.line, t);
                    if rehomed {
                        self.fault_counters.dram_rehomed += 1;
                    }
                    shared.dram.access(c, t);
                    self.energy.dram_accesses += 1;
                    self.note_traffic(shared.mesh.hops(home, ccore) * data);
                }
            }

            if was_miss {
                let (c, ccore, rehomed) = shared.dram.controller_for_at(line, t);
                let go = self.route(&shared.mesh, home, ccore, t, ctrl);
                // A line re-homed off a failed controller pays a one-time
                // migration surcharge while the window is open, then
                // settles into (permanently) sharing the survivors.
                let surcharge = shared.dram.migration_surcharge(rehomed, go.arrival);
                if rehomed {
                    self.fault_counters.dram_rehomed += 1;
                    if let Some(tr) = self.tracer.as_mut() {
                        tr.instant("fault", "dram_rehomed", go.arrival, 1 + surcharge);
                    }
                }
                let acc = shared.dram.access_timed(c, go.arrival + surcharge);
                dram_queued = Some(acc.queued);
                let mut ready = acc.ready;
                self.energy.dram_accesses += 1;
                // ECC model: corrected errors are free; a detected
                // (uncorrectable) error re-reads the line from the array.
                if let Some(plan) = self.faults {
                    match plan.dram_fault(c, go.arrival) {
                        EccOutcome::Clean => {}
                        EccOutcome::Corrected => {
                            self.fault_counters.dram_ecc_corrected += 1;
                            if let Some(tr) = self.tracer.as_mut() {
                                tr.instant("fault", "dram_ecc_corrected", go.arrival, 1);
                            }
                        }
                        EccOutcome::Detected => {
                            let retry = shared.dram.access_timed(c, ready);
                            ready = retry.ready;
                            self.energy.dram_accesses += 1;
                            self.fault_counters.dram_ecc_detected += 1;
                            if let Some(tr) = self.tracer.as_mut() {
                                tr.instant("fault", "dram_ecc_detected", go.arrival, 1);
                            }
                        }
                    }
                }
                let back = self.route(&shared.mesh, ccore, home, ready, data);
                offchip = back.arrival - t;
                t = back.arrival;
                self.misses.l2_misses += 1;
                entry.dirty = false;
            }

            if write {
                // Fetch dirty data from a foreign owner, then invalidate
                // every other copy; requester becomes the owner.
                if let Some(o) = entry.owner {
                    if o != me {
                        let go = self.route(&shared.mesh, home, o as usize, t, ctrl);
                        let back =
                            self.route(&shared.mesh, o as usize, home, go.arrival, data);
                        sharers_time += back.arrival - t;
                        t = back.arrival;
                        shared.inboxes.push(
                            o as usize,
                            CoherenceMsg {
                                line,
                                downgrade: false,
                            },
                        );
                        invalidations += 1;
                        entry.dirty = true;
                    }
                }
                entry.owner = None;
                match entry.sharers.invalidation_targets() {
                    Some(list) => {
                        let targets: Vec<u16> =
                            list.iter().copied().filter(|&c| c != me).collect();
                        if !targets.is_empty() {
                            let mut done = t;
                            for tgt in targets {
                                let go =
                                    self.route(&shared.mesh, home, tgt as usize, t, ctrl);
                                let ack = self
                                    .route(&shared.mesh, tgt as usize, home, go.arrival, ctrl);
                                done = done.max(ack.arrival);
                                shared.inboxes.push(
                                    tgt as usize,
                                    CoherenceMsg {
                                        line,
                                        downgrade: false,
                                    },
                                );
                                invalidations += 1;
                            }
                            sharers_time += done - t;
                            t = done;
                        }
                    }
                    None => {
                        // ACKWise pointer overflow: broadcast invalidation.
                        let (sum, max_hops) = shared.mesh.broadcast_hops(home);
                        let rt = 2 * max_hops * cfg.mesh.hop_latency;
                        self.note_traffic(2 * sum * ctrl);
                        // Drain our own pending traffic first so the
                        // broadcast (which includes us) cannot kill the
                        // line we are about to install.
                        self.drain_coherence();
                        shared.inboxes.push_broadcast(line);
                        broadcast = true;
                        self.broadcast_cursor += 1;
                        sharers_time += rt;
                        t += rt;
                    }
                }
                entry.sharers.clear();
                entry.owner = if allocate { Some(me) } else { None };
                entry.dirty = true;
            } else {
                // Read: downgrade a foreign owner, else grant E when sole.
                if let Some(o) = entry.owner {
                    if o != me {
                        let go = self.route(&shared.mesh, home, o as usize, t, ctrl);
                        let back =
                            self.route(&shared.mesh, o as usize, home, go.arrival, data);
                        sharers_time += back.arrival - t;
                        t = back.arrival;
                        shared.inboxes.push(
                            o as usize,
                            CoherenceMsg {
                                line,
                                downgrade: true,
                            },
                        );
                        downgrades += 1;
                        entry.sharers.add(o);
                        entry.dirty = true;
                        serializes = true;
                    }
                    entry.owner = None;
                }
                if allocate {
                    if entry.sharers.is_empty() && cfg.enable_e_state {
                        entry.owner = Some(me);
                        exclusive = true;
                    } else {
                        entry.sharers.add(me);
                    }
                }
            }
            if serializes {
                entry.queue_busy += t - serve;
            }
            reply_depart = t;
        }

        // Upgrades and remote (word-granularity) accesses reply without
        // the full line.
        let reply_flits = if upgrade || !allocate { ctrl } else { data };
        let reply = self.route(&shared.mesh, home, self.core, reply_depart, reply_flits);

        if let Some(tr) = self.tracer.as_mut() {
            let flits = self.energy.router_flit_hops - flits_before;
            tr.instant("noc", "noc_flits", issue, flits);
            if self.noc_geometry && flits > 0 {
                // Attribute the transaction's flits to the home router
                // so `crono heatmap` can draw per-router traffic.
                let (row, col) = shared.mesh.position(home);
                tr.instant("noc", "noc_route", issue, crono_trace::pack_route(row, col, flits));
            }
            if waiting > 0 {
                tr.instant("mem", "home_queue", issue, waiting);
            }
            if let Some(queued) = dram_queued {
                tr.instant("dram", "dram_access", issue, queued);
            }
            if invalidations > 0 {
                tr.instant("coherence", "dir_invalidate", issue, invalidations);
            }
            if downgrades > 0 {
                tr.instant("coherence", "dir_downgrade", issue, downgrades);
            }
            if broadcast {
                tr.instant("coherence", "dir_broadcast", issue, 1);
            }
        }

        let l2_lat = cfg.l2.latency;
        MissTiming {
            completion: reply.arrival,
            comps: Breakdown {
                compute: 0,
                l1_to_l2home: (req.arrival - issue) + l2_lat + (reply.arrival - reply_depart),
                l2home_waiting: waiting,
                l2home_sharers: sharers_time,
                l2home_offchip: offchip,
                synchronization: 0,
            },
            exclusive,
        }
    }

    /// Write back a dirty L1 victim to its home (off the critical path:
    /// traffic, DRAM pressure, and directory state; no requester stall).
    fn writeback_victim(&mut self, vline: u64) {
        let shared = Arc::clone(&self.shared);
        let home = home_of(vline, shared.config.num_cores);
        let data = shared.config.data_flits();
        self.note_traffic(shared.mesh.hops(self.core, home) * data);
        let me = self.core as u16;
        let mut slice = shared.shards[home].lock();
        self.energy.l2_accesses += 1;
        if let Some(entry) = slice.lookup_resident(vline) {
            entry.dirty = true;
            if entry.owner == Some(me) {
                entry.owner = None;
            } else {
                entry.sharers.remove(me);
            }
        }
    }
}

impl ThreadCtx for SimCtx {
    fn thread_id(&self) -> usize {
        self.tid
    }

    fn num_threads(&self) -> usize {
        self.shared.core_map.len()
    }

    fn load(&mut self, addr: Addr) {
        self.mem_op(addr, false, false);
    }

    fn store(&mut self, addr: Addr) {
        self.mem_op(addr, true, false);
    }

    fn rmw(&mut self, addr: Addr) {
        self.mem_op(addr, true, true);
    }

    fn compute(&mut self, cycles: u32) {
        self.instructions += cycles as u64;
        self.clock += cycles as u64;
        self.breakdown.compute += cycles as u64;
    }

    fn lock(&mut self, set: &LockSet, idx: usize) {
        self.drain_window();
        // The lock word itself ping-pongs between contenders — model the
        // coherence traffic of the atomic acquire.
        self.mem_op(set.addr(idx), true, true);
        let contended = if let Some(seq) = &self.shared.seq {
            // Deterministic mode: spinning would deadlock (the holder
            // cannot take a turn while we hold ours), so yield the turn
            // and park on the lock word until the holder's unlock wakes
            // us; waiters then re-contend in `(clock, tid)` order. A
            // cancelled run bails without the lock: its holder may have
            // panicked, and cancelled results are discarded anyway.
            let mut contended = false;
            while !set.try_acquire_raw(idx) {
                contended = true;
                if self.shared.gate.is_cancelled() {
                    break;
                }
                seq.block_on(self.tid, set.addr(idx).raw());
            }
            contended
        } else {
            // Lax mode: spin, but keep observing cancellation so a
            // panicked holder cannot hang the waiters forever.
            let mut contended = false;
            let mut spins = 0u32;
            loop {
                if set.try_acquire_raw(idx) {
                    break;
                }
                contended = true;
                if self.shared.gate.is_cancelled() {
                    break;
                }
                spins = spins.wrapping_add(1);
                if spins % 64 == 0 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
            contended
        };
        let mut wait = 0;
        // Align to the previous holder's release only when the
        // acquisition truly contended (the holder ran concurrently);
        // otherwise a wall-serialized predecessor's clock would leak in.
        if contended {
            let released_at = set.release_clock(idx);
            if released_at > self.clock {
                wait += released_at - self.clock;
            }
        }
        // Plus the hold time *other* threads booked on this lock in our
        // accounting epoch (skew-tolerant contention; see `noc` docs).
        let epoch = self.clock / crono_runtime::LOCK_EPOCH_CYCLES;
        let mine = match self.my_bookings.get(&set.addr(idx).raw()) {
            Some(&(e, cycles)) if e == epoch => cycles,
            _ => 0,
        };
        wait += set.booked_hold(idx, epoch).saturating_sub(mine).min(HOME_WAIT_CAP);
        let overhead = self.shared.config.lock_overhead;
        self.breakdown.synchronization += wait + overhead;
        self.clock += wait + overhead;
        if let Some(tr) = self.tracer.as_mut() {
            tr.instant("sync", "lock_acquire", self.clock, wait);
        }
        self.held_since.insert(set.addr(idx).raw(), self.clock);
    }

    fn unlock(&mut self, set: &LockSet, idx: usize) {
        self.drain_window();
        self.mem_op(set.addr(idx), true, true);
        if let Some(acquired_at) = self.held_since.remove(&set.addr(idx).raw()) {
            let hold = self.clock.saturating_sub(acquired_at) + self.shared.config.lock_overhead;
            let epoch = acquired_at / crono_runtime::LOCK_EPOCH_CYCLES;
            set.book_hold(idx, epoch, hold);
            let mine = self.my_bookings.entry(set.addr(idx).raw()).or_insert((epoch, 0));
            if mine.0 == epoch {
                mine.1 += hold;
            } else {
                *mine = (epoch, hold);
            }
            if let Some(tr) = self.tracer.as_mut() {
                tr.complete("sync", "lock_hold", acquired_at, self.clock - acquired_at);
            }
        }
        set.set_release_clock(idx, self.clock);
        set.release_raw(idx);
        if let Some(seq) = &self.shared.seq {
            seq.wake(set.addr(idx).raw());
        }
    }

    fn barrier(&mut self) {
        self.drain_window();
        self.note_core_death();
        if self.dying {
            // A dead core cannot rendezvous again: leave the gate's
            // population permanently — survivors' barriers re-size to
            // the survivor count — then unwind out of the kernel.
            // `finish()` runs on the way out and completes any pending
            // sequencer rejoin, so nobody is left parked.
            self.shared.gate.depart();
            std::panic::panic_any(CoreDeparted);
        }
        self.sync_turn();
        self.instructions += 1;
        let arrive = self.clock;
        let g = self.generation as usize;
        // Rotating slots: zeroing (g+2)%4 is safe — its last readers
        // finished before anyone could reach barrier g, and its next
        // writers cannot arrive until barrier g+1 has fully passed.
        self.shared.barrier_slots[(g + 2) % 4].store(0, Ordering::Release);
        self.shared.barrier_slots[g % 4].fetch_max(arrive, Ordering::AcqRel);
        // Deterministic mode: release the run token across the
        // rendezvous (the threads still heading here need it to arrive),
        // and rejoin collectively so no thread races ahead of the rest.
        if let Some(seq) = &self.shared.seq {
            seq.barrier_wait(self.tid);
        }
        let synced = self.shared.gate.barrier_wait();
        if !synced {
            // Cancelled run: the rendezvous never completed, so the slot
            // holds a meaningless partial max. Keep draining.
            self.generation += 1;
            return;
        }
        let max_clock = self.shared.barrier_slots[g % 4].load(Ordering::Acquire);
        self.generation += 1;
        let overhead = self.shared.config.barrier_overhead;
        debug_assert!(max_clock >= arrive);
        self.breakdown.synchronization += (max_clock - arrive) + overhead;
        self.clock = max_clock + overhead;
        if let Some(seq) = &self.shared.seq {
            seq.turn(self.tid, self.clock);
        }
        if let Some(tr) = self.tracer.as_mut() {
            tr.complete("sync", "barrier_wait", arrive, self.clock - arrive);
        }
    }

    fn record_active(&mut self, active: u64) {
        self.active_samples.push((self.clock, active));
    }

    fn instructions(&self) -> u64 {
        self.instructions
    }

    fn cycles(&self) -> u64 {
        self.clock
    }

    fn span_begin(&mut self, name: &'static str) {
        let ts = self.clock;
        if let Some(tr) = self.tracer.as_mut() {
            tr.begin("algo", name, ts);
        }
    }

    fn span_end(&mut self, name: &'static str) {
        let ts = self.clock;
        if let Some(tr) = self.tracer.as_mut() {
            tr.end("algo", name, ts);
        }
    }

    fn trace_instant(&mut self, name: &'static str, value: u64) {
        let ts = self.clock;
        if let Some(tr) = self.tracer.as_mut() {
            tr.instant("algo", name, ts, value);
        }
    }

    fn tracing(&self) -> bool {
        self.tracer.is_some()
    }

    #[inline]
    fn cancelled(&self) -> bool {
        self.shared.gate.is_cancelled()
    }

    #[inline]
    fn departed(&self) -> bool {
        self.dying
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crono_runtime::{alloc_region, SharedU32s, SharedU64s};

    fn machine(threads: usize) -> SimMachine {
        SimMachine::new(SimConfig::tiny(16), threads)
    }

    #[test]
    fn single_thread_compute_only() {
        let m = machine(1);
        let outcome = m.run(|ctx| {
            ctx.compute(100);
        });
        let b = outcome.report.breakdown();
        assert_eq!(b.compute, 100);
        assert_eq!(outcome.report.completion, 100);
        assert_eq!(b.l1_to_l2home, 0);
    }

    #[test]
    fn cold_miss_goes_off_chip() {
        let m = machine(1);
        let region = alloc_region(64);
        let outcome = m.run(|ctx| {
            ctx.load(region.addr(0, 4));
        });
        let r = &outcome.report;
        assert_eq!(r.misses.cold_misses, 1);
        assert_eq!(r.misses.l2_misses, 1);
        let b = r.breakdown();
        assert!(b.l2home_offchip >= 100, "DRAM latency visible: {b:?}");
        assert!(b.l1_to_l2home > 0);
        assert_eq!(r.energy.dram_accesses, 1);
    }

    #[test]
    fn second_access_hits_l1() {
        let m = machine(1);
        let region = alloc_region(64);
        let outcome = m.run(|ctx| {
            ctx.load(region.addr(0, 4));
            let after_miss = ctx.clock();
            ctx.load(region.addr(1, 4)); // same line
            (after_miss, ctx.clock())
        });
        let (t1, t2) = outcome.per_thread[0];
        assert_eq!(t2 - t1, 1, "L1 hit costs exactly the L1 latency");
        assert_eq!(outcome.report.misses.l1d_misses(), 1);
        assert_eq!(outcome.report.misses.l1d_accesses, 2);
    }

    #[test]
    fn write_sharing_produces_sharing_misses_and_invalidations() {
        let m = machine(4);
        let arr = SharedU32s::new(1);
        // Barriers force the host threads to interleave physically, so the
        // lazily-delivered invalidations are observed (a long-running
        // benchmark interleaves naturally).
        let outcome = m.run(|ctx| {
            for _ in 0..8 {
                arr.fetch_add(ctx, 0, 1);
                ctx.barrier();
            }
        });
        assert_eq!(arr.get_plain(0), 32);
        let r = &outcome.report;
        assert!(
            r.misses.sharing_misses > 0,
            "ping-ponging line must show sharing misses: {:?}",
            r.misses
        );
        let b = r.breakdown();
        assert!(b.l2home_sharers > 0 || b.l2home_waiting > 0);
    }

    #[test]
    fn read_only_sharing_has_no_invalidations() {
        let m = machine(4);
        let arr = SharedU32s::new(16);
        let outcome = m.run(|ctx| {
            let mut sum = 0u32;
            for i in 0..16 {
                sum = sum.wrapping_add(arr.get(ctx, i));
            }
            sum
        });
        let r = &outcome.report;
        assert_eq!(
            r.misses.sharing_misses, 0,
            "pure readers never invalidate each other: {:?}",
            r.misses
        );
    }

    #[test]
    fn locks_serialize_simulated_time() {
        let m = machine(4);
        let locks = LockSet::new(1);
        let shared = SharedU64s::new(1);
        let outcome = m.run(|ctx| {
            ctx.lock(&locks, 0);
            let v = shared.get(ctx, 0);
            ctx.compute(50);
            shared.set(ctx, 0, v + 1);
            ctx.unlock(&locks, 0);
        });
        assert_eq!(shared.get_plain(0), 4);
        // Four critical sections of >= 50 cycles must serialize.
        assert!(
            outcome.report.completion >= 200,
            "completion {} must cover 4 serialized critical sections",
            outcome.report.completion
        );
        let b = outcome.report.breakdown();
        assert!(b.synchronization > 0, "waiters accumulate sync time");
    }

    #[test]
    fn barrier_aligns_clocks() {
        let m = machine(4);
        let outcome = m.run(|ctx| {
            ctx.compute(10 * (1 + ctx.thread_id() as u32));
            ctx.barrier();
            ctx.clock()
        });
        let clocks = outcome.per_thread;
        let first = clocks[0];
        assert!(clocks.iter().all(|&c| c == first), "clocks equal: {clocks:?}");
        assert!(first >= 40, "slowest thread dictates: {first}");
        let sync: u64 = outcome
            .report
            .threads
            .iter()
            .map(|t| t.breakdown.synchronization)
            .sum();
        assert!(sync > 0);
    }

    #[test]
    fn repeated_barriers_are_consistent() {
        let m = machine(3);
        let outcome = m.run(|ctx| {
            let mut clocks = Vec::new();
            for round in 0..10 {
                ctx.compute(((ctx.thread_id() + round) % 3) as u32 * 7 + 1);
                ctx.barrier();
                clocks.push(ctx.clock());
            }
            clocks
        });
        for round in 0..10 {
            let c0 = outcome.per_thread[0][round];
            assert!(
                outcome.per_thread.iter().all(|c| c[round] == c0),
                "round {round}: clocks diverged"
            );
        }
    }

    #[test]
    fn ooo_hides_load_latency() {
        let region = alloc_region(64 * 64);
        let run = |config: SimConfig| {
            let m = SimMachine::new(config, 1);
            m.run(|ctx| {
                for i in 0..32 {
                    ctx.load(region.addr(i * 16, 4)); // distinct lines
                }
            })
            .report
            .completion
        };
        let inorder = run(SimConfig::tiny(16));
        let ooo = run(SimConfig {
            core: crate::config::CoreModel::paper_ooo(),
            ..SimConfig::tiny(16)
        });
        assert!(
            ooo < inorder / 2,
            "OOO must overlap independent misses: ooo={ooo} inorder={inorder}"
        );
    }

    #[test]
    fn rmw_serializes_even_on_ooo() {
        let region = alloc_region(64 * 64);
        let m = SimMachine::new(
            SimConfig {
                core: crate::config::CoreModel::paper_ooo(),
                ..SimConfig::tiny(16)
            },
            1,
        );
        let arr = SharedU32s::new(16 * 16);
        let outcome = m.run(|ctx| {
            for i in 0..16 {
                arr.fetch_add(ctx, i * 16, 1);
            }
            ctx.load(region.addr(0, 4));
        });
        // Each RMW pays its full off-chip latency: >= 16 * 100 cycles.
        assert!(
            outcome.report.completion >= 1600,
            "got {}",
            outcome.report.completion
        );
    }

    #[test]
    fn energy_counters_accumulate() {
        let m = machine(2);
        let arr = SharedU32s::new(64);
        let outcome = m.run(|ctx| {
            for i in 0..64 {
                arr.set(ctx, i, 1);
            }
        });
        let e = &outcome.report.energy;
        assert!(e.l1d_accesses >= 128);
        assert!(e.l2_accesses > 0);
        assert!(e.router_flit_hops > 0);
        assert!(e.dram_accesses > 0);
        assert!(e.l1i_accesses >= e.l1d_accesses);
    }

    #[test]
    fn capacity_misses_on_thrashing_working_set() {
        // tiny L1 = 1 KB (16 lines); stream over 64 lines twice.
        let m = machine(1);
        let region = alloc_region(64 * 64);
        let outcome = m.run(|ctx| {
            for _ in 0..2 {
                for i in 0..64 {
                    ctx.load(region.addr(i * 16, 4));
                }
            }
        });
        let mi = &outcome.report.misses;
        assert_eq!(mi.cold_misses, 64);
        assert!(mi.capacity_misses >= 48, "thrash: {mi:?}");
        assert_eq!(mi.sharing_misses, 0);
    }

    #[test]
    #[should_panic(expected = "cannot run")]
    fn too_many_threads_rejected() {
        SimMachine::new(SimConfig::tiny(4), 8);
    }

    #[test]
    fn threads_spread_over_mesh() {
        let m = SimMachine::new(SimConfig::tiny(16), 4);
        let outcome = m.run(|ctx| ctx.core());
        assert_eq!(outcome.per_thread, vec![0, 4, 8, 12]);
    }

    /// A small kernel touching every event source: shared-counter
    /// contention, locks, barriers, and phases.
    fn traced_kernel(ctx: &mut SimCtx, locks: &LockSet, counter: &SharedU64s) {
        ctx.span_begin("phase");
        for _ in 0..4 {
            ctx.lock(locks, 0);
            let v = counter.get(ctx, 0);
            ctx.compute(7 * (1 + ctx.thread_id() as u32));
            counter.set(ctx, 0, v + 1);
            ctx.unlock(locks, 0);
            ctx.barrier();
        }
        ctx.span_end("phase");
    }

    fn run_traced() -> Vec<crono_trace::ThreadTrace> {
        let m = SimMachine::with_tracing(
            SimConfig::tiny(16),
            4,
            crono_trace::TraceConfig::default(),
        );
        let locks = LockSet::new(1);
        let counter = SharedU64s::new(1);
        let outcome = m.run(|ctx| traced_kernel(ctx, &locks, &counter));
        assert_eq!(counter.get_plain(0), 16, "sequencer preserves correctness");
        outcome
            .report
            .threads
            .iter()
            .map(|t| t.trace.clone().expect("traced"))
            .collect()
    }

    #[test]
    fn traced_run_records_all_event_sources() {
        for trace in &run_traced() {
            let names: Vec<_> = trace.events.iter().map(|e| e.name).collect();
            for needle in ["phase", "lock_hold", "barrier_wait", "l1_miss_cold", "noc_flits"] {
                assert!(names.contains(&needle), "missing {needle}: {names:?}");
            }
            assert_eq!(trace.dropped, 0);
        }
    }

    /// Determinism must hold across *processes* (that is how `crono
    /// trace` is invoked): symbolic addresses come from a process-global
    /// bump allocator, so a second in-process run sees shifted lines and
    /// legitimately different home slices. The test therefore re-executes
    /// itself in child-mode twice and compares the full event streams.
    #[test]
    fn traced_run_is_deterministic_across_processes() {
        if std::env::var_os("CRONO_DET_CHILD").is_some() {
            for (tid, trace) in run_traced().iter().enumerate() {
                for e in &trace.events {
                    println!("EV {tid} {} {} {} {:?}", e.ts, e.name, e.arg, e.kind);
                }
            }
            return;
        }
        let exe = std::env::current_exe().expect("test binary path");
        let child = || {
            let out = std::process::Command::new(&exe)
                .args([
                    "--exact",
                    "machine::tests::traced_run_is_deterministic_across_processes",
                    "--nocapture",
                    "--test-threads=1",
                ])
                .env("CRONO_DET_CHILD", "1")
                .output()
                .expect("spawn child test process");
            assert!(out.status.success(), "child failed: {out:?}");
            let stdout = String::from_utf8(out.stdout).expect("utf8");
            let events: Vec<&str> = stdout
                .lines()
                .filter(|l| l.starts_with("EV "))
                .collect();
            assert!(!events.is_empty(), "child produced no events");
            events.join("\n")
        };
        assert_eq!(child(), child(), "event streams byte-identical");
    }

    #[test]
    fn untraced_sim_reports_no_trace() {
        let m = machine(2);
        let outcome = m.run(|ctx| ctx.compute(10));
        assert!(outcome.report.threads.iter().all(|t| t.trace.is_none()));
    }

    /// A kernel where one thread panics while the rest sit in barriers:
    /// the classic deadlock shape that panic containment must survive.
    fn panicking_kernel(ctx: &mut SimCtx, counter: &SharedU64s) -> usize {
        for round in 0..6 {
            counter.fetch_add(ctx, 0, 1);
            if round == 2 && ctx.thread_id() == 1 {
                panic!("sim worker died mid-round");
            }
            ctx.barrier();
        }
        ctx.thread_id()
    }

    #[test]
    fn worker_panic_contained_in_lax_mode() {
        let m = machine(4);
        let counter = SharedU64s::new(1);
        let err = m
            .try_run(|ctx| panicking_kernel(ctx, &counter))
            .expect_err("a panicking worker must fail the run");
        match &err {
            crono_runtime::RunError::WorkerPanicked { tid, payload, report } => {
                assert_eq!(*tid, 1);
                assert!(payload.contains("sim worker died"), "{payload:?}");
                // Every thread — including the dead one — reports.
                assert_eq!(report.threads.len(), 4);
                assert!(report.threads.iter().all(|t| t.instructions > 0));
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        // The machine stays usable afterwards.
        let outcome = m.run(|ctx| ctx.compute(10));
        assert_eq!(outcome.per_thread.len(), 4);
    }

    #[test]
    fn worker_panic_contained_under_deterministic_sequencer() {
        let m = SimMachine::with_tracing(
            SimConfig::tiny(16),
            4,
            crono_trace::TraceConfig::default(),
        );
        let counter = SharedU64s::new(1);
        let err = m
            .try_run(|ctx| panicking_kernel(ctx, &counter))
            .expect_err("a panicking worker must fail the sequenced run");
        match &err {
            crono_runtime::RunError::WorkerPanicked { tid, report, .. } => {
                assert_eq!(*tid, 1);
                // Survivors' traces are intact despite the abort.
                assert_eq!(report.threads.len(), 4);
                assert!(report.threads[0].trace.is_some());
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn worker_panic_contained_while_holding_a_lock() {
        let m = machine(3);
        let locks = LockSet::new(1);
        let err = m
            .try_run(|ctx| {
                ctx.lock(&locks, 0);
                if ctx.thread_id() == 0 {
                    panic!("died holding the lock");
                }
                ctx.compute(10);
                ctx.unlock(&locks, 0);
            })
            .expect_err("panicked run");
        assert!(matches!(
            err,
            crono_runtime::RunError::WorkerPanicked { tid: 0, .. }
        ));
    }

    #[test]
    fn timeout_watchdog_cancels_hung_sim_kernel() {
        let m = machine(2);
        let opts = crono_runtime::RunOptions {
            timeout: Some(std::time::Duration::from_millis(20)),
        };
        let err = m
            .try_run_with(&opts, |ctx| {
                while !ctx.cancelled() {
                    ctx.compute(1);
                }
            })
            .expect_err("hung kernel must time out");
        assert!(matches!(err, crono_runtime::RunError::TimedOut { .. }));
    }

    /// A fault-free plan and an aggressive plan over the *same* shared
    /// data (same symbolic addresses, so the runs are comparable): the
    /// faulty run must report injected events and take at least as long.
    #[test]
    fn fault_injection_slows_the_run_and_counts_events() {
        // One u32 per cache line: 64 distinct lines, so the run makes
        // enough independent DRAM draws that a 0.1 fault rate hits some
        // regardless of where the symbolic allocator placed the region.
        let arr = SharedU32s::new(1024);
        let run = |plan: FaultPlan| {
            let m = SimMachine::with_faults(SimConfig::tiny(16), 4, plan);
            m.run(|ctx| {
                for round in 0..4 {
                    for i in 0..64 {
                        if i % ctx.num_threads() == ctx.thread_id() {
                            arr.set(ctx, i * 16, round as u32);
                        }
                    }
                    ctx.barrier();
                }
            })
            .report
        };
        let clean = run(FaultPlan::zero(33));
        let faulty = run(FaultPlan::scaled(33, 0.1));
        assert_eq!(clean.faults.total_events(), 0, "{:?}", clean.faults);
        assert!(
            faulty.faults.noc_retransmits > 0,
            "rate 0.1 must hit some traversal: {:?}",
            faulty.faults
        );
        assert!(
            faulty.faults.dram_ecc_corrected + faulty.faults.dram_ecc_detected > 0,
            "rate 0.1 must hit some DRAM access: {:?}",
            faulty.faults
        );
        assert!(
            faulty.completion > clean.completion,
            "faults only add latency: faulty={} clean={}",
            faulty.completion,
            clean.completion
        );
    }

    /// Fault decisions are pure site hashes, so injected runs are as
    /// deterministic as traced ones — across processes (the symbolic
    /// address allocator shifts lines within one process; see
    /// `traced_run_is_deterministic_across_processes`).
    #[test]
    fn faulty_run_is_deterministic_across_processes() {
        if std::env::var_os("CRONO_FAULT_DET_CHILD").is_some() {
            let counter = SharedU64s::new(1);
            let locks = LockSet::new(1);
            let m =
                SimMachine::with_faults(SimConfig::tiny(16), 4, FaultPlan::scaled(33, 0.02));
            let outcome = m.run(|ctx| traced_kernel(ctx, &locks, &counter));
            let r = &outcome.report;
            println!("FP completion {}", r.completion);
            println!(
                "FP faults {} {} {} {} {}",
                r.faults.noc_retransmits,
                r.faults.dram_ecc_corrected,
                r.faults.dram_ecc_detected,
                r.faults.core_stalls,
                r.faults.core_stall_cycles
            );
            println!(
                "FP misses {} {} {}",
                r.misses.cold_misses, r.misses.capacity_misses, r.misses.sharing_misses
            );
            println!(
                "FP energy {} {}",
                r.energy.router_flit_hops, r.energy.dram_accesses
            );
            return;
        }
        let exe = std::env::current_exe().expect("test binary path");
        let child = || {
            let out = std::process::Command::new(&exe)
                .args([
                    "--exact",
                    "machine::tests::faulty_run_is_deterministic_across_processes",
                    "--nocapture",
                    "--test-threads=1",
                ])
                .env("CRONO_FAULT_DET_CHILD", "1")
                .output()
                .expect("spawn child test process");
            assert!(out.status.success(), "child failed: {out:?}");
            let stdout = String::from_utf8(out.stdout).expect("utf8");
            let lines: Vec<&str> = stdout
                .lines()
                .filter(|l| l.starts_with("FP "))
                .collect();
            assert!(!lines.is_empty(), "child produced no fingerprint");
            lines.join("\n")
        };
        assert_eq!(child(), child(), "fault fingerprints byte-identical");
    }

    // ------------------------------------------------------------------
    // Permanent faults: dead links, disabled cores, failed controllers.

    use crate::fault::LinkDir;
    use crate::config::RoutingPolicy;

    /// A small barrier kernel over shared lines — every thread's work
    /// crosses the mesh, so a central dead link is guaranteed traffic.
    fn permanent_kernel(ctx: &mut SimCtx, arr: &SharedU32s) {
        for round in 0..4u32 {
            for i in 0..64 {
                if i % ctx.num_threads() == ctx.thread_id() {
                    arr.set(ctx, i, round);
                }
            }
            ctx.barrier();
        }
    }

    #[test]
    fn dead_link_under_xy_routing_is_a_typed_error_not_a_hang() {
        let arr = SharedU32s::new(64);
        // Router 5's east link in the 4×4 mesh: central enough that the
        // 4-thread all-to-home traffic must cross it.
        let m = SimMachine::with_faults(
            SimConfig::tiny(16),
            4,
            FaultPlan::zero(33).with_dead_link(5, LinkDir::East, 0),
        );
        let err = m
            .try_run(|ctx| permanent_kernel(ctx, &arr))
            .expect_err("XY routing cannot avoid a dead link on its fixed path");
        match err {
            RunError::Unroutable { detail, .. } => {
                assert!(
                    detail.contains("dead east link at router 5"),
                    "typed detail names the dead link: {detail}"
                );
            }
            other => panic!("expected Unroutable, got: {other}"),
        }
    }

    #[test]
    fn dead_link_under_o1turn_completes_with_detours() {
        let arr = SharedU32s::new(64);
        let mut config = SimConfig::tiny(16);
        config.mesh.routing = RoutingPolicy::O1Turn;
        let run = |plan: FaultPlan| {
            let m = SimMachine::with_faults(config.clone(), 4, plan);
            m.run(|ctx| permanent_kernel(ctx, &arr)).report
        };
        let healthy = run(FaultPlan::zero(33));
        let degraded = run(FaultPlan::zero(33).with_dead_link(5, LinkDir::East, 0));
        assert_eq!(healthy.faults.noc_detours, 0, "{:?}", healthy.faults);
        // Whether a detour is a free dimension-order flip or a +2-hop
        // sidestep depends on the traffic mix (the sidestep cost is
        // pinned down deterministically in the `noc` unit tests); at
        // machine level the guarantee is that the run *completes*, with
        // every crossing of the dead link re-routed and counted.
        assert!(
            degraded.faults.noc_detours > 0,
            "O1TURN must re-route around the dead link: {:?}",
            degraded.faults
        );
        assert!(degraded.completion > 0);
    }

    #[test]
    fn dead_dram_ctrl_rehomes_lines_and_slows_the_run() {
        let arr = SharedU32s::new(256);
        let run = |plan: FaultPlan| {
            let m = SimMachine::with_faults(SimConfig::tiny(16), 4, plan);
            m.run(|ctx| permanent_kernel_wide(ctx, &arr)).report
        };
        let healthy = run(FaultPlan::zero(33));
        let degraded = run(FaultPlan::zero(33).with_dead_dram_ctrl(0, 0));
        assert_eq!(healthy.faults.dram_rehomed, 0, "{:?}", healthy.faults);
        assert!(
            degraded.faults.dram_rehomed > 0,
            "controller 0's lines must re-home: {:?}",
            degraded.faults
        );
        // Re-homing changes controller distances as well as queueing, so
        // the end-to-end sign depends on the address mix; the surcharge
        // itself is pinned down in the `dram` unit tests. Here the
        // guarantee is that the re-homed timing is *visible*.
        assert_ne!(
            degraded.completion, healthy.completion,
            "re-homed accesses change the run's timing"
        );
    }

    /// Wider footprint so many distinct lines touch DRAM.
    fn permanent_kernel_wide(ctx: &mut SimCtx, arr: &SharedU32s) {
        for round in 0..2u32 {
            for i in 0..256 {
                if i % ctx.num_threads() == ctx.thread_id() {
                    arr.set(ctx, i, round);
                }
            }
            ctx.barrier();
        }
    }

    #[test]
    fn dead_core_departs_and_survivors_finish_barrier_kernel() {
        let arr = SharedU32s::new(64);
        let m = SimMachine::with_faults(
            SimConfig::tiny(16),
            4,
            // Core 4 is thread 1's pinned core (stride 16/4); die almost
            // immediately so the departure happens at the first barrier.
            FaultPlan::zero(33).with_dead_core(4, 1),
        );
        let outcome = m
            .try_run(|ctx| {
                permanent_kernel(ctx, &arr);
                ctx.thread_id()
            })
            .expect("survivors complete the run");
        assert_eq!(
            outcome.per_thread,
            vec![0, 2, 3],
            "the dead core contributes no return value"
        );
        assert_eq!(outcome.report.faults.cores_lost, 1, "{:?}", outcome.report.faults);
        // Every round after the death still runs on the survivors.
        for i in 0..64 {
            if i % 4 != 1 {
                assert_eq!(arr.get_plain(i), 3, "slot {i} finished all rounds");
            }
        }
    }

    #[test]
    fn dead_core_tasks_drain_exactly_once_on_survivors() {
        use crono_runtime::TaskPool;
        let threads = 4;
        let tasks = 256u64;
        let m = SimMachine::with_faults(
            SimConfig::tiny(16),
            threads,
            // Thread 1 (core 4) dies mid-drain.
            FaultPlan::zero(33).with_dead_core(4, 3_000),
        );
        let pool = TaskPool::new(threads, 512, 9);
        for t in 0..tasks {
            assert!(pool.push_plain((t % threads as u64) as usize, t));
        }
        let seen = SharedU64s::new(tasks as usize);
        let outcome = m
            .try_run(|ctx| {
                let mut mine = 0u64;
                while let Some(task) = pool.take(ctx) {
                    seen.fetch_add(ctx, task as usize, 1);
                    mine += 1;
                }
                mine
            })
            .expect("take-loop kernels have no barrier; the dead core exits early");
        assert_eq!(outcome.report.faults.cores_lost, 1, "{:?}", outcome.report.faults);
        let counts = seen.to_vec();
        assert!(
            counts.iter().all(|&c| c == 1),
            "every task exactly once, dead deque included: {counts:?}"
        );
        assert_eq!(outcome.per_thread.iter().sum::<u64>(), tasks);
    }

    /// Permanent fault sites armed at `u64::MAX` never activate — the
    /// run must be cycle-identical to a fault-free one (the same
    /// invariance the zero-rate transient plans guarantee).
    #[test]
    fn armed_but_inactive_permanent_faults_are_timing_invisible() {
        // One shared array: both runs touch the same symbolic addresses,
        // so their timings are directly comparable.
        let arr = SharedU32s::new(64);
        let run = |plan: FaultPlan| {
            let m = SimMachine::with_faults(SimConfig::tiny(16), 4, plan);
            let r = m.run(|ctx| permanent_kernel(ctx, &arr)).report;
            (r.completion, r.energy.router_flit_hops, r.faults.total_events())
        };
        let clean = run(FaultPlan::zero(33));
        let armed = run(
            FaultPlan::zero(33)
                .with_dead_link(5, LinkDir::East, u64::MAX)
                .with_dead_core(4, u64::MAX)
                .with_dead_dram_ctrl(0, u64::MAX),
        );
        assert_eq!(clean, armed, "armed-never-fired faults change nothing");
        assert_eq!(armed.2, 0, "no events were injected");
    }
}
