//! Deterministic fault injection for the simulated machine.
//!
//! A [`FaultPlan`] decides, for every fault site the timing model
//! reaches, whether a fault fires there — as a *pure function* of the
//! plan's seed and the site's coordinates (source/destination router and
//! departure cycle for NoC faults; controller and arrival cycle for DRAM
//! faults; core id and time window for stall faults). No mutable RNG
//! state exists, so decisions do not depend on the order in which
//! threads reach their sites: under the deterministic scheduler the
//! whole faulty run is byte-for-byte reproducible, and two fault sites
//! never perturb each other's outcomes.
//!
//! Three fault classes are modeled:
//!
//! * **Transient NoC link faults** — a flit is corrupted in flight and
//!   the traversal is retransmitted, doubling that message's network
//!   latency and hop-flit traffic (`noc_retransmits`).
//! * **DRAM bit errors with an ECC model** — most errors are corrected
//!   in-line for free (`dram_ecc_corrected`); a configurable fraction is
//!   detected-but-uncorrectable and costs a full re-read of the line
//!   (`dram_ecc_detected`, plus one extra DRAM access of queueing,
//!   service time, and energy).
//! * **Core stall faults** — a core goes unresponsive for a fixed cycle
//!   window (a thermal throttle or micro-reset), modeled as a lump of
//!   added compute latency at the window boundary (`core_stalls`,
//!   `core_stall_cycles`).
//!
//! All rates may be zero ([`FaultPlan::zero`]): the decision functions
//! early-return before hashing anything, so a zero-rate plan is
//! *timing-invariant* — it reproduces the fault-free golden counters
//! exactly (guarded by a test in `crono-suite`).
//!
//! Beyond the transient classes, a plan may carry *permanent* faults —
//! components that die at a seeded cycle and stay dead for the rest of
//! the run ([`DeadLink`], [`DeadCore`], [`DeadDramCtrl`]). Activation is
//! a pure comparison of the observing thread's simulated clock against
//! the fault's `at_cycle`, so permanent faults inherit the same
//! determinism guarantees: no RNG state, no cross-site interference, and
//! a fault armed at `u64::MAX` (or absent) is timing-invisible.

/// Compass direction of a router's outgoing mesh link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDir {
    /// Toward higher column (`col + 1`).
    East,
    /// Toward lower column (`col - 1`).
    West,
    /// Toward higher row (`row + 1`).
    South,
    /// Toward lower row (`row - 1`).
    North,
}

impl LinkDir {
    /// Short lowercase name for reports and CLI messages.
    pub fn name(self) -> &'static str {
        match self {
            LinkDir::East => "east",
            LinkDir::West => "west",
            LinkDir::South => "south",
            LinkDir::North => "north",
        }
    }
}

/// A mesh link that fails permanently at a seeded cycle: the outgoing
/// link of `router` in direction `dir` drops every flit from `at_cycle`
/// on. Adaptive routing detours around it; XY dimension-ordered routing
/// cannot and reports a typed error instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadLink {
    /// Core/router id owning the outgoing link.
    pub router: usize,
    /// Direction of the failed outgoing link.
    pub dir: LinkDir,
    /// First simulated cycle at which the link is dead.
    pub at_cycle: u64,
}

/// A core that is disabled permanently at a seeded cycle. The runtime
/// treats it as *departed*, not hung: its task deque is drained by the
/// surviving threads and barriers re-size to the survivor set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadCore {
    /// Core id that dies.
    pub core: usize,
    /// First simulated cycle at which the core is dead (it departs at
    /// its next task or barrier boundary at or after this cycle).
    pub at_cycle: u64,
}

/// A DRAM controller that fails permanently at a seeded cycle. Its
/// address ranges are re-homed onto the survivors: accesses pay a
/// one-time migration surcharge inside a bounded window after death and
/// permanently higher queueing pressure afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadDramCtrl {
    /// Controller index that dies.
    pub ctrl: usize,
    /// First simulated cycle at which the controller is dead.
    pub at_cycle: u64,
}

/// A [`FaultPlan`] parameter rejected by [`FaultPlan::validate`], with
/// the offending field named in the message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlanError {
    /// Name of the rejected field.
    pub field: &'static str,
    /// One-line human-readable description.
    pub message: String,
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for FaultPlanError {}

/// Outcome of the ECC check on one DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccOutcome {
    /// No bit error.
    Clean,
    /// Single-bit error corrected in-line; no timing cost.
    Corrected,
    /// Multi-bit error detected but not correctable; the line is
    /// re-read from the array (one extra DRAM access).
    Detected,
}

/// A seeded, deterministic fault-injection plan (see the module docs).
///
/// `Copy` on purpose: every simulated thread context carries its own
/// copy, and decisions are pure functions, so there is no shared state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed mixed into every decision hash.
    pub seed: u64,
    /// Per-traversal probability of a transient NoC link fault.
    pub noc_rate: f64,
    /// Per-access probability of a DRAM bit error.
    pub dram_rate: f64,
    /// Fraction of DRAM bit errors that are detected-but-uncorrectable
    /// (the rest are corrected for free).
    pub dram_detected_fraction: f64,
    /// Per-(core, window) probability of a core stall fault.
    pub stall_rate: f64,
    /// Cycles a stalled core loses.
    pub stall_cycles: u64,
    /// Width in cycles of the stall-decision windows.
    pub stall_window: u64,
    /// Permanently failed mesh link, if any.
    pub dead_link: Option<DeadLink>,
    /// Permanently disabled core, if any.
    pub dead_core: Option<DeadCore>,
    /// Permanently failed DRAM controller, if any.
    pub dead_dram_ctrl: Option<DeadDramCtrl>,
}

/// splitmix64 finalizer — a well-mixed 64-bit hash step.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Maps `rate` in `[0, 1]` onto a u64 threshold for `hash < threshold`.
#[inline]
fn threshold(rate: f64) -> u64 {
    if rate >= 1.0 {
        u64::MAX
    } else {
        (rate * u64::MAX as f64) as u64
    }
}

// Domain-separation constants so the three fault classes draw from
// independent hash streams even at identical site coordinates.
const DOMAIN_NOC: u64 = 0x4e4f_435f_4641_554c; // "NOC_FAUL"
const DOMAIN_DRAM: u64 = 0x4452_414d_5f45_4343; // "DRAM_ECC"
const DOMAIN_STALL: u64 = 0x5354_414c_4c5f_4342; // "STALL_CB"

impl FaultPlan {
    /// A plan with every rate zero: injects nothing and — because the
    /// decision functions early-return before hashing — is exactly
    /// timing-invariant with running without a plan at all.
    pub fn zero(seed: u64) -> Self {
        FaultPlan {
            seed,
            noc_rate: 0.0,
            dram_rate: 0.0,
            dram_detected_fraction: 0.25,
            stall_rate: 0.0,
            stall_cycles: 2_000,
            stall_window: 50_000,
            dead_link: None,
            dead_core: None,
            dead_dram_ctrl: None,
        }
    }

    /// Arms a permanent dead-link fault (builder style).
    pub fn with_dead_link(mut self, router: usize, dir: LinkDir, at_cycle: u64) -> Self {
        self.dead_link = Some(DeadLink {
            router,
            dir,
            at_cycle,
        });
        self
    }

    /// Arms a permanent dead-core fault (builder style).
    pub fn with_dead_core(mut self, core: usize, at_cycle: u64) -> Self {
        self.dead_core = Some(DeadCore { core, at_cycle });
        self
    }

    /// Arms a permanent dead-DRAM-controller fault (builder style).
    pub fn with_dead_dram_ctrl(mut self, ctrl: usize, at_cycle: u64) -> Self {
        self.dead_dram_ctrl = Some(DeadDramCtrl { ctrl, at_cycle });
        self
    }

    /// Whether the plan carries any permanent fault (armed, even if its
    /// activation cycle is never reached).
    pub fn has_permanent(&self) -> bool {
        self.dead_link.is_some() || self.dead_core.is_some() || self.dead_dram_ctrl.is_some()
    }

    /// The single-knob plan used by the `crono faults` sweep: NoC and
    /// DRAM fault rates equal `rate`; core stalls are much rarer events,
    /// so their per-window probability is scaled up (`rate * 32`,
    /// clamped) to stay observable at the sweep's low rates.
    pub fn scaled(seed: u64, rate: f64) -> Self {
        FaultPlan {
            noc_rate: rate,
            dram_rate: rate,
            stall_rate: (rate * 32.0).min(1.0),
            ..FaultPlan::zero(seed)
        }
    }

    /// Validates the plan's parameters: every rate must be a finite
    /// probability in `[0, 1]` (NaN, negative, and `> 1.0` are all
    /// rejected) and the stall window must be positive.
    ///
    /// # Errors
    ///
    /// Returns a [`FaultPlanError`] naming the first offending field.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        for (name, rate) in [
            ("noc_rate", self.noc_rate),
            ("dram_rate", self.dram_rate),
            ("dram_detected_fraction", self.dram_detected_fraction),
            ("stall_rate", self.stall_rate),
        ] {
            if !(rate.is_finite() && (0.0..=1.0).contains(&rate)) {
                return Err(FaultPlanError {
                    field: name,
                    message: format!("{name} must be a probability in [0, 1], got {rate}"),
                });
            }
        }
        if self.stall_window == 0 {
            return Err(FaultPlanError {
                field: "stall_window",
                message: "stall_window must be positive".to_string(),
            });
        }
        Ok(())
    }

    /// Whether the plan can ever inject anything (transient rates all
    /// zero and no permanent fault armed).
    pub fn is_zero(&self) -> bool {
        self.noc_rate <= 0.0
            && self.dram_rate <= 0.0
            && self.stall_rate <= 0.0
            && !self.has_permanent()
    }

    #[inline]
    fn draw(&self, domain: u64, a: u64, b: u64, c: u64) -> u64 {
        let mut h = splitmix64(self.seed ^ domain);
        h = splitmix64(h ^ a);
        h = splitmix64(h ^ b);
        splitmix64(h ^ c)
    }

    /// Does the traversal departing router `from` for router `to` at
    /// cycle `depart` suffer a transient link fault?
    #[inline]
    pub fn noc_fault(&self, from: usize, to: usize, depart: u64) -> bool {
        if self.noc_rate <= 0.0 {
            return false;
        }
        self.draw(DOMAIN_NOC, from as u64, to as u64, depart) < threshold(self.noc_rate)
    }

    /// ECC outcome of the DRAM access at controller `ctrl` arriving at
    /// cycle `arrive`.
    #[inline]
    pub fn dram_fault(&self, ctrl: usize, arrive: u64) -> EccOutcome {
        if self.dram_rate <= 0.0 {
            return EccOutcome::Clean;
        }
        let h = self.draw(DOMAIN_DRAM, ctrl as u64, arrive, 0);
        if h >= threshold(self.dram_rate) {
            return EccOutcome::Clean;
        }
        // A second, independent draw decides correctable vs. detected.
        if splitmix64(h) < threshold(self.dram_detected_fraction) {
            EccOutcome::Detected
        } else {
            EccOutcome::Corrected
        }
    }

    /// Does core `core` stall during decision window `window`
    /// (`window = clock / stall_window`)?
    #[inline]
    pub fn core_stall(&self, core: usize, window: u64) -> bool {
        if self.stall_rate <= 0.0 {
            return false;
        }
        self.draw(DOMAIN_STALL, core as u64, window, 0) < threshold(self.stall_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultPlan::scaled(7, 0.01);
        let b = FaultPlan::scaled(7, 0.01);
        for site in 0..1000u64 {
            assert_eq!(a.noc_fault(3, 9, site), b.noc_fault(3, 9, site));
            assert_eq!(a.dram_fault(1, site), b.dram_fault(1, site));
            assert_eq!(a.core_stall(5, site), b.core_stall(5, site));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::scaled(1, 0.5);
        let b = FaultPlan::scaled(2, 0.5);
        let diverges = (0..200u64).any(|s| a.noc_fault(0, 1, s) != b.noc_fault(0, 1, s));
        assert!(diverges, "two seeds should not produce identical streams");
    }

    #[test]
    fn zero_plan_never_fires() {
        let p = FaultPlan::zero(42);
        assert!(p.is_zero());
        for site in 0..10_000u64 {
            assert!(!p.noc_fault(0, 255, site));
            assert_eq!(p.dram_fault(3, site), EccOutcome::Clean);
            assert!(!p.core_stall(17, site));
        }
    }

    #[test]
    fn higher_rates_fire_more_often() {
        let count = |rate: f64| {
            let p = FaultPlan::scaled(11, rate);
            (0..20_000u64).filter(|&s| p.noc_fault(2, 7, s)).count()
        };
        let low = count(0.001);
        let high = count(0.1);
        assert!(high > low, "rate 0.1 ({high}) should out-fire 0.001 ({low})");
        // Sanity: 0.1 over 20k sites lands in a generous window.
        assert!((1000..3500).contains(&high), "got {high}");
    }

    #[test]
    fn ecc_splits_between_corrected_and_detected() {
        let p = FaultPlan::scaled(13, 1.0); // every access faults
        let mut corrected = 0;
        let mut detected = 0;
        for site in 0..4_000u64 {
            match p.dram_fault(0, site) {
                EccOutcome::Corrected => corrected += 1,
                EccOutcome::Detected => detected += 1,
                EccOutcome::Clean => panic!("rate 1.0 must always fault"),
            }
        }
        // detected_fraction is 0.25: expect roughly 1000 of 4000.
        assert!(corrected > detected, "{corrected} vs {detected}");
        assert!((500..1600).contains(&detected), "got {detected}");
    }

    #[test]
    fn validate_rejects_out_of_range_rates() {
        for bad in [1.5, -0.1, f64::NAN, f64::INFINITY] {
            let err = FaultPlan {
                noc_rate: bad,
                ..FaultPlan::zero(0)
            }
            .validate()
            .expect_err("out-of-range noc_rate must be rejected");
            assert_eq!(err.field, "noc_rate");
            assert!(
                err.message.contains("noc_rate") && err.message.contains("probability"),
                "message must name the field: {}",
                err.message
            );
        }
        let err = FaultPlan {
            dram_detected_fraction: -2.0,
            ..FaultPlan::zero(0)
        }
        .validate()
        .expect_err("negative fraction must be rejected");
        assert_eq!(err.field, "dram_detected_fraction");
    }

    #[test]
    fn validate_rejects_zero_window() {
        let err = FaultPlan {
            stall_window: 0,
            ..FaultPlan::zero(0)
        }
        .validate()
        .expect_err("zero stall_window must be rejected");
        assert_eq!(err.field, "stall_window");
        assert!(err.message.contains("stall_window"));
    }

    #[test]
    fn validate_accepts_sound_plans() {
        assert!(FaultPlan::zero(7).validate().is_ok());
        assert!(FaultPlan::scaled(7, 0.5).validate().is_ok());
        assert!(FaultPlan::zero(7)
            .with_dead_link(5, LinkDir::East, 1_000)
            .with_dead_core(3, 2_000)
            .with_dead_dram_ctrl(1, 3_000)
            .validate()
            .is_ok());
    }

    #[test]
    fn permanent_faults_flip_is_zero_but_armed_plans_stay_valid() {
        let p = FaultPlan::zero(9);
        assert!(p.is_zero());
        assert!(!p.has_permanent());
        let armed = p.with_dead_core(0, u64::MAX);
        assert!(armed.has_permanent());
        assert!(!armed.is_zero(), "armed plan is not the zero plan");
        assert_eq!(armed.dead_core, Some(DeadCore { core: 0, at_cycle: u64::MAX }));
    }
}
