//! Property-based tests on the simulator's building blocks.

use crono_sim::{
    home_of, CacheConfig, L1Cache, L1Lookup, L1State, Mesh, MeshConfig, RoutingPolicy,
    SetAssocCache, SharerSet,
};
use proptest::prelude::*;
use std::collections::HashSet;

fn mesh_cfg(contention: bool, routing: RoutingPolicy) -> MeshConfig {
    MeshConfig {
        hop_latency: 2,
        flit_bits: 64,
        link_contention: contention,
        routing,
    }
}

proptest! {
    #[test]
    fn cache_never_exceeds_capacity(
        lines in proptest::collection::vec(0u64..1000, 1..200),
        sets in 1usize..8,
        assoc in 1usize..4,
    ) {
        let mut cache = SetAssocCache::new(sets, assoc);
        let mut resident: HashSet<u64> = HashSet::new();
        for line in lines {
            if cache.peek(line).is_none() {
                if let Some((evicted, ())) = cache.insert(line, ()) {
                    prop_assert!(resident.remove(&evicted));
                }
                resident.insert(line);
            }
            prop_assert!(cache.len() <= sets * assoc);
            prop_assert_eq!(cache.len(), resident.len());
        }
    }

    #[test]
    fn cache_lookup_after_insert_hits_until_eviction(
        lines in proptest::collection::vec(0u64..64, 1..100),
    ) {
        let mut cache = SetAssocCache::new(4, 2);
        for line in lines {
            if cache.lookup(line).is_none() {
                cache.insert(line, line * 10);
            }
            prop_assert_eq!(cache.peek(line), Some(&(line * 10)));
        }
    }

    #[test]
    fn sharer_count_is_consistent(ops in proptest::collection::vec((0u16..32, prop::bool::ANY), 1..100)) {
        let mut s = SharerSet::new(4);
        let mut reference: HashSet<u16> = HashSet::new();
        let mut overflowed = false;
        for (core, add) in ops {
            if add {
                // The protocol never re-adds a core that holds the line.
                if !reference.contains(&core) {
                    s.add(core);
                    reference.insert(core);
                }
            } else if reference.remove(&core) {
                s.remove(core);
            }
            if s.is_broadcast() {
                overflowed = true;
            }
            if !overflowed {
                prop_assert_eq!(s.count(), reference.len() as u32);
            }
            // Precise mode never under-reports a real sharer.
            if !s.is_broadcast() {
                for &c in &reference {
                    prop_assert!(s.may_contain(c));
                }
            }
        }
    }

    #[test]
    fn mesh_traversal_is_minimal_and_monotonic(
        from in 0usize..64, to in 0usize..64, depart in 0u64..10_000, flits in 1u64..10,
    ) {
        let mesh = Mesh::new(64, mesh_cfg(false, RoutingPolicy::XyDimensionOrder));
        let t = mesh.traverse(from, to, depart, flits);
        prop_assert_eq!(t.flit_hops, mesh.hops(from, to) * flits);
        prop_assert!(t.arrival >= depart);
        prop_assert_eq!(t.arrival, depart + mesh.ideal_latency(mesh.hops(from, to), flits));
    }

    #[test]
    fn o1turn_routes_are_also_minimal(
        from in 0usize..64, to in 0usize..64, depart in 0u64..10_000,
    ) {
        let mesh = Mesh::new(64, mesh_cfg(false, RoutingPolicy::O1Turn));
        let t = mesh.traverse(from, to, depart, 1);
        prop_assert_eq!(t.flit_hops, mesh.hops(from, to));
    }

    #[test]
    fn contention_only_adds_delay(
        msgs in proptest::collection::vec((0usize..16, 0usize..16, 0u64..2_000), 1..50),
    ) {
        let contended = Mesh::new(16, mesh_cfg(true, RoutingPolicy::XyDimensionOrder));
        let ideal = Mesh::new(16, mesh_cfg(false, RoutingPolicy::XyDimensionOrder));
        for (from, to, depart) in msgs {
            let a = contended.traverse(from, to, depart, 9);
            let b = ideal.traverse(from, to, depart, 9);
            prop_assert!(a.arrival >= b.arrival);
            prop_assert_eq!(a.flit_hops, b.flit_hops);
        }
    }

    #[test]
    fn home_mapping_is_stable_and_in_range(line in 0u64..1_000_000, cores in 1usize..512) {
        let h = home_of(line, cores);
        prop_assert!(h < cores);
        prop_assert_eq!(h, home_of(line, cores));
    }

    #[test]
    fn l1_miss_classification_is_total(
        accesses in proptest::collection::vec((0u64..32, prop::bool::ANY), 1..200),
    ) {
        let mut l1 = L1Cache::with_geometry(
            &CacheConfig { size_bytes: 512, associativity: 2, latency: 1 },
            64,
        );
        let mut seen: HashSet<u64> = HashSet::new();
        for (line, write) in accesses {
            match l1.access(line, write) {
                L1Lookup::Hit => {}
                lookup => {
                    let upgrade = lookup == L1Lookup::UpgradeMiss;
                    let class = l1.classify_miss(line, upgrade);
                    if !seen.contains(&line) {
                        prop_assert_eq!(class, crono_sim::MissClass::Cold);
                    }
                    if upgrade {
                        l1.promote(line);
                    } else {
                        let state = if write { L1State::Modified } else { L1State::Shared };
                        l1.fill(line, state);
                    }
                    seen.insert(line);
                }
            }
        }
    }
}
