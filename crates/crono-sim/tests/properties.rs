//! Property-based tests on the simulator's building blocks.
//!
//! Formerly driven by `proptest`; now a seeded loop over the in-tree
//! `crono_graph::rng` PRNG so the suite is deterministic and builds
//! offline.

use crono_graph::rng::SmallRng;
use crono_sim::{
    home_of, CacheConfig, L1Cache, L1Lookup, L1State, Mesh, MeshConfig, RoutingPolicy,
    SetAssocCache, SharerSet,
};
use std::collections::HashSet;

const CASES: u64 = 48;

fn mesh_cfg(contention: bool, routing: RoutingPolicy) -> MeshConfig {
    MeshConfig {
        hop_latency: 2,
        flit_bits: 64,
        link_contention: contention,
        routing,
    }
}

#[test]
fn cache_never_exceeds_capacity() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xC100 + case);
        let sets = rng.random_range(1..8usize);
        let assoc = rng.random_range(1..4usize);
        let count = rng.random_range(1..200usize);
        let mut cache = SetAssocCache::new(sets, assoc);
        let mut resident: HashSet<u64> = HashSet::new();
        for _ in 0..count {
            let line = rng.random_range(0..1000u64);
            if cache.peek(line).is_none() {
                if let Some((evicted, ())) = cache.insert(line, ()) {
                    assert!(resident.remove(&evicted));
                }
                resident.insert(line);
            }
            assert!(cache.len() <= sets * assoc);
            assert_eq!(cache.len(), resident.len());
        }
    }
}

#[test]
fn cache_lookup_after_insert_hits_until_eviction() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xC200 + case);
        let count = rng.random_range(1..100usize);
        let mut cache = SetAssocCache::new(4, 2);
        for _ in 0..count {
            let line = rng.random_range(0..64u64);
            if cache.lookup(line).is_none() {
                cache.insert(line, line * 10);
            }
            assert_eq!(cache.peek(line), Some(&(line * 10)));
        }
    }
}

#[test]
fn sharer_count_is_consistent() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xC300 + case);
        let count = rng.random_range(1..100usize);
        let mut s = SharerSet::new(4);
        let mut reference: HashSet<u16> = HashSet::new();
        let mut overflowed = false;
        for _ in 0..count {
            let core = rng.random_range(0..32u32) as u16;
            let add: bool = rng.random();
            if add {
                // The protocol never re-adds a core that holds the line.
                if !reference.contains(&core) {
                    s.add(core);
                    reference.insert(core);
                }
            } else if reference.remove(&core) {
                s.remove(core);
            }
            if s.is_broadcast() {
                overflowed = true;
            }
            if !overflowed {
                assert_eq!(s.count(), reference.len() as u32);
            }
            // Precise mode never under-reports a real sharer.
            if !s.is_broadcast() {
                for &c in &reference {
                    assert!(s.may_contain(c));
                }
            }
        }
    }
}

#[test]
fn mesh_traversal_is_minimal_and_monotonic() {
    let mesh = Mesh::new(64, mesh_cfg(false, RoutingPolicy::XyDimensionOrder));
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xC400 + case);
        let from = rng.random_range(0..64usize);
        let to = rng.random_range(0..64usize);
        let depart = rng.random_range(0..10_000u64);
        let flits = rng.random_range(1..10u64);
        let t = mesh.traverse(from, to, depart, flits);
        assert_eq!(t.flit_hops, mesh.hops(from, to) * flits);
        assert!(t.arrival >= depart);
        assert_eq!(t.arrival, depart + mesh.ideal_latency(mesh.hops(from, to), flits));
    }
}

#[test]
fn o1turn_routes_are_also_minimal() {
    let mesh = Mesh::new(64, mesh_cfg(false, RoutingPolicy::O1Turn));
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xC500 + case);
        let from = rng.random_range(0..64usize);
        let to = rng.random_range(0..64usize);
        let depart = rng.random_range(0..10_000u64);
        let t = mesh.traverse(from, to, depart, 1);
        assert_eq!(t.flit_hops, mesh.hops(from, to));
    }
}

#[test]
fn contention_only_adds_delay() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xC600 + case);
        let contended = Mesh::new(16, mesh_cfg(true, RoutingPolicy::XyDimensionOrder));
        let ideal = Mesh::new(16, mesh_cfg(false, RoutingPolicy::XyDimensionOrder));
        let count = rng.random_range(1..50usize);
        for _ in 0..count {
            let from = rng.random_range(0..16usize);
            let to = rng.random_range(0..16usize);
            let depart = rng.random_range(0..2_000u64);
            let a = contended.traverse(from, to, depart, 9);
            let b = ideal.traverse(from, to, depart, 9);
            assert!(a.arrival >= b.arrival);
            assert_eq!(a.flit_hops, b.flit_hops);
        }
    }
}

#[test]
fn home_mapping_is_stable_and_in_range() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xC700 + case);
        let line = rng.random_range(0..1_000_000u64);
        let cores = rng.random_range(1..512usize);
        let h = home_of(line, cores);
        assert!(h < cores);
        assert_eq!(h, home_of(line, cores));
    }
}

#[test]
fn l1_miss_classification_is_total() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xC800 + case);
        let count = rng.random_range(1..200usize);
        let mut l1 = L1Cache::with_geometry(
            &CacheConfig { size_bytes: 512, associativity: 2, latency: 1 },
            64,
        );
        let mut seen: HashSet<u64> = HashSet::new();
        for _ in 0..count {
            let line = rng.random_range(0..32u64);
            let write: bool = rng.random();
            match l1.access(line, write) {
                L1Lookup::Hit => {}
                lookup => {
                    let upgrade = lookup == L1Lookup::UpgradeMiss;
                    let class = l1.classify_miss(line, upgrade);
                    if !seen.contains(&line) {
                        assert_eq!(class, crono_sim::MissClass::Cold);
                    }
                    if upgrade {
                        l1.promote(line);
                    } else {
                        let state = if write { L1State::Modified } else { L1State::Shared };
                        l1.fill(line, state);
                    }
                    seen.insert(line);
                }
            }
        }
    }
}
