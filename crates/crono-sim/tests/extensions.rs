//! Tests for the §VII future-work extensions: locality-aware coherence
//! and O1TURN oblivious routing.

use crono_runtime::{alloc_region, Machine, SharedU32s, ThreadCtx};
use crono_sim::{Mesh, MeshConfig, RoutingPolicy, SimConfig, SimMachine};

fn mesh_cfg(routing: RoutingPolicy) -> MeshConfig {
    MeshConfig {
        hop_latency: 2,
        flit_bits: 64,
        link_contention: true,
        routing,
    }
}

#[test]
fn o1turn_spreads_load_over_both_route_families() {
    // Saturate one source-destination pair: XY pushes everything through
    // the same links, O1TURN splits between the XY and YX paths, so the
    // worst arrival improves.
    let worst = |routing| {
        let mesh = Mesh::new(64, mesh_cfg(routing));
        (0..64)
            .map(|_| mesh.traverse(0, 63, 0, 9).arrival)
            .max()
            .unwrap()
    };
    let xy = worst(RoutingPolicy::XyDimensionOrder);
    let o1 = worst(RoutingPolicy::O1Turn);
    assert!(o1 < xy, "o1turn {o1} must beat xy {xy} under saturation");
}

#[test]
fn o1turn_preserves_hop_counts() {
    let mesh = Mesh::new(64, mesh_cfg(RoutingPolicy::O1Turn));
    for (from, to) in [(0usize, 63usize), (7, 56), (12, 34)] {
        let t = mesh.traverse(from, to, 1_000_000, 1);
        assert_eq!(t.flit_hops, mesh.hops(from, to), "minimal routes only");
    }
}

#[test]
fn locality_aware_first_touch_is_not_cached() {
    // A streaming scan touches every line exactly once: with the
    // locality-aware protocol nothing should be allocated, so a second
    // pass (reuse) allocates and hits thereafter.
    let config = SimConfig {
        locality_aware: true,
        ..SimConfig::tiny(16)
    };
    let region = alloc_region(64 * 64);
    let machine = SimMachine::new(config, 1);
    let outcome = machine.run(|ctx| {
        for pass in 0..3 {
            for i in 0..32 {
                ctx.load(region.addr(i * 16, 4));
            }
            let _ = pass;
        }
    });
    let m = &outcome.report.misses;
    // Pass 1: 32 remote (cold) accesses; pass 2: 32 allocating misses;
    // pass 3: hits (tiny(16) L1 holds 16 lines, so some capacity misses
    // remain — but far fewer than 32).
    assert_eq!(m.cold_misses, 32);
    assert!(m.l1d_misses() >= 64, "two passes of misses: {m:?}");
}

#[test]
fn locality_aware_reduces_invalidation_traffic_for_migratory_data() {
    // Each thread's first (and only) touch of the shared counter line is
    // served remotely, so no L1 copies exist and no invalidations fly.
    let run = |locality_aware: bool| {
        let config = SimConfig {
            locality_aware,
            ..SimConfig::tiny(16)
        };
        let counter = SharedU32s::new(1);
        let machine = SimMachine::new(config, 8);
        let outcome = machine.run(|ctx| {
            counter.fetch_add(ctx, 0, 1);
            ctx.barrier();
        });
        assert_eq!(counter.get_plain(0), 8);
        outcome.report.breakdown().l2home_sharers
    };
    let baseline = run(false);
    let locality = run(true);
    assert!(
        locality <= baseline,
        "remote single-touch updates need no owner fetches: {locality} vs {baseline}"
    );
}

#[test]
fn msi_mode_pays_upgrade_where_mesi_writes_silently() {
    // Read-then-write of a private line: MESI grants E on the read (the
    // write is a silent E->M hit); MSI grants S and the write needs an
    // upgrade transaction.
    let run = |enable_e_state: bool| {
        let config = SimConfig {
            enable_e_state,
            ..SimConfig::tiny(16)
        };
        let region = alloc_region(64);
        let machine = SimMachine::new(config, 1);
        machine
            .run(|ctx| {
                ctx.load(region.addr(0, 4));
                ctx.store(region.addr(0, 4));
            })
            .report
    };
    let mesi = run(true);
    let msi = run(false);
    assert!(
        msi.completion > mesi.completion,
        "MSI upgrade must cost cycles: msi={} mesi={}",
        msi.completion,
        mesi.completion
    );
    assert_eq!(mesi.misses.sharing_misses, 0);
    assert_eq!(msi.misses.sharing_misses, 1, "the upgrade classifies as sharing");
}

#[test]
fn locality_aware_results_stay_correct() {
    let config = SimConfig {
        locality_aware: true,
        ..SimConfig::tiny(16)
    };
    let arr = SharedU32s::new(64);
    let machine = SimMachine::new(config, 4);
    machine.run(|ctx| {
        for i in 0..64 {
            arr.fetch_add(ctx, i, 1);
        }
    });
    assert!(arr.to_vec().iter().all(|&v| v == 4));
}
