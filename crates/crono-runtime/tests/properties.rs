//! Property-based tests for the execution-abstraction crate.

use crono_runtime::{
    alloc_region, LockSet, Machine, NativeMachine, SharedF64s, SharedU32s, SharedU64s,
    ThreadCtx, TrackedVec, LINE_SIZE,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn regions_never_overlap(sizes in proptest::collection::vec(1u64..10_000, 1..50)) {
        let regions: Vec<_> = sizes.iter().map(|&s| alloc_region(s)).collect();
        for (i, a) in regions.iter().enumerate() {
            prop_assert_eq!(a.base().raw() % LINE_SIZE, 0);
            for b in regions.iter().skip(i + 1) {
                let a_end = a.base().raw() + a.bytes();
                let b_end = b.base().raw() + b.bytes();
                prop_assert!(a_end <= b.base().raw() || b_end <= a.base().raw());
            }
        }
    }

    #[test]
    fn element_addresses_are_within_region(len in 1usize..500, elem in 1u64..16) {
        let r = alloc_region(len as u64 * elem);
        for i in 0..len {
            let a = r.addr(i, elem);
            prop_assert!(a.raw() >= r.base().raw());
            prop_assert!(a.raw() + elem <= r.base().raw() + r.bytes());
        }
    }

    #[test]
    fn shared_u32_concurrent_adds_sum_exactly(
        threads in 1usize..6, per_thread in 1usize..200,
    ) {
        let arr = SharedU32s::new(1);
        NativeMachine::new(threads).run(|ctx| {
            for _ in 0..per_thread {
                arr.fetch_add(ctx, 0, 1);
            }
        });
        prop_assert_eq!(arr.get_plain(0) as usize, threads * per_thread);
    }

    #[test]
    fn shared_f64_adds_commute(values in proptest::collection::vec(-100.0f64..100.0, 1..32)) {
        let arr = SharedF64s::filled(1, 0.0);
        let expected: f64 = values.iter().sum();
        NativeMachine::new(4).run(|ctx| {
            for (i, v) in values.iter().enumerate() {
                if i % 4 == ctx.thread_id() {
                    arr.fetch_add(ctx, 0, *v);
                }
            }
        });
        prop_assert!((arr.get_plain(0) - expected).abs() < 1e-6);
    }

    #[test]
    fn fetch_min_finds_global_minimum(values in proptest::collection::vec(0u32..10_000, 1..64)) {
        let arr = SharedU32s::filled(1, u32::MAX);
        let min = *values.iter().min().unwrap();
        NativeMachine::new(4).run(|ctx| {
            for (i, v) in values.iter().enumerate() {
                if i % 4 == ctx.thread_id() {
                    arr.fetch_min(ctx, 0, *v);
                }
            }
        });
        prop_assert_eq!(arr.get_plain(0), min);
    }

    #[test]
    fn lock_protected_counter_is_exact(threads in 1usize..5, rounds in 1usize..100) {
        let locks = LockSet::new(1);
        let counter = SharedU64s::new(1);
        NativeMachine::new(threads).run(|ctx| {
            for _ in 0..rounds {
                ctx.lock(&locks, 0);
                let v = counter.get(ctx, 0);
                counter.set(ctx, 0, v + 1);
                ctx.unlock(&locks, 0);
            }
        });
        prop_assert_eq!(counter.get_plain(0) as usize, threads * rounds);
    }

    #[test]
    fn tracked_vec_behaves_like_vec(writes in proptest::collection::vec((0usize..32, 0u64..1000), 0..100)) {
        NativeMachine::new(1).run(|ctx| {
            let mut tracked = TrackedVec::filled(32, 0u64);
            let mut reference = vec![0u64; 32];
            for &(i, v) in &writes {
                tracked.set(ctx, i, v);
                reference[i] = v;
            }
            assert_eq!(tracked.as_slice(), &reference[..]);
        });
    }

    #[test]
    fn instruction_counts_are_deterministic_per_thread(ops in 1u32..500) {
        let outcome = NativeMachine::new(3).run(|ctx| {
            ctx.compute(ops);
            ctx.instructions()
        });
        for &count in &outcome.per_thread {
            prop_assert_eq!(count, ops as u64);
        }
        prop_assert_eq!(outcome.report.variability(), 0.0);
    }
}
