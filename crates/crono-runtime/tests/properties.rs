//! Property-based tests for the execution-abstraction crate.
//!
//! Formerly driven by `proptest`; now a seeded loop over the in-tree
//! `crono_graph::rng` PRNG so the suite is deterministic and builds
//! offline.

use crono_graph::rng::SmallRng;
use crono_runtime::{
    alloc_region, LockSet, Machine, NativeMachine, SharedF64s, SharedU32s, SharedU64s,
    ThreadCtx, TrackedVec, LINE_SIZE,
};

const CASES: u64 = 32;

#[test]
fn regions_never_overlap() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xB100 + case);
        let count = rng.random_range(1..50usize);
        let sizes: Vec<u64> = (0..count).map(|_| rng.random_range(1..10_000u64)).collect();
        let regions: Vec<_> = sizes.iter().map(|&s| alloc_region(s)).collect();
        for (i, a) in regions.iter().enumerate() {
            assert_eq!(a.base().raw() % LINE_SIZE, 0);
            for b in regions.iter().skip(i + 1) {
                let a_end = a.base().raw() + a.bytes();
                let b_end = b.base().raw() + b.bytes();
                assert!(a_end <= b.base().raw() || b_end <= a.base().raw());
            }
        }
    }
}

#[test]
fn element_addresses_are_within_region() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xB200 + case);
        let len = rng.random_range(1..500usize);
        let elem = rng.random_range(1..16u64);
        let r = alloc_region(len as u64 * elem);
        for i in 0..len {
            let a = r.addr(i, elem);
            assert!(a.raw() >= r.base().raw());
            assert!(a.raw() + elem <= r.base().raw() + r.bytes());
        }
    }
}

#[test]
fn shared_u32_concurrent_adds_sum_exactly() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xB300 + case);
        let threads = rng.random_range(1..6usize);
        let per_thread = rng.random_range(1..200usize);
        let arr = SharedU32s::new(1);
        NativeMachine::new(threads).run(|ctx| {
            for _ in 0..per_thread {
                arr.fetch_add(ctx, 0, 1);
            }
        });
        assert_eq!(arr.get_plain(0) as usize, threads * per_thread);
    }
}

#[test]
fn shared_f64_adds_commute() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xB400 + case);
        let count = rng.random_range(1..32usize);
        let values: Vec<f64> = (0..count)
            .map(|_| rng.random_range(-100.0..100.0f64))
            .collect();
        let arr = SharedF64s::filled(1, 0.0);
        let expected: f64 = values.iter().sum();
        NativeMachine::new(4).run(|ctx| {
            for (i, v) in values.iter().enumerate() {
                if i % 4 == ctx.thread_id() {
                    arr.fetch_add(ctx, 0, *v);
                }
            }
        });
        assert!((arr.get_plain(0) - expected).abs() < 1e-6);
    }
}

#[test]
fn fetch_min_finds_global_minimum() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xB500 + case);
        let count = rng.random_range(1..64usize);
        let values: Vec<u32> = (0..count).map(|_| rng.random_range(0..10_000u32)).collect();
        let arr = SharedU32s::filled(1, u32::MAX);
        let min = *values.iter().min().unwrap();
        NativeMachine::new(4).run(|ctx| {
            for (i, v) in values.iter().enumerate() {
                if i % 4 == ctx.thread_id() {
                    arr.fetch_min(ctx, 0, *v);
                }
            }
        });
        assert_eq!(arr.get_plain(0), min);
    }
}

#[test]
fn lock_protected_counter_is_exact() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xB600 + case);
        let threads = rng.random_range(1..5usize);
        let rounds = rng.random_range(1..100usize);
        let locks = LockSet::new(1);
        let counter = SharedU64s::new(1);
        NativeMachine::new(threads).run(|ctx| {
            for _ in 0..rounds {
                ctx.lock(&locks, 0);
                let v = counter.get(ctx, 0);
                counter.set(ctx, 0, v + 1);
                ctx.unlock(&locks, 0);
            }
        });
        assert_eq!(counter.get_plain(0) as usize, threads * rounds);
    }
}

#[test]
fn tracked_vec_behaves_like_vec() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xB700 + case);
        let count = rng.random_range(0..100usize);
        let writes: Vec<(usize, u64)> = (0..count)
            .map(|_| (rng.random_range(0..32usize), rng.random_range(0..1000u64)))
            .collect();
        NativeMachine::new(1).run(|ctx| {
            let mut tracked = TrackedVec::filled(32, 0u64);
            let mut reference = vec![0u64; 32];
            for &(i, v) in &writes {
                tracked.set(ctx, i, v);
                reference[i] = v;
            }
            assert_eq!(tracked.as_slice(), &reference[..]);
        });
    }
}

#[test]
fn instruction_counts_are_deterministic_per_thread() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xB800 + case);
        let ops = rng.random_range(1..500u32);
        let outcome = NativeMachine::new(3).run(|ctx| {
            ctx.compute(ops);
            ctx.instructions()
        });
        for &count in &outcome.per_thread {
            assert_eq!(count, ops as u64);
        }
        assert_eq!(outcome.report.variability(), 0.0);
    }
}
