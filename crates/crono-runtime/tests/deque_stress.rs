//! Seeded stress/property tests for the work-stealing task layer.
//!
//! The Chase–Lev deque and the `TaskPool` termination protocol carry the
//! PR-5 ablation kernels, so these tests hammer them with real threads
//! on the native backend: single-owner push/pop against concurrent
//! stealers, spawning workloads that grow the task set while it drains,
//! and the `fetch_min` bound primitive the lock-free TSP publishes
//! through. Every run is seeded; failures reproduce.

use crono_runtime::{
    Addr, LockSet, Machine, NativeMachine, SharedU64s, Steal, TaskPool, ThreadCtx, WorkDeque,
};

/// splitmix64, for seeded per-test task values.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One owner pushes and pops; every other thread steals relentlessly.
/// Every pushed task must be seen exactly once, whether popped by the
/// owner or stolen.
#[test]
fn owner_vs_stealers_loses_and_duplicates_nothing() {
    for &threads in &[2usize, 4, 8, 16] {
        let tasks: u64 = 10_000;
        let machine = NativeMachine::new(threads);
        let deque = WorkDeque::new(1024);
        let seen = SharedU64s::new(tasks as usize);
        let done = SharedU64s::new(1);
        machine.run(|ctx| {
            if ctx.thread_id() == 0 {
                // Owner: interleave pushes with occasional pops.
                let mut state = 41 + threads as u64;
                let mut next = 0u64;
                while next < tasks {
                    if deque.push(ctx, next) {
                        next += 1;
                    }
                    if mix(&mut state) % 4 == 0 {
                        if let Some(task) = deque.pop(ctx) {
                            seen.fetch_add(ctx, task as usize, 1);
                        }
                    }
                }
                while let Some(task) = deque.pop(ctx) {
                    seen.fetch_add(ctx, task as usize, 1);
                }
                done.set(ctx, 0, 1);
            } else {
                loop {
                    match deque.steal(ctx) {
                        Steal::Taken(task) => {
                            seen.fetch_add(ctx, task as usize, 1);
                        }
                        Steal::Retry => {}
                        Steal::Empty => {
                            if done.get(ctx, 0) == 1 && deque.is_empty() {
                                break;
                            }
                        }
                    }
                }
            }
        });
        let counts = seen.to_vec();
        let bad: Vec<_> = counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 1)
            .take(8)
            .collect();
        assert!(
            bad.is_empty(),
            "threads={threads}: tasks seen != once (task, count): {bad:?}"
        );
    }
}

/// A spawning workload: each task may push children into the pool while
/// it drains. The pending-counter termination must not let any thread
/// exit while work is in flight, and no task may run twice.
#[test]
fn pool_spawning_workload_terminates_exactly() {
    for &threads in &[2usize, 4, 8, 16] {
        let roots: u64 = 640;
        // Each root r spawns children 2r+1 and 2r+2 while id < total.
        let total: u64 = 10_000;
        let machine = NativeMachine::new(threads);
        let pool = TaskPool::new(threads, 4096, 1234 + threads as u64);
        for r in 0..roots {
            assert!(pool.push_plain((r % threads as u64) as usize, r));
        }
        let seen = SharedU64s::new(total as usize);
        machine.run(|ctx| {
            loop {
                let Some(task) = pool.try_take(ctx) else {
                    if pool.pending_total(ctx) == 0 {
                        break;
                    }
                    continue;
                };
                seen.fetch_add(ctx, task as usize, 1);
                for child in [2 * task + roots, 2 * task + roots + 1] {
                    if child < total {
                        // Overflow would lose the child silently; the
                        // ring is sized so it cannot happen here.
                        assert!(pool.push(ctx, child), "deque overflow");
                    }
                }
                pool.complete(ctx);
            }
        });
        let counts = seen.to_vec();
        let missed = counts.iter().filter(|&&c| c == 0).count();
        let duped = counts.iter().filter(|&&c| c > 1).count();
        // Reachable ids: roots plus every spawned child below `total`.
        let mut reachable = vec![false; total as usize];
        for r in 0..roots {
            reachable[r as usize] = true;
        }
        for id in 0..total {
            if reachable[id as usize] {
                for child in [2 * id + roots, 2 * id + roots + 1] {
                    if child < total {
                        reachable[child as usize] = true;
                    }
                }
            }
        }
        for (id, (&c, &r)) in counts.iter().zip(reachable.iter()).enumerate() {
            assert_eq!(
                c,
                r as u64,
                "threads={threads}: task {id} ran {c} times (reachable={r})"
            );
        }
        assert_eq!((missed, duped), (counts.iter().filter(|&&c| c == 0).count(), 0));
    }
}

/// Bulk stealing under contention: one owner keeps a deep deque while
/// every other thread drains it through `steal_half`, repatriating the
/// surplus into its own deque and popping that locally. No task may be
/// lost or seen twice, whatever the interleaving of top CASes, owner
/// pops, and concurrent bulk thieves.
#[test]
fn steal_half_under_contention_loses_and_duplicates_nothing() {
    for &threads in &[2usize, 4, 8, 16] {
        let tasks: u64 = 10_000;
        let machine = NativeMachine::new(threads);
        let victim = WorkDeque::new(2048);
        let locals: Vec<WorkDeque> = (0..threads).map(|_| WorkDeque::new(2048)).collect();
        let seen = SharedU64s::new(tasks as usize);
        let done = SharedU64s::new(1);
        machine.run(|ctx| {
            let tid = ctx.thread_id();
            if tid == 0 {
                // Owner: keep the deque deep (push bursts), pop some.
                let mut state = 77 + threads as u64;
                let mut next = 0u64;
                while next < tasks {
                    for _ in 0..64 {
                        if next < tasks && victim.push(ctx, next) {
                            next += 1;
                        }
                    }
                    if mix(&mut state) % 4 == 0 {
                        if let Some(task) = victim.pop(ctx) {
                            seen.fetch_add(ctx, task as usize, 1);
                        }
                    }
                }
                while let Some(task) = victim.pop(ctx) {
                    seen.fetch_add(ctx, task as usize, 1);
                }
                done.set(ctx, 0, 1);
            } else {
                let mine = &locals[tid];
                loop {
                    match victim.steal_half(ctx, mine) {
                        Steal::Taken(task) => {
                            seen.fetch_add(ctx, task as usize, 1);
                            while let Some(t) = mine.pop(ctx) {
                                seen.fetch_add(ctx, t as usize, 1);
                            }
                        }
                        Steal::Retry => {}
                        Steal::Empty => {
                            if done.get(ctx, 0) == 1 && victim.is_empty() {
                                break;
                            }
                        }
                    }
                }
            }
        });
        let counts = seen.to_vec();
        let bad: Vec<_> = counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 1)
            .take(8)
            .collect();
        assert!(
            bad.is_empty(),
            "threads={threads}: tasks seen != once (task, count): {bad:?}"
        );
    }
}

/// A delegating context that permanently departs on command — the
/// runtime-level contract of [`ThreadCtx::departed`] without needing a
/// simulated machine: once `dead` flips, the pool must return `None` to
/// this thread at the next task boundary while the survivors keep
/// draining.
struct DyingCtx<'a, C: ThreadCtx> {
    inner: &'a mut C,
    dead: bool,
}

impl<C: ThreadCtx> ThreadCtx for DyingCtx<'_, C> {
    fn thread_id(&self) -> usize {
        self.inner.thread_id()
    }
    fn num_threads(&self) -> usize {
        self.inner.num_threads()
    }
    fn load(&mut self, addr: Addr) {
        self.inner.load(addr)
    }
    fn store(&mut self, addr: Addr) {
        self.inner.store(addr)
    }
    fn rmw(&mut self, addr: Addr) {
        self.inner.rmw(addr)
    }
    fn compute(&mut self, cycles: u32) {
        self.inner.compute(cycles)
    }
    fn lock(&mut self, set: &LockSet, idx: usize) {
        self.inner.lock(set, idx)
    }
    fn unlock(&mut self, set: &LockSet, idx: usize) {
        self.inner.unlock(set, idx)
    }
    fn barrier(&mut self) {
        self.inner.barrier()
    }
    fn record_active(&mut self, active: u64) {
        self.inner.record_active(active)
    }
    fn instructions(&self) -> u64 {
        self.inner.instructions()
    }
    fn departed(&self) -> bool {
        self.dead
    }
}

/// A mid-run core death: one thread departs after a few takes, leaving
/// most of its seeded deque behind. The survivors' take loops — driven
/// by the outstanding counter — must steal and run the dead core's
/// queued tasks exactly once, and the dead thread must get `None` at
/// its next task boundary (never a task, never a hang).
#[test]
fn departed_core_backlog_drains_exactly_once_on_survivors() {
    for &threads in &[2usize, 4, 8] {
        let tasks: u64 = 4_000;
        let machine = NativeMachine::new(threads);
        let pool = TaskPool::new(threads, 8192, 21 + threads as u64);
        for t in 0..tasks {
            assert!(pool.push_plain((t % threads as u64) as usize, t));
        }
        let seen = SharedU64s::new(tasks as usize);
        let outcome = machine.run(|ctx| {
            let dies = ctx.thread_id() == 1;
            let mut ctx = DyingCtx {
                inner: ctx,
                dead: false,
            };
            let mut taken = 0u64;
            while let Some(task) = pool.take(&mut ctx) {
                seen.fetch_add(&mut ctx, task as usize, 1);
                taken += 1;
                if dies && taken == 3 {
                    // The task just taken still finishes (it already
                    // ran above); departure lands at the next boundary.
                    ctx.dead = true;
                }
            }
            taken
        });
        // At most 3: the dead thread stops at its 3rd take (it may take
        // fewer when the survivors drain everything first — native
        // threads race the pool for real).
        assert!(
            outcome.per_thread[1] <= 3,
            "threads={threads}: the dead thread took {} tasks past its death",
            outcome.per_thread[1]
        );
        assert_eq!(outcome.per_thread.iter().sum::<u64>(), tasks);
        let counts = seen.to_vec();
        let bad: Vec<_> = counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 1)
            .take(8)
            .collect();
        assert!(
            bad.is_empty(),
            "threads={threads}: tasks seen != once (task, count): {bad:?}"
        );
    }
}

/// `SharedU64s::fetch_min` must behave like an atomic min: under
/// concurrent publication of seeded candidate bounds, the final value is
/// the global minimum, and each thread's *returned previous value* never
/// increases (the bound is monotone non-increasing).
#[test]
fn fetch_min_linearizes_to_global_minimum() {
    for &threads in &[2usize, 4, 8, 16] {
        let per_thread = 2500u64;
        let machine = NativeMachine::new(threads);
        let best = SharedU64s::filled(1, u64::MAX);
        let outcome = machine.run(|ctx| {
            let mut state = 0xc0ffee ^ (ctx.thread_id() as u64) << 17;
            let mut local_min = u64::MAX;
            let mut last_prev = u64::MAX;
            for _ in 0..per_thread {
                let candidate = mix(&mut state) % 1_000_000;
                local_min = local_min.min(candidate);
                let prev = best.fetch_min(ctx, 0, candidate);
                assert!(
                    prev <= last_prev,
                    "observed bound increased: {prev} after {last_prev}"
                );
                last_prev = prev.min(candidate);
                // Once published, the bound can never exceed our min.
                assert!(best.get(ctx, 0) <= local_min);
            }
            local_min
        });
        let expect = outcome.per_thread.iter().copied().min().expect("threads");
        assert_eq!(
            best.get_plain(0),
            expect,
            "threads={threads}: final bound is the global minimum"
        );
    }
}
