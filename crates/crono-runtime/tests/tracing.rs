//! Zero-overhead guarantees of the trace hooks.
//!
//! The tracer must be free when it is off: (1) the `ThreadCtx` trace
//! hooks default to no-ops, so backends that never override them compile
//! kernels identical to a build without the tracer, and (2) the native
//! backend with tracing disabled reports exactly the same instruction
//! counts as the same kernel under a tracing-enabled machine — recording
//! never perturbs the measured workload.

use crono_runtime::{
    Addr, LockSet, Machine, NativeMachine, SharedU64s, ThreadCtx,
};
use crono_trace::TraceConfig;

/// A minimal context that relies entirely on the trait's default trace
/// hooks — the "build without the tracer" reference.
struct BareCtx {
    instructions: u64,
}

impl ThreadCtx for BareCtx {
    fn thread_id(&self) -> usize {
        0
    }
    fn num_threads(&self) -> usize {
        1
    }
    fn load(&mut self, _addr: Addr) {
        self.instructions += 1;
    }
    fn store(&mut self, _addr: Addr) {
        self.instructions += 1;
    }
    fn rmw(&mut self, _addr: Addr) {
        self.instructions += 1;
    }
    fn compute(&mut self, cycles: u32) {
        self.instructions += cycles as u64;
    }
    fn lock(&mut self, set: &LockSet, idx: usize) {
        self.instructions += 1;
        set.acquire_raw(idx);
    }
    fn unlock(&mut self, set: &LockSet, idx: usize) {
        self.instructions += 1;
        set.release_raw(idx);
    }
    fn barrier(&mut self) {
        self.instructions += 1;
    }
    fn record_active(&mut self, _active: u64) {}
    fn instructions(&self) -> u64 {
        self.instructions
    }
}

/// The workload both machines run: every hook class, deterministic
/// instruction count.
fn kernel<C: ThreadCtx>(ctx: &mut C, locks: &LockSet, cells: &SharedU64s) {
    ctx.span_begin("phase");
    for i in 0..64 {
        cells.fetch_add(ctx, i % 4, 1);
        ctx.compute(3);
        ctx.trace_instant("i", i as u64);
    }
    ctx.lock(locks, 0);
    ctx.compute(10);
    ctx.unlock(locks, 0);
    ctx.barrier();
    ctx.span_end("phase");
}

#[test]
fn default_trace_hooks_are_noops() {
    let mut ctx = BareCtx { instructions: 0 };
    let before = ctx.instructions();
    ctx.span_begin("anything");
    ctx.trace_instant("anything", 123);
    ctx.span_end("anything");
    assert!(!ctx.tracing(), "default tracing() is off");
    assert_eq!(
        ctx.instructions(),
        before,
        "default hooks must not touch any state"
    );
}

#[test]
fn native_tracing_off_matches_traced_instruction_counts() {
    let run = |machine: &NativeMachine| {
        let locks = LockSet::new(4);
        let cells = SharedU64s::new(4);
        let outcome = machine.run(|ctx| kernel(ctx, &locks, &cells));
        outcome
            .report
            .threads
            .iter()
            .map(|t| t.instructions)
            .collect::<Vec<u64>>()
    };
    let plain = run(&NativeMachine::new(4));
    let plain_again = run(&NativeMachine::new(4));
    let traced = run(&NativeMachine::with_tracing(4, TraceConfig::default()));
    assert_eq!(plain, plain_again, "kernel instruction counts deterministic");
    assert_eq!(
        plain, traced,
        "tracing must never perturb the instruction stream"
    );
}

#[test]
fn traced_machine_reports_traces_untraced_reports_none() {
    let locks = LockSet::new(4);
    let cells = SharedU64s::new(4);
    let plain = NativeMachine::new(2).run(|ctx| kernel(ctx, &locks, &cells));
    assert!(plain.report.threads.iter().all(|t| t.trace.is_none()));

    let cells2 = SharedU64s::new(4);
    let traced = NativeMachine::with_tracing(2, TraceConfig::default())
        .run(|ctx| kernel(ctx, &locks, &cells2));
    for t in &traced.report.threads {
        let trace = t.trace.as_ref().expect("trace attached");
        assert!(trace.events.iter().any(|e| e.name == "phase"));
        assert_eq!(trace.dropped, 0);
    }
}
