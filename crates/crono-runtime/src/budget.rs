//! Per-task instruction budgets: a delegating [`ThreadCtx`] wrapper
//! whose cancellation flag also trips when the wrapped context has
//! charged more than a fixed number of modeled instructions since the
//! wrapper was created.
//!
//! This is how the serving engine enforces *per-query deadlines* on top
//! of the PR-4 cancellation machinery without any new kernel hooks: the
//! reentrant point-query kernels already poll [`ThreadCtx::cancelled`]
//! at their loop heads, so wrapping their context in a [`BudgetCtx`]
//! makes an over-budget query drain out at the next poll — exactly the
//! way a watchdog-cancelled run drains out — while every other query on
//! the machine keeps running. Because the budget is counted in modeled
//! instructions (deterministic for a fixed query against a fixed graph),
//! the abort point is schedule-independent: the same query against the
//! same graph always stops at the same place, on any thread, in any run.

use crate::ctx::ThreadCtx;
use crate::{Addr, LockSet};

/// A [`ThreadCtx`] that reports cancellation once `budget` modeled
/// instructions have been charged through it (or when the inner context
/// is itself cancelled).
///
/// # Examples
///
/// ```
/// use crono_runtime::{BudgetCtx, Machine, NativeMachine, ThreadCtx};
///
/// NativeMachine::new(1).run(|ctx| {
///     let mut b = BudgetCtx::new(ctx, 10);
///     while !b.cancelled() {
///         b.compute(4);
///     }
///     assert!(b.exhausted());
///     assert!(b.spent() >= 10);
/// });
/// ```
#[derive(Debug)]
pub struct BudgetCtx<'a, C: ThreadCtx> {
    inner: &'a mut C,
    start: u64,
    budget: u64,
}

impl<'a, C: ThreadCtx> BudgetCtx<'a, C> {
    /// Wraps `inner`, allowing `budget` further modeled instructions.
    pub fn new(inner: &'a mut C, budget: u64) -> Self {
        let start = inner.instructions();
        BudgetCtx {
            inner,
            start,
            budget,
        }
    }

    /// Instructions charged through this wrapper so far.
    pub fn spent(&self) -> u64 {
        self.inner.instructions().saturating_sub(self.start)
    }

    /// Whether the budget has been used up (independent of whether the
    /// inner context was cancelled for other reasons).
    pub fn exhausted(&self) -> bool {
        self.spent() >= self.budget
    }

    /// The configured budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }
}

impl<C: ThreadCtx> ThreadCtx for BudgetCtx<'_, C> {
    fn thread_id(&self) -> usize {
        self.inner.thread_id()
    }

    fn num_threads(&self) -> usize {
        self.inner.num_threads()
    }

    fn load(&mut self, addr: Addr) {
        self.inner.load(addr);
    }

    fn store(&mut self, addr: Addr) {
        self.inner.store(addr);
    }

    fn rmw(&mut self, addr: Addr) {
        self.inner.rmw(addr);
    }

    fn compute(&mut self, cycles: u32) {
        self.inner.compute(cycles);
    }

    fn lock(&mut self, set: &LockSet, idx: usize) {
        self.inner.lock(set, idx);
    }

    fn unlock(&mut self, set: &LockSet, idx: usize) {
        self.inner.unlock(set, idx);
    }

    fn barrier(&mut self) {
        self.inner.barrier();
    }

    fn record_active(&mut self, active: u64) {
        self.inner.record_active(active);
    }

    fn instructions(&self) -> u64 {
        self.inner.instructions()
    }

    fn cycles(&self) -> u64 {
        self.inner.cycles()
    }

    fn span_begin(&mut self, name: &'static str) {
        self.inner.span_begin(name);
    }

    fn span_end(&mut self, name: &'static str) {
        self.inner.span_end(name);
    }

    fn trace_instant(&mut self, name: &'static str, value: u64) {
        self.inner.trace_instant(name, value);
    }

    fn tracing(&self) -> bool {
        self.inner.tracing()
    }

    /// Budget exhaustion reads as cancellation, so kernels that poll at
    /// loop heads drain out. The poll itself charges nothing — budgets
    /// never change what a run *would* have charged.
    fn cancelled(&self) -> bool {
        self.inner.cancelled() || self.exhausted()
    }

    fn departed(&self) -> bool {
        self.inner.departed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::native::NativeMachine;

    #[test]
    fn budget_trips_cancellation_deterministically() {
        let spent = NativeMachine::new(1)
            .run(|ctx| {
                let mut b = BudgetCtx::new(ctx, 100);
                let mut iters = 0u64;
                while !b.cancelled() {
                    b.compute(7);
                    iters += 1;
                }
                assert!(b.exhausted());
                (b.spent(), iters)
            })
            .per_thread
            .pop()
            .expect("one thread");
        // 7 cycles per iteration: cancelled after ceil(100/7) = 15 iters.
        assert_eq!(spent, (7 * 15, 15));
    }

    #[test]
    fn untouched_budget_is_not_cancelled() {
        NativeMachine::new(1).run(|ctx| {
            ctx.compute(1_000); // spent *before* wrapping must not count
            let b = BudgetCtx::new(ctx, 1);
            assert!(!b.cancelled());
            assert_eq!(b.spent(), 0);
        });
    }

    #[test]
    fn zero_budget_cancels_immediately() {
        NativeMachine::new(1).run(|ctx| {
            let b = BudgetCtx::new(ctx, 0);
            assert!(b.cancelled());
            assert!(b.exhausted());
        });
    }
}
