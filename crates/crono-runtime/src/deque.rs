//! Work-stealing task layer: a Chase–Lev per-thread deque plus a
//! [`TaskPool`] facade that distributes tasks across threads.
//!
//! CRONO distributes the task-parallel benchmarks (APSP, BETW_CENT by
//! vertex capture; TSP, DFS by branch-and-bound over a lock-guarded
//! stack) through *one shared point of serialization* — an atomic
//! counter or an atomic lock (Table I). At high core counts that single
//! line becomes the hot spot the traces flag (`lock_hold`,
//! `dir_broadcast`). The task layer here is the classic alternative:
//! each thread owns a bounded Chase–Lev deque ("Dynamic circular
//! work-stealing deque", SPAA'05), pushes and pops work at the *bottom*
//! without contention, and idle threads steal from the *top* of a
//! victim's deque, spreading the coherence traffic over one line per
//! owner instead of one line total.
//!
//! Everything is charged through [`ThreadCtx`]: the deque owns a
//! symbolic [`Region`] whose `top`/`bottom` words and task slots are
//! modeled like any other shared memory, so the simulator's timing model
//! sees the new traffic pattern (owner-local pushes mostly hit the
//! private L1; steals ping the owner's `bottom`/slot lines).
//!
//! This crate is `#![forbid(unsafe_code)]`, so unlike textbook Chase–Lev
//! the ring is a fixed-capacity `Vec<AtomicU64>` and `push` *refuses*
//! (returns `false`) when the ring is full instead of growing it —
//! callers keep an overflow list (natural for DFS, whose kernel already
//! keeps a private stack). Refusing at capacity also removes the
//! classic ABA window: a slot is never reused until its element was
//! popped or stolen.
//!
//! Victim selection is seeded and deterministic ([`TaskPool::steal_order`]
//! is a splitmix64 permutation of the other threads), so under the
//! simulator's deterministic sequencer the whole schedule — and
//! therefore every simulated counter — is reproducible run to run.
//!
//! # Examples
//!
//! ```
//! use crono_runtime::{Machine, NativeMachine, SharedU64s, TaskPool, ThreadCtx};
//!
//! let machine = NativeMachine::new(4);
//! let pool = TaskPool::new(4, 256, 42);
//! // Pre-seed tasks 0..100 round-robin before the timed region.
//! for t in 0..100u64 {
//!     pool.push_plain(t as usize % 4, t);
//! }
//! let done = SharedU64s::new(1);
//! machine.run(|ctx| {
//!     while let Some(task) = pool.take(ctx) {
//!         done.fetch_add(ctx, 0, task);
//!     }
//! });
//! assert_eq!(done.get_plain(0), (0..100).sum::<u64>());
//! ```

use crate::addr::{alloc_region, Addr, Region};
use crate::ctx::ThreadCtx;
use std::sync::atomic::{AtomicU64, Ordering};

/// Ring slots reserved ahead of the task area for the `top` and `bottom`
/// words (each on its own cache line, to keep owner pops and thief CASes
/// from false-sharing).
const HEADER_LINES: usize = 2;

/// A bounded, single-owner, multi-thief Chase–Lev deque of `u64` tasks.
///
/// * The **owner** pushes and pops at the *bottom* — no CAS except for
///   the last-element race against thieves.
/// * **Thieves** steal at the *top* with a compare-exchange.
/// * Capacity is fixed (power of two); [`WorkDeque::push`] returns
///   `false` when full and the caller keeps the task elsewhere.
///
/// Every operation reports its memory accesses through the caller's
/// [`ThreadCtx`] against the deque's symbolic [`Region`].
#[derive(Debug)]
pub struct WorkDeque {
    top: AtomicU64,
    bottom: AtomicU64,
    slots: Vec<AtomicU64>,
    mask: u64,
    region: Region,
}

impl WorkDeque {
    /// A deque holding at most `capacity` tasks (rounded up to a power
    /// of two).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "deque needs capacity > 0");
        let cap = capacity.next_power_of_two();
        let mut slots = Vec::with_capacity(cap);
        slots.resize_with(cap, || AtomicU64::new(0));
        let region = alloc_region((HEADER_LINES * 64 + cap * 8) as u64);
        WorkDeque {
            top: AtomicU64::new(0),
            bottom: AtomicU64::new(0),
            slots,
            mask: (cap - 1) as u64,
            region,
        }
    }

    /// Slot capacity (a power of two).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Symbolic address of the `top` word (its own cache line).
    fn top_addr(&self) -> Addr {
        self.region.addr_padded(0)
    }

    /// Symbolic address of the `bottom` word (its own cache line).
    fn bottom_addr(&self) -> Addr {
        self.region.addr_padded(1)
    }

    /// Symbolic address of ring slot `i`.
    fn slot_addr(&self, i: u64) -> Addr {
        self.region
            .addr(HEADER_LINES * 8 + (i & self.mask) as usize, 8)
    }

    /// Owner-side push at the bottom. Returns `false` (task not
    /// enqueued) when the ring is full.
    pub fn push<C: ThreadCtx>(&self, ctx: &mut C, task: u64) -> bool {
        let b = self.bottom.load(Ordering::SeqCst);
        let t = self.top.load(Ordering::SeqCst);
        ctx.load(self.top_addr());
        if b.wrapping_sub(t) >= self.slots.len() as u64 {
            return false;
        }
        self.slots[(b & self.mask) as usize].store(task, Ordering::SeqCst);
        ctx.store(self.slot_addr(b));
        self.bottom.store(b.wrapping_add(1), Ordering::SeqCst);
        ctx.store(self.bottom_addr());
        true
    }

    /// Owner-side push performed *outside* the timed region (workload
    /// seeding), charging no context. Returns `false` when full.
    pub fn push_plain(&self, task: u64) -> bool {
        let b = self.bottom.load(Ordering::SeqCst);
        let t = self.top.load(Ordering::SeqCst);
        if b.wrapping_sub(t) >= self.slots.len() as u64 {
            return false;
        }
        self.slots[(b & self.mask) as usize].store(task, Ordering::SeqCst);
        self.bottom.store(b.wrapping_add(1), Ordering::SeqCst);
        true
    }

    /// Owner-side pop at the bottom (LIFO). `None` when empty.
    pub fn pop<C: ThreadCtx>(&self, ctx: &mut C) -> Option<u64> {
        let b = self.bottom.load(Ordering::SeqCst);
        let t = self.top.load(Ordering::SeqCst);
        if t >= b {
            return None;
        }
        let nb = b.wrapping_sub(1);
        // Reserve the bottom slot before reading it: publishing the
        // decremented bottom is what blocks thieves past it.
        self.bottom.store(nb, Ordering::SeqCst);
        ctx.rmw(self.bottom_addr());
        let t = self.top.load(Ordering::SeqCst);
        ctx.load(self.top_addr());
        if t > nb {
            // A thief took the last element first; restore bottom.
            self.bottom.store(b, Ordering::SeqCst);
            return None;
        }
        let task = self.slots[(nb & self.mask) as usize].load(Ordering::SeqCst);
        ctx.load(self.slot_addr(nb));
        if t == nb {
            // Last element: race the thieves for it via top.
            let won = self
                .top
                .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::SeqCst)
                .is_ok();
            ctx.rmw(self.top_addr());
            self.bottom.store(b, Ordering::SeqCst);
            return won.then_some(task);
        }
        Some(task)
    }

    /// Owner-only pop for deques that are provably never stolen from
    /// (see [`TaskPool::take_fixed`]'s depth-one fast path). Without
    /// thieves the Chase–Lev protocol degenerates to a private stack:
    /// no bottom publication, no store-load fence, no last-element CAS —
    /// just the slot read (the index lives in a register). The caller is
    /// responsible for the no-thief guarantee.
    fn pop_private<C: ThreadCtx>(&self, ctx: &mut C) -> Option<u64> {
        let b = self.bottom.load(Ordering::SeqCst);
        let t = self.top.load(Ordering::SeqCst);
        if t >= b {
            return None;
        }
        let nb = b.wrapping_sub(1);
        self.bottom.store(nb, Ordering::SeqCst);
        let task = self.slots[(nb & self.mask) as usize].load(Ordering::SeqCst);
        ctx.load(self.slot_addr(nb));
        Some(task)
    }

    /// Thief-side steal at the top (FIFO). `Steal::Empty` when nothing
    /// is visible, `Steal::Retry` when a race was lost and the thief
    /// should try again (possibly elsewhere).
    pub fn steal<C: ThreadCtx>(&self, ctx: &mut C) -> Steal {
        let t = self.top.load(Ordering::SeqCst);
        ctx.load(self.top_addr());
        let b = self.bottom.load(Ordering::SeqCst);
        ctx.load(self.bottom_addr());
        if t >= b {
            return Steal::Empty;
        }
        let task = self.slots[(t & self.mask) as usize].load(Ordering::SeqCst);
        ctx.load(self.slot_addr(t));
        let won = self
            .top
            .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::SeqCst)
            .is_ok();
        ctx.rmw(self.top_addr());
        if won {
            Steal::Taken(task)
        } else {
            Steal::Retry
        }
    }

    /// Bulk steal for deep victims: takes up to *half* of the tasks
    /// visible at entry, returning the first in `Steal::Taken` and
    /// pushing the remainder into `dest` — the **thief's own** deque
    /// (owner-side pushes, so only the thief may pass its deque here,
    /// and `dest` must not alias `self`).
    ///
    /// Each element is still claimed with its own top CAS — the price of
    /// staying inside the proven single-steal protocol without `unsafe`
    /// (a single CAS over a *range* of slots races owner pops of the
    /// interior elements). The win is trip amortization: one probe round
    /// repatriates a backlog the thief then drains from its private
    /// bottom, instead of re-probing (and re-pinging the victim's
    /// `top`/`bottom` lines) once per task.
    ///
    /// Stops early — keeping what it already took — when a CAS race is
    /// lost, the victim drains, or `dest` refuses (full ring).
    pub fn steal_half<C: ThreadCtx>(&self, ctx: &mut C, dest: &WorkDeque) -> Steal {
        let t = self.top.load(Ordering::SeqCst);
        ctx.load(self.top_addr());
        let b = self.bottom.load(Ordering::SeqCst);
        ctx.load(self.bottom_addr());
        if t >= b {
            return Steal::Empty;
        }
        let want = b.wrapping_sub(t).div_ceil(2);
        let mut first = None;
        for _ in 0..want {
            // Check room *before* stealing an extra: only the thief
            // pushes into `dest`, so room cannot shrink underneath us,
            // and we never hold a task we have nowhere to put.
            if first.is_some() && dest.len() >= dest.capacity() {
                break;
            }
            match self.steal(ctx) {
                Steal::Taken(task) => match first {
                    None => first = Some(task),
                    Some(_) => {
                        let pushed = dest.push(ctx, task);
                        debug_assert!(pushed, "room was checked above");
                        if !pushed {
                            return Steal::Taken(task);
                        }
                    }
                },
                // Someone else is stealing here too; the backlog is
                // being balanced regardless, so stop competing.
                Steal::Retry if first.is_none() => return Steal::Retry,
                Steal::Empty | Steal::Retry => break,
            }
        }
        match first {
            Some(task) => Steal::Taken(task),
            None => Steal::Empty,
        }
    }

    /// Tasks currently visible (racy; exact only when quiescent).
    pub fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::SeqCst);
        let t = self.top.load(Ordering::SeqCst);
        b.wrapping_sub(t).min(self.slots.len() as u64) as usize
    }

    /// Whether the deque is (racily) empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Result of a [`WorkDeque::steal`] attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal {
    /// A task was stolen.
    Taken(u64),
    /// The deque was observed empty.
    Empty,
    /// A CAS race was lost; the victim was not empty at the time.
    Retry,
}

/// Victims probed per [`TaskPool::try_take`] attempt. Bounding the probe
/// (instead of scanning every other deque) keeps an idle thread's cost
/// per retry O(1) in the thread count; a rotating per-thief cursor
/// guarantees every victim is still reached within `(threads - 1) /
/// PROBE_VICTIMS` attempts.
const PROBE_VICTIMS: usize = 4;

/// Victims probed by a [`TaskPool::take_fixed`] exit round. Fixed task
/// sets drain mostly through their owners (the own-deque pop comes
/// first), so the probe round exists only for late-stage balancing and
/// is kept narrower than [`PROBE_VICTIMS`]: the probe loads land on the
/// exit path of *every* thread at once, right when a uniform kernel's
/// workers all finish together.
const PROBE_VICTIMS_FIXED: usize = 2;

/// Idle backoff bounds for [`TaskPool::take`], in modeled compute
/// cycles. An empty-handed retry charges the current backoff and doubles
/// it up to the cap, so threads that ran out of work stop hammering the
/// deque lines (and, under the deterministic sequencer, stop consuming
/// scheduling turns) while stragglers finish.
const IDLE_BACKOFF_MIN: u32 = 32;
const IDLE_BACKOFF_MAX: u32 = 4096;

/// Victim backlog at which a probe upgrades from a single steal to
/// [`WorkDeque::steal_half`]. Below this the victim's owner drains its
/// own deque faster than bulk repatriation pays for itself; above it the
/// thief takes half the backlog home in one trip instead of re-probing
/// per task.
const STEAL_HALF_DEPTH: usize = 4;

/// One work-stealing deque per thread plus seeded victim selection and
/// exact termination detection.
///
/// Tasks are plain `u64`s (kernels encode vertex / branch ids). The pool
/// tracks *outstanding* work with a single cache-padded counter:
/// incremented when a task enters a deque, decremented by whichever
/// thread finishes processing it ([`TaskPool::complete`]).
/// [`TaskPool::take`] returns `None` only once that counter reads zero —
/// so spawning kernels (DFS pushes children while draining) never
/// terminate while work is still in flight.
#[derive(Debug)]
pub struct TaskPool {
    deques: Vec<WorkDeque>,
    /// Tasks entered minus completed, across all deques.
    outstanding: AtomicU64,
    outstanding_region: Region,
    /// Per-thief rotation into its steal order (single-writer host-side
    /// bookkeeping, the moral equivalent of a register — not charged).
    cursors: Vec<AtomicU64>,
    /// Which deques were ever seeded ([`TaskPool::push_plain`]) or
    /// pushed to. Fixed-set sweeps skip the rest: scheduling metadata
    /// known before the run (each worker could carry it in a register),
    /// so the skip is not charged.
    seeded: Vec<AtomicU64>,
    /// Deepest any deque has ever been (tasks pushed, ignoring drains).
    /// For fixed sets this is the initial deal depth — pre-run
    /// scheduling metadata, so consulting it is not charged. When it is
    /// `<= 1` no deque can ever hold a backlog, and
    /// [`TaskPool::take_fixed`] skips its probe round entirely: stealing
    /// a victim's *only* task cannot shorten completion (its owner pops
    /// it immediately anyway), so the probes would be pure exit-path
    /// coherence traffic.
    max_depth: AtomicU64,
    seed: u64,
}

impl TaskPool {
    /// A pool of `threads` deques, each with `capacity` slots, with
    /// seeded-deterministic victim order derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or `capacity == 0`.
    pub fn new(threads: usize, capacity: usize, seed: u64) -> Self {
        assert!(threads > 0, "pool needs at least one deque");
        let mut deques = Vec::with_capacity(threads);
        deques.resize_with(threads, || WorkDeque::new(capacity));
        let mut cursors = Vec::with_capacity(threads);
        cursors.resize_with(threads, || AtomicU64::new(0));
        let mut seeded = Vec::with_capacity(threads);
        seeded.resize_with(threads, || AtomicU64::new(0));
        TaskPool {
            deques,
            outstanding: AtomicU64::new(0),
            outstanding_region: alloc_region(64),
            cursors,
            seeded,
            max_depth: AtomicU64::new(0),
            seed,
        }
    }

    /// Number of deques (== threads).
    pub fn num_deques(&self) -> usize {
        self.deques.len()
    }

    /// Direct access to thread `tid`'s deque.
    pub fn deque(&self, tid: usize) -> &WorkDeque {
        &self.deques[tid]
    }

    /// Symbolic address of the outstanding-task counter (its own line).
    fn outstanding_addr(&self) -> Addr {
        self.outstanding_region.addr_padded(0)
    }

    /// Seeds `task` into owner `tid`'s deque *outside* the timed region
    /// (no context charges). Returns `false` when that deque is full.
    pub fn push_plain(&self, tid: usize, task: u64) -> bool {
        if self.deques[tid].push_plain(task) {
            self.outstanding.fetch_add(1, Ordering::SeqCst);
            self.seeded[tid].store(1, Ordering::SeqCst);
            self.note_depth(self.deques[tid].len() as u64);
            true
        } else {
            false
        }
    }

    /// Pushes `task` into the calling thread's own deque. Returns
    /// `false` (caller keeps the task) when the ring is full.
    pub fn push<C: ThreadCtx>(&self, ctx: &mut C, task: u64) -> bool {
        let tid = ctx.thread_id();
        if self.deques[tid].push(ctx, task) {
            self.outstanding.fetch_add(1, Ordering::SeqCst);
            ctx.rmw(self.outstanding_addr());
            self.seeded[tid].store(1, Ordering::SeqCst);
            self.note_depth(self.deques[tid].len() as u64);
            true
        } else {
            false
        }
    }

    /// Raise the high-water deque depth (host-side bookkeeping).
    fn note_depth(&self, depth: u64) {
        self.max_depth.fetch_max(depth, Ordering::SeqCst);
    }

    /// The seeded victim permutation for thief `tid`: every other thread
    /// exactly once, in an order derived from `(seed, tid)` by
    /// splitmix64 — deterministic, but de-correlated across thieves so
    /// they do not convoy on one victim.
    pub fn steal_order(&self, tid: usize) -> Vec<usize> {
        let n = self.deques.len();
        let mut order: Vec<usize> = (0..n).filter(|&v| v != tid).collect();
        let mut state = self.seed ^ (tid as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for i in (1..order.len()).rev() {
            state = splitmix64(&mut state);
            order.swap(i, (state % (i as u64 + 1)) as usize);
        }
        order
    }

    /// Takes one task: own deque first (LIFO), then steals (FIFO) from
    /// up to [`PROBE_VICTIMS`] victims of this thread's seeded order,
    /// starting at a rotating cursor so successive attempts cover
    /// everyone.
    ///
    /// Returns `None` for this *attempt* when nothing was found — which
    /// does **not** mean the pool is drained; the caller decides whether
    /// to retry ([`TaskPool::pending_total`]) or terminate.
    /// [`TaskPool::take`] wraps this into the full
    /// terminate-only-when-done loop.
    pub fn try_take<C: ThreadCtx>(&self, ctx: &mut C) -> Option<u64> {
        let tid = ctx.thread_id();
        if let Some(task) = self.deques[tid].pop(ctx) {
            return Some(task);
        }
        self.probe_round(ctx, PROBE_VICTIMS)
    }

    /// One seeded probe round: steal attempts against up to `probes`
    /// victims of this thread's order, starting at its rotating cursor.
    fn probe_round<C: ThreadCtx>(&self, ctx: &mut C, probes: usize) -> Option<u64> {
        let tid = ctx.thread_id();
        let order = self.steal_order(tid);
        if order.is_empty() {
            return None;
        }
        let start = self.cursors[tid].load(Ordering::Relaxed) as usize;
        for k in 0..probes.min(order.len()) {
            let victim = order[(start + k) % order.len()];
            if self.seeded[victim].load(Ordering::SeqCst) == 0 {
                continue;
            }
            loop {
                // Deep victims are worth a bulk steal: move half of the
                // backlog into our own deque in one trip, then drain it
                // from the private bottom. `len()` here is scheduling
                // metadata (the upgrade decision), not program data; the
                // steal itself charges every access it performs.
                let deep = self.deques[victim].len() >= STEAL_HALF_DEPTH;
                let stolen = if deep {
                    let got = self.deques[victim].steal_half(ctx, &self.deques[tid]);
                    if matches!(got, Steal::Taken(_)) {
                        // The repatriated backlog makes us a victim too.
                        self.seeded[tid].store(1, Ordering::SeqCst);
                        self.note_depth(self.deques[tid].len() as u64);
                    }
                    got
                } else {
                    self.deques[victim].steal(ctx)
                };
                match stolen {
                    Steal::Taken(task) => {
                        // Resume at the productive victim next time.
                        self.cursors[tid].store(((start + k) % order.len()) as u64, Ordering::Relaxed);
                        return Some(task);
                    }
                    Steal::Empty => break,
                    Steal::Retry => continue,
                }
            }
        }
        self.cursors[tid].store(((start + probes) % order.len()) as u64, Ordering::Relaxed);
        None
    }

    /// Take for *fixed* task sets — every task was seeded before the
    /// run ([`TaskPool::push_plain`]) and nothing is pushed while it
    /// drains. Own deque first (LIFO), then one bounded probe round
    /// ([`PROBE_VICTIMS_FIXED`] seeded victims); `None` is terminal.
    ///
    /// No completion accounting, no shared counter, no idle spinning,
    /// and crucially no full exit sweep: a thread whose own deque and
    /// probe round are both empty just leaves. That is safe for fixed
    /// sets because an owner never exits while its own deque holds work
    /// (the own-deque pop comes first), so every seeded task is drained
    /// by its owner or stolen before then — an early exit forfeits only
    /// late-stage balancing, never work. The exit path is therefore a
    /// handful of loads spread across per-owner lines, versus the
    /// capture counter's contended read-modify-write burst when all
    /// threads finish together.
    ///
    /// Do **not** use this when tasks spawn tasks; pair
    /// [`TaskPool::take`] (or [`TaskPool::try_take`]) with
    /// [`TaskPool::complete`] instead.
    pub fn take_fixed<C: ThreadCtx>(&self, ctx: &mut C) -> Option<u64> {
        let tid = ctx.thread_id();
        // A permanently dead core stops taking work at the task
        // boundary; whatever is left in its deque is stolen by the
        // survivors' probe rounds (they exit only when every deque they
        // probe is empty).
        if ctx.departed() {
            return None;
        }
        // A deal of at most one task per deque has no backlogs to
        // balance (see `max_depth`): nothing is ever stolen, so pops
        // use the private fast path, and emptiness is terminal without
        // a probe round. This gate is consistent only because *every*
        // consumer of a fixed-set pool goes through `take_fixed` — do
        // not mix with `take`/`try_take` on the same pool.
        if self.max_depth.load(Ordering::SeqCst) <= 1 {
            return self.deques[tid].pop_private(ctx);
        }
        if let Some(task) = self.deques[tid].pop(ctx) {
            return Some(task);
        }
        self.probe_round(ctx, PROBE_VICTIMS_FIXED)
    }

    /// Marks one taken task as processed. Call after the task's work —
    /// including any child [`TaskPool::push`]es — is done, so the
    /// outstanding count never dips to zero while work remains.
    pub fn complete<C: ThreadCtx>(&self, ctx: &mut C) {
        self.outstanding.fetch_sub(1, Ordering::SeqCst);
        ctx.rmw(self.outstanding_addr());
    }

    /// Tasks enqueued but not yet [`TaskPool::complete`]d.
    pub fn pending_total<C: ThreadCtx>(&self, ctx: &mut C) -> u64 {
        ctx.load(self.outstanding_addr());
        self.outstanding.load(Ordering::SeqCst)
    }

    /// Blocking take: loops [`TaskPool::try_take`] until a task arrives
    /// or the pool is *globally* done (outstanding count zero). The
    /// caller must pair each returned task with a [`TaskPool::complete`]
    /// once processed. Empty-handed retries back off exponentially
    /// ([`IDLE_BACKOFF_MIN`]..[`IDLE_BACKOFF_MAX`] modeled cycles).
    pub fn take<C: ThreadCtx>(&self, ctx: &mut C) -> Option<u64> {
        let mut backoff = IDLE_BACKOFF_MIN;
        loop {
            // A permanently dead core departs at the task boundary; the
            // survivors' take loops keep running until the outstanding
            // count — including the dead core's queued tasks, which they
            // steal — reaches zero, so every task still runs exactly
            // once.
            if ctx.departed() {
                return None;
            }
            if let Some(task) = self.try_take(ctx) {
                // Account completion eagerly for the non-spawning use
                // (fixed task sets): callers that spawn children use
                // `try_take`/`complete` directly instead.
                self.complete(ctx);
                return Some(task);
            }
            if ctx.cancelled() {
                return None;
            }
            if self.pending_total(ctx) == 0 {
                return None;
            }
            // Work is in flight elsewhere; model the retry's cost and
            // back off so stragglers keep the machine to themselves.
            ctx.compute(backoff);
            backoff = (backoff * 2).min(IDLE_BACKOFF_MAX);
        }
    }
}

/// The splitmix64 step (same constants as `crono-graph`'s seeding).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::native::NativeMachine;

    /// A context-free handle for single-threaded unit tests.
    fn with_ctx<R>(f: impl Fn(&mut crate::native::NativeCtx) -> R + Sync) -> R
    where
        R: Send,
    {
        let m = NativeMachine::new(1);
        m.run(f).per_thread.pop().expect("one thread")
    }

    #[test]
    fn push_pop_is_lifo() {
        with_ctx(|ctx| {
            let d = WorkDeque::new(8);
            for v in 0..5 {
                assert!(d.push(ctx, v));
            }
            for v in (0..5).rev() {
                assert_eq!(d.pop(ctx), Some(v));
            }
            assert_eq!(d.pop(ctx), None);
        });
    }

    #[test]
    fn steal_is_fifo_and_capacity_refuses() {
        with_ctx(|ctx| {
            let d = WorkDeque::new(4);
            for v in 0..4 {
                assert!(d.push(ctx, v));
            }
            assert!(!d.push(ctx, 99), "full ring refuses");
            assert_eq!(d.steal(ctx), Steal::Taken(0), "steals take the oldest");
            assert_eq!(d.steal(ctx), Steal::Taken(1));
            assert_eq!(d.pop(ctx), Some(3), "owner still pops the newest");
            assert!(d.push(ctx, 99), "freed slots accept again");
        });
    }

    #[test]
    fn steal_half_moves_half_into_dest() {
        with_ctx(|ctx| {
            let victim = WorkDeque::new(16);
            let thief = WorkDeque::new(16);
            for v in 0..8 {
                assert!(victim.push(ctx, v));
            }
            // Half of 8 = 4: the oldest task comes back, the next three
            // land in the thief's deque (oldest first).
            assert_eq!(victim.steal_half(ctx, &thief), Steal::Taken(0));
            assert_eq!(victim.len(), 4, "half the backlog remains");
            assert_eq!(thief.len(), 3);
            for v in (1..4).rev() {
                assert_eq!(thief.pop(ctx), Some(v), "repatriated LIFO drain");
            }
            // An empty victim reports Empty and moves nothing.
            let empty = WorkDeque::new(4);
            assert_eq!(empty.steal_half(ctx, &thief), Steal::Empty);
            assert_eq!(thief.len(), 0);
            // A full thief still gets the first task, just no surplus.
            let tiny = WorkDeque::new(2);
            assert!(tiny.push(ctx, 77));
            assert!(tiny.push(ctx, 78));
            assert_eq!(victim.steal_half(ctx, &tiny), Steal::Taken(4));
            assert_eq!(tiny.len(), 2, "no surplus forced into a full ring");
        });
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(WorkDeque::new(5).capacity(), 8);
        assert_eq!(WorkDeque::new(64).capacity(), 64);
    }

    #[test]
    fn steal_order_is_a_seeded_permutation() {
        let pool = TaskPool::new(8, 16, 7);
        for tid in 0..8 {
            let mut order = pool.steal_order(tid);
            assert_eq!(order.len(), 7);
            assert!(!order.contains(&tid));
            assert_eq!(order, pool.steal_order(tid), "deterministic");
            order.sort_unstable();
            let expect: Vec<usize> = (0..8).filter(|&v| v != tid).collect();
            assert_eq!(order, expect, "a permutation of the others");
        }
        let other = TaskPool::new(8, 16, 8);
        assert_ne!(
            (0..8).map(|t| pool.steal_order(t)).collect::<Vec<_>>(),
            (0..8).map(|t| other.steal_order(t)).collect::<Vec<_>>(),
            "different seeds give different schedules"
        );
    }

    #[test]
    fn take_fixed_drains_everything_without_accounting() {
        use crate::shared::SharedU64s;
        let threads = 4;
        let tasks = 1000u64;
        let machine = NativeMachine::new(threads);
        let pool = TaskPool::new(threads, 2048, 9);
        for t in 0..tasks {
            assert!(pool.push_plain((t % threads as u64) as usize, t));
        }
        let seen = SharedU64s::new(tasks as usize);
        machine.run(|ctx| {
            while let Some(task) = pool.take_fixed(ctx) {
                seen.fetch_add(ctx, task as usize, 1);
            }
        });
        let counts = seen.to_vec();
        assert!(
            counts.iter().all(|&c| c == 1),
            "every task exactly once: {counts:?}"
        );
    }

    #[test]
    fn pool_drains_fixed_task_set_exactly_once() {
        use crate::shared::SharedU64s;
        let threads = 4;
        let tasks = 1000u64;
        let machine = NativeMachine::new(threads);
        let pool = TaskPool::new(threads, 2048, 3);
        for t in 0..tasks {
            assert!(pool.push_plain((t % threads as u64) as usize, t));
        }
        let seen = SharedU64s::new(tasks as usize);
        machine.run(|ctx| {
            while let Some(task) = pool.take(ctx) {
                seen.fetch_add(ctx, task as usize, 1);
            }
        });
        let counts = seen.to_vec();
        assert!(
            counts.iter().all(|&c| c == 1),
            "every task exactly once: {counts:?}"
        );
    }
}
