use std::sync::atomic::{AtomicU64, Ordering};

/// Cache-line size in bytes (Table II: 64-byte lines).
pub const LINE_SIZE: u64 = 64;

/// A symbolic byte address in the benchmarks' shared address space.
///
/// Benchmarks never dereference these — real data lives in ordinary Rust
/// collections. Addresses exist so the simulated backend can model the
/// cache and coherence behavior of the *actual* data-dependent access
/// stream, exactly as Graphite's direct execution does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Addr(u64);

impl Addr {
    /// The raw byte address.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The cache-line number this address falls in.
    pub fn line(self) -> u64 {
        self.0 / LINE_SIZE
    }

    /// Byte offset within the cache line.
    pub fn line_offset(self) -> u64 {
        self.0 % LINE_SIZE
    }
}

/// A contiguous, cache-line-aligned allocation in the symbolic address
/// space, typically backing one array of a benchmark's data.
///
/// CRONO aligns all data structures to cache lines "to ensure optimal
/// performance" (§IV-F); [`alloc_region`] does the same.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    base: u64,
    bytes: u64,
}

impl Region {
    /// Base address of the region.
    pub fn base(&self) -> Addr {
        Addr(self.base)
    }

    /// Size in bytes (rounded up to a whole number of lines).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Address of element `index` in an array of `elem_size`-byte elements
    /// starting at the region base.
    ///
    /// # Panics
    ///
    /// Debug-panics if the element lies outside the region.
    pub fn addr(&self, index: usize, elem_size: u64) -> Addr {
        let off = index as u64 * elem_size;
        debug_assert!(
            off + elem_size <= self.bytes,
            "element {index} (size {elem_size}) outside region of {} bytes",
            self.bytes
        );
        Addr(self.base + off)
    }

    /// Address of element `index` when elements are padded out to one per
    /// cache line (used for contention-free per-thread slots).
    pub fn addr_padded(&self, index: usize) -> Addr {
        self.addr(index, LINE_SIZE)
    }
}

/// Allocates a fresh cache-line-aligned [`Region`] of at least `bytes`
/// bytes. Regions are unique for the lifetime of the process.
///
/// # Examples
///
/// ```
/// use crono_runtime::{alloc_region, LINE_SIZE};
///
/// let a = alloc_region(100);
/// let b = alloc_region(1);
/// assert_eq!(a.base().raw() % LINE_SIZE, 0);
/// assert!(b.base().raw() >= a.base().raw() + 128, "regions never overlap");
/// ```
pub fn alloc_region(bytes: u64) -> Region {
    static NEXT: AtomicU64 = AtomicU64::new(1 << 20); // skip a "null" zone
    let rounded = bytes.max(1).div_ceil(LINE_SIZE) * LINE_SIZE;
    let base = NEXT.fetch_add(rounded, Ordering::Relaxed);
    Region {
        base,
        bytes: rounded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_line_aligned_and_disjoint() {
        let a = alloc_region(10);
        let b = alloc_region(10);
        assert_eq!(a.base().raw() % LINE_SIZE, 0);
        assert_eq!(b.base().raw() % LINE_SIZE, 0);
        assert!(b.base().raw() >= a.base().raw() + LINE_SIZE);
    }

    #[test]
    fn element_addressing() {
        let r = alloc_region(64 * 4);
        assert_eq!(r.addr(0, 4).raw(), r.base().raw());
        assert_eq!(r.addr(16, 4).line(), r.base().line() + 1);
        assert_eq!(r.addr_padded(3).line(), r.base().line() + 3);
    }

    #[test]
    fn line_math() {
        let a = Addr(130);
        assert_eq!(a.line(), 2);
        assert_eq!(a.line_offset(), 2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "outside region")]
    fn out_of_region_element_panics() {
        let r = alloc_region(8);
        let _ = r.addr(64, 4);
    }
}
