//! Execution abstraction for the CRONO benchmarks.
//!
//! CRONO characterizes the same ten pthreads benchmarks on two targets: a
//! real multicore machine (§IV-C / §VI) and the Graphite many-core
//! simulator (§IV-B / §V). This crate provides the abstraction that makes
//! one Rust implementation of each benchmark serve both targets:
//!
//! * [`ThreadCtx`] — the per-thread execution context. Benchmarks report
//!   every shared-memory access ([`ThreadCtx::load`] / [`store`] /
//!   [`rmw`]), ALU work ([`compute`]), and synchronization
//!   ([`lock`] / [`barrier`]) through it. Contexts are generic
//!   (monomorphized), so the native backend compiles the memory hooks to
//!   nothing and runs at full host speed.
//! * [`Machine`] — a backend that spawns one [`ThreadCtx`] per thread and
//!   collects a [`RunReport`]. [`NativeMachine`] is the real-machine
//!   backend; the `crono-sim` crate provides the Graphite-style simulated
//!   backend.
//! * [`Addr`]/[`Region`] — symbolic, cache-line-aligned addresses that let
//!   the simulator model the true data-dependent access stream without the
//!   benchmarks ever touching raw pointers.
//! * [`SharedU32s`] and friends — shared atomic arrays pairing each *real*
//!   atomic operation with its symbolic address, and [`LockSet`] — real
//!   mutual exclusion paired with modeled timing.
//!
//! [`store`]: ThreadCtx::store
//! [`rmw`]: ThreadCtx::rmw
//! [`compute`]: ThreadCtx::compute
//! [`lock`]: ThreadCtx::lock
//! [`barrier`]: ThreadCtx::barrier
//!
//! # Examples
//!
//! ```
//! use crono_runtime::{Machine, NativeMachine, SharedU64s, ThreadCtx};
//!
//! let machine = NativeMachine::new(4);
//! let sums = SharedU64s::new(1);
//! let outcome = machine.run(|ctx| {
//!     sums.fetch_add(ctx, 0, ctx.thread_id() as u64);
//! });
//! assert_eq!(sums.get_plain(0), 0 + 1 + 2 + 3);
//! assert_eq!(outcome.per_thread.len(), 4);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod budget;
mod cancel;
mod ctx;
mod deque;
mod locks;
mod machine;
mod native;
mod report;
mod shared;
mod sync;

pub use addr::{alloc_region, Addr, Region, LINE_SIZE};
pub use budget::BudgetCtx;
pub use cancel::{panic_payload, CancelCause, RunGate};
pub use ctx::ThreadCtx;
pub use deque::{Steal, TaskPool, WorkDeque};
pub use locks::{LockSet, LOCK_EPOCH_CYCLES};
pub use sync::{
    CachePadded, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
};
pub use machine::{Machine, RunError, RunOptions, RunOutcome};
pub use native::{NativeCtx, NativeMachine};
pub use report::{
    Breakdown, EnergyCounters, FaultCounters, MissStats, RunReport, ThreadReport,
};
pub use shared::{
    ReadArray, SharedBitmap, SharedF64s, SharedFlags, SharedU32s, SharedU64s, SlidingQueue,
    TrackedVec,
};
