use crate::{alloc_region, Addr, Region, ThreadCtx};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};

const LOAD: Ordering = Ordering::Acquire;
const STORE: Ordering = Ordering::Release;
const RMW: Ordering = Ordering::AcqRel;

macro_rules! shared_uint_array {
    ($(#[$meta:meta])* $name:ident, $atomic:ty, $elem:ty, $size:expr) => {
        $(#[$meta])*
        #[derive(Debug)]
        pub struct $name {
            region: Region,
            data: Vec<$atomic>,
        }

        impl $name {
            /// Creates `n` zero-initialized elements.
            pub fn new(n: usize) -> Self {
                Self::filled(n, 0)
            }

            /// Creates `n` elements, all set to `value`.
            pub fn filled(n: usize, value: $elem) -> Self {
                $name {
                    region: alloc_region(n as u64 * $size),
                    data: (0..n).map(|_| <$atomic>::new(value)).collect(),
                }
            }

            /// Creates the array from existing values.
            pub fn from_values(values: impl IntoIterator<Item = $elem>) -> Self {
                let data: Vec<$atomic> =
                    values.into_iter().map(<$atomic>::new).collect();
                $name {
                    region: alloc_region(data.len() as u64 * $size),
                    data,
                }
            }

            /// Number of elements.
            pub fn len(&self) -> usize {
                self.data.len()
            }

            /// Whether the array is empty.
            pub fn is_empty(&self) -> bool {
                self.data.is_empty()
            }

            /// Symbolic address of element `i`.
            pub fn addr(&self, i: usize) -> Addr {
                self.region.addr(i, $size)
            }

            /// Reads element `i` through the context.
            #[inline]
            pub fn get<C: ThreadCtx>(&self, ctx: &mut C, i: usize) -> $elem {
                ctx.load(self.addr(i));
                self.data[i].load(LOAD)
            }

            /// Writes element `i` through the context.
            #[inline]
            pub fn set<C: ThreadCtx>(&self, ctx: &mut C, i: usize, v: $elem) {
                ctx.store(self.addr(i));
                self.data[i].store(v, STORE)
            }

            /// Atomically adds `v` to element `i`, returning the previous
            /// value.
            #[inline]
            pub fn fetch_add<C: ThreadCtx>(&self, ctx: &mut C, i: usize, v: $elem) -> $elem {
                ctx.rmw(self.addr(i));
                self.data[i].fetch_add(v, RMW)
            }

            /// Atomically lowers element `i` to `min(current, v)`,
            /// returning the previous value.
            #[inline]
            pub fn fetch_min<C: ThreadCtx>(&self, ctx: &mut C, i: usize, v: $elem) -> $elem {
                ctx.rmw(self.addr(i));
                self.data[i].fetch_min(v, RMW)
            }

            /// Atomically raises element `i` to `max(current, v)`,
            /// returning the previous value.
            #[inline]
            pub fn fetch_max<C: ThreadCtx>(&self, ctx: &mut C, i: usize, v: $elem) -> $elem {
                ctx.rmw(self.addr(i));
                self.data[i].fetch_max(v, RMW)
            }

            /// Atomic compare-exchange on element `i`; returns `Ok(old)` on
            /// success or `Err(actual)`.
            #[inline]
            pub fn compare_exchange<C: ThreadCtx>(
                &self,
                ctx: &mut C,
                i: usize,
                current: $elem,
                new: $elem,
            ) -> Result<$elem, $elem> {
                ctx.rmw(self.addr(i));
                self.data[i].compare_exchange(current, new, RMW, LOAD)
            }

            /// Reads element `i` without touching any context — for result
            /// extraction *outside* the timed parallel region only.
            pub fn get_plain(&self, i: usize) -> $elem {
                self.data[i].load(LOAD)
            }

            /// Writes element `i` without touching any context — for
            /// initialization *outside* the timed parallel region only.
            pub fn set_plain(&self, i: usize, v: $elem) {
                self.data[i].store(v, STORE)
            }

            /// Snapshot of all values (outside the timed region).
            pub fn to_vec(&self) -> Vec<$elem> {
                self.data.iter().map(|a| a.load(LOAD)).collect()
            }
        }
    };
}

shared_uint_array!(
    /// A shared array of `u32` with context-integrated atomic accessors.
    ///
    /// Every accessor performs the *real* atomic operation on host memory
    /// and reports the access (with its symbolic [`Addr`]) to the
    /// [`ThreadCtx`], so the simulated backend sees the benchmark's true
    /// data-dependent access stream.
    ///
    /// # Examples
    ///
    /// ```
    /// use crono_runtime::{Machine, NativeMachine, SharedU32s};
    ///
    /// let dist = SharedU32s::filled(4, u32::MAX);
    /// NativeMachine::new(2).run(|ctx| {
    ///     dist.fetch_min(ctx, 0, 10);
    /// });
    /// assert_eq!(dist.get_plain(0), 10);
    /// ```
    SharedU32s,
    AtomicU32,
    u32,
    4
);

shared_uint_array!(
    /// A shared array of `u64` with context-integrated atomic accessors.
    /// See [`SharedU32s`] for the access discipline.
    SharedU64s,
    AtomicU64,
    u64,
    8
);

/// A shared array of `f64` (bit-cast into `AtomicU64`) with
/// context-integrated accessors; `fetch_add` is a compare-exchange loop,
/// as in the pthreads original's locked floating-point updates.
///
/// # Examples
///
/// ```
/// use crono_runtime::{Machine, NativeMachine, SharedF64s};
///
/// let ranks = SharedF64s::filled(4, 0.25);
/// NativeMachine::new(4).run(|ctx| {
///     ranks.fetch_add(ctx, 0, 0.25);
/// });
/// assert!((ranks.get_plain(0) - 1.25).abs() < 1e-12);
/// ```
#[derive(Debug)]
pub struct SharedF64s {
    region: Region,
    data: Vec<AtomicU64>,
}

impl SharedF64s {
    /// Creates `n` elements all set to `value`.
    pub fn filled(n: usize, value: f64) -> Self {
        SharedF64s {
            region: alloc_region(n as u64 * 8),
            data: (0..n).map(|_| AtomicU64::new(value.to_bits())).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Symbolic address of element `i`.
    pub fn addr(&self, i: usize) -> Addr {
        self.region.addr(i, 8)
    }

    /// Reads element `i` through the context.
    #[inline]
    pub fn get<C: ThreadCtx>(&self, ctx: &mut C, i: usize) -> f64 {
        ctx.load(self.addr(i));
        f64::from_bits(self.data[i].load(LOAD))
    }

    /// Writes element `i` through the context.
    #[inline]
    pub fn set<C: ThreadCtx>(&self, ctx: &mut C, i: usize, v: f64) {
        ctx.store(self.addr(i));
        self.data[i].store(v.to_bits(), STORE)
    }

    /// Atomically adds `v` to element `i` (CAS loop), returning the
    /// previous value.
    #[inline]
    pub fn fetch_add<C: ThreadCtx>(&self, ctx: &mut C, i: usize, v: f64) -> f64 {
        ctx.rmw(self.addr(i));
        let mut cur = self.data[i].load(LOAD);
        loop {
            let new = (f64::from_bits(cur) + v).to_bits();
            match self.data[i].compare_exchange_weak(cur, new, RMW, LOAD) {
                Ok(_) => return f64::from_bits(cur),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Reads element `i` without a context (outside the timed region).
    pub fn get_plain(&self, i: usize) -> f64 {
        f64::from_bits(self.data[i].load(LOAD))
    }

    /// Writes element `i` without a context (outside the timed region).
    pub fn set_plain(&self, i: usize, v: f64) {
        self.data[i].store(v.to_bits(), STORE)
    }

    /// Snapshot of all values (outside the timed region).
    pub fn to_vec(&self) -> Vec<f64> {
        self.data
            .iter()
            .map(|a| f64::from_bits(a.load(LOAD)))
            .collect()
    }
}

/// A shared array of boolean flags (one byte each) with
/// context-integrated accessors — CRONO's "which vertices are already
/// checked" structures.
#[derive(Debug)]
pub struct SharedFlags {
    region: Region,
    data: Vec<AtomicU8>,
}

impl SharedFlags {
    /// Creates `n` flags, all `false`.
    pub fn new(n: usize) -> Self {
        SharedFlags {
            region: alloc_region(n as u64),
            data: (0..n).map(|_| AtomicU8::new(0)).collect(),
        }
    }

    /// Number of flags.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Symbolic address of flag `i`.
    pub fn addr(&self, i: usize) -> Addr {
        self.region.addr(i, 1)
    }

    /// Reads flag `i` through the context.
    #[inline]
    pub fn get<C: ThreadCtx>(&self, ctx: &mut C, i: usize) -> bool {
        ctx.load(self.addr(i));
        self.data[i].load(LOAD) != 0
    }

    /// Writes flag `i` through the context.
    #[inline]
    pub fn set<C: ThreadCtx>(&self, ctx: &mut C, i: usize, v: bool) {
        ctx.store(self.addr(i));
        self.data[i].store(v as u8, STORE)
    }

    /// Atomically sets flag `i`, returning whether it was previously set
    /// (test-and-set claim, CRONO's "vertex capture" primitive).
    #[inline]
    pub fn test_and_set<C: ThreadCtx>(&self, ctx: &mut C, i: usize) -> bool {
        ctx.rmw(self.addr(i));
        self.data[i].swap(1, RMW) != 0
    }

    /// Reads flag `i` without a context (outside the timed region).
    pub fn get_plain(&self, i: usize) -> bool {
        self.data[i].load(LOAD) != 0
    }

    /// Writes flag `i` without a context (outside the timed region).
    pub fn set_plain(&self, i: usize, v: bool) {
        self.data[i].store(v as u8, STORE)
    }

    /// Clears all flags (outside the timed region).
    pub fn clear_all(&self) {
        for f in &self.data {
            f.store(0, STORE);
        }
    }
}

/// A word-packed shared bitmap: 64 bits per `AtomicU64` word, so a full
/// scan costs one simulated access per 64 vertices instead of one per
/// vertex (the GAP-style frontier representation).
///
/// Bit mutation uses atomic OR/AND on the containing word, charged to
/// the context as an RMW — concurrent writers to *different bits of the
/// same word* contend, which is exactly the sharing behavior a packed
/// frontier exhibits on real hardware and what the simulator should see.
///
/// # Examples
///
/// ```
/// use crono_runtime::{Machine, NativeMachine, SharedBitmap};
///
/// let frontier = SharedBitmap::new(130);
/// NativeMachine::new(1).run(|ctx| {
///     frontier.set(ctx, 7);
///     frontier.set(ctx, 129);
///     assert_eq!(frontier.find_set_from(ctx, 0), Some(7));
///     assert_eq!(frontier.find_set_from(ctx, 8), Some(129));
///     assert_eq!(frontier.find_set_from(ctx, 130), None);
/// });
/// ```
#[derive(Debug)]
pub struct SharedBitmap {
    region: Region,
    words: Vec<AtomicU64>,
    bits: usize,
}

impl SharedBitmap {
    /// Creates a bitmap of `n` bits, all clear.
    pub fn new(n: usize) -> Self {
        let nwords = n.div_ceil(64);
        SharedBitmap {
            region: alloc_region(nwords as u64 * 8),
            words: (0..nwords).map(|_| AtomicU64::new(0)).collect(),
            bits: n,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.bits
    }

    /// Whether the bitmap has zero bits.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Symbolic address of the word holding bit `i`.
    pub fn addr(&self, i: usize) -> Addr {
        self.region.addr(i / 64, 8)
    }

    /// Reads bit `i` through the context (one word load).
    #[inline]
    pub fn get<C: ThreadCtx>(&self, ctx: &mut C, i: usize) -> bool {
        ctx.load(self.addr(i));
        self.words[i / 64].load(LOAD) >> (i % 64) & 1 != 0
    }

    /// Sets bit `i` through the context (atomic OR on the word).
    #[inline]
    pub fn set<C: ThreadCtx>(&self, ctx: &mut C, i: usize) {
        ctx.rmw(self.addr(i));
        self.words[i / 64].fetch_or(1 << (i % 64), RMW);
    }

    /// Clears bit `i` through the context (atomic AND on the word).
    #[inline]
    pub fn clear<C: ThreadCtx>(&self, ctx: &mut C, i: usize) {
        ctx.rmw(self.addr(i));
        self.words[i / 64].fetch_and(!(1 << (i % 64)), RMW);
    }

    /// Atomically sets bit `i`, returning whether it was previously set
    /// (the bitmap form of [`SharedFlags::test_and_set`]).
    #[inline]
    pub fn test_and_set<C: ThreadCtx>(&self, ctx: &mut C, i: usize) -> bool {
        ctx.rmw(self.addr(i));
        self.words[i / 64].fetch_or(1 << (i % 64), RMW) >> (i % 64) & 1 != 0
    }

    /// Finds the first set bit at position `>= from`, skipping clear
    /// words with one simulated load each.
    #[inline]
    pub fn find_set_from<C: ThreadCtx>(&self, ctx: &mut C, from: usize) -> Option<usize> {
        if from >= self.bits {
            return None;
        }
        let mut w = from / 64;
        ctx.load(self.region.addr(w, 8));
        // Mask off bits below `from` in the first word.
        let mut word = self.words[w].load(LOAD) & (!0u64 << (from % 64));
        loop {
            if word != 0 {
                let i = w * 64 + word.trailing_zeros() as usize;
                // Trailing bits past `bits` are never set (no setter
                // accepts them), so no range check is needed here.
                return Some(i);
            }
            w += 1;
            if w >= self.words.len() {
                return None;
            }
            ctx.load(self.region.addr(w, 8));
            word = self.words[w].load(LOAD);
        }
    }

    /// Number of 64-bit words backing the bitmap.
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Zeroes whole words `range` through the context — one simulated
    /// store per word, so wiping the bitmap costs 1/64th of clearing
    /// each bit individually. Callers must ensure no concurrent setter
    /// targets these words (e.g. behind a barrier).
    pub fn clear_words<C: ThreadCtx>(&self, ctx: &mut C, range: std::ops::Range<usize>) {
        for w in range {
            ctx.store(self.region.addr(w, 8));
            self.words[w].store(0, STORE);
        }
    }

    /// Reads bit `i` without a context (outside the timed region).
    pub fn get_plain(&self, i: usize) -> bool {
        self.words[i / 64].load(LOAD) >> (i % 64) & 1 != 0
    }

    /// Sets bit `i` without a context (outside the timed region).
    pub fn set_plain(&self, i: usize) {
        self.words[i / 64].fetch_or(1 << (i % 64), RMW);
    }

    /// Number of set bits (outside the timed region).
    pub fn count_ones(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load(LOAD).count_ones() as usize)
            .sum()
    }

    /// Clears all bits (outside the timed region).
    pub fn clear_all(&self) {
        for w in &self.words {
            w.store(0, STORE);
        }
    }
}

/// A lock-free sliding-window frontier queue (GAP's `SlidingQueue`):
/// producers append with chunked atomic claims, and consumers drain a
/// frozen *window* of the backing array between barriers.
///
/// The structure replaces bitmap word-rescans on sparse frontiers: a
/// level-synchronous kernel pushes next-level vertices during epoch `k`,
/// calls [`SlidingQueue::slide`] behind a barrier (one thread), and then
/// every thread reads its static share of the new window `[start, end)`
/// during epoch `k + 1`. Pushes never contend with window reads because
/// the window only covers entries published before the barrier.
///
/// Two simulator-facing properties drive the design:
///
/// * **Chunked claims.** [`SlidingQueue::push_chunk`] reserves one run of
///   slots with a single `fetch_add` on the shared tail, so a thread
///   buffering its local discoveries pays one contended RMW per chunk
///   instead of one per vertex.
/// * **Deterministic drains.** Consumers partition the window statically
///   (by thread id) rather than racing a claim cursor, so a seeded run
///   reads the same slots on the same threads every time.
///
/// Capacity is fixed at construction; overflow panics (kernels size the
/// queue from the graph: a BFS frontier never exceeds `n` total pushes
/// when `test_and_set` deduplicates insertions).
///
/// # Examples
///
/// ```
/// use crono_runtime::{Machine, NativeMachine, SlidingQueue};
///
/// let q = SlidingQueue::new(8);
/// NativeMachine::new(1).run(|ctx| {
///     q.push_chunk(ctx, &[3, 5]);
///     q.slide(ctx);
///     let w = q.window(ctx);
///     assert_eq!((w.start, w.end), (0, 2));
///     assert_eq!(q.get(ctx, w.start), 3);
///     q.push(ctx, 7); // lands in the *next* window
///     q.slide(ctx);
///     assert_eq!(q.window(ctx), 2..3);
/// });
/// ```
#[derive(Debug)]
pub struct SlidingQueue {
    /// Header: three cache-line-padded words (tail, start, end), so the
    /// contended tail never false-shares with the window bounds.
    header: Region,
    region: Region,
    slots: Vec<AtomicU32>,
    tail: AtomicU64,
    start: AtomicU64,
    end: AtomicU64,
}

impl SlidingQueue {
    /// Creates a queue with room for `capacity` total pushes between
    /// [`SlidingQueue::reset`]s.
    pub fn new(capacity: usize) -> Self {
        SlidingQueue {
            header: alloc_region(3 * crate::LINE_SIZE),
            region: alloc_region(capacity as u64 * 4),
            slots: (0..capacity).map(|_| AtomicU32::new(0)).collect(),
            tail: AtomicU64::new(0),
            start: AtomicU64::new(0),
            end: AtomicU64::new(0),
        }
    }

    /// Total slot capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Symbolic address of slot `i`.
    pub fn addr(&self, i: usize) -> Addr {
        self.region.addr(i, 4)
    }

    fn tail_addr(&self) -> Addr {
        self.header.addr_padded(0)
    }

    fn start_addr(&self) -> Addr {
        self.header.addr_padded(1)
    }

    fn end_addr(&self) -> Addr {
        self.header.addr_padded(2)
    }

    /// Claims `items.len()` contiguous slots with one shared RMW and
    /// fills them. The entries become visible to consumers only after
    /// the next [`SlidingQueue::slide`].
    ///
    /// # Panics
    ///
    /// Panics if the queue's fixed capacity would be exceeded.
    pub fn push_chunk<C: ThreadCtx>(&self, ctx: &mut C, items: &[u32]) {
        if items.is_empty() {
            return;
        }
        ctx.rmw(self.tail_addr());
        let base = self.tail.fetch_add(items.len() as u64, RMW) as usize;
        assert!(
            base + items.len() <= self.slots.len(),
            "SlidingQueue overflow: {} + {} > capacity {}",
            base,
            items.len(),
            self.slots.len()
        );
        for (k, &v) in items.iter().enumerate() {
            ctx.store(self.addr(base + k));
            self.slots[base + k].store(v, STORE);
        }
    }

    /// Pushes a single entry (a one-element chunk).
    pub fn push<C: ThreadCtx>(&self, ctx: &mut C, v: u32) {
        self.push_chunk(ctx, &[v]);
    }

    /// Advances the window to cover everything pushed since the previous
    /// slide: `start ← end`, `end ← tail`. Call from **one** thread
    /// between barriers.
    pub fn slide<C: ThreadCtx>(&self, ctx: &mut C) {
        ctx.load(self.end_addr());
        let old_end = self.end.load(LOAD);
        ctx.store(self.start_addr());
        self.start.store(old_end, STORE);
        ctx.load(self.tail_addr());
        let tail = self.tail.load(LOAD);
        ctx.store(self.end_addr());
        self.end.store(tail, STORE);
    }

    /// Reads the push cursor. Between a barrier and the next push the
    /// value is stable, so level-synchronous kernels can read it once
    /// per epoch and derive the drain window `[previous_tail, tail)`
    /// thread-locally instead of broadcasting it through
    /// [`SlidingQueue::slide`].
    pub fn tail<C: ThreadCtx>(&self, ctx: &mut C) -> usize {
        ctx.load(self.tail_addr());
        self.tail.load(LOAD) as usize
    }

    /// The current drain window (slot indices). Entries in the window
    /// were all published before the preceding [`SlidingQueue::slide`],
    /// so reading them never races an in-flight push.
    pub fn window<C: ThreadCtx>(&self, ctx: &mut C) -> std::ops::Range<usize> {
        ctx.load(self.start_addr());
        let start = self.start.load(LOAD) as usize;
        ctx.load(self.end_addr());
        let end = self.end.load(LOAD) as usize;
        start..end
    }

    /// Reads slot `i` (must lie inside the current window).
    #[inline]
    pub fn get<C: ThreadCtx>(&self, ctx: &mut C, i: usize) -> u32 {
        ctx.load(self.addr(i));
        self.slots[i].load(LOAD)
    }

    /// Empties the queue (`tail = start = end = 0`), reclaiming all
    /// capacity. Call from **one** thread between barriers.
    pub fn reset<C: ThreadCtx>(&self, ctx: &mut C) {
        ctx.store(self.tail_addr());
        self.tail.store(0, STORE);
        ctx.store(self.start_addr());
        self.start.store(0, STORE);
        ctx.store(self.end_addr());
        self.end.store(0, STORE);
    }

    /// The window without a context (outside the timed region).
    pub fn window_plain(&self) -> std::ops::Range<usize> {
        self.start.load(LOAD) as usize..self.end.load(LOAD) as usize
    }

    /// Reads slot `i` without a context (outside the timed region).
    pub fn get_plain(&self, i: usize) -> u32 {
        self.slots[i].load(LOAD)
    }

    /// Seeds an entry without a context (initialization outside the
    /// timed region), e.g. the BFS source vertex.
    pub fn push_plain(&self, v: u32) {
        let base = self.tail.fetch_add(1, RMW) as usize;
        assert!(base < self.slots.len(), "SlidingQueue overflow");
        self.slots[base].store(v, STORE);
    }

    /// Slides the window without a context (outside the timed region).
    pub fn slide_plain(&self) {
        let old_end = self.end.load(LOAD);
        self.start.store(old_end, STORE);
        self.end.store(self.tail.load(LOAD), STORE);
    }
}

/// A read-only view of host data with symbolic addresses — used for the
/// graph arrays, which every thread reads but none writes.
///
/// # Examples
///
/// ```
/// use crono_runtime::{Machine, NativeMachine, ReadArray};
///
/// let weights = vec![3u32, 1, 4, 1, 5];
/// let shared = ReadArray::new(&weights);
/// NativeMachine::new(2).run(|ctx| {
///     assert_eq!(shared.get(ctx, 2), 4);
/// });
/// ```
#[derive(Debug)]
pub struct ReadArray<'a, T> {
    region: Region,
    data: &'a [T],
    elem_size: u64,
}

impl<'a, T: Copy> ReadArray<'a, T> {
    /// Wraps `data`, allocating a symbolic region sized to it.
    pub fn new(data: &'a [T]) -> Self {
        let elem_size = std::mem::size_of::<T>() as u64;
        ReadArray {
            region: alloc_region(data.len() as u64 * elem_size),
            data,
            elem_size,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Symbolic address of element `i`.
    pub fn addr(&self, i: usize) -> Addr {
        self.region.addr(i, self.elem_size)
    }

    /// Reads element `i` through the context.
    #[inline]
    pub fn get<C: ThreadCtx>(&self, ctx: &mut C, i: usize) -> T {
        ctx.load(self.addr(i));
        self.data[i]
    }

    /// The underlying slice (no context; for use outside the timed
    /// region).
    pub fn as_slice(&self) -> &'a [T] {
        self.data
    }
}

/// A thread-*private* array with symbolic addresses — per-thread scratch
/// data (Dijkstra distance arrays, local frontiers) that the simulator
/// should still see cache traffic for, without any atomic overhead.
///
/// # Examples
///
/// ```
/// use crono_runtime::{Machine, NativeMachine, TrackedVec};
///
/// NativeMachine::new(1).run(|ctx| {
///     let mut dist = TrackedVec::filled(8, u32::MAX);
///     dist.set(ctx, 3, 7);
///     assert_eq!(dist.get(ctx, 3), 7);
/// });
/// ```
#[derive(Debug)]
pub struct TrackedVec<T> {
    region: Region,
    data: Vec<T>,
}

impl<T: Copy> TrackedVec<T> {
    /// Creates `n` elements all set to `value`.
    pub fn filled(n: usize, value: T) -> Self {
        TrackedVec {
            region: alloc_region(n as u64 * std::mem::size_of::<T>() as u64),
            data: vec![value; n],
        }
    }

    /// Wraps existing values.
    pub fn from_vec(data: Vec<T>) -> Self {
        TrackedVec {
            region: alloc_region(data.len() as u64 * std::mem::size_of::<T>() as u64),
            data,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Symbolic address of element `i`.
    pub fn addr(&self, i: usize) -> Addr {
        self.region.addr(i, std::mem::size_of::<T>() as u64)
    }

    /// Reads element `i` through the context.
    #[inline]
    pub fn get<C: ThreadCtx>(&self, ctx: &mut C, i: usize) -> T {
        ctx.load(self.addr(i));
        self.data[i]
    }

    /// Writes element `i` through the context.
    #[inline]
    pub fn set<C: ThreadCtx>(&mut self, ctx: &mut C, i: usize, v: T) {
        ctx.store(self.addr(i));
        self.data[i] = v;
    }

    /// The underlying slice (no context).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Consumes the array, returning the values.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Machine, NativeMachine};

    #[test]
    fn tracked_vec_round_trips() {
        NativeMachine::new(1).run(|ctx| {
            let mut v = TrackedVec::filled(4, 0u64);
            v.set(ctx, 2, 9);
            assert_eq!(v.get(ctx, 2), 9);
            assert_eq!(v.as_slice(), &[0, 0, 9, 0]);
        });
    }

    #[test]
    fn u32_fetch_min_converges() {
        let arr = SharedU32s::filled(1, 1000);
        NativeMachine::new(8).run(|ctx| {
            arr.fetch_min(ctx, 0, 10 + ctx.thread_id() as u32);
        });
        assert_eq!(arr.get_plain(0), 10);
    }

    #[test]
    fn u64_fetch_add_is_atomic() {
        let arr = SharedU64s::new(1);
        NativeMachine::new(8).run(|ctx| {
            for _ in 0..1000 {
                arr.fetch_add(ctx, 0, 1);
            }
        });
        assert_eq!(arr.get_plain(0), 8000);
    }

    #[test]
    fn f64_fetch_add_is_atomic() {
        let arr = SharedF64s::filled(1, 0.0);
        NativeMachine::new(4).run(|ctx| {
            for _ in 0..100 {
                arr.fetch_add(ctx, 0, 0.5);
            }
        });
        assert!((arr.get_plain(0) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn flags_test_and_set_claims_once() {
        let flags = SharedFlags::new(1);
        let claims = SharedU64s::new(1);
        NativeMachine::new(8).run(|ctx| {
            if !flags.test_and_set(ctx, 0) {
                claims.fetch_add(ctx, 0, 1);
            }
        });
        assert_eq!(claims.get_plain(0), 1, "exactly one thread claims");
    }

    #[test]
    fn compare_exchange_success_and_failure() {
        let arr = SharedU32s::filled(1, 5);
        NativeMachine::new(1).run(|ctx| {
            assert_eq!(arr.compare_exchange(ctx, 0, 5, 7), Ok(5));
            assert_eq!(arr.compare_exchange(ctx, 0, 5, 9), Err(7));
        });
    }

    #[test]
    fn addresses_are_contiguous() {
        let arr = SharedU32s::new(32);
        assert_eq!(arr.addr(1).raw() - arr.addr(0).raw(), 4);
        assert_eq!(arr.addr(16).line() - arr.addr(0).line(), 1);
    }

    #[test]
    fn read_array_round_trips() {
        let data = vec![1u64, 2, 3];
        let arr = ReadArray::new(&data);
        assert_eq!(arr.len(), 3);
        assert_eq!(arr.as_slice(), &[1, 2, 3]);
        NativeMachine::new(1).run(|ctx| {
            assert_eq!(arr.get(ctx, 1), 2);
        });
    }

    #[test]
    fn to_vec_snapshots() {
        let arr = SharedU32s::from_values([9, 8, 7]);
        assert_eq!(arr.to_vec(), vec![9, 8, 7]);
        arr.set_plain(1, 0);
        assert_eq!(arr.to_vec(), vec![9, 0, 7]);
    }

    #[test]
    fn bitmap_matches_flags_on_random_pattern() {
        // A fixed pseudo-random pattern mirrored into both
        // representations must agree bit-for-bit under get and scan.
        let n = 200;
        let flags = SharedFlags::new(n);
        let bitmap = SharedBitmap::new(n);
        let mut state = 0x9e3779b97f4a7c15u64;
        let pattern: Vec<bool> = (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state >> 60 & 1 != 0
            })
            .collect();
        NativeMachine::new(1).run(|ctx| {
            for i in 0..n {
                if pattern[i] {
                    flags.set(ctx, i, true);
                    bitmap.set(ctx, i);
                }
            }
            let mut from = 0;
            while let Some(i) = bitmap.find_set_from(ctx, from) {
                assert!(flags.get(ctx, i), "bit {i} set in bitmap but not flags");
                from = i + 1;
            }
            for i in 0..n {
                assert_eq!(flags.get(ctx, i), bitmap.get(ctx, i), "bit {i}");
            }
            assert_eq!(
                bitmap.count_ones(),
                (0..n).filter(|&i| flags.get_plain(i)).count()
            );
        });
    }

    #[test]
    fn bitmap_word_boundaries() {
        let bitmap = SharedBitmap::new(256);
        NativeMachine::new(1).run(|ctx| {
            for i in [0, 63, 64, 127, 128, 255] {
                assert!(!bitmap.test_and_set(ctx, i), "bit {i} initially clear");
                assert!(bitmap.test_and_set(ctx, i), "bit {i} now set");
                assert!(bitmap.get(ctx, i));
            }
            assert_eq!(bitmap.find_set_from(ctx, 0), Some(0));
            assert_eq!(bitmap.find_set_from(ctx, 1), Some(63));
            assert_eq!(bitmap.find_set_from(ctx, 64), Some(64));
            assert_eq!(bitmap.find_set_from(ctx, 129), Some(255));
            bitmap.clear(ctx, 63);
            assert_eq!(bitmap.find_set_from(ctx, 1), Some(64));
        });
        // Adjacent bits in one word share a line; words 0 and 8*8=64
        // bytes apart land on different lines.
        assert_eq!(bitmap.addr(0).line(), bitmap.addr(63).line());
        assert_ne!(bitmap.addr(0).raw(), bitmap.addr(64).raw());
    }

    #[test]
    fn bitmap_trailing_bits() {
        // 70 bits: the last word holds only 6 valid bits.
        let bitmap = SharedBitmap::new(70);
        assert_eq!(bitmap.len(), 70);
        NativeMachine::new(1).run(|ctx| {
            assert_eq!(bitmap.find_set_from(ctx, 0), None);
            bitmap.set(ctx, 69);
            assert_eq!(bitmap.find_set_from(ctx, 0), Some(69));
            assert_eq!(bitmap.find_set_from(ctx, 69), Some(69));
            assert_eq!(bitmap.find_set_from(ctx, 70), None, "from == len");
            assert_eq!(bitmap.find_set_from(ctx, 1000), None, "from past len");
        });
        bitmap.clear_all();
        assert_eq!(bitmap.count_ones(), 0);
        assert!(!bitmap.get_plain(69));
        bitmap.set_plain(69);
        assert!(bitmap.get_plain(69));
    }

    #[test]
    fn sliding_queue_windows_partition_pushes() {
        // Epoch 1 pushes {10,11}, epoch 2 pushes {20,21,22}; each slide
        // exposes exactly the entries of the finished epoch.
        let q = SlidingQueue::new(8);
        NativeMachine::new(1).run(|ctx| {
            q.push_chunk(ctx, &[10, 11]);
            q.slide(ctx);
            let w = q.window(ctx);
            assert_eq!(w.clone().count(), 2);
            assert_eq!((q.get(ctx, w.start), q.get(ctx, w.start + 1)), (10, 11));
            q.push(ctx, 20);
            q.push_chunk(ctx, &[21, 22]);
            q.slide(ctx);
            let w = q.window(ctx);
            assert_eq!(w, 2..5);
            assert_eq!(q.get(ctx, 4), 22);
            q.slide(ctx);
            assert!(q.window(ctx).is_empty(), "no pushes -> empty window");
            q.reset(ctx);
            assert!(q.window(ctx).is_empty());
            q.push(ctx, 7);
            q.slide(ctx);
            assert_eq!(q.window(ctx), 0..1, "reset reclaims capacity");
        });
    }

    #[test]
    fn sliding_queue_concurrent_chunked_pushes_lose_nothing() {
        // 8 threads each chunk-push a disjoint value range; after one
        // slide the window must hold every value exactly once.
        let threads = 8;
        let per_thread = 100;
        let q = SlidingQueue::new(threads * per_thread);
        NativeMachine::new(threads).run(|ctx| {
            let tid = ctx.thread_id();
            let vals: Vec<u32> =
                (0..per_thread).map(|k| (tid * per_thread + k) as u32).collect();
            // Two chunks per thread, to exercise interleaved claims.
            q.push_chunk(ctx, &vals[..per_thread / 2]);
            q.push_chunk(ctx, &vals[per_thread / 2..]);
            ctx.barrier();
            if tid == 0 {
                q.slide(ctx);
            }
        });
        let w = q.window_plain();
        assert_eq!(w.clone().count(), threads * per_thread);
        let mut seen = vec![false; threads * per_thread];
        for i in w {
            let v = q.get_plain(i) as usize;
            assert!(!seen[v], "value {v} appears twice");
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "every value drained");
    }

    #[test]
    #[should_panic(expected = "SlidingQueue overflow")]
    fn sliding_queue_overflow_panics() {
        let q = SlidingQueue::new(2);
        NativeMachine::new(1).run(|ctx| {
            q.push_chunk(ctx, &[1, 2, 3]);
        });
    }

    #[test]
    fn bitmap_test_and_set_claims_once() {
        let bitmap = SharedBitmap::new(64);
        let claims = SharedU64s::new(1);
        NativeMachine::new(8).run(|ctx| {
            if !bitmap.test_and_set(ctx, 17) {
                claims.fetch_add(ctx, 0, 1);
            }
        });
        assert_eq!(claims.get_plain(0), 1, "exactly one thread claims");
    }
}
