use crate::{alloc_region, Addr, Region, ThreadCtx};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};

const LOAD: Ordering = Ordering::Acquire;
const STORE: Ordering = Ordering::Release;
const RMW: Ordering = Ordering::AcqRel;

macro_rules! shared_uint_array {
    ($(#[$meta:meta])* $name:ident, $atomic:ty, $elem:ty, $size:expr) => {
        $(#[$meta])*
        #[derive(Debug)]
        pub struct $name {
            region: Region,
            data: Vec<$atomic>,
        }

        impl $name {
            /// Creates `n` zero-initialized elements.
            pub fn new(n: usize) -> Self {
                Self::filled(n, 0)
            }

            /// Creates `n` elements, all set to `value`.
            pub fn filled(n: usize, value: $elem) -> Self {
                $name {
                    region: alloc_region(n as u64 * $size),
                    data: (0..n).map(|_| <$atomic>::new(value)).collect(),
                }
            }

            /// Creates the array from existing values.
            pub fn from_values(values: impl IntoIterator<Item = $elem>) -> Self {
                let data: Vec<$atomic> =
                    values.into_iter().map(<$atomic>::new).collect();
                $name {
                    region: alloc_region(data.len() as u64 * $size),
                    data,
                }
            }

            /// Number of elements.
            pub fn len(&self) -> usize {
                self.data.len()
            }

            /// Whether the array is empty.
            pub fn is_empty(&self) -> bool {
                self.data.is_empty()
            }

            /// Symbolic address of element `i`.
            pub fn addr(&self, i: usize) -> Addr {
                self.region.addr(i, $size)
            }

            /// Reads element `i` through the context.
            #[inline]
            pub fn get<C: ThreadCtx>(&self, ctx: &mut C, i: usize) -> $elem {
                ctx.load(self.addr(i));
                self.data[i].load(LOAD)
            }

            /// Writes element `i` through the context.
            #[inline]
            pub fn set<C: ThreadCtx>(&self, ctx: &mut C, i: usize, v: $elem) {
                ctx.store(self.addr(i));
                self.data[i].store(v, STORE)
            }

            /// Atomically adds `v` to element `i`, returning the previous
            /// value.
            #[inline]
            pub fn fetch_add<C: ThreadCtx>(&self, ctx: &mut C, i: usize, v: $elem) -> $elem {
                ctx.rmw(self.addr(i));
                self.data[i].fetch_add(v, RMW)
            }

            /// Atomically lowers element `i` to `min(current, v)`,
            /// returning the previous value.
            #[inline]
            pub fn fetch_min<C: ThreadCtx>(&self, ctx: &mut C, i: usize, v: $elem) -> $elem {
                ctx.rmw(self.addr(i));
                self.data[i].fetch_min(v, RMW)
            }

            /// Atomically raises element `i` to `max(current, v)`,
            /// returning the previous value.
            #[inline]
            pub fn fetch_max<C: ThreadCtx>(&self, ctx: &mut C, i: usize, v: $elem) -> $elem {
                ctx.rmw(self.addr(i));
                self.data[i].fetch_max(v, RMW)
            }

            /// Atomic compare-exchange on element `i`; returns `Ok(old)` on
            /// success or `Err(actual)`.
            #[inline]
            pub fn compare_exchange<C: ThreadCtx>(
                &self,
                ctx: &mut C,
                i: usize,
                current: $elem,
                new: $elem,
            ) -> Result<$elem, $elem> {
                ctx.rmw(self.addr(i));
                self.data[i].compare_exchange(current, new, RMW, LOAD)
            }

            /// Reads element `i` without touching any context — for result
            /// extraction *outside* the timed parallel region only.
            pub fn get_plain(&self, i: usize) -> $elem {
                self.data[i].load(LOAD)
            }

            /// Writes element `i` without touching any context — for
            /// initialization *outside* the timed parallel region only.
            pub fn set_plain(&self, i: usize, v: $elem) {
                self.data[i].store(v, STORE)
            }

            /// Snapshot of all values (outside the timed region).
            pub fn to_vec(&self) -> Vec<$elem> {
                self.data.iter().map(|a| a.load(LOAD)).collect()
            }
        }
    };
}

shared_uint_array!(
    /// A shared array of `u32` with context-integrated atomic accessors.
    ///
    /// Every accessor performs the *real* atomic operation on host memory
    /// and reports the access (with its symbolic [`Addr`]) to the
    /// [`ThreadCtx`], so the simulated backend sees the benchmark's true
    /// data-dependent access stream.
    ///
    /// # Examples
    ///
    /// ```
    /// use crono_runtime::{Machine, NativeMachine, SharedU32s};
    ///
    /// let dist = SharedU32s::filled(4, u32::MAX);
    /// NativeMachine::new(2).run(|ctx| {
    ///     dist.fetch_min(ctx, 0, 10);
    /// });
    /// assert_eq!(dist.get_plain(0), 10);
    /// ```
    SharedU32s,
    AtomicU32,
    u32,
    4
);

shared_uint_array!(
    /// A shared array of `u64` with context-integrated atomic accessors.
    /// See [`SharedU32s`] for the access discipline.
    SharedU64s,
    AtomicU64,
    u64,
    8
);

/// A shared array of `f64` (bit-cast into `AtomicU64`) with
/// context-integrated accessors; `fetch_add` is a compare-exchange loop,
/// as in the pthreads original's locked floating-point updates.
///
/// # Examples
///
/// ```
/// use crono_runtime::{Machine, NativeMachine, SharedF64s};
///
/// let ranks = SharedF64s::filled(4, 0.25);
/// NativeMachine::new(4).run(|ctx| {
///     ranks.fetch_add(ctx, 0, 0.25);
/// });
/// assert!((ranks.get_plain(0) - 1.25).abs() < 1e-12);
/// ```
#[derive(Debug)]
pub struct SharedF64s {
    region: Region,
    data: Vec<AtomicU64>,
}

impl SharedF64s {
    /// Creates `n` elements all set to `value`.
    pub fn filled(n: usize, value: f64) -> Self {
        SharedF64s {
            region: alloc_region(n as u64 * 8),
            data: (0..n).map(|_| AtomicU64::new(value.to_bits())).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Symbolic address of element `i`.
    pub fn addr(&self, i: usize) -> Addr {
        self.region.addr(i, 8)
    }

    /// Reads element `i` through the context.
    #[inline]
    pub fn get<C: ThreadCtx>(&self, ctx: &mut C, i: usize) -> f64 {
        ctx.load(self.addr(i));
        f64::from_bits(self.data[i].load(LOAD))
    }

    /// Writes element `i` through the context.
    #[inline]
    pub fn set<C: ThreadCtx>(&self, ctx: &mut C, i: usize, v: f64) {
        ctx.store(self.addr(i));
        self.data[i].store(v.to_bits(), STORE)
    }

    /// Atomically adds `v` to element `i` (CAS loop), returning the
    /// previous value.
    #[inline]
    pub fn fetch_add<C: ThreadCtx>(&self, ctx: &mut C, i: usize, v: f64) -> f64 {
        ctx.rmw(self.addr(i));
        let mut cur = self.data[i].load(LOAD);
        loop {
            let new = (f64::from_bits(cur) + v).to_bits();
            match self.data[i].compare_exchange_weak(cur, new, RMW, LOAD) {
                Ok(_) => return f64::from_bits(cur),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Reads element `i` without a context (outside the timed region).
    pub fn get_plain(&self, i: usize) -> f64 {
        f64::from_bits(self.data[i].load(LOAD))
    }

    /// Writes element `i` without a context (outside the timed region).
    pub fn set_plain(&self, i: usize, v: f64) {
        self.data[i].store(v.to_bits(), STORE)
    }

    /// Snapshot of all values (outside the timed region).
    pub fn to_vec(&self) -> Vec<f64> {
        self.data
            .iter()
            .map(|a| f64::from_bits(a.load(LOAD)))
            .collect()
    }
}

/// A shared array of boolean flags (one byte each) with
/// context-integrated accessors — CRONO's "which vertices are already
/// checked" structures.
#[derive(Debug)]
pub struct SharedFlags {
    region: Region,
    data: Vec<AtomicU8>,
}

impl SharedFlags {
    /// Creates `n` flags, all `false`.
    pub fn new(n: usize) -> Self {
        SharedFlags {
            region: alloc_region(n as u64),
            data: (0..n).map(|_| AtomicU8::new(0)).collect(),
        }
    }

    /// Number of flags.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Symbolic address of flag `i`.
    pub fn addr(&self, i: usize) -> Addr {
        self.region.addr(i, 1)
    }

    /// Reads flag `i` through the context.
    #[inline]
    pub fn get<C: ThreadCtx>(&self, ctx: &mut C, i: usize) -> bool {
        ctx.load(self.addr(i));
        self.data[i].load(LOAD) != 0
    }

    /// Writes flag `i` through the context.
    #[inline]
    pub fn set<C: ThreadCtx>(&self, ctx: &mut C, i: usize, v: bool) {
        ctx.store(self.addr(i));
        self.data[i].store(v as u8, STORE)
    }

    /// Atomically sets flag `i`, returning whether it was previously set
    /// (test-and-set claim, CRONO's "vertex capture" primitive).
    #[inline]
    pub fn test_and_set<C: ThreadCtx>(&self, ctx: &mut C, i: usize) -> bool {
        ctx.rmw(self.addr(i));
        self.data[i].swap(1, RMW) != 0
    }

    /// Reads flag `i` without a context (outside the timed region).
    pub fn get_plain(&self, i: usize) -> bool {
        self.data[i].load(LOAD) != 0
    }

    /// Writes flag `i` without a context (outside the timed region).
    pub fn set_plain(&self, i: usize, v: bool) {
        self.data[i].store(v as u8, STORE)
    }

    /// Clears all flags (outside the timed region).
    pub fn clear_all(&self) {
        for f in &self.data {
            f.store(0, STORE);
        }
    }
}

/// A read-only view of host data with symbolic addresses — used for the
/// graph arrays, which every thread reads but none writes.
///
/// # Examples
///
/// ```
/// use crono_runtime::{Machine, NativeMachine, ReadArray};
///
/// let weights = vec![3u32, 1, 4, 1, 5];
/// let shared = ReadArray::new(&weights);
/// NativeMachine::new(2).run(|ctx| {
///     assert_eq!(shared.get(ctx, 2), 4);
/// });
/// ```
#[derive(Debug)]
pub struct ReadArray<'a, T> {
    region: Region,
    data: &'a [T],
    elem_size: u64,
}

impl<'a, T: Copy> ReadArray<'a, T> {
    /// Wraps `data`, allocating a symbolic region sized to it.
    pub fn new(data: &'a [T]) -> Self {
        let elem_size = std::mem::size_of::<T>() as u64;
        ReadArray {
            region: alloc_region(data.len() as u64 * elem_size),
            data,
            elem_size,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Symbolic address of element `i`.
    pub fn addr(&self, i: usize) -> Addr {
        self.region.addr(i, self.elem_size)
    }

    /// Reads element `i` through the context.
    #[inline]
    pub fn get<C: ThreadCtx>(&self, ctx: &mut C, i: usize) -> T {
        ctx.load(self.addr(i));
        self.data[i]
    }

    /// The underlying slice (no context; for use outside the timed
    /// region).
    pub fn as_slice(&self) -> &'a [T] {
        self.data
    }
}

/// A thread-*private* array with symbolic addresses — per-thread scratch
/// data (Dijkstra distance arrays, local frontiers) that the simulator
/// should still see cache traffic for, without any atomic overhead.
///
/// # Examples
///
/// ```
/// use crono_runtime::{Machine, NativeMachine, TrackedVec};
///
/// NativeMachine::new(1).run(|ctx| {
///     let mut dist = TrackedVec::filled(8, u32::MAX);
///     dist.set(ctx, 3, 7);
///     assert_eq!(dist.get(ctx, 3), 7);
/// });
/// ```
#[derive(Debug)]
pub struct TrackedVec<T> {
    region: Region,
    data: Vec<T>,
}

impl<T: Copy> TrackedVec<T> {
    /// Creates `n` elements all set to `value`.
    pub fn filled(n: usize, value: T) -> Self {
        TrackedVec {
            region: alloc_region(n as u64 * std::mem::size_of::<T>() as u64),
            data: vec![value; n],
        }
    }

    /// Wraps existing values.
    pub fn from_vec(data: Vec<T>) -> Self {
        TrackedVec {
            region: alloc_region(data.len() as u64 * std::mem::size_of::<T>() as u64),
            data,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Symbolic address of element `i`.
    pub fn addr(&self, i: usize) -> Addr {
        self.region.addr(i, std::mem::size_of::<T>() as u64)
    }

    /// Reads element `i` through the context.
    #[inline]
    pub fn get<C: ThreadCtx>(&self, ctx: &mut C, i: usize) -> T {
        ctx.load(self.addr(i));
        self.data[i]
    }

    /// Writes element `i` through the context.
    #[inline]
    pub fn set<C: ThreadCtx>(&mut self, ctx: &mut C, i: usize, v: T) {
        ctx.store(self.addr(i));
        self.data[i] = v;
    }

    /// The underlying slice (no context).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Consumes the array, returning the values.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Machine, NativeMachine};

    #[test]
    fn tracked_vec_round_trips() {
        NativeMachine::new(1).run(|ctx| {
            let mut v = TrackedVec::filled(4, 0u64);
            v.set(ctx, 2, 9);
            assert_eq!(v.get(ctx, 2), 9);
            assert_eq!(v.as_slice(), &[0, 0, 9, 0]);
        });
    }

    #[test]
    fn u32_fetch_min_converges() {
        let arr = SharedU32s::filled(1, 1000);
        NativeMachine::new(8).run(|ctx| {
            arr.fetch_min(ctx, 0, 10 + ctx.thread_id() as u32);
        });
        assert_eq!(arr.get_plain(0), 10);
    }

    #[test]
    fn u64_fetch_add_is_atomic() {
        let arr = SharedU64s::new(1);
        NativeMachine::new(8).run(|ctx| {
            for _ in 0..1000 {
                arr.fetch_add(ctx, 0, 1);
            }
        });
        assert_eq!(arr.get_plain(0), 8000);
    }

    #[test]
    fn f64_fetch_add_is_atomic() {
        let arr = SharedF64s::filled(1, 0.0);
        NativeMachine::new(4).run(|ctx| {
            for _ in 0..100 {
                arr.fetch_add(ctx, 0, 0.5);
            }
        });
        assert!((arr.get_plain(0) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn flags_test_and_set_claims_once() {
        let flags = SharedFlags::new(1);
        let claims = SharedU64s::new(1);
        NativeMachine::new(8).run(|ctx| {
            if !flags.test_and_set(ctx, 0) {
                claims.fetch_add(ctx, 0, 1);
            }
        });
        assert_eq!(claims.get_plain(0), 1, "exactly one thread claims");
    }

    #[test]
    fn compare_exchange_success_and_failure() {
        let arr = SharedU32s::filled(1, 5);
        NativeMachine::new(1).run(|ctx| {
            assert_eq!(arr.compare_exchange(ctx, 0, 5, 7), Ok(5));
            assert_eq!(arr.compare_exchange(ctx, 0, 5, 9), Err(7));
        });
    }

    #[test]
    fn addresses_are_contiguous() {
        let arr = SharedU32s::new(32);
        assert_eq!(arr.addr(1).raw() - arr.addr(0).raw(), 4);
        assert_eq!(arr.addr(16).line() - arr.addr(0).line(), 1);
    }

    #[test]
    fn read_array_round_trips() {
        let data = vec![1u64, 2, 3];
        let arr = ReadArray::new(&data);
        assert_eq!(arr.len(), 3);
        assert_eq!(arr.as_slice(), &[1, 2, 3]);
        NativeMachine::new(1).run(|ctx| {
            assert_eq!(arr.get(ctx, 1), 2);
        });
    }

    #[test]
    fn to_vec_snapshots() {
        let arr = SharedU32s::from_values([9, 8, 7]);
        assert_eq!(arr.to_vec(), vec![9, 8, 7]);
        arr.set_plain(1, 0);
        assert_eq!(arr.to_vec(), vec![9, 0, 7]);
    }
}
