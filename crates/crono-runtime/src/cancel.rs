//! Run-wide cancellation: a cancellation token fused with a cancellable
//! barrier and a wall-clock watchdog.
//!
//! Both backends spawn one worker per thread and rendezvous them at
//! kernel barriers. A plain [`std::sync::Barrier`] deadlocks the moment
//! one worker dies — the survivors wait for an arrival that never comes.
//! [`RunGate`] replaces it: one generation-counting barrier whose waiters
//! are *also* released when the run is cancelled (by a contained worker
//! panic or by the [`RunGate::watchdog`] timeout), so surviving workers
//! drain out at their next barrier or iteration boundary instead of
//! hanging. After cancellation every `barrier_wait` returns immediately
//! with `false`; results of a cancelled run are discarded by the caller,
//! so the post-cancellation execution only needs to terminate, not to
//! stay meaningful.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Why a run was cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelCause {
    /// A worker thread panicked; its panic was contained.
    WorkerPanic,
    /// The wall-clock watchdog ([`crate::RunOptions::timeout`]) expired.
    Timeout,
}

#[derive(Debug)]
struct GateState {
    cause: Option<CancelCause>,
    arrived: usize,
    generation: u64,
    /// Workers the barrier currently waits for. Starts at the run's
    /// thread count; a permanently departed worker ([`RunGate::depart`])
    /// shrinks it, re-sizing every subsequent barrier to the survivors.
    expected: usize,
    /// Set by the backend after all workers joined; releases the watchdog.
    done: bool,
}

/// Cancellation token + cancellable sense barrier + watchdog, shared by
/// every worker of one run.
#[derive(Debug)]
pub struct RunGate {
    /// Fast-path mirror of `cause.is_some()` for per-iteration polling.
    flag: AtomicBool,
    state: Mutex<GateState>,
    cv: Condvar,
}

impl RunGate {
    /// A gate for a run of `threads` workers.
    pub fn new(threads: usize) -> Self {
        RunGate {
            flag: AtomicBool::new(false),
            state: Mutex::new(GateState {
                cause: None,
                arrived: 0,
                generation: 0,
                expected: threads,
                done: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Poison-transparent lock: a panicking worker must not mask its own
    /// panic by aborting every other thread on a poisoned mutex.
    fn lock(&self) -> MutexGuard<'_, GateState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Whether the run has been cancelled (cheap enough to poll from
    /// kernel inner loops).
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// The first cancellation cause, if any.
    pub fn cause(&self) -> Option<CancelCause> {
        self.lock().cause
    }

    /// Cancels the run, releasing every barrier waiter. The first cause
    /// wins; returns whether this call was the one that cancelled.
    pub fn cancel(&self, cause: CancelCause) -> bool {
        let mut s = self.lock();
        if s.cause.is_some() {
            return false;
        }
        s.cause = Some(cause);
        self.flag.store(true, Ordering::Release);
        self.cv.notify_all();
        true
    }

    /// Waits until all currently-expected workers arrive (returns
    /// `true`) or the run is cancelled (returns `false`, immediately
    /// once cancelled). A departed worker no longer counts toward the
    /// barrier.
    pub fn barrier_wait(&self) -> bool {
        let mut s = self.lock();
        if s.cause.is_some() {
            return false;
        }
        s.arrived += 1;
        if s.arrived >= s.expected {
            s.arrived = 0;
            s.generation += 1;
            self.cv.notify_all();
            return true;
        }
        let gen = s.generation;
        while s.generation == gen && s.cause.is_none() {
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        s.cause.is_none()
    }

    /// Permanently removes one worker from the barrier population (a
    /// disabled core): every subsequent barrier waits only for the
    /// survivors, and a generation whose last missing arrival was the
    /// departing worker is released immediately. Unlike
    /// [`RunGate::cancel`] the run stays healthy — survivors keep
    /// computing rather than draining out.
    pub fn depart(&self) {
        let mut s = self.lock();
        s.expected = s.expected.saturating_sub(1);
        if s.expected > 0 && s.arrived >= s.expected {
            s.arrived = 0;
            s.generation += 1;
            self.cv.notify_all();
        }
    }

    /// Workers the barrier currently waits for (shrinks as workers
    /// depart).
    pub fn expected(&self) -> usize {
        self.lock().expected
    }

    /// Marks the run finished (all workers joined); releases the
    /// watchdog. Must be called inside the thread scope so the watchdog
    /// thread exits before the scope does.
    pub fn finish(&self) {
        let mut s = self.lock();
        s.done = true;
        self.cv.notify_all();
    }

    /// Blocks until the run finishes or `timeout` elapses; on expiry
    /// cancels the run with [`CancelCause::Timeout`]. Run on a dedicated
    /// watchdog thread.
    pub fn watchdog(&self, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        let mut s = self.lock();
        loop {
            if s.done || s.cause.is_some() {
                return;
            }
            let now = Instant::now();
            if now >= deadline {
                s.cause = Some(CancelCause::Timeout);
                self.flag.store(true, Ordering::Release);
                self.cv.notify_all();
                return;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(s, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            s = guard;
        }
    }
}

/// Renders a caught panic payload for [`crate::RunError::WorkerPanicked`]
/// (public so backend crates can report panics the same way).
pub fn panic_payload(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn barrier_synchronizes_all_threads() {
        let gate = Arc::new(RunGate::new(4));
        let passed: Vec<bool> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let gate = Arc::clone(&gate);
                    scope.spawn(move || gate.barrier_wait())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(passed, vec![true; 4]);
    }

    #[test]
    fn cancel_releases_parked_waiters() {
        let gate = Arc::new(RunGate::new(3));
        let results: Vec<bool> = std::thread::scope(|scope| {
            let waiters: Vec<_> = (0..2)
                .map(|_| {
                    let gate = Arc::clone(&gate);
                    scope.spawn(move || gate.barrier_wait())
                })
                .collect();
            // The third thread never arrives — it "panicked".
            std::thread::sleep(Duration::from_millis(10));
            gate.cancel(CancelCause::WorkerPanic);
            waiters.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(results, vec![false, false]);
        // Subsequent waits return immediately.
        assert!(!gate.barrier_wait());
        assert_eq!(gate.cause(), Some(CancelCause::WorkerPanic));
    }

    #[test]
    fn depart_resizes_the_barrier_to_survivors() {
        let gate = Arc::new(RunGate::new(3));
        assert_eq!(gate.expected(), 3);
        let results: Vec<bool> = std::thread::scope(|scope| {
            let waiters: Vec<_> = (0..2)
                .map(|_| {
                    let gate = Arc::clone(&gate);
                    scope.spawn(move || gate.barrier_wait())
                })
                .collect();
            // The third worker dies permanently instead of arriving: the
            // two parked survivors must be released with `true`.
            std::thread::sleep(Duration::from_millis(10));
            gate.depart();
            waiters.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(results, vec![true, true], "survivors pass, not cancel");
        assert_eq!(gate.expected(), 2);
        // Subsequent barriers need only the two survivors.
        let passed: Vec<bool> = std::thread::scope(|scope| {
            (0..2)
                .map(|_| {
                    let gate = Arc::clone(&gate);
                    scope.spawn(move || gate.barrier_wait())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(passed, vec![true, true]);
    }

    #[test]
    fn depart_before_any_arrival_only_shrinks() {
        let gate = RunGate::new(2);
        gate.depart();
        assert_eq!(gate.expected(), 1);
        // The lone survivor sails through every barrier.
        assert!(gate.barrier_wait());
        assert!(gate.barrier_wait());
    }

    #[test]
    fn first_cancel_cause_wins() {
        let gate = RunGate::new(1);
        assert!(gate.cancel(CancelCause::Timeout));
        assert!(!gate.cancel(CancelCause::WorkerPanic));
        assert_eq!(gate.cause(), Some(CancelCause::Timeout));
    }

    #[test]
    fn watchdog_cancels_after_timeout() {
        let gate = Arc::new(RunGate::new(1));
        std::thread::scope(|scope| {
            let g = Arc::clone(&gate);
            scope.spawn(move || g.watchdog(Duration::from_millis(5)));
        });
        assert_eq!(gate.cause(), Some(CancelCause::Timeout));
        assert!(gate.is_cancelled());
    }

    #[test]
    fn watchdog_exits_quietly_when_run_finishes() {
        let gate = Arc::new(RunGate::new(1));
        std::thread::scope(|scope| {
            let g = Arc::clone(&gate);
            scope.spawn(move || g.watchdog(Duration::from_secs(60)));
            gate.finish();
        });
        assert_eq!(gate.cause(), None);
    }
}
