use crate::{
    Addr, LockSet, Machine, RunOutcome, RunReport, ThreadCtx, ThreadReport,
};
use crono_trace::{ThreadTracer, TraceConfig};
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// The real-machine backend (paper §IV-C / §VI): benchmarks run on host
/// OS threads at full speed; memory hooks compile to an instruction
/// counter increment and nothing else.
///
/// With [`NativeMachine::with_tracing`] each thread additionally records
/// algorithm-phase spans, barrier waits, and lock-wait spans into a
/// `crono-trace` ring buffer (nanosecond timestamps). Without it, the
/// trace hooks monomorphize to a branch on an always-`None` option for
/// the low-frequency sync hooks and to *nothing* for the memory hooks,
/// so the measured kernel is unchanged.
///
/// # Examples
///
/// ```
/// use crono_runtime::{Machine, NativeMachine, ThreadCtx};
///
/// let machine = NativeMachine::new(8);
/// let outcome = machine.run(|ctx| ctx.thread_id());
/// assert_eq!(outcome.per_thread, (0..8).collect::<Vec<_>>());
/// assert!(outcome.report.wall.as_nanos() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct NativeMachine {
    threads: usize,
    trace: Option<TraceConfig>,
}

impl NativeMachine {
    /// Creates a backend that runs parallel regions on `threads` host
    /// threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        NativeMachine { threads, trace: None }
    }

    /// As [`NativeMachine::new`], with per-thread event tracing enabled.
    /// Each [`ThreadReport`](crate::ThreadReport) of a run then carries a
    /// `trace` (timestamps in nanoseconds since thread start).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_tracing(threads: usize, trace: TraceConfig) -> Self {
        assert!(threads > 0, "need at least one thread");
        NativeMachine { threads, trace: Some(trace) }
    }
}

impl Machine for NativeMachine {
    type Ctx = NativeCtx;

    fn num_threads(&self) -> usize {
        self.threads
    }

    fn backend_name(&self) -> &'static str {
        "native"
    }

    fn run<F, R>(&self, body: F) -> RunOutcome<R>
    where
        F: Fn(&mut Self::Ctx) -> R + Sync,
        R: Send,
    {
        let barrier = Arc::new(Barrier::new(self.threads));
        let start = Instant::now();
        let mut results: Vec<Option<(R, ThreadReport)>> = Vec::new();
        results.resize_with(self.threads, || None);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.threads);
            for tid in 0..self.threads {
                let body = &body;
                let barrier = Arc::clone(&barrier);
                let trace = self.trace;
                handles.push(scope.spawn(move || {
                    let mut ctx = NativeCtx {
                        tid,
                        nthreads: self.threads,
                        instructions: 0,
                        barrier,
                        start: Instant::now(),
                        active_samples: Vec::new(),
                        tracer: trace.map(|c| ThreadTracer::from_config(&c)),
                    };
                    let r = body(&mut ctx);
                    let report = ThreadReport {
                        instructions: ctx.instructions,
                        finish_time: ctx.start.elapsed().as_nanos() as u64,
                        breakdown: Default::default(),
                        active_samples: ctx.active_samples,
                        trace: ctx.tracer.map(ThreadTracer::finish),
                    };
                    (r, report)
                }));
            }
            for (tid, h) in handles.into_iter().enumerate() {
                results[tid] = Some(h.join().expect("benchmark thread panicked"));
            }
        });
        let wall = start.elapsed();
        let mut per_thread = Vec::with_capacity(self.threads);
        let mut threads = Vec::with_capacity(self.threads);
        for slot in results {
            let (r, t) = slot.expect("every thread joined");
            per_thread.push(r);
            threads.push(t);
        }
        let report = RunReport {
            backend: self.backend_name(),
            wall,
            completion: wall.as_nanos() as u64,
            threads,
            misses: Default::default(),
            energy: Default::default(),
        };
        RunOutcome { per_thread, report }
    }
}

/// Per-thread context of the [`NativeMachine`] backend.
#[derive(Debug)]
pub struct NativeCtx {
    tid: usize,
    nthreads: usize,
    instructions: u64,
    barrier: Arc<Barrier>,
    start: Instant,
    active_samples: Vec<(u64, u64)>,
    tracer: Option<ThreadTracer>,
}

impl NativeCtx {
    #[inline]
    fn now(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

impl ThreadCtx for NativeCtx {
    #[inline(always)]
    fn thread_id(&self) -> usize {
        self.tid
    }

    #[inline(always)]
    fn num_threads(&self) -> usize {
        self.nthreads
    }

    #[inline(always)]
    fn load(&mut self, _addr: Addr) {
        self.instructions += 1;
    }

    #[inline(always)]
    fn store(&mut self, _addr: Addr) {
        self.instructions += 1;
    }

    #[inline(always)]
    fn rmw(&mut self, _addr: Addr) {
        self.instructions += 1;
    }

    #[inline(always)]
    fn compute(&mut self, cycles: u32) {
        self.instructions += cycles as u64;
    }

    #[inline]
    fn lock(&mut self, set: &LockSet, idx: usize) {
        self.instructions += 1;
        if self.tracer.is_some() {
            let t0 = self.now();
            set.acquire_raw(idx);
            let dur = self.now().saturating_sub(t0);
            let tr = self.tracer.as_mut().expect("checked above");
            tr.complete("sync", "lock_wait", t0, dur);
        } else {
            set.acquire_raw(idx);
        }
    }

    #[inline]
    fn unlock(&mut self, set: &LockSet, idx: usize) {
        self.instructions += 1;
        set.release_raw(idx);
    }

    fn barrier(&mut self) {
        self.instructions += 1;
        if self.tracer.is_some() {
            let t0 = self.now();
            self.barrier.wait();
            let dur = self.now().saturating_sub(t0);
            let tr = self.tracer.as_mut().expect("checked above");
            tr.complete("sync", "barrier_wait", t0, dur);
        } else {
            self.barrier.wait();
        }
    }

    fn record_active(&mut self, active: u64) {
        self.active_samples
            .push((self.start.elapsed().as_nanos() as u64, active));
    }

    #[inline(always)]
    fn instructions(&self) -> u64 {
        self.instructions
    }

    #[inline]
    fn span_begin(&mut self, name: &'static str) {
        if self.tracer.is_some() {
            let ts = self.now();
            self.tracer.as_mut().expect("checked above").begin("algo", name, ts);
        }
    }

    #[inline]
    fn span_end(&mut self, name: &'static str) {
        if self.tracer.is_some() {
            let ts = self.now();
            self.tracer.as_mut().expect("checked above").end("algo", name, ts);
        }
    }

    #[inline]
    fn trace_instant(&mut self, name: &'static str, value: u64) {
        if self.tracer.is_some() {
            let ts = self.now();
            self.tracer
                .as_mut()
                .expect("checked above")
                .instant("algo", name, ts, value);
        }
    }

    #[inline(always)]
    fn tracing(&self) -> bool {
        self.tracer.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SharedU64s;

    #[test]
    fn all_threads_run_once() {
        let m = NativeMachine::new(6);
        let outcome = m.run(|ctx| ctx.thread_id() * 2);
        assert_eq!(outcome.per_thread, vec![0, 2, 4, 6, 8, 10]);
        assert_eq!(outcome.report.threads.len(), 6);
        assert_eq!(outcome.report.backend, "native");
    }

    #[test]
    fn barrier_synchronizes_phases() {
        let m = NativeMachine::new(4);
        let flags = SharedU64s::new(4);
        let ok = m.run(|ctx| {
            flags.set(ctx, ctx.thread_id(), 1);
            ctx.barrier();
            // After the barrier every thread must observe all flags.
            (0..4).all(|i| flags.get(ctx, i) == 1)
        });
        assert!(ok.per_thread.iter().all(|&b| b));
    }

    #[test]
    fn instruction_counts_reflect_work() {
        let m = NativeMachine::new(2);
        let outcome = m.run(|ctx| {
            if ctx.thread_id() == 0 {
                ctx.compute(100);
            } else {
                ctx.compute(10);
            }
        });
        assert!(outcome.report.variability() > 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        NativeMachine::new(0);
    }

    #[test]
    fn untraced_runs_carry_no_trace() {
        let m = NativeMachine::new(2);
        let outcome = m.run(|ctx| {
            ctx.span_begin("phase");
            ctx.compute(10);
            ctx.span_end("phase");
            ctx.tracing()
        });
        assert_eq!(outcome.per_thread, vec![false, false]);
        assert!(outcome.report.threads.iter().all(|t| t.trace.is_none()));
    }

    #[test]
    fn traced_runs_record_spans_and_sync() {
        let m = NativeMachine::with_tracing(3, TraceConfig::default());
        let locks = LockSet::new(1);
        let outcome = m.run(|ctx| {
            ctx.span_begin("phase");
            ctx.lock(&locks, 0);
            ctx.compute(5);
            ctx.unlock(&locks, 0);
            ctx.barrier();
            ctx.trace_instant("sample", 42);
            ctx.span_end("phase");
            ctx.tracing()
        });
        assert_eq!(outcome.per_thread, vec![true, true, true]);
        for t in &outcome.report.threads {
            let trace = t.trace.as_ref().expect("tracing enabled");
            let names: Vec<_> = trace.events.iter().map(|e| e.name).collect();
            for needle in ["phase", "lock_wait", "barrier_wait", "sample"] {
                assert!(names.contains(&needle), "missing {needle}: {names:?}");
            }
            assert_eq!(trace.dropped, 0);
        }
    }
}
