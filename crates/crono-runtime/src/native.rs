use crate::cancel::{panic_payload, CancelCause, RunGate};
use crate::{
    Addr, LockSet, Machine, RunError, RunOptions, RunOutcome, RunReport, ThreadCtx, ThreadReport,
};
use crono_trace::{ThreadTracer, TraceConfig};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// The real-machine backend (paper §IV-C / §VI): benchmarks run on host
/// OS threads at full speed; memory hooks compile to an instruction
/// counter increment and nothing else.
///
/// With [`NativeMachine::with_tracing`] each thread additionally records
/// algorithm-phase spans, barrier waits, and lock-wait spans into a
/// `crono-trace` ring buffer (nanosecond timestamps). Without it, the
/// trace hooks monomorphize to a branch on an always-`None` option for
/// the low-frequency sync hooks and to *nothing* for the memory hooks,
/// so the measured kernel is unchanged.
///
/// Worker panics are contained (see [`Machine::try_run_with`]): a
/// panicking thread cancels the run via the shared [`RunGate`], the
/// surviving threads drain out of their barriers, and the caller gets a
/// typed [`RunError`] instead of a process abort.
///
/// # Examples
///
/// ```
/// use crono_runtime::{Machine, NativeMachine, ThreadCtx};
///
/// let machine = NativeMachine::new(8);
/// let outcome = machine.run(|ctx| ctx.thread_id());
/// assert_eq!(outcome.per_thread, (0..8).collect::<Vec<_>>());
/// assert!(outcome.report.wall.as_nanos() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct NativeMachine {
    threads: usize,
    trace: Option<TraceConfig>,
}

impl NativeMachine {
    /// Creates a backend that runs parallel regions on `threads` host
    /// threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        NativeMachine { threads, trace: None }
    }

    /// As [`NativeMachine::new`], with per-thread event tracing enabled.
    /// Each [`ThreadReport`](crate::ThreadReport) of a run then carries a
    /// `trace` (timestamps in nanoseconds since thread start).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_tracing(threads: usize, trace: TraceConfig) -> Self {
        assert!(threads > 0, "need at least one thread");
        NativeMachine { threads, trace: Some(trace) }
    }
}

impl Machine for NativeMachine {
    type Ctx = NativeCtx;

    fn num_threads(&self) -> usize {
        self.threads
    }

    fn backend_name(&self) -> &'static str {
        "native"
    }

    fn try_run_with<F, R>(&self, opts: &RunOptions, body: F) -> Result<RunOutcome<R>, RunError>
    where
        F: Fn(&mut Self::Ctx) -> R + Sync,
        R: Send,
    {
        let gate = Arc::new(RunGate::new(self.threads));
        let start = Instant::now();
        let mut results: Vec<Option<(Result<R, String>, ThreadReport)>> = Vec::new();
        results.resize_with(self.threads, || None);
        std::thread::scope(|scope| {
            if let Some(timeout) = opts.timeout {
                let gate = Arc::clone(&gate);
                scope.spawn(move || gate.watchdog(timeout));
            }
            let mut handles = Vec::with_capacity(self.threads);
            for tid in 0..self.threads {
                let body = &body;
                let gate = Arc::clone(&gate);
                let trace = self.trace;
                handles.push(scope.spawn(move || {
                    let mut ctx = NativeCtx {
                        tid,
                        nthreads: self.threads,
                        instructions: 0,
                        gate: Arc::clone(&gate),
                        start: Instant::now(),
                        active_samples: Vec::new(),
                        tracer: trace.map(|c| ThreadTracer::from_config(&c)),
                    };
                    // Contain panics: cancel the run so survivors drain
                    // out of their barriers instead of deadlocking, and
                    // hand the payload back as a typed error. The context
                    // is only borrowed by the closure, so the thread's
                    // partial report survives its panic.
                    let r = match catch_unwind(AssertUnwindSafe(|| body(&mut ctx))) {
                        Ok(v) => Ok(v),
                        Err(p) => {
                            gate.cancel(CancelCause::WorkerPanic);
                            Err(panic_payload(p))
                        }
                    };
                    let report = ThreadReport {
                        instructions: ctx.instructions,
                        finish_time: ctx.start.elapsed().as_nanos() as u64,
                        breakdown: Default::default(),
                        active_samples: ctx.active_samples,
                        trace: ctx.tracer.map(ThreadTracer::finish),
                    };
                    (r, report)
                }));
            }
            for (tid, h) in handles.into_iter().enumerate() {
                // The worker caught its own panic; join only fails if the
                // panic payload itself panicked while being dropped.
                results[tid] = Some(h.join().expect("worker thread vanished"));
            }
            gate.finish();
        });
        let wall = start.elapsed();
        let mut per_thread = Vec::with_capacity(self.threads);
        let mut threads = Vec::with_capacity(self.threads);
        let mut first_panic: Option<(usize, String)> = None;
        for (tid, slot) in results.into_iter().enumerate() {
            let (r, t) = slot.expect("every thread joined");
            threads.push(t);
            match r {
                Ok(v) => per_thread.push(v),
                Err(payload) if first_panic.is_none() => first_panic = Some((tid, payload)),
                Err(_) => {}
            }
        }
        let report = RunReport {
            backend: self.backend_name(),
            wall,
            completion: wall.as_nanos() as u64,
            threads,
            misses: Default::default(),
            energy: Default::default(),
            faults: Default::default(),
        };
        if let Some((tid, payload)) = first_panic {
            return Err(RunError::WorkerPanicked { tid, payload, report });
        }
        if gate.cause() == Some(CancelCause::Timeout) {
            return Err(RunError::TimedOut {
                timeout: opts.timeout.unwrap_or_default(),
                report,
            });
        }
        Ok(RunOutcome { per_thread, report })
    }
}

/// Per-thread context of the [`NativeMachine`] backend.
#[derive(Debug)]
pub struct NativeCtx {
    tid: usize,
    nthreads: usize,
    instructions: u64,
    gate: Arc<RunGate>,
    start: Instant,
    active_samples: Vec<(u64, u64)>,
    tracer: Option<ThreadTracer>,
}

impl NativeCtx {
    #[inline]
    fn now(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Spin-acquire with a cancellation check: a cancelled run may never
    /// release the lock (its holder panicked), so waiters bail out and
    /// drain. Results of a cancelled run are discarded, so returning
    /// without the lock is safe.
    fn acquire_or_drain(&self, set: &LockSet, idx: usize) {
        let mut spins = 0u32;
        loop {
            if set.try_acquire_raw(idx) {
                return;
            }
            if self.gate.is_cancelled() {
                return;
            }
            spins = spins.wrapping_add(1);
            if spins % 64 == 0 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

impl ThreadCtx for NativeCtx {
    #[inline(always)]
    fn thread_id(&self) -> usize {
        self.tid
    }

    #[inline(always)]
    fn num_threads(&self) -> usize {
        self.nthreads
    }

    #[inline(always)]
    fn load(&mut self, _addr: Addr) {
        self.instructions += 1;
    }

    #[inline(always)]
    fn store(&mut self, _addr: Addr) {
        self.instructions += 1;
    }

    #[inline(always)]
    fn rmw(&mut self, _addr: Addr) {
        self.instructions += 1;
    }

    #[inline(always)]
    fn compute(&mut self, cycles: u32) {
        self.instructions += cycles as u64;
    }

    #[inline]
    fn lock(&mut self, set: &LockSet, idx: usize) {
        self.instructions += 1;
        if self.tracer.is_some() {
            let t0 = self.now();
            self.acquire_or_drain(set, idx);
            let dur = self.now().saturating_sub(t0);
            let tr = self.tracer.as_mut().expect("checked above");
            tr.complete("sync", "lock_wait", t0, dur);
        } else {
            self.acquire_or_drain(set, idx);
        }
    }

    #[inline]
    fn unlock(&mut self, set: &LockSet, idx: usize) {
        self.instructions += 1;
        set.release_raw(idx);
    }

    fn barrier(&mut self) {
        self.instructions += 1;
        if self.tracer.is_some() {
            let t0 = self.now();
            self.gate.barrier_wait();
            let dur = self.now().saturating_sub(t0);
            let tr = self.tracer.as_mut().expect("checked above");
            tr.complete("sync", "barrier_wait", t0, dur);
        } else {
            self.gate.barrier_wait();
        }
    }

    fn record_active(&mut self, active: u64) {
        self.active_samples
            .push((self.start.elapsed().as_nanos() as u64, active));
    }

    #[inline(always)]
    fn instructions(&self) -> u64 {
        self.instructions
    }

    #[inline]
    fn span_begin(&mut self, name: &'static str) {
        if self.tracer.is_some() {
            let ts = self.now();
            self.tracer.as_mut().expect("checked above").begin("algo", name, ts);
        }
    }

    #[inline]
    fn span_end(&mut self, name: &'static str) {
        if self.tracer.is_some() {
            let ts = self.now();
            self.tracer.as_mut().expect("checked above").end("algo", name, ts);
        }
    }

    #[inline]
    fn trace_instant(&mut self, name: &'static str, value: u64) {
        if self.tracer.is_some() {
            let ts = self.now();
            self.tracer
                .as_mut()
                .expect("checked above")
                .instant("algo", name, ts, value);
        }
    }

    #[inline(always)]
    fn tracing(&self) -> bool {
        self.tracer.is_some()
    }

    #[inline(always)]
    fn cancelled(&self) -> bool {
        self.gate.is_cancelled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SharedU64s;
    use std::time::Duration;

    #[test]
    fn all_threads_run_once() {
        let m = NativeMachine::new(6);
        let outcome = m.run(|ctx| ctx.thread_id() * 2);
        assert_eq!(outcome.per_thread, vec![0, 2, 4, 6, 8, 10]);
        assert_eq!(outcome.report.threads.len(), 6);
        assert_eq!(outcome.report.backend, "native");
    }

    #[test]
    fn barrier_synchronizes_phases() {
        let m = NativeMachine::new(4);
        let flags = SharedU64s::new(4);
        let ok = m.run(|ctx| {
            flags.set(ctx, ctx.thread_id(), 1);
            ctx.barrier();
            // After the barrier every thread must observe all flags.
            (0..4).all(|i| flags.get(ctx, i) == 1)
        });
        assert!(ok.per_thread.iter().all(|&b| b));
    }

    #[test]
    fn instruction_counts_reflect_work() {
        let m = NativeMachine::new(2);
        let outcome = m.run(|ctx| {
            if ctx.thread_id() == 0 {
                ctx.compute(100);
            } else {
                ctx.compute(10);
            }
        });
        assert!(outcome.report.variability() > 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        NativeMachine::new(0);
    }

    #[test]
    fn untraced_runs_carry_no_trace() {
        let m = NativeMachine::new(2);
        let outcome = m.run(|ctx| {
            ctx.span_begin("phase");
            ctx.compute(10);
            ctx.span_end("phase");
            ctx.tracing()
        });
        assert_eq!(outcome.per_thread, vec![false, false]);
        assert!(outcome.report.threads.iter().all(|t| t.trace.is_none()));
    }

    #[test]
    fn traced_runs_record_spans_and_sync() {
        let m = NativeMachine::with_tracing(3, TraceConfig::default());
        let locks = LockSet::new(1);
        let outcome = m.run(|ctx| {
            ctx.span_begin("phase");
            ctx.lock(&locks, 0);
            ctx.compute(5);
            ctx.unlock(&locks, 0);
            ctx.barrier();
            ctx.trace_instant("sample", 42);
            ctx.span_end("phase");
            ctx.tracing()
        });
        assert_eq!(outcome.per_thread, vec![true, true, true]);
        for t in &outcome.report.threads {
            let trace = t.trace.as_ref().expect("tracing enabled");
            let names: Vec<_> = trace.events.iter().map(|e| e.name).collect();
            for needle in ["phase", "lock_wait", "barrier_wait", "sample"] {
                assert!(names.contains(&needle), "missing {needle}: {names:?}");
            }
            assert_eq!(trace.dropped, 0);
        }
    }

    /// The panic-containment regression test: one worker panics while the
    /// others wait at barriers — without containment this deadlocks (the
    /// survivors wait for an arrival that never comes) or aborts the
    /// process. It must instead return a typed error carrying every
    /// thread's report, and leave the machine usable.
    #[test]
    fn worker_panic_returns_typed_error_without_deadlock() {
        let m = NativeMachine::new(4);
        let err = m
            .try_run(|ctx| {
                if ctx.thread_id() == 2 {
                    panic!("boom on tid 2");
                }
                for _ in 0..10 {
                    ctx.compute(5);
                    ctx.barrier();
                }
                ctx.thread_id()
            })
            .expect_err("a panicking worker must fail the run");
        match &err {
            RunError::WorkerPanicked { tid, payload, report } => {
                assert_eq!(*tid, 2);
                assert!(payload.contains("boom on tid 2"), "{payload:?}");
                // Survivors' reports are intact (4 threads, all joined).
                assert_eq!(report.threads.len(), 4);
                assert!(report.threads[0].instructions > 0);
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        assert!(err.to_string().contains("worker thread 2 panicked"));
        // The machine is recoverable: the next run succeeds.
        let outcome = m.run(|ctx| ctx.thread_id());
        assert_eq!(outcome.per_thread, vec![0, 1, 2, 3]);
    }

    #[test]
    fn panic_while_holding_a_lock_does_not_hang_waiters() {
        let m = NativeMachine::new(3);
        let locks = LockSet::new(1);
        let err = m
            .try_run(|ctx| {
                ctx.lock(&locks, 0);
                if ctx.thread_id() == 0 {
                    panic!("died holding the lock");
                }
                ctx.unlock(&locks, 0);
            })
            .expect_err("panicked run");
        assert!(matches!(err, RunError::WorkerPanicked { tid: 0, .. }));
    }

    /// The watchdog cancels a kernel that never terminates on its own;
    /// workers observe `cancelled()` and drain.
    #[test]
    fn timeout_watchdog_cancels_hung_kernel() {
        let m = NativeMachine::new(2);
        let opts = RunOptions {
            timeout: Some(Duration::from_millis(20)),
        };
        let err = m
            .try_run_with(&opts, |ctx| {
                while !ctx.cancelled() {
                    ctx.compute(1);
                }
                ctx.thread_id()
            })
            .expect_err("hung kernel must time out");
        match err {
            RunError::TimedOut { timeout, report } => {
                assert_eq!(timeout, Duration::from_millis(20));
                assert_eq!(report.threads.len(), 2);
            }
            other => panic!("expected TimedOut, got {other:?}"),
        }
    }

    #[test]
    fn fast_runs_beat_the_watchdog() {
        let m = NativeMachine::new(2);
        let opts = RunOptions {
            timeout: Some(Duration::from_secs(60)),
        };
        let outcome = m
            .try_run_with(&opts, |ctx| ctx.thread_id())
            .expect("fast run completes before the watchdog");
        assert_eq!(outcome.per_thread, vec![0, 1]);
    }
}
