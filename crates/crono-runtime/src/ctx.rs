use crate::{Addr, LockSet};

/// Per-thread execution context through which benchmarks report every
/// shared-memory access, every unit of compute, and every synchronization
/// event.
///
/// Implementations:
///
/// * [`crate::NativeCtx`] — the real-machine backend: memory hooks are
///   inlined no-ops (plus an instruction counter), locks are real
///   spinlocks, barriers are real barriers. Benchmarks run at native
///   speed.
/// * `crono_sim::SimCtx` — the Graphite-style backend: every hook drives
///   the timing model (private L1, directory, NoC, DRAM, per-thread
///   clock).
///
/// Because benchmark kernels are generic over `ThreadCtx`, each backend
/// gets its own monomorphized copy — the native build pays nothing for
/// the instrumentation the simulator needs.
pub trait ThreadCtx {
    /// This thread's id in `0..num_threads()`.
    fn thread_id(&self) -> usize;

    /// Number of threads in this run.
    fn num_threads(&self) -> usize;

    /// Models a read of the word at `addr`.
    fn load(&mut self, addr: Addr);

    /// Models a write of the word at `addr`.
    fn store(&mut self, addr: Addr);

    /// Models an atomic read-modify-write of the word at `addr`
    /// (exclusive-ownership write in the coherence model).
    fn rmw(&mut self, addr: Addr);

    /// Models `cycles` single-issue ALU cycles of work.
    fn compute(&mut self, cycles: u32);

    /// Acquires lock `idx` of `set`: real mutual exclusion on every
    /// backend, plus modeled waiting time on the simulated backend.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range for `set`.
    fn lock(&mut self, set: &LockSet, idx: usize);

    /// Releases lock `idx` of `set`.
    ///
    /// Calling this without holding the lock is a logic error that leaves
    /// the lock set in an inconsistent state.
    fn unlock(&mut self, set: &LockSet, idx: usize);

    /// Waits until all threads of the run reach the barrier.
    fn barrier(&mut self);

    /// Records an active-vertex sample (the Fig. 2 instrumentation): the
    /// benchmark currently has `active` vertices in flight.
    fn record_active(&mut self, active: u64);

    /// Instructions this thread has executed so far (loads, stores, RMWs,
    /// lock operations, and `compute` cycles all count — CRONO's
    /// load-imbalance metric is instruction-based, §IV-E).
    fn instructions(&self) -> u64;

    /// This thread's position on the backend's *time* axis. The
    /// simulator returns its per-thread cycle clock, so a delta around a
    /// kernel includes memory latency, NoC contention, and fault-induced
    /// detours or re-homed DRAM queueing — work that retires no extra
    /// instructions but costs real time. The native backend has no cycle
    /// clock; there the default ([`ThreadCtx::instructions`]) stands in,
    /// which is what the serving engine's modeled latencies were always
    /// built on.
    #[inline(always)]
    fn cycles(&self) -> u64 {
        self.instructions()
    }

    /// Opens a named trace span (an algorithm phase such as a BFS level
    /// or a PageRank iteration). Must be closed by a matching
    /// [`ThreadCtx::span_end`] on the same thread, in stack order.
    ///
    /// The default is a no-op: backends without a tracer attached compile
    /// this to nothing, so the monomorphized native kernels pay zero
    /// cost when tracing is off (guarded by a test).
    #[inline(always)]
    fn span_begin(&mut self, _name: &'static str) {}

    /// Closes the innermost open span named `name`. Default no-op.
    #[inline(always)]
    fn span_end(&mut self, _name: &'static str) {}

    /// Records a point event with a payload value (e.g. a per-phase
    /// counter sample). Default no-op.
    #[inline(always)]
    fn trace_instant(&mut self, _name: &'static str, _value: u64) {}

    /// Whether a tracer is attached — lets kernels skip computing
    /// expensive event payloads when tracing is off. Default `false`.
    #[inline(always)]
    fn tracing(&self) -> bool {
        false
    }

    /// Whether this run has been cancelled (a worker panicked or the
    /// watchdog timed out). Kernels poll this at iteration boundaries and
    /// drain out early when it turns `true`; after cancellation the
    /// backend barriers no longer block, so threads may break at
    /// different iterations without deadlocking. Default `false` (a
    /// backend without cancellation support never cancels).
    #[inline(always)]
    fn cancelled(&self) -> bool {
        false
    }

    /// Whether this thread's core has permanently died (a disabled-core
    /// fault). Unlike [`ThreadCtx::cancelled`] — which drains the whole
    /// run — a departed thread stops taking work while the survivors
    /// keep computing: the task pool returns `None` from its take loops
    /// at the next task boundary, and the surviving threads steal the
    /// departed core's queued tasks. Default `false` (a backend without
    /// permanent faults never departs).
    #[inline(always)]
    fn departed(&self) -> bool {
        false
    }

    /// Convenience: lock striping. Maps an arbitrary index (e.g. a vertex
    /// id) onto a lock of `set`.
    fn lock_for(&mut self, set: &LockSet, key: usize) {
        self.lock(set, key % set.len());
    }

    /// Convenience: releases the stripe lock taken by
    /// [`ThreadCtx::lock_for`].
    fn unlock_for(&mut self, set: &LockSet, key: usize) {
        self.unlock(set, key % set.len());
    }
}
