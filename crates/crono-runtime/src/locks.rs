use crate::{alloc_region, Addr, Region};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A test-and-test-and-set spinlock.
///
/// CRONO's benchmarks guard fine-grain updates with "atomic locks"; short
/// critical sections make spinning the right discipline on both backends.
#[derive(Debug, Default)]
pub(crate) struct SpinLock {
    held: AtomicBool,
}

impl SpinLock {
    /// Acquires the lock; returns `true` if the acquisition contended
    /// (the lock was observably held by a concurrent thread).
    pub(crate) fn acquire(&self) -> bool {
        let mut contended = false;
        loop {
            if !self.held.swap(true, Ordering::Acquire) {
                return contended;
            }
            contended = true;
            let mut spins = 0u32;
            while self.held.load(Ordering::Relaxed) {
                std::hint::spin_loop();
                spins += 1;
                if spins > 1 << 12 {
                    std::thread::yield_now();
                    spins = 0;
                }
            }
        }
    }

    /// Acquires the lock only if it is free right now; never spins.
    pub(crate) fn try_acquire(&self) -> bool {
        !self.held.swap(true, Ordering::Acquire)
    }

    pub(crate) fn release(&self) {
        self.held.store(false, Ordering::Release);
    }
}

/// An indexed set of locks with symbolic addresses and per-lock release
/// clocks.
///
/// One `LockSet` serves both backends: the spinlocks provide *real*
/// mutual exclusion everywhere, while the release clocks let the
/// simulated backend compute how long a thread's simulated clock must
/// wait behind the previous holder (Graphite-style lax synchronization).
///
/// Locks are cache-line padded in the symbolic address space by default,
/// mirroring CRONO's cache-line-aligned data structures; `new_packed`
/// exists for the false-sharing ablation.
///
/// # Examples
///
/// ```
/// use crono_runtime::{LockSet, Machine, NativeMachine, ThreadCtx};
///
/// let locks = LockSet::new(8);
/// let machine = NativeMachine::new(2);
/// machine.run(|ctx| {
///     ctx.lock(&locks, 3);
///     // critical section
///     ctx.unlock(&locks, 3);
/// });
/// ```
#[derive(Debug)]
pub struct LockSet {
    locks: Vec<SpinLock>,
    release_clocks: Vec<AtomicU64>,
    /// Per-lock `(epoch_tag << 32) | booked_hold_cycles`.
    epoch_busy: Vec<AtomicU64>,
    region: Region,
    padded: bool,
}

impl LockSet {
    /// Creates `n` locks, cache-line padded in the symbolic address space.
    pub fn new(n: usize) -> Self {
        Self::build(n, true)
    }

    /// Creates `n` locks packed 4 bytes apart (16 locks per cache line) —
    /// the false-sharing ablation configuration.
    pub fn new_packed(n: usize) -> Self {
        Self::build(n, false)
    }

    fn build(n: usize, padded: bool) -> Self {
        let bytes = if padded { n as u64 * 64 } else { n as u64 * 4 };
        LockSet {
            locks: (0..n).map(|_| SpinLock::default()).collect(),
            release_clocks: (0..n).map(|_| AtomicU64::new(0)).collect(),
            epoch_busy: (0..n).map(|_| AtomicU64::new(0)).collect(),
            region: alloc_region(bytes.max(1)),
            padded,
        }
    }

    /// Number of locks in the set.
    pub fn len(&self) -> usize {
        self.locks.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.locks.is_empty()
    }

    /// Symbolic address of lock `idx`'s lock word.
    pub fn addr(&self, idx: usize) -> Addr {
        if self.padded {
            self.region.addr_padded(idx)
        } else {
            self.region.addr(idx, 4)
        }
    }

    /// Acquires the underlying spinlock (real mutual exclusion),
    /// returning `true` if the acquisition contended with a concurrent
    /// holder. Backends call this; benchmark code should go through
    /// [`crate::ThreadCtx::lock`] so timing is modeled too.
    pub fn acquire_raw(&self, idx: usize) -> bool {
        self.locks[idx].acquire()
    }

    /// Acquires the underlying spinlock only if it is free right now
    /// (never blocks), returning whether the acquisition succeeded.
    /// Deterministic backends use this to yield their scheduling turn
    /// instead of spinning while a parked thread holds the lock.
    pub fn try_acquire_raw(&self, idx: usize) -> bool {
        self.locks[idx].try_acquire()
    }

    /// Releases the underlying spinlock. Calling without holding the lock
    /// is a logic error.
    pub fn release_raw(&self, idx: usize) {
        self.locks[idx].release();
    }

    /// The simulated clock at which lock `idx` was last released.
    pub fn release_clock(&self, idx: usize) -> u64 {
        self.release_clocks[idx].load(Ordering::Acquire)
    }

    /// Records the simulated clock at which lock `idx` is released.
    pub fn set_release_clock(&self, idx: usize, clock: u64) {
        self.release_clocks[idx].store(clock, Ordering::Release);
    }

    /// Simulated hold-time already booked on lock `idx` within `epoch`
    /// (see [`LOCK_EPOCH_CYCLES`]). A simulated backend charges an
    /// acquirer this much queueing delay: with lax per-thread clocks,
    /// contention must be accounted in epochs of *simulated* time, not
    /// through the host-level race for the spinlock.
    pub fn booked_hold(&self, idx: usize, epoch: u64) -> u64 {
        let (tag, busy) = unpack(self.epoch_busy[idx].load(Ordering::Relaxed));
        if tag == (epoch & 0xFFFF_FFFF) {
            busy
        } else {
            0
        }
    }

    /// Books `cycles` of simulated hold time on lock `idx` in `epoch`.
    pub fn book_hold(&self, idx: usize, epoch: u64, cycles: u64) {
        let cell = &self.epoch_busy[idx];
        let this_tag = epoch & 0xFFFF_FFFF;
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let (tag, busy) = unpack(cur);
            let new = if tag == this_tag {
                pack(this_tag, busy.saturating_add(cycles))
            } else {
                pack(this_tag, cycles)
            };
            match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }
}

/// Simulated cycles per lock-contention accounting epoch.
pub const LOCK_EPOCH_CYCLES: u64 = 512;

fn pack(epoch_tag: u64, busy: u64) -> u64 {
    (epoch_tag << 32) | (busy & 0xFFFF_FFFF)
}

fn unpack(v: u64) -> (u64, u64) {
    (v >> 32, v & 0xFFFF_FFFF)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn spinlock_provides_mutual_exclusion() {
        let set = LockSet::new(1);
        let counter = AtomicU32::new(0);
        let inside = AtomicU32::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        set.acquire_raw(0);
                        assert_eq!(inside.fetch_add(1, Ordering::SeqCst), 0);
                        counter.fetch_add(1, Ordering::Relaxed);
                        inside.fetch_sub(1, Ordering::SeqCst);
                        set.release_raw(0);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 4000);
    }

    #[test]
    fn padded_locks_have_distinct_lines() {
        let set = LockSet::new(4);
        let lines: std::collections::HashSet<_> = (0..4).map(|i| set.addr(i).line()).collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn packed_locks_share_lines() {
        let set = LockSet::new_packed(16);
        let lines: std::collections::HashSet<_> = (0..16).map(|i| set.addr(i).line()).collect();
        assert_eq!(lines.len(), 1, "16 packed 4-byte locks fit one line");
    }

    #[test]
    fn release_clock_round_trip() {
        let set = LockSet::new(2);
        assert_eq!(set.release_clock(1), 0);
        set.set_release_clock(1, 42);
        assert_eq!(set.release_clock(1), 42);
        assert_eq!(set.release_clock(0), 0);
    }
}
