use crate::{RunReport, ThreadCtx};
use std::time::Duration;

/// The result of one parallel region: each thread's return value plus the
/// backend's [`RunReport`].
#[derive(Debug, Clone)]
pub struct RunOutcome<R> {
    /// `body`'s return value per thread, in thread-id order. Indexing
    /// by thread id is valid except under a permanent disabled-core
    /// fault: a worker that departed mid-run contributes no entry, so
    /// the vector is then shorter than the thread count.
    pub per_thread: Vec<R>,
    /// Timing/characterization report from the backend.
    pub report: RunReport,
}

/// Knobs for a fallible run ([`Machine::try_run_with`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOptions {
    /// Wall-clock watchdog: when set, a run exceeding this duration is
    /// cancelled — workers observe the cancellation at barrier and
    /// iteration boundaries and drain out — and the run returns
    /// [`RunError::TimedOut`].
    pub timeout: Option<Duration>,
}

/// Why a fallible run failed. Both variants carry the (partial)
/// [`RunReport`]: every worker — including a panicked one, up to its
/// panic point — still contributes its thread report, so the caller can
/// inspect what the surviving threads did.
#[derive(Debug)]
pub enum RunError {
    /// A worker panicked. The panic was contained: the process did not
    /// abort, the other workers drained out of their barriers, and the
    /// machine stays usable for further runs.
    WorkerPanicked {
        /// Thread id of the first panicking worker (by id order).
        tid: usize,
        /// The panic message, when it was a string payload.
        payload: String,
        /// Partial report covering every worker.
        report: RunReport,
    },
    /// The [`RunOptions::timeout`] watchdog cancelled the run.
    TimedOut {
        /// The configured timeout that expired.
        timeout: Duration,
        /// Partial report covering every worker.
        report: RunReport,
    },
    /// The backend's interconnect had no legal route for a message — a
    /// permanent dead-link fault the active routing policy cannot avoid
    /// (XY dimension-ordered routing cannot detour). The run was
    /// cancelled cleanly: survivors drained out, no hang.
    Unroutable {
        /// Thread id of the worker whose message was undeliverable.
        tid: usize,
        /// The backend's route-error description.
        detail: String,
        /// Partial report covering every worker.
        report: RunReport,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::WorkerPanicked { tid, payload, .. } => {
                write!(f, "worker thread {tid} panicked: {payload}")
            }
            RunError::TimedOut { timeout, .. } => {
                write!(f, "run cancelled after exceeding the {timeout:?} timeout")
            }
            RunError::Unroutable { tid, detail, .. } => {
                write!(f, "worker thread {tid}: {detail}")
            }
        }
    }
}

impl std::error::Error for RunError {}

impl RunError {
    /// The partial [`RunReport`] of the failed run.
    pub fn report(&self) -> &RunReport {
        match self {
            RunError::WorkerPanicked { report, .. }
            | RunError::TimedOut { report, .. }
            | RunError::Unroutable { report, .. } => report,
        }
    }
}

/// An execution backend: spawns one [`ThreadCtx`] per thread, runs the
/// parallel region, and reports what happened.
///
/// Two backends exist: [`crate::NativeMachine`] (the paper's real-machine
/// setup, §IV-C) and `crono_sim::SimMachine` (the Graphite-style
/// simulator, §IV-B).
pub trait Machine {
    /// The context type handed to each thread.
    type Ctx: ThreadCtx;

    /// Number of threads a [`Machine::run`] call will spawn.
    fn num_threads(&self) -> usize;

    /// Human-readable backend name for reports.
    fn backend_name(&self) -> &'static str;

    /// Runs `body` once per thread (each with its own context) and
    /// collects the outcome. Blocks until every thread finishes or the
    /// run fails.
    ///
    /// Worker panics are contained — never a process abort or a barrier
    /// deadlock: the panicking worker cancels the run, survivors drain
    /// out at their next barrier/iteration boundary, and the call
    /// returns [`RunError::WorkerPanicked`]. With
    /// [`RunOptions::timeout`] set, a hung kernel is cancelled the same
    /// way and the call returns [`RunError::TimedOut`].
    ///
    /// # Errors
    ///
    /// [`RunError::WorkerPanicked`] when any worker panicked,
    /// [`RunError::TimedOut`] when the watchdog fired first.
    fn try_run_with<F, R>(&self, opts: &RunOptions, body: F) -> Result<RunOutcome<R>, RunError>
    where
        F: Fn(&mut Self::Ctx) -> R + Sync,
        R: Send;

    /// [`Machine::try_run_with`] with default options (no timeout).
    ///
    /// # Errors
    ///
    /// [`RunError::WorkerPanicked`] when any worker panicked.
    fn try_run<F, R>(&self, body: F) -> Result<RunOutcome<R>, RunError>
    where
        F: Fn(&mut Self::Ctx) -> R + Sync,
        R: Send,
    {
        self.try_run_with(&RunOptions::default(), body)
    }

    /// Infallible convenience over [`Machine::try_run`]: the benchmark
    /// kernels call this.
    ///
    /// # Panics
    ///
    /// Panics (with a one-line message, after every worker has been
    /// joined — no deadlock, no abort) if a worker panicked.
    fn run<F, R>(&self, body: F) -> RunOutcome<R>
    where
        F: Fn(&mut Self::Ctx) -> R + Sync,
        R: Send,
    {
        match self.try_run(body) {
            Ok(outcome) => outcome,
            Err(e) => panic!("{e}"),
        }
    }
}
