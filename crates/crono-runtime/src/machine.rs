use crate::{RunReport, ThreadCtx};

/// The result of one parallel region: each thread's return value plus the
/// backend's [`RunReport`].
#[derive(Debug, Clone)]
pub struct RunOutcome<R> {
    /// `body`'s return value per thread, indexed by thread id.
    pub per_thread: Vec<R>,
    /// Timing/characterization report from the backend.
    pub report: RunReport,
}

/// An execution backend: spawns one [`ThreadCtx`] per thread, runs the
/// parallel region, and reports what happened.
///
/// Two backends exist: [`crate::NativeMachine`] (the paper's real-machine
/// setup, §IV-C) and `crono_sim::SimMachine` (the Graphite-style
/// simulator, §IV-B).
pub trait Machine {
    /// The context type handed to each thread.
    type Ctx: ThreadCtx;

    /// Number of threads a [`Machine::run`] call will spawn.
    fn num_threads(&self) -> usize;

    /// Human-readable backend name for reports.
    fn backend_name(&self) -> &'static str;

    /// Runs `body` once per thread (each with its own context) and
    /// collects the outcome. Blocks until every thread finishes.
    fn run<F, R>(&self, body: F) -> RunOutcome<R>
    where
        F: Fn(&mut Self::Ctx) -> R + Sync,
        R: Send;
}
