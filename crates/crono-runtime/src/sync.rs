//! Std-only synchronization primitives with the `parking_lot` /
//! `crossbeam` API surface.
//!
//! The suite must build with zero registry dependencies, so the handful of
//! conveniences it used from `parking_lot` ([`Mutex`]/[`RwLock`] whose
//! guards come back without a `Result`) and `crossbeam`
//! ([`CachePadded`]) live here as thin wrappers over `std::sync`.
//!
//! Poisoning is deliberately transparent: a benchmark thread that panics
//! already aborts the whole run, so recovering the inner value (exactly
//! what `parking_lot` does by not poisoning at all) is the behavior every
//! call site was written against.

use std::fmt;
use std::sync::PoisonError;

/// Re-exported guard type: [`Mutex::lock`] returns std's guard directly.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Re-exported guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Re-exported guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock()` never returns a `Result`
/// (poison-transparent), matching the `parking_lot::Mutex` API.
///
/// # Examples
///
/// ```
/// use crono_runtime::Mutex;
///
/// let best = Mutex::new(vec![1u32, 2, 3]);
/// best.lock().push(4);
/// assert_eq!(best.lock().len(), 4);
/// ```
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. A poisoned
    /// mutex (another holder panicked) is treated as unlocked.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock whose `read()`/`write()` never return a `Result`
/// (poison-transparent), matching the `parking_lot::RwLock` API.
///
/// # Examples
///
/// ```
/// use crono_runtime::RwLock;
///
/// let log = RwLock::new(Vec::new());
/// log.write().push(7u64);
/// assert_eq!(*log.read(), vec![7]);
/// ```
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Pads and aligns `T` to 128 bytes so neighboring values never share a
/// cache line (or a pair of prefetched lines), preventing false sharing —
/// the same guarantee `crossbeam_utils::CachePadded` gives on x86-64.
///
/// # Examples
///
/// ```
/// use crono_runtime::CachePadded;
/// use std::sync::atomic::AtomicUsize;
///
/// let slots: Vec<CachePadded<AtomicUsize>> =
///     (0..4).map(|_| CachePadded::new(AtomicUsize::new(0))).collect();
/// assert_eq!(std::mem::align_of_val(&slots[0]), 128);
/// slots[2].store(9, std::sync::atomic::Ordering::Relaxed);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in its own aligned cache-line block.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwraps the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn mutex_guards_exclude_each_other() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn mutex_survives_a_panicked_holder() {
        let m = Mutex::new(41u32);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.lock();
            panic!("holder dies");
        }));
        assert!(caught.is_err());
        // Poison is transparent: the next holder still gets the value.
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_allows_concurrent_readers() {
        let l = RwLock::new(5u32);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 10);
        drop((r1, r2));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn cache_padded_separates_lines() {
        let v: Vec<CachePadded<AtomicUsize>> =
            (0..2).map(|_| CachePadded::new(AtomicUsize::new(0))).collect();
        let a = &*v[0] as *const AtomicUsize as usize;
        let b = &*v[1] as *const AtomicUsize as usize;
        assert!(b - a >= 128, "adjacent elements {a:#x}/{b:#x} share padding");
        v[1].fetch_add(3, Ordering::Relaxed);
        assert_eq!(v[1].load(Ordering::Relaxed), 3);
        assert_eq!(v[0].load(Ordering::Relaxed), 0);
    }
}
