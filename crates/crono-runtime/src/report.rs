use std::time::Duration;

/// Completion-time decomposition, in cycles, exactly as CRONO §IV-D.
///
/// Every field is a *sum over threads* unless aggregated otherwise; the
/// characterization harness normalizes before plotting (the paper's
/// figures are normalized stacks).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Breakdown {
    /// Cycles retiring instructions (single-issue compute).
    pub compute: u64,
    /// L1 miss round trip to the L2 home: network there and back plus the
    /// first L2 access ("L1Cache-L2Cache latency").
    pub l1_to_l2home: u64,
    /// Queueing delay while requests to the same cache line serialize at
    /// the home ("L2Home-Waiting").
    pub l2home_waiting: u64,
    /// Round trips invalidating/downgrading private sharers
    /// ("L2Cache-Sharers").
    pub l2home_sharers: u64,
    /// Off-chip memory time including controller queueing
    /// ("L2Home-OffChip").
    pub l2home_offchip: u64,
    /// Time blocked on locks and barriers ("Synchronization").
    pub synchronization: u64,
}

impl Breakdown {
    /// Sum of all components.
    pub fn total(&self) -> u64 {
        self.compute
            + self.l1_to_l2home
            + self.l2home_waiting
            + self.l2home_sharers
            + self.l2home_offchip
            + self.synchronization
    }

    /// Component-wise addition (for aggregating thread breakdowns).
    pub fn merge(&mut self, other: &Breakdown) {
        self.compute += other.compute;
        self.l1_to_l2home += other.l1_to_l2home;
        self.l2home_waiting += other.l2home_waiting;
        self.l2home_sharers += other.l2home_sharers;
        self.l2home_offchip += other.l2home_offchip;
        self.synchronization += other.synchronization;
    }

    /// The six components as `(label, cycles)` pairs, in the paper's
    /// plotting order.
    pub fn components(&self) -> [(&'static str, u64); 6] {
        [
            ("Compute", self.compute),
            ("L1Cache-L2Home", self.l1_to_l2home),
            ("L2Home-Waiting", self.l2home_waiting),
            ("L2Home-Sharers", self.l2home_sharers),
            ("L2Home-OffChip", self.l2home_offchip),
            ("Synchronization", self.synchronization),
        ]
    }
}

/// L1-D miss statistics with the paper's three-way classification
/// (§IV-D): cold, capacity, and sharing misses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MissStats {
    /// Total L1-D accesses.
    pub l1d_accesses: u64,
    /// Misses to lines never seen before by this core.
    pub cold_misses: u64,
    /// Misses to lines previously evicted for capacity/conflict.
    pub capacity_misses: u64,
    /// Misses to lines previously invalidated or downgraded by another
    /// core's request.
    pub sharing_misses: u64,
    /// L2 misses (cache-hierarchy misses that go off-chip).
    pub l2_misses: u64,
    /// Total L2 accesses (L1 misses arriving at the home).
    pub l2_accesses: u64,
}

impl MissStats {
    /// All L1-D misses.
    pub fn l1d_misses(&self) -> u64 {
        self.cold_misses + self.capacity_misses + self.sharing_misses
    }

    /// L1-D miss rate in percent (0 when there were no accesses).
    pub fn l1d_miss_rate(&self) -> f64 {
        percentage(self.l1d_misses(), self.l1d_accesses)
    }

    /// Cache-hierarchy miss rate in percent: L2 misses over L1 accesses
    /// (the paper's §IV-D definition).
    pub fn hierarchy_miss_rate(&self) -> f64 {
        percentage(self.l2_misses, self.l1d_accesses)
    }

    /// Component-wise addition.
    pub fn merge(&mut self, other: &MissStats) {
        self.l1d_accesses += other.l1d_accesses;
        self.cold_misses += other.cold_misses;
        self.capacity_misses += other.capacity_misses;
        self.sharing_misses += other.sharing_misses;
        self.l2_misses += other.l2_misses;
        self.l2_accesses += other.l2_accesses;
    }
}

fn percentage(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

/// Raw event counts feeding the dynamic energy model (Fig. 6).
///
/// The simulator produces these; `crono-energy` multiplies them by
/// per-event energies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnergyCounters {
    /// Instruction-cache accesses (≈ instructions fetched).
    pub l1i_accesses: u64,
    /// Data-cache accesses.
    pub l1d_accesses: u64,
    /// L2 slice accesses (including fills and writebacks).
    pub l2_accesses: u64,
    /// Directory lookups/updates at the L2 home.
    pub directory_accesses: u64,
    /// Flit-hops through mesh routers.
    pub router_flit_hops: u64,
    /// Flit-hops over mesh links.
    pub link_flit_hops: u64,
    /// DRAM line transfers.
    pub dram_accesses: u64,
}

impl EnergyCounters {
    /// Component-wise addition.
    pub fn merge(&mut self, other: &EnergyCounters) {
        self.l1i_accesses += other.l1i_accesses;
        self.l1d_accesses += other.l1d_accesses;
        self.l2_accesses += other.l2_accesses;
        self.directory_accesses += other.directory_accesses;
        self.router_flit_hops += other.router_flit_hops;
        self.link_flit_hops += other.link_flit_hops;
        self.dram_accesses += other.dram_accesses;
    }
}

/// Counters of injected simulated faults and the recovery actions the
/// machine model took (simulated backend with a fault plan attached;
/// all-zero otherwise).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// NoC messages whose flits were corrupted in flight and had to be
    /// retransmitted (each retransmission re-pays the traversal latency
    /// and re-charges link contention).
    pub noc_retransmits: u64,
    /// DRAM reads with a bit error the ECC code corrected in place (no
    /// timing cost).
    pub dram_ecc_corrected: u64,
    /// DRAM reads with a detected-but-uncorrectable ECC error; the
    /// controller re-reads the line, paying a second access.
    pub dram_ecc_detected: u64,
    /// Transient per-core stall events (a core going slow/offline for a
    /// window of cycles).
    pub core_stalls: u64,
    /// Total cycles lost to core stall events.
    pub core_stall_cycles: u64,
    /// Messages re-routed around a permanently dead NoC link (dimension-
    /// order flips and sidesteps).
    pub noc_detours: u64,
    /// Extra hops those detours paid beyond the Manhattan distance.
    pub noc_detour_hops: u64,
    /// DRAM accesses re-homed off a permanently dead controller onto a
    /// survivor.
    pub dram_rehomed: u64,
    /// Cores permanently lost to dead-core faults during the run.
    pub cores_lost: u64,
}

impl FaultCounters {
    /// Component-wise addition.
    pub fn merge(&mut self, other: &FaultCounters) {
        self.noc_retransmits += other.noc_retransmits;
        self.dram_ecc_corrected += other.dram_ecc_corrected;
        self.dram_ecc_detected += other.dram_ecc_detected;
        self.core_stalls += other.core_stalls;
        self.core_stall_cycles += other.core_stall_cycles;
        self.noc_detours += other.noc_detours;
        self.noc_detour_hops += other.noc_detour_hops;
        self.dram_rehomed += other.dram_rehomed;
        self.cores_lost += other.cores_lost;
    }

    /// Total number of injected fault events (transient injections plus
    /// permanent-fault recovery actions).
    pub fn total_events(&self) -> u64 {
        self.noc_retransmits
            + self.dram_ecc_corrected
            + self.dram_ecc_detected
            + self.core_stalls
            + self.noc_detours
            + self.dram_rehomed
            + self.cores_lost
    }
}

/// Per-thread results collected by every backend.
#[derive(Debug, Clone, Default)]
pub struct ThreadReport {
    /// Instructions executed (memory + compute + sync ops), the load-
    /// imbalance metric of §IV-E.
    pub instructions: u64,
    /// Thread-local completion time in cycles (simulated backend) or
    /// nanoseconds (native backend).
    pub finish_time: u64,
    /// Thread-local completion-time breakdown (zero on the native
    /// backend, which cannot observe its own microarchitecture).
    pub breakdown: Breakdown,
    /// `(time, active_vertices)` samples recorded via
    /// [`crate::ThreadCtx::record_active`].
    pub active_samples: Vec<(u64, u64)>,
    /// This thread's event trace, when the backend ran with tracing
    /// enabled (`None` on untraced runs — the common, zero-overhead
    /// case).
    pub trace: Option<crono_trace::ThreadTrace>,
}

/// The aggregate result of one [`crate::Machine::run`].
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Which backend produced this report (`"native"` / `"sim"`).
    pub backend: &'static str,
    /// Wall-clock time of the parallel region.
    pub wall: Duration,
    /// Completion time of the parallel region: max simulated thread cycle
    /// count (simulated backend) or wall nanoseconds (native backend).
    pub completion: u64,
    /// Per-thread reports, indexed by thread id.
    pub threads: Vec<ThreadReport>,
    /// Aggregate miss statistics (simulated backend only).
    pub misses: MissStats,
    /// Aggregate energy event counters (simulated backend only).
    pub energy: EnergyCounters,
    /// Aggregate injected-fault counters (simulated backend with a fault
    /// plan; all-zero otherwise).
    pub faults: FaultCounters,
}

impl RunReport {
    /// Aggregate breakdown over all threads.
    pub fn breakdown(&self) -> Breakdown {
        let mut total = Breakdown::default();
        for t in &self.threads {
            total.merge(&t.breakdown);
        }
        total
    }

    /// CRONO's load-imbalance metric (§IV-E, Eq. 2):
    /// `(max(thread instr) − min(thread instr)) / max(thread instr)`.
    pub fn variability(&self) -> f64 {
        let max = self.threads.iter().map(|t| t.instructions).max();
        let min = self.threads.iter().map(|t| t.instructions).min();
        match (max, min) {
            (Some(max), Some(min)) if max > 0 => (max - min) as f64 / max as f64,
            _ => 0.0,
        }
    }

    /// All threads' active-vertex samples merged and sorted by time.
    pub fn active_vertex_trace(&self) -> Vec<(u64, u64)> {
        let mut all: Vec<(u64, u64)> = self
            .threads
            .iter()
            .flat_map(|t| t.active_samples.iter().copied())
            .collect();
        all.sort_unstable();
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_total_and_merge() {
        let mut a = Breakdown {
            compute: 10,
            l1_to_l2home: 5,
            ..Breakdown::default()
        };
        let b = Breakdown {
            synchronization: 7,
            ..Breakdown::default()
        };
        a.merge(&b);
        assert_eq!(a.total(), 22);
        assert_eq!(a.components()[5], ("Synchronization", 7));
    }

    #[test]
    fn miss_rates() {
        let m = MissStats {
            l1d_accesses: 200,
            cold_misses: 5,
            capacity_misses: 10,
            sharing_misses: 5,
            l2_misses: 2,
            l2_accesses: 20,
        };
        assert_eq!(m.l1d_misses(), 20);
        assert!((m.l1d_miss_rate() - 10.0).abs() < 1e-9);
        assert!((m.hierarchy_miss_rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn miss_rates_with_no_accesses_are_zero() {
        assert_eq!(MissStats::default().l1d_miss_rate(), 0.0);
        assert_eq!(MissStats::default().hierarchy_miss_rate(), 0.0);
    }

    #[test]
    fn variability_matches_equation_2() {
        let report = RunReport {
            threads: vec![
                ThreadReport {
                    instructions: 100,
                    ..ThreadReport::default()
                },
                ThreadReport {
                    instructions: 60,
                    ..ThreadReport::default()
                },
            ],
            ..RunReport::default()
        };
        assert!((report.variability() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn variability_of_empty_report_is_zero() {
        assert_eq!(RunReport::default().variability(), 0.0);
    }

    #[test]
    fn fault_counters_merge_and_total() {
        let mut a = FaultCounters {
            noc_retransmits: 3,
            dram_ecc_corrected: 1,
            ..FaultCounters::default()
        };
        let b = FaultCounters {
            dram_ecc_detected: 2,
            core_stalls: 4,
            core_stall_cycles: 8000,
            ..FaultCounters::default()
        };
        a.merge(&b);
        assert_eq!(a.total_events(), 3 + 1 + 2 + 4);
        assert_eq!(a.core_stall_cycles, 8000);
    }

    #[test]
    fn active_trace_sorted() {
        let report = RunReport {
            threads: vec![
                ThreadReport {
                    active_samples: vec![(5, 1), (1, 2)],
                    ..ThreadReport::default()
                },
                ThreadReport {
                    active_samples: vec![(3, 4)],
                    ..ThreadReport::default()
                },
            ],
            ..RunReport::default()
        };
        assert_eq!(report.active_vertex_trace(), vec![(1, 2), (3, 4), (5, 1)]);
    }
}
