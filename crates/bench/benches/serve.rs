//! Serving-path batch throughput: batched multi-source SSSP vs the
//! per-query baseline under the sssp-heavy bombard mix.
//!
//! The timed functions measure whole bombard sweeps (wall clock, native
//! backend); the `metric` entries record the modeled, deterministic
//! sssp-row QPS and p99 on both the native and simulated backends so
//! `results/bench_serve.json` carries the batched-vs-baseline delta
//! that the CI gate asserts on `results/serve.tsv`.

use std::time::Duration;

use crono_bench::{criterion_group, criterion_main, Criterion, Throughput};
use crono_runtime::NativeMachine;
use crono_sim::{SimConfig, SimMachine};
use crono_suite::engine::{EngineOptions, ServeEngine};
use crono_suite::serve::{bombard, summarize, BombardOptions, Mix, Outcomes};
use crono_suite::{Scale, Workload};

const THREADS: usize = 4;
const QUERIES: usize = 256;
const CLIENTS: usize = 32;
/// Sim sweeps pay cycle-accurate interconnect modeling per instruction,
/// so the metric pass uses a shorter stream there.
const SIM_QUERIES: usize = 96;
const SIM_CLIENTS: usize = 32;
const SEED: u64 = 7;

fn engine_opts(w: &Workload, width: usize) -> EngineOptions {
    EngineOptions {
        pagerank_iters: w.pagerank_iters,
        ms_sssp_width: width,
        ..EngineOptions::default()
    }
}

fn bombard_opts(queries: usize, clients: usize) -> BombardOptions {
    BombardOptions {
        queries,
        clients,
        seed: SEED,
        mix: Mix::SsspHeavy,
    }
}

/// Modeled (QPS, p99 microseconds) of the sssp row of the serve table.
fn sssp_row(outcomes: &Outcomes, threads: usize) -> (f64, f64) {
    let table = summarize(outcomes, threads);
    let row = table
        .rows
        .iter()
        .find(|r| r[0] == "sssp")
        .expect("sssp row in serve table");
    let qps: f64 = row[8].parse().expect("QPS column");
    let p99: f64 = row[7].parse().expect("p99_us column");
    (qps, p99)
}

fn native_sweep(w: &Workload, width: usize) -> Outcomes {
    let mut engine = ServeEngine::new(
        NativeMachine::new(THREADS),
        w.graph.clone(),
        engine_opts(w, width),
    );
    bombard(&mut engine, &bombard_opts(QUERIES, CLIENTS))
}

fn sim_sweep(w: &Workload, width: usize) -> Outcomes {
    let machine = SimMachine::new(SimConfig::tiny(16), THREADS).deterministic();
    let mut engine = ServeEngine::new(machine, w.graph.clone(), engine_opts(w, width));
    bombard(&mut engine, &bombard_opts(SIM_QUERIES, SIM_CLIENTS))
}

fn bench(c: &mut Criterion) {
    let scale = Scale::test();
    let w = Workload::synthetic(&scale);
    let batched_width = EngineOptions::default().ms_sssp_width;

    let mut g = c.benchmark_group("serve");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(200));
    g.measurement_time(Duration::from_millis(1500));
    g.throughput(Throughput::Elements(QUERIES as u64));
    g.bench_function("bombard/sssp_heavy_batched", |b| {
        b.iter(|| native_sweep(&w, batched_width))
    });
    g.bench_function("bombard/sssp_heavy_baseline", |b| {
        b.iter(|| native_sweep(&w, 1))
    });

    let (nat_qps_b, nat_p99_b) = sssp_row(&native_sweep(&w, batched_width), THREADS);
    let (nat_qps_s, nat_p99_s) = sssp_row(&native_sweep(&w, 1), THREADS);
    g.metric("native_sssp_qps_batched", nat_qps_b);
    g.metric("native_sssp_qps_baseline", nat_qps_s);
    g.metric("native_sssp_p99_us_batched", nat_p99_b);
    g.metric("native_sssp_p99_us_baseline", nat_p99_s);
    g.metric("native_sssp_qps_speedup", nat_qps_b / nat_qps_s);

    // On the cycle-accurate sim backend the batched sweep does NOT win
    // at this scale: the shared bucket walk's extra relaxation passes
    // cost more cycles in the tiny mesh's small caches than the shared
    // edge scans save, so the speedup metric sits below 1.0 there (it
    // rises monotonically with width but tops out short of the Dijkstra
    // baseline). Recorded as-is — the delta is the finding.
    let (sim_qps_b, sim_p99_b) = sssp_row(&sim_sweep(&w, batched_width), THREADS);
    let (sim_qps_s, sim_p99_s) = sssp_row(&sim_sweep(&w, 1), THREADS);
    g.metric("sim_sssp_qps_batched", sim_qps_b);
    g.metric("sim_sssp_qps_baseline", sim_qps_s);
    g.metric("sim_sssp_p99_us_batched", sim_p99_b);
    g.metric("sim_sssp_p99_us_baseline", sim_p99_s);
    g.metric("sim_sssp_qps_speedup", sim_qps_b / sim_qps_s);
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
