//! Fig. 5 regenerator bench: speedup measurement across graph sizes.

use crono_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crono_bench::{scale, sim};
use crono_suite::runner::run_parallel;
use crono_suite::Workload;
use crono_algos::Benchmark;

fn bench(c: &mut Criterion) {
    let s = scale();
    let mut g = c.benchmark_group("fig5_vertex_scaling");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    for &v in &s.vertex_scale_points {
        let w = Workload::with_sparse_size(&s, v);
        g.bench_with_input(BenchmarkId::new("bfs", v), &w, |b, w| {
            b.iter(|| run_parallel(Benchmark::Bfs, &sim(16), w).completion)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
