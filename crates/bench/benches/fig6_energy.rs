//! Fig. 6 regenerator bench: the dynamic energy model.

use crono_bench::{criterion_group, criterion_main, Criterion};
use crono_bench::{sim, workload};
use crono_energy::EnergyModel;
use crono_suite::runner::run_parallel;
use crono_algos::Benchmark;

fn bench(c: &mut Criterion) {
    let w = workload();
    let report = run_parallel(Benchmark::Bfs, &sim(16), &w);
    let model = EnergyModel::default();
    let mut g = c.benchmark_group("fig6_energy");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    g.bench_function("evaluate_and_normalize", |b| {
        b.iter(|| {
            let breakdown = model.evaluate(&report.energy).normalized();
            assert!(breakdown.total() > 0.0);
            breakdown.network_share()
        })
    });
    g.bench_function("counters_from_sim_run", |b| {
        b.iter(|| run_parallel(Benchmark::Bfs, &sim(16), &w).energy)
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
