//! Fig. 1 regenerator bench: simulated completion-time breakdowns.
//! One representative benchmark per parallelization strategy, at an
//! intermediate thread count.

use crono_bench::{criterion_group, criterion_main, Criterion};
use crono_bench::{sim, workload};
use crono_suite::runner::run_parallel;
use crono_algos::Benchmark;

fn bench(c: &mut Criterion) {
    let w = workload();
    let mut g = c.benchmark_group("fig1_breakdown");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    for bench in [Benchmark::Bfs, Benchmark::SsspDijk, Benchmark::PageRank] {
        g.bench_function(bench.label(), |b| {
            b.iter(|| {
                let report = run_parallel(bench, &sim(16), &w);
                assert!(report.breakdown().total() > 0);
                report.completion
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
