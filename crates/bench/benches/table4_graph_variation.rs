//! Table IV regenerator bench: the dataset stand-ins and a simulated run
//! on each graph class.

use crono_bench::{criterion_group, criterion_main, Criterion};
use crono_bench::{scale, sim};
use crono_graph::gen::catalog::Dataset;
use crono_suite::runner::run_parallel;
use crono_suite::Workload;
use crono_algos::Benchmark;

fn bench(c: &mut Criterion) {
    let s = scale();
    let mut g = c.benchmark_group("table4_graph_variation");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    for dataset in [Dataset::SparseSynthetic, Dataset::RoadTx, Dataset::FacebookSocial] {
        g.bench_function(format!("generate_{dataset}"), |b| {
            b.iter(|| dataset.generate(s.dataset_shrink, s.seed).num_directed_edges())
        });
        let w = Workload::from_dataset(&s, dataset);
        g.bench_function(format!("bfs_on_{dataset}"), |b| {
            b.iter(|| run_parallel(Benchmark::Bfs, &sim(16), &w).completion)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
