//! Figs. 7–8 regenerator bench: out-of-order core simulation.

use crono_bench::{criterion_group, criterion_main, Criterion};
use crono_bench::{sim, sim_ooo, workload};
use crono_suite::runner::run_parallel;
use crono_algos::Benchmark;

fn bench(c: &mut Criterion) {
    let w = workload();
    let mut g = c.benchmark_group("fig7_fig8_ooo");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    g.bench_function("inorder_bfs", |b| {
        b.iter(|| run_parallel(Benchmark::Bfs, &sim(16), &w).completion)
    });
    g.bench_function("ooo_bfs", |b| {
        b.iter(|| run_parallel(Benchmark::Bfs, &sim_ooo(16), &w).completion)
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
