//! Fig. 3 regenerator bench: L1 miss classification under the simulator.

use crono_bench::{criterion_group, criterion_main, Criterion};
use crono_bench::{sim, workload};
use crono_suite::runner::run_parallel;
use crono_algos::Benchmark;

fn bench(c: &mut Criterion) {
    let w = workload();
    let mut g = c.benchmark_group("fig3_l1_miss");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    // APSP: the paper's capacity-miss-heavy workload; PageRank: the
    // sharing-miss-heavy one.
    for bench in [Benchmark::Apsp, Benchmark::PageRank] {
        g.bench_function(bench.label(), |b| {
            b.iter(|| {
                let m = run_parallel(bench, &sim(16), &w).misses;
                assert_eq!(
                    m.l1d_misses(),
                    m.cold_misses + m.capacity_misses + m.sharing_misses
                );
                m.l1d_misses()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
