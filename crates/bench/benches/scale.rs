//! Scale-track benches: out-of-core streaming build and sharded BFS on
//! both adjacency representations, with bytes/edge and peak RSS
//! recorded as JSON metrics alongside the timings.

use crono_bench::{criterion_group, criterion_main, Criterion, Throughput};
use crono_algos::scale::sharded_bfs;
use crono_graph::gen::RmatParams;
use crono_graph::shard::Partition;
use crono_graph::stream::{build_sharded, RmatStream, StreamConfig};
use crono_graph::{CompressedCsr, CsrGraph};
use crono_runtime::NativeMachine;

const SCALE: u32 = 14;
const DEGREE: u64 = 16;

fn stream() -> RmatStream {
    let draws = (1u64 << SCALE) * DEGREE;
    RmatStream::new(SCALE, draws, 8, RmatParams::default(), 42).expect("valid stream parameters")
}

fn spill_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("crono-bench-scale-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("spill dir");
    dir
}

fn bench(c: &mut Criterion) {
    let partition = Partition::one_d(1 << SCALE, 4);
    let dir = spill_dir();
    // A small sort buffer forces the external-sort path so the bench
    // times what the scale track actually does at large inputs.
    let cfg = StreamConfig::new(&dir).with_sort_buffer_edges(1 << 16);

    let mut g = c.benchmark_group("scale_track");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));

    let s = stream();
    g.throughput(Throughput::Elements(s.num_draws()));
    g.bench_function("stream_build/compressed", |b| {
        b.iter(|| {
            build_sharded::<CompressedCsr, _>(partition, s.edges(), &cfg)
                .expect("build succeeds")
                .1
                .edges_packed
        })
    });
    g.bench_function("stream_build/plain", |b| {
        b.iter(|| {
            build_sharded::<CsrGraph, _>(partition, s.edges(), &cfg)
                .expect("build succeeds")
                .1
                .edges_packed
        })
    });

    let (packed, _) =
        build_sharded::<CompressedCsr, _>(partition, s.edges(), &cfg).expect("build succeeds");
    let (plain, _) =
        build_sharded::<CsrGraph, _>(partition, s.edges(), &cfg).expect("build succeeds");
    g.metric("bytes_per_edge_compressed", packed.bytes_per_edge());
    g.metric("bytes_per_edge_plain", plain.bytes_per_edge());

    let machine = NativeMachine::new(4);
    g.throughput(Throughput::Elements(packed.num_directed_edges() as u64));
    g.bench_function("sharded_bfs/compressed", |b| {
        b.iter(|| sharded_bfs(&machine, &packed, 0).total_edges())
    });
    g.bench_function("sharded_bfs/plain", |b| {
        b.iter(|| sharded_bfs(&machine, &plain, 0).total_edges())
    });

    g.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench);
criterion_main!(benches);
