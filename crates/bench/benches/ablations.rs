//! Ablation benches for the design choices DESIGN.md calls out:
//! ACKWise-4 vs full-map directory, link contention on/off, padded vs
//! packed lock layout (false sharing), plus the paper's §VII proposals:
//! locality-aware coherence and O1TURN oblivious routing.

use crono_bench::{criterion_group, criterion_main, Criterion};
use crono_bench::workload;
use crono_sim::{MeshConfig, RoutingPolicy, SimConfig, SimMachine};
use crono_suite::runner::{run_parallel, run_parallel_ablated};
use crono_runtime::{LockSet, Machine, ThreadCtx};
use crono_algos::{Ablation, Benchmark};

fn directory(c: &mut Criterion) {
    let w = workload();
    let mut g = c.benchmark_group("ablation_directory");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    for (name, pointers) in [("ackwise4", 4usize), ("fullmap", 256)] {
        let config = SimConfig {
            ackwise_pointers: pointers,
            ..SimConfig::default()
        };
        g.bench_function(name, |b| {
            b.iter(|| {
                run_parallel(Benchmark::PageRank, &SimMachine::new(config.clone(), 16), &w)
                    .completion
            })
        });
    }
    g.finish();
}

fn noc_contention(c: &mut Criterion) {
    let w = workload();
    let mut g = c.benchmark_group("ablation_noc_contention");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    for (name, contention) in [("contended", true), ("ideal", false)] {
        let config = SimConfig {
            mesh: MeshConfig {
                link_contention: contention,
                ..SimConfig::default().mesh
            },
            ..SimConfig::default()
        };
        g.bench_function(name, |b| {
            b.iter(|| {
                run_parallel(Benchmark::Bfs, &SimMachine::new(config.clone(), 16), &w).completion
            })
        });
    }
    g.finish();
}

fn lock_alignment(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_alignment");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    for (name, packed) in [("padded", false), ("packed", true)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let locks = if packed {
                    LockSet::new_packed(64)
                } else {
                    LockSet::new(64)
                };
                let m = SimMachine::new(SimConfig::tiny(16), 4);
                m.run(|ctx| {
                    for i in 0..64 {
                        ctx.lock(&locks, (i + ctx.thread_id()) % 64);
                        ctx.compute(5);
                        ctx.unlock(&locks, (i + ctx.thread_id()) % 64);
                    }
                })
                .report
                .completion
            })
        });
    }
    g.finish();
}

fn coherence_protocol(c: &mut Criterion) {
    let w = workload();
    let mut g = c.benchmark_group("ablation_coherence_protocol");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    for (name, e_state) in [("mesi", true), ("msi", false)] {
        let config = SimConfig {
            enable_e_state: e_state,
            ..SimConfig::default()
        };
        g.bench_function(name, |b| {
            b.iter(|| {
                run_parallel(Benchmark::SsspDijk, &SimMachine::new(config.clone(), 16), &w)
                    .completion
            })
        });
    }
    g.finish();
}

fn sssp_strategy(c: &mut Criterion) {
    let w = workload();
    let mut g = c.benchmark_group("ablation_sssp_strategy");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    g.bench_function("outer_loop_pareto_fronts", |b| {
        b.iter(|| {
            crono_algos::sssp::parallel(&SimMachine::new(SimConfig::default(), 16), &w.graph, 0)
                .report
                .completion
        })
    });
    g.bench_function("inner_loop_neighbor_division", |b| {
        b.iter(|| {
            crono_algos::sssp::parallel_inner(
                &SimMachine::new(SimConfig::default(), 16),
                &w.graph,
                0,
            )
            .report
            .completion
        })
    });
    g.finish();
}

fn frontier_repr(c: &mut Criterion) {
    let w = workload();
    let mut g = c.benchmark_group("ablation_frontier_repr");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    for &bench in Ablation::FrontierRepr.benchmarks() {
        for (kernel, ablation) in [("default", None), ("bitmap", Some(Ablation::FrontierRepr))] {
            g.bench_function(format!("{}/{kernel}", bench.label()), |b| {
                b.iter(|| {
                    run_parallel_ablated(
                        bench,
                        &SimMachine::new(SimConfig::default(), 16),
                        &w,
                        ablation,
                    )
                    .completion
                })
            });
        }
    }
    g.finish();
}

fn pagerank_update(c: &mut Criterion) {
    let w = workload();
    let mut g = c.benchmark_group("ablation_pagerank_update");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    for (kernel, ablation) in [("locked", None), ("cas", Some(Ablation::PagerankUpdate))] {
        g.bench_function(kernel, |b| {
            b.iter(|| {
                run_parallel_ablated(
                    Benchmark::PageRank,
                    &SimMachine::new(SimConfig::default(), 16),
                    &w,
                    ablation,
                )
                .completion
            })
        });
    }
    g.finish();
}

fn task_steal(c: &mut Criterion) {
    let w = workload();
    let mut g = c.benchmark_group("ablation_task_steal");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    for &bench in Ablation::TaskSteal.benchmarks() {
        for (kernel, ablation) in [("default", None), ("steal", Some(Ablation::TaskSteal))] {
            g.bench_function(format!("{}/{kernel}", bench.label()), |b| {
                b.iter(|| {
                    run_parallel_ablated(
                        bench,
                        &SimMachine::new(SimConfig::default(), 16),
                        &w,
                        ablation,
                    )
                    .completion
                })
            });
        }
    }
    g.finish();
}

fn lockfree_bound(c: &mut Criterion) {
    let w = workload();
    let mut g = c.benchmark_group("ablation_lockfree_bound");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    for (kernel, ablation) in [("locked", None), ("lockfree", Some(Ablation::LockfreeBound))] {
        g.bench_function(kernel, |b| {
            b.iter(|| {
                run_parallel_ablated(
                    Benchmark::Tsp,
                    &SimMachine::new(SimConfig::default(), 16),
                    &w,
                    ablation,
                )
                .completion
            })
        });
    }
    g.finish();
}

fn dirop_bfs(c: &mut Criterion) {
    let w = workload();
    let mut g = c.benchmark_group("ablation_dirop_bfs");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    for (kernel, ablation) in [("default", None), ("dirop", Some(Ablation::DiropBfs))] {
        g.bench_function(kernel, |b| {
            b.iter(|| {
                run_parallel_ablated(
                    Benchmark::Bfs,
                    &SimMachine::new(SimConfig::default(), 16),
                    &w,
                    ablation,
                )
                .completion
            })
        });
    }
    g.finish();
}

fn delta_sssp(c: &mut Criterion) {
    let w = workload();
    let mut g = c.benchmark_group("ablation_delta_sssp");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    for (kernel, ablation) in [("default", None), ("delta", Some(Ablation::DeltaSssp))] {
        g.bench_function(kernel, |b| {
            b.iter(|| {
                run_parallel_ablated(
                    Benchmark::SsspDijk,
                    &SimMachine::new(SimConfig::default(), 16),
                    &w,
                    ablation,
                )
                .completion
            })
        });
    }
    g.finish();
}

fn afforest_cc(c: &mut Criterion) {
    let w = workload();
    let mut g = c.benchmark_group("ablation_afforest_cc");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    for (kernel, ablation) in [("default", None), ("afforest", Some(Ablation::AfforestCc))] {
        g.bench_function(kernel, |b| {
            b.iter(|| {
                run_parallel_ablated(
                    Benchmark::ConnComp,
                    &SimMachine::new(SimConfig::default(), 16),
                    &w,
                    ablation,
                )
                .completion
            })
        });
    }
    g.finish();
}

fn locality_aware(c: &mut Criterion) {
    let w = workload();
    let mut g = c.benchmark_group("ablation_locality_aware");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    for (name, on) in [("baseline", false), ("locality_aware", true)] {
        let config = SimConfig {
            locality_aware: on,
            ..SimConfig::default()
        };
        g.bench_function(name, |b| {
            b.iter(|| {
                run_parallel(Benchmark::ConnComp, &SimMachine::new(config.clone(), 16), &w)
                    .completion
            })
        });
    }
    g.finish();
}

fn routing(c: &mut Criterion) {
    let w = workload();
    let mut g = c.benchmark_group("ablation_routing");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    for (name, policy) in [
        ("xy", RoutingPolicy::XyDimensionOrder),
        ("o1turn", RoutingPolicy::O1Turn),
    ] {
        let config = SimConfig {
            mesh: MeshConfig {
                routing: policy,
                ..SimConfig::default().mesh
            },
            ..SimConfig::default()
        };
        g.bench_function(name, |b| {
            b.iter(|| {
                run_parallel(Benchmark::Bfs, &SimMachine::new(config.clone(), 16), &w).completion
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    directory,
    coherence_protocol,
    noc_contention,
    lock_alignment,
    sssp_strategy,
    frontier_repr,
    pagerank_update,
    task_steal,
    lockfree_bound,
    dirop_bfs,
    delta_sssp,
    afforest_cc,
    locality_aware,
    routing
);
criterion_main!(benches);
