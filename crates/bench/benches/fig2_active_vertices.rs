//! Fig. 2 regenerator bench: active-vertex tracing and bucketing.

use crono_bench::{criterion_group, criterion_main, Criterion};
use crono_bench::{sim, workload};
use crono_suite::experiments::fig2::bucketize;
use crono_suite::runner::run_parallel;
use crono_algos::Benchmark;

fn bench(c: &mut Criterion) {
    let w = workload();
    let report = run_parallel(Benchmark::SsspDijk, &sim(16), &w);
    let trace = report.active_vertex_trace();
    assert!(!trace.is_empty());
    let mut g = c.benchmark_group("fig2_active_vertices");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    g.bench_function("trace_collection", |b| {
        b.iter(|| {
            run_parallel(Benchmark::SsspDijk, &sim(16), &w)
                .active_vertex_trace()
                .len()
        })
    });
    g.bench_function("bucketize", |b| {
        b.iter(|| bucketize(&trace, report.completion))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
