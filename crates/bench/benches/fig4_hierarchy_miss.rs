//! Fig. 4 regenerator bench: cache-hierarchy miss rates.

use crono_bench::{criterion_group, criterion_main, Criterion};
use crono_bench::{sim, workload};
use crono_suite::runner::run_parallel;
use crono_algos::Benchmark;

fn bench(c: &mut Criterion) {
    let w = workload();
    let mut g = c.benchmark_group("fig4_hierarchy_miss");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    for bench in [Benchmark::ConnComp, Benchmark::TriCnt] {
        g.bench_function(bench.label(), |b| {
            b.iter(|| {
                let m = run_parallel(bench, &sim(16), &w).misses;
                m.hierarchy_miss_rate()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
