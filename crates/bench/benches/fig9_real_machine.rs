//! Fig. 9 regenerator bench: native-backend wall-clock runs — these are
//! the "real machine" numbers, so criterion's statistics are the result.

use crono_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crono_bench::workload;
use crono_runtime::NativeMachine;
use crono_suite::runner::{run_parallel, run_sequential};
use crono_algos::Benchmark;

fn bench(c: &mut Criterion) {
    let w = workload();
    let mut g = c.benchmark_group("fig9_real_machine");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    for bench_kind in [Benchmark::Bfs, Benchmark::SsspDijk, Benchmark::TriCnt] {
        g.bench_function(BenchmarkId::new("sequential", bench_kind.label()), |b| {
            b.iter(|| run_sequential(bench_kind, &NativeMachine::new(1), &w).wall)
        });
        for threads in [2usize, 4] {
            g.bench_with_input(
                BenchmarkId::new(format!("{}_threads", bench_kind.label()), threads),
                &threads,
                |b, &t| b.iter(|| run_parallel(bench_kind, &NativeMachine::new(t), &w).wall),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
