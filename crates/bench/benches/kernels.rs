//! Native-speed microbenches of the ten algorithm kernels — the raw
//! performance of the suite when it is *not* being simulated.

use crono_bench::{criterion_group, criterion_main, Criterion, Throughput};
use crono_bench::workload;
use crono_runtime::NativeMachine;
use crono_suite::runner::run_parallel;
use crono_algos::Benchmark;

fn bench(c: &mut Criterion) {
    let w = workload();
    let machine = NativeMachine::new(4);
    let mut g = c.benchmark_group("kernels_native");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    g.throughput(Throughput::Elements(w.graph.num_directed_edges() as u64));
    for bench_kind in Benchmark::ALL {
        g.bench_function(bench_kind.label(), |b| {
            b.iter(|| run_parallel(bench_kind, &machine, &w).completion)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
