//! A minimal, std-only benchmark harness with criterion's API shape.
//!
//! The bench targets were written against `criterion` (benchmark groups,
//! `Bencher::iter`, `criterion_group!`/`criterion_main!`). Criterion is a
//! registry dependency, so this module provides the same surface in-tree:
//! warmup, a fixed number of timed samples, median/p10/p90 summaries
//! printed to stdout, and a machine-readable JSON report per group under
//! the workspace `results/` directory.
//!
//! Environment overrides (all optional) keep CI fast and deterministic:
//!
//! * `CRONO_BENCH_SAMPLES` — samples per function (default 10; set 1 for
//!   a smoke run),
//! * `CRONO_BENCH_WARMUP_MS` — warmup budget per function,
//! * `CRONO_BENCH_MEASURE_MS` — measurement budget per function (sampling
//!   stops early once spent).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Workspace-relative directory the JSON reports land in.
const RESULTS_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");

/// Top-level harness handle; one per bench binary.
///
/// # Examples
///
/// ```
/// use crono_bench::Criterion;
///
/// std::env::set_var("CRONO_BENCH_SAMPLES", "2");
/// std::env::set_var("CRONO_BENCH_WARMUP_MS", "1");
/// let mut c = Criterion::default();
/// let mut g = c.benchmark_group("doctest_group");
/// g.bench_function("noop", |b| b.iter(|| 1 + 1));
/// // Dropping the group without `finish()` discards the results.
/// ```
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmark functions.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: env_usize("CRONO_BENCH_SAMPLES", 10),
            warm_up: Duration::from_millis(env_u64("CRONO_BENCH_WARMUP_MS", 500)),
            measurement: Duration::from_millis(env_u64("CRONO_BENCH_MEASURE_MS", 3_000)),
            throughput: None,
            results: Vec::new(),
            metrics: Vec::new(),
        }
    }
}

/// Criterion-compatible throughput declaration: how many elements one
/// iteration of the following benchmark functions processes. For the
/// graph kernels an element is a traversed edge, so the derived rate is
/// MTEPS (millions of traversed edges per second).
///
/// Derive the count from the *built* input (`graph.num_directed_edges()`,
/// `matrix.num_vertices()`…), never from the requested generator
/// parameters: generators may round their output (e.g. grid dimensions),
/// and a requested-size denominator would silently misreport MTEPS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements (edges, for the kernels) processed per iteration.
    Elements(u64),
}

/// A named benchmark id, optionally parameterized (criterion-compatible).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Collects timing samples for one benchmark function.
#[derive(Debug, Default)]
pub struct Bencher {
    sample_ns: Vec<u64>,
    target_samples: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Bencher {
    /// Times `f`: warms up for the group's warmup budget, then records
    /// one sample per iteration until the sample target or the
    /// measurement budget is reached (always at least one sample).
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let warm_deadline = Instant::now() + self.warm_up;
        loop {
            std::hint::black_box(f());
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        let measure_start = Instant::now();
        while self.sample_ns.len() < self.target_samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.sample_ns.push(t0.elapsed().as_nanos() as u64);
            if !self.sample_ns.is_empty() && measure_start.elapsed() >= self.measurement {
                break;
            }
        }
    }
}

/// Summary statistics for one benchmark function, in nanoseconds.
#[derive(Debug, Clone)]
pub struct FunctionStats {
    /// The function's id within the group.
    pub name: String,
    /// Number of recorded samples.
    pub samples: usize,
    /// Median sample.
    pub median_ns: u64,
    /// 10th-percentile sample.
    pub p10_ns: u64,
    /// 90th-percentile sample.
    pub p90_ns: u64,
    /// Arithmetic mean.
    pub mean_ns: u64,
    /// Fastest sample.
    pub min_ns: u64,
    /// Slowest sample.
    pub max_ns: u64,
    /// Total host wall-clock spent on this function (warmup included).
    pub wall_ns: u64,
    /// Elements per iteration, if declared via
    /// [`BenchmarkGroup::throughput`].
    pub elements: Option<u64>,
    /// Millions of elements per second at the median sample (MTEPS when
    /// elements are edges). `None` without a throughput declaration.
    pub mteps_median: Option<f64>,
}

impl FunctionStats {
    fn from_samples(name: String, mut ns: Vec<u64>) -> Self {
        assert!(!ns.is_empty(), "benchmark `{name}` recorded no samples");
        ns.sort_unstable();
        let n = ns.len();
        let pct = |p: f64| ns[(((n - 1) as f64) * p).round() as usize];
        FunctionStats {
            name,
            samples: n,
            median_ns: pct(0.5),
            p10_ns: pct(0.1),
            p90_ns: pct(0.9),
            mean_ns: (ns.iter().sum::<u64>() / n as u64),
            min_ns: ns[0],
            max_ns: ns[n - 1],
            wall_ns: 0,
            elements: None,
            mteps_median: None,
        }
    }

    /// Attaches a throughput declaration, deriving the median rate.
    fn with_elements(mut self, elements: u64) -> Self {
        self.elements = Some(elements);
        // elements / median_ns is elements-per-ns; ×1e9 for per-second,
        // ÷1e6 for millions — net ×1e3.
        self.mteps_median = Some(elements as f64 * 1e3 / self.median_ns.max(1) as f64);
        self
    }
}

/// A group of benchmark functions sharing sampling configuration.
/// Dropping the group without calling [`finish`](Self::finish) discards
/// the results.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<u64>,
    results: Vec<FunctionStats>,
    metrics: Vec<(String, f64)>,
}

impl BenchmarkGroup {
    /// Records a named scalar metric emitted alongside the group's
    /// timing stats (e.g. `bytes_per_edge` for the scale benches).
    /// Metrics are descriptive context, not timed measurements —
    /// they land in the JSON `metrics` object verbatim.
    pub fn metric(&mut self, name: impl Into<String>, value: f64) -> &mut Self {
        self.metrics.push((name.into(), value));
        self
    }
    /// Sets the per-function sample target (overridden by
    /// `CRONO_BENCH_SAMPLES`).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if std::env::var_os("CRONO_BENCH_SAMPLES").is_none() {
            self.sample_size = n.max(1);
        }
        self
    }

    /// Sets the warmup budget (overridden by `CRONO_BENCH_WARMUP_MS`).
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        if std::env::var_os("CRONO_BENCH_WARMUP_MS").is_none() {
            self.warm_up = d;
        }
        self
    }

    /// Sets the measurement budget (overridden by
    /// `CRONO_BENCH_MEASURE_MS`).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        if std::env::var_os("CRONO_BENCH_MEASURE_MS").is_none() {
            self.measurement = d;
        }
        self
    }

    /// Declares elements-per-iteration for subsequent functions,
    /// enabling the MTEPS column in stats and JSON reports
    /// (criterion-compatible).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        let Throughput::Elements(n) = t;
        self.throughput = Some(n);
        self
    }

    /// Runs one benchmark function and records its statistics.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            sample_ns: Vec::with_capacity(self.sample_size),
            target_samples: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
        };
        let wall_start = Instant::now();
        f(&mut bencher);
        let wall_ns = wall_start.elapsed().as_nanos() as u64;
        let mut stats = FunctionStats::from_samples(id.id, bencher.sample_ns);
        stats.wall_ns = wall_ns;
        if let Some(n) = self.throughput {
            stats = stats.with_elements(n);
        }
        let mteps = stats
            .mteps_median
            .map(|m| format!("   {m:>10.2} MTEPS"))
            .unwrap_or_default();
        println!(
            "{}/{:<40} median {:>12} ns   p10 {:>12} ns   p90 {:>12} ns   ({} samples){mteps}",
            self.name, stats.name, stats.median_ns, stats.p10_ns, stats.p90_ns, stats.samples
        );
        self.results.push(stats);
        self
    }

    /// Criterion-compatible variant threading `input` through to the
    /// closure.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Writes the group's JSON report under `results/` and prints its
    /// path. The report records the git commit and the bench scale so
    /// results from different checkouts stay attributable.
    pub fn finish(self) {
        let mut json = String::new();
        let _ = writeln!(json, "{{");
        let _ = writeln!(json, "  \"group\": \"{}\",", escape(&self.name));
        let _ = writeln!(json, "  \"commit\": \"{}\",", escape(&git_commit()));
        let _ = writeln!(json, "  \"scale\": \"{}\",", escape(crate::scale().name));
        let _ = writeln!(json, "  \"sample_target\": {},", self.sample_size);
        let total_wall: u64 = self.results.iter().map(|s| s.wall_ns).sum();
        let _ = writeln!(json, "  \"total_wall_ns\": {total_wall},");
        // Peak RSS of the whole bench process so far: a high-water mark
        // (Linux VmHWM), so it bounds every function in the group.
        if let Some(rss) = crono_graph::stream::peak_rss_bytes() {
            let _ = writeln!(json, "  \"peak_rss_bytes\": {rss},");
        }
        if !self.metrics.is_empty() {
            let cells: Vec<String> = self
                .metrics
                .iter()
                .map(|(k, v)| format!("\"{}\": {v}", escape(k)))
                .collect();
            let _ = writeln!(json, "  \"metrics\": {{{}}},", cells.join(", "));
        }
        let _ = writeln!(json, "  \"functions\": [");
        for (i, s) in self.results.iter().enumerate() {
            let comma = if i + 1 < self.results.len() { "," } else { "" };
            let throughput = match (s.elements, s.mteps_median) {
                (Some(e), Some(m)) => {
                    format!(", \"elements\": {e}, \"mteps_median\": {m:.4}")
                }
                _ => String::new(),
            };
            let _ = writeln!(
                json,
                "    {{\"name\": \"{}\", \"samples\": {}, \"median_ns\": {}, \
                 \"p10_ns\": {}, \"p90_ns\": {}, \"mean_ns\": {}, \
                 \"min_ns\": {}, \"max_ns\": {}, \
                 \"wall_ns\": {}{throughput}}}{comma}",
                escape(&s.name), s.samples, s.median_ns, s.p10_ns, s.p90_ns,
                s.mean_ns, s.min_ns, s.max_ns, s.wall_ns
            );
        }
        let _ = writeln!(json, "  ]");
        let _ = writeln!(json, "}}");

        let file = format!("bench_{}.json", sanitize(&self.name));
        if let Err(e) = std::fs::create_dir_all(RESULTS_DIR)
            .and_then(|()| std::fs::write(format!("{RESULTS_DIR}/{file}"), &json))
        {
            eprintln!("warning: could not write results/{file}: {e}");
        } else {
            println!("{} -> results/{file}", self.name);
        }
    }
}

/// The workspace's current git commit, or `"unknown"` outside a git
/// checkout (results must never fail to write because git is absent).
fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn env_usize(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .map_or(default, |n: usize| n.max(1))
}

fn env_u64(var: &str, default: u64) -> u64 {
    std::env::var(var).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Defines a function `$name` that runs every listed bench target with a
/// fresh [`Criterion`] (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines `main` invoking each group defined by
/// [`criterion_group!`](crate::criterion_group).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_pick_correct_percentiles() {
        let s = FunctionStats::from_samples(
            "t".into(),
            (1..=11).map(|i| i * 100).collect(),
        );
        assert_eq!(s.samples, 11);
        assert_eq!(s.median_ns, 600);
        assert_eq!(s.p10_ns, 200);
        assert_eq!(s.p90_ns, 1000);
        assert_eq!(s.min_ns, 100);
        assert_eq!(s.max_ns, 1100);
    }

    #[test]
    fn stats_handle_a_single_sample() {
        let s = FunctionStats::from_samples("one".into(), vec![42]);
        assert_eq!(s.samples, 1);
        assert_eq!(s.median_ns, 42);
        assert_eq!(s.p10_ns, 42);
        assert_eq!(s.p90_ns, 42);
    }

    #[test]
    fn benchmark_id_renders_name_slash_param() {
        let id = BenchmarkId::new("bfs", 4096);
        assert_eq!(id.id, "bfs/4096");
    }

    #[test]
    fn throughput_derives_mteps_from_median() {
        // 2_000_000 edges in a 1 ms median iteration = 2000 MTEPS.
        let s = FunctionStats::from_samples("t".into(), vec![1_000_000])
            .with_elements(2_000_000);
        assert_eq!(s.elements, Some(2_000_000));
        let mteps = s.mteps_median.unwrap();
        assert!((mteps - 2000.0).abs() < 1e-9, "got {mteps}");
    }

    #[test]
    fn mteps_unit_conversion_is_pinned() {
        // Guard against unit slips in the ×1e3 shortcut: MTEPS must
        // equal the long-hand (elements / seconds) / 1e6 on values where
        // a ×1e3-vs-×1e6 (or ns-vs-µs) mistake would be glaring.
        for (elements, median_ns) in
            [(1u64, 1u64), (131_072, 250_000), (1_000_000_000, 1)]
        {
            let s = FunctionStats::from_samples("t".into(), vec![median_ns])
                .with_elements(elements);
            let seconds = median_ns as f64 / 1e9;
            let long_hand = elements as f64 / seconds / 1e6;
            let mteps = s.mteps_median.unwrap();
            assert!(
                (mteps - long_hand).abs() <= 1e-9 * long_hand.max(1.0),
                "elements={elements} median_ns={median_ns}: {mteps} != {long_hand}"
            );
        }
        // A zero-ns median must not divide by zero.
        let s = FunctionStats::from_samples("t".into(), vec![0]).with_elements(100);
        assert!(s.mteps_median.unwrap().is_finite());
    }

    #[test]
    fn wall_clock_and_mteps_reach_the_report() {
        std::env::set_var("CRONO_BENCH_SAMPLES", "2");
        std::env::set_var("CRONO_BENCH_WARMUP_MS", "1");
        std::env::set_var("CRONO_BENCH_MEASURE_MS", "50");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("harness_unit_test");
        g.throughput(Throughput::Elements(1000));
        g.bench_function("spin", |b| b.iter(|| std::hint::black_box(7u64).pow(3)));
        let s = &g.results[0];
        assert!(s.wall_ns > 0, "wall clock not recorded");
        assert_eq!(s.elements, Some(1000));
        assert!(s.mteps_median.is_some());
    }

    #[test]
    fn json_escape_handles_quotes() {
        assert_eq!(escape(r#"a"b\c"#), r#"a\"b\\c"#);
    }

    #[test]
    fn git_commit_is_full_hash_or_unknown() {
        let c = git_commit();
        assert!(
            c == "unknown" || (c.len() == 40 && c.chars().all(|ch| ch.is_ascii_hexdigit())),
            "unexpected commit string {c:?}"
        );
    }

    #[test]
    fn bencher_records_at_least_one_sample() {
        let mut b = Bencher {
            sample_ns: Vec::new(),
            target_samples: 3,
            warm_up: Duration::ZERO,
            measurement: Duration::from_millis(50),
        };
        b.iter(|| 2 + 2);
        assert!((1..=3).contains(&b.sample_ns.len()));
    }
}
