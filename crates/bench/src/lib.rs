//! Shared fixtures and the in-tree harness for the CRONO benches: every
//! bench target regenerates (a fast slice of) one of the paper's tables
//! or figures, so `cargo bench` exercises the same code paths as
//! `crono <figN>`. The [`harness`] module supplies the criterion-shaped
//! measurement machinery (std-only; JSON reports under `results/`).

pub mod harness;

pub use harness::{Bencher, BenchmarkGroup, BenchmarkId, Criterion, FunctionStats, Throughput};

use crono_sim::{SimConfig, SimMachine};
use crono_suite::{Scale, Workload};

/// The bench scale: the `test` preset (seconds per run).
pub fn scale() -> Scale {
    Scale::test()
}

/// The default synthetic workload at bench scale.
pub fn workload() -> Workload {
    Workload::synthetic(&scale())
}

/// A Table II simulator at `threads` threads.
pub fn sim(threads: usize) -> SimMachine {
    SimMachine::new(SimConfig::default(), threads)
}

/// The paper's out-of-order simulator at `threads` threads.
pub fn sim_ooo(threads: usize) -> SimMachine {
    SimMachine::new(SimConfig::paper_ooo(), threads)
}
