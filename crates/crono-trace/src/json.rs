//! Assembling per-thread traces and serializing them to the Chrome
//! trace-event JSON format (the "JSON Array Format" with a top-level
//! object), loadable in Perfetto and `chrome://tracing`.
//!
//! Serialization is fully deterministic: threads in id order, events in
//! record order, counter summaries in lexicographic name order, and no
//! wall-clock or environment-dependent fields. Under the simulated
//! backend (deterministic clocks) the same run therefore produces
//! byte-identical JSON — traces are snapshot-testable.

use crate::ring::{CounterStat, EventKind, ThreadTrace};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Run-identifying metadata embedded in the JSON under `otherData`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// Benchmark label (e.g. `"BFS"`).
    pub benchmark: String,
    /// Backend name (`"sim"` / `"native"`).
    pub backend: String,
    /// Scale preset name (`"test"` / `"small"` / `"paper"`).
    pub scale: String,
    /// Thread count of the run.
    pub threads: usize,
    /// Clock domain of every timestamp: `"cycles"` (simulated) or
    /// `"ns"` (native).
    pub clock_unit: &'static str,
}

impl TraceMeta {
    /// Convenience constructor.
    pub fn new(
        benchmark: impl Into<String>,
        backend: impl Into<String>,
        scale: impl Into<String>,
        threads: usize,
        clock_unit: &'static str,
    ) -> Self {
        TraceMeta {
            benchmark: benchmark.into(),
            backend: backend.into(),
            scale: scale.into(),
            threads,
            clock_unit,
        }
    }
}

/// A complete run trace: metadata plus one [`ThreadTrace`] per thread,
/// indexed by thread id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Run metadata.
    pub meta: TraceMeta,
    /// Per-thread event streams, indexed by thread id.
    pub threads: Vec<ThreadTrace>,
}

impl Trace {
    /// Events dropped across all threads (0 means the rings never
    /// overflowed and the trace is complete).
    pub fn total_dropped(&self) -> u64 {
        self.threads.iter().map(|t| t.dropped).sum()
    }

    /// Total events recorded across all threads.
    pub fn total_events(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }

    /// The compact machine-readable counter summary: per event name, how
    /// often it occurred and the sum of its payloads. Deterministically
    /// ordered (BTreeMap).
    pub fn counters(&self) -> BTreeMap<&'static str, CounterStat> {
        let mut map: BTreeMap<&'static str, CounterStat> = BTreeMap::new();
        for t in &self.threads {
            for ev in &t.events {
                // Count span open+close once, at the open.
                if ev.kind == EventKind::End {
                    continue;
                }
                let stat = map.entry(ev.name).or_default();
                stat.count += 1;
                stat.arg_sum += ev.arg;
            }
        }
        map
    }

    /// Number of span events (`Begin` or `Complete`) recorded by `tid`.
    pub fn span_count(&self, tid: usize) -> usize {
        self.threads[tid]
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Begin | EventKind::Complete))
            .count()
    }

    /// Serializes to Chrome trace-event JSON.
    ///
    /// Layout: metadata (`M`) events naming the process and per-thread
    /// tracks, then each thread's events in record order. `ts` is the raw
    /// backend tick (1 tick = 1 simulated cycle or 1 ns); `otherData`
    /// carries [`TraceMeta`], the per-thread drop counters, and the
    /// counter summary.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(128 * (2 + self.total_events()));
        out.push_str("{\n\"traceEvents\": [\n");
        let mut first = true;
        let mut sep = |out: &mut String| {
            if first {
                first = false;
            } else {
                out.push_str(",\n");
            }
        };

        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"crono {} [{}]\"}}}}",
            escape(&self.meta.benchmark),
            escape(&self.meta.backend),
        );
        for tid in 0..self.threads.len() {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"thread {tid}\"}}}}"
            );
        }

        for (tid, t) in self.threads.iter().enumerate() {
            for ev in &t.events {
                sep(&mut out);
                let (name, cat, ts) = (escape(ev.name), escape(ev.cat), ev.ts);
                match ev.kind {
                    EventKind::Begin => {
                        let _ = write!(
                            out,
                            "{{\"ph\":\"B\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\
                             \"name\":\"{name}\",\"cat\":\"{cat}\"}}"
                        );
                    }
                    EventKind::End => {
                        let _ = write!(
                            out,
                            "{{\"ph\":\"E\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\
                             \"name\":\"{name}\",\"cat\":\"{cat}\"}}"
                        );
                    }
                    EventKind::Instant => {
                        let _ = write!(
                            out,
                            "{{\"ph\":\"i\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\
                             \"name\":\"{name}\",\"cat\":\"{cat}\",\"s\":\"t\",\
                             \"args\":{{\"value\":{}}}}}",
                            ev.arg
                        );
                    }
                    EventKind::Complete => {
                        let _ = write!(
                            out,
                            "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\
                             \"dur\":{},\"name\":\"{name}\",\"cat\":\"{cat}\"}}",
                            ev.arg
                        );
                    }
                }
            }
        }

        out.push_str("\n],\n");
        let _ = write!(
            out,
            "\"displayTimeUnit\": \"ns\",\n\"otherData\": {{\n\
             \"benchmark\": \"{}\",\n\"backend\": \"{}\",\n\"scale\": \"{}\",\n\
             \"threads\": {},\n\"clock_unit\": \"{}\",\n",
            escape(&self.meta.benchmark),
            escape(&self.meta.backend),
            escape(&self.meta.scale),
            self.meta.threads,
            self.meta.clock_unit,
        );
        out.push_str("\"dropped_events\": [");
        for (i, t) in self.threads.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}", t.dropped);
        }
        out.push_str("],\n\"counters\": {\n");
        let counters = self.counters();
        for (i, (name, stat)) in counters.iter().enumerate() {
            let comma = if i + 1 < counters.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "  \"{}\": {{\"count\": {}, \"arg_sum\": {}}}{comma}",
                escape(name),
                stat.count,
                stat.arg_sum
            );
        }
        out.push_str("}\n}\n}\n");
        out
    }

    /// A human-readable counter summary table (one line per event name).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace: {} on {} ({} threads, scale {}, {} events, {} dropped)",
            self.meta.benchmark,
            self.meta.backend,
            self.meta.threads,
            self.meta.scale,
            self.total_events(),
            self.total_dropped(),
        );
        let _ = writeln!(out, "{:<24} {:>12} {:>16}", "event", "count", "arg_sum");
        for (name, stat) in self.counters() {
            let _ = writeln!(out, "{:<24} {:>12} {:>16}", name, stat.count, stat.arg_sum);
        }
        out
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::ThreadTracer;

    fn sample() -> Trace {
        let mut t0 = ThreadTracer::new(64);
        t0.begin("algo", "phase", 0);
        t0.instant("mem", "l1_miss_cold", 5, 0x40);
        t0.complete("sync", "barrier_wait", 10, 30);
        t0.end("algo", "phase", 40);
        let mut t1 = ThreadTracer::new(2);
        t1.begin("algo", "phase", 0);
        t1.end("algo", "phase", 9);
        t1.instant("mem", "l1_miss_cold", 3, 0x80); // dropped
        Trace {
            meta: TraceMeta::new("BFS", "sim", "test", 2, "cycles"),
            threads: vec![t0.finish(), t1.finish()],
        }
    }

    #[test]
    fn json_contains_all_phases_and_metadata() {
        let json = sample().to_chrome_json();
        for needle in [
            "\"traceEvents\"",
            "\"ph\":\"M\"",
            "\"ph\":\"B\"",
            "\"ph\":\"E\"",
            "\"ph\":\"i\"",
            "\"ph\":\"X\"",
            "\"thread 1\"",
            "\"dur\":30",
            "\"dropped_events\": [0, 1]",
            "\"benchmark\": \"BFS\"",
            "\"clock_unit\": \"cycles\"",
            "\"l1_miss_cold\": {\"count\": 1, \"arg_sum\": 64}",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }

    #[test]
    fn json_is_deterministic() {
        assert_eq!(sample().to_chrome_json(), sample().to_chrome_json());
    }

    #[test]
    fn counters_merge_threads_and_skip_span_ends() {
        let trace = sample();
        let c = trace.counters();
        assert_eq!(c["phase"].count, 2, "one Begin per thread, Ends ignored");
        assert_eq!(c["barrier_wait"].count, 1);
        assert_eq!(c["barrier_wait"].arg_sum, 30);
        assert_eq!(trace.total_dropped(), 1);
    }

    #[test]
    fn span_counts_per_thread() {
        let trace = sample();
        assert_eq!(trace.span_count(0), 2, "Begin + Complete");
        assert_eq!(trace.span_count(1), 1);
    }

    #[test]
    fn balanced_braces_and_brackets() {
        // Cheap structural sanity: every opener has a closer (names are
        // static identifiers, so no brace ever appears inside a string).
        let json = sample().to_chrome_json();
        for (open, close) in [('{', '}'), ('[', ']')] {
            let o = json.matches(open).count();
            let c = json.matches(close).count();
            assert_eq!(o, c, "unbalanced {open}{close}");
        }
    }
}
