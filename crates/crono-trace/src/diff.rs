//! Comparing the counter summaries of two trace JSON files.
//!
//! `crono trace-diff a.json b.json` regression-checks simulator traces:
//! it extracts the `otherData.counters` object that
//! [`Trace::to_chrome_json`](crate::Trace::to_chrome_json) embeds in
//! every trace, lines the two summaries up per event name, and reports
//! count / arg_sum deltas. An *increase* beyond the tolerance in the
//! second trace is a regression (more sync stalls, more coherence
//! traffic); decreases and disappearances never are.
//!
//! The parser is a minimal hand-rolled scanner for exactly the shape
//! this crate writes (`"name": {"count": N, "arg_sum": M}`) — the
//! workspace is hermetic, so there is no general JSON dependency to
//! lean on.

use crate::ring::CounterStat;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The per-event counter summary extracted from one trace JSON.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CounterSummary {
    /// Count and argument sum per event name, in name order.
    pub counters: BTreeMap<String, CounterStat>,
}

impl CounterSummary {
    /// Extracts the `otherData.counters` summary from a Chrome trace
    /// JSON string produced by
    /// [`Trace::to_chrome_json`](crate::Trace::to_chrome_json).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed construct if the
    /// text has no `"counters"` object or it deviates from the shape
    /// this crate writes.
    pub fn parse(json: &str) -> Result<CounterSummary, String> {
        let marker = "\"counters\":";
        let start = json
            .find(marker)
            .ok_or("no \"counters\" object found (not a crono trace JSON?)")?;
        let mut s = Scanner {
            rest: &json[start + marker.len()..],
        };
        s.expect('{')?;
        let mut counters = BTreeMap::new();
        if s.peek() == Some('}') {
            return Ok(CounterSummary { counters });
        }
        loop {
            let name = s.string()?;
            s.expect(':')?;
            s.expect('{')?;
            let key1 = s.string()?;
            if key1 != "count" {
                return Err(format!("expected \"count\", found {key1:?}"));
            }
            s.expect(':')?;
            let count = s.number()?;
            s.expect(',')?;
            let key2 = s.string()?;
            if key2 != "arg_sum" {
                return Err(format!("expected \"arg_sum\", found {key2:?}"));
            }
            s.expect(':')?;
            let arg_sum = s.number()?;
            s.expect('}')?;
            counters.insert(name, CounterStat { count, arg_sum });
            match s.peek() {
                Some(',') => {
                    s.expect(',')?;
                }
                Some('}') => break,
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
        Ok(CounterSummary { counters })
    }
}

/// Tiny scanner over the counters object.
struct Scanner<'a> {
    rest: &'a str,
}

impl Scanner<'_> {
    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.rest.chars().next()
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        match self.rest.strip_prefix(c) {
            Some(r) => {
                self.rest = r;
                Ok(())
            }
            None => Err(format!(
                "expected {c:?} at {:?}",
                &self.rest[..self.rest.len().min(20)]
            )),
        }
    }

    /// Parses a double-quoted string, unescaping `\"` and `\\` (the only
    /// escapes the writer emits).
    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        let mut chars = self.rest.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    self.rest = &self.rest[i + 1..];
                    return Ok(out);
                }
                '\\' => match chars.next() {
                    Some((_, esc)) => out.push(esc),
                    None => break,
                },
                _ => out.push(c),
            }
        }
        Err("unterminated string".into())
    }

    fn number(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let end = self
            .rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(self.rest.len());
        let (digits, rest) = self.rest.split_at(end);
        self.rest = rest;
        digits
            .parse()
            .map_err(|_| format!("expected number at {:?}", &digits.chars().take(20).collect::<String>()))
    }
}

/// One event name's stats in both traces (`None` = absent).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterDelta {
    /// The event name.
    pub name: String,
    /// Stats in the first (baseline) trace.
    pub a: Option<CounterStat>,
    /// Stats in the second (candidate) trace.
    pub b: Option<CounterStat>,
}

impl CounterDelta {
    /// Whether the two sides are identical.
    pub fn is_zero(&self) -> bool {
        self.a == self.b
    }

    /// Whether the candidate regressed beyond `tolerance`: its count or
    /// arg_sum exceeds the baseline's by more than `tolerance × baseline`
    /// (so `0.0` flags any increase, `0.1` allows 10% growth; an event
    /// absent from the baseline regresses on any appearance).
    pub fn regressed(&self, tolerance: f64) -> bool {
        let exceeded = |a: u64, b: u64| b > a && (b - a) as f64 > tolerance * a as f64;
        let a = self.a.unwrap_or(CounterStat { count: 0, arg_sum: 0 });
        let b = self.b.unwrap_or(CounterStat { count: 0, arg_sum: 0 });
        exceeded(a.count, b.count) || exceeded(a.arg_sum, b.arg_sum)
    }
}

/// The full comparison of two counter summaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDiff {
    /// One row per event name present in either trace, in name order.
    pub rows: Vec<CounterDelta>,
}

impl TraceDiff {
    /// Lines up two summaries per event name.
    pub fn between(a: &CounterSummary, b: &CounterSummary) -> TraceDiff {
        let names: std::collections::BTreeSet<&String> =
            a.counters.keys().chain(b.counters.keys()).collect();
        TraceDiff {
            rows: names
                .into_iter()
                .map(|name| CounterDelta {
                    name: name.clone(),
                    a: a.counters.get(name).copied(),
                    b: b.counters.get(name).copied(),
                })
                .collect(),
        }
    }

    /// Whether every event's stats are identical in both traces.
    pub fn is_zero(&self) -> bool {
        self.rows.iter().all(CounterDelta::is_zero)
    }

    /// The rows that [`CounterDelta::regressed`] beyond `tolerance`.
    pub fn regressions(&self, tolerance: f64) -> Vec<&CounterDelta> {
        self.rows.iter().filter(|r| r.regressed(tolerance)).collect()
    }

    /// A human-readable delta table: one line per changed event, with a
    /// trailing tally of unchanged events.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>12} {:>12} {:>16} {:>16}",
            "event", "count a", "count b", "arg_sum a", "arg_sum b"
        );
        let mut unchanged = 0usize;
        for row in &self.rows {
            if row.is_zero() {
                unchanged += 1;
                continue;
            }
            let fmt = |s: Option<CounterStat>, f: fn(CounterStat) -> u64| match s {
                Some(st) => f(st).to_string(),
                None => "-".into(),
            };
            let _ = writeln!(
                out,
                "{:<24} {:>12} {:>12} {:>16} {:>16}",
                row.name,
                fmt(row.a, |s| s.count),
                fmt(row.b, |s| s.count),
                fmt(row.a, |s| s.arg_sum),
                fmt(row.b, |s| s.arg_sum),
            );
        }
        let _ = writeln!(
            out,
            "{} event(s) changed, {unchanged} identical",
            self.rows.len() - unchanged
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ThreadTracer, Trace, TraceMeta};

    fn sample_trace(extra_miss: bool) -> String {
        let mut t = ThreadTracer::new(64);
        t.begin("algo", "bfs:level", 0);
        t.instant("mem", "l1_miss_cold", 5, 100);
        if extra_miss {
            t.instant("mem", "l1_miss_cold", 6, 50);
        }
        t.end("algo", "bfs:level", 10);
        Trace {
            meta: TraceMeta::new("BFS", "sim", "test", 1, "cycles"),
            threads: vec![t.finish()],
        }
        .to_chrome_json()
    }

    #[test]
    fn parses_real_trace_json() {
        let summary = CounterSummary::parse(&sample_trace(false)).unwrap();
        let miss = summary.counters["l1_miss_cold"];
        assert_eq!(miss.count, 1);
        assert_eq!(miss.arg_sum, 100);
        assert!(summary.counters.contains_key("bfs:level"));
    }

    #[test]
    fn identical_traces_diff_to_zero() {
        let a = CounterSummary::parse(&sample_trace(false)).unwrap();
        let b = CounterSummary::parse(&sample_trace(false)).unwrap();
        let diff = TraceDiff::between(&a, &b);
        assert!(diff.is_zero());
        assert!(diff.regressions(0.0).is_empty());
        assert!(diff.render().contains("0 event(s) changed"));
    }

    #[test]
    fn increase_is_a_regression_and_respects_tolerance() {
        let a = CounterSummary::parse(&sample_trace(false)).unwrap();
        let b = CounterSummary::parse(&sample_trace(true)).unwrap();
        let diff = TraceDiff::between(&a, &b);
        assert!(!diff.is_zero());
        let regs = diff.regressions(0.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].name, "l1_miss_cold");
        // count 1 -> 2 is a 100% increase; arg_sum 100 -> 150 is 50%.
        assert!(diff.regressions(1.0).is_empty(), "within 100% tolerance");
        assert!(!diff.regressions(0.4).is_empty(), "beyond 40% tolerance");
    }

    #[test]
    fn decrease_is_not_a_regression() {
        let a = CounterSummary::parse(&sample_trace(true)).unwrap();
        let b = CounterSummary::parse(&sample_trace(false)).unwrap();
        let diff = TraceDiff::between(&a, &b);
        assert!(!diff.is_zero());
        assert!(diff.regressions(0.0).is_empty());
    }

    #[test]
    fn appearing_event_regresses_missing_is_fine() {
        let empty = CounterSummary::default();
        let some = CounterSummary::parse(&sample_trace(false)).unwrap();
        assert!(!TraceDiff::between(&empty, &some).regressions(0.0).is_empty());
        assert!(TraceDiff::between(&some, &empty).regressions(0.0).is_empty());
    }

    #[test]
    fn rejects_garbage() {
        assert!(CounterSummary::parse("{}").is_err());
        assert!(CounterSummary::parse("\"counters\": {\"x\": 3}").is_err());
        let ok = CounterSummary::parse("\"counters\": {}").unwrap();
        assert!(ok.counters.is_empty());
    }
}
