//! Event tracing and profiling for the CRONO suite.
//!
//! CRONO's contribution is architectural *characterization* — per-component
//! completion-time breakdowns, miss classification, NoC behavior (§IV-D) —
//! but aggregate counters cannot show *when and where* inside a run the
//! time went. This crate records the raw event stream:
//!
//! * [`ThreadTracer`] — a per-thread, lock-free ring buffer of
//!   [`Event`]s: **spans** (algorithm phases, barrier waits, lock holds)
//!   and **instants** (L1 miss classes, directory invalidations, NoC and
//!   DRAM queueing). Each thread owns its tracer, so recording is a plain
//!   `Vec` push — no synchronization on the hot path.
//! * [`ThreadTrace`] — the frozen result of one thread's tracer, with an
//!   exact count of events dropped at capacity (bounded memory, never
//!   silent truncation).
//! * [`Trace`] — all threads of one run plus [`TraceMeta`], serializable
//!   to Chrome trace-event JSON ([`Trace::to_chrome_json`]) loadable in
//!   Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`, and to a
//!   compact machine-readable counter summary
//!   ([`Trace::counters`] / embedded in the JSON under `otherData`).
//!
//! Timestamps are `u64` ticks in whatever clock domain the backend runs:
//! simulated cycles on the simulator (deterministic, snapshot-testable)
//! or native nanoseconds on the real-machine backend.
//!
//! # Examples
//!
//! ```
//! use crono_trace::{ThreadTracer, Trace, TraceMeta};
//!
//! let mut t = ThreadTracer::new(1024);
//! t.begin("algo", "bfs:level", 0);
//! t.instant("mem", "l1_miss_cold", 7, 0xabc0);
//! t.end("algo", "bfs:level", 120);
//! let trace = Trace {
//!     meta: TraceMeta::new("BFS", "sim", "test", 1, "cycles"),
//!     threads: vec![t.finish()],
//! };
//! let json = trace.to_chrome_json();
//! assert!(json.contains("\"traceEvents\""));
//! assert!(json.contains("l1_miss_cold"));
//! assert_eq!(trace.total_dropped(), 0);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diff;
mod heatmap;
mod json;
mod ring;

pub use diff::{CounterDelta, CounterSummary, TraceDiff};
pub use heatmap::{pack_route, unpack_route, Heatmap, RouterTraffic};
pub use json::{Trace, TraceMeta};
pub use ring::{CounterStat, Event, EventKind, ThreadTrace, ThreadTracer, TraceConfig};
