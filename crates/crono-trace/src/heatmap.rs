//! Per-router NoC traffic heatmaps from `noc_route` trace instants.
//!
//! When a trace is captured with [`TraceConfig::noc_geometry`] on, the
//! simulated backend emits one `noc_route` instant per home-slice
//! transaction, carrying the home router's mesh coordinates and the
//! transaction's flit-hop count packed into the instant's 64-bit `arg`
//! (see [`pack_route`]). This module aggregates those instants into a
//! per-router table so the traffic *shape* is visible — e.g. the PR-5
//! ablations move APSP's capture-counter hot spot (one scorching router)
//! to steals spread across every owner's deque line.
//!
//! The input is the Chrome trace-event JSON that `crono trace` writes.
//! Like [`crate::diff::CounterSummary::parse`], the scanner leans on the
//! serializer's fixed layout (one event object per line) rather than a
//! general JSON parser.
//!
//! [`TraceConfig::noc_geometry`]: crate::TraceConfig::noc_geometry

use std::fmt::Write as _;

/// Mesh coordinates saturate at 63 per axis (a 64×64 mesh is 4096
/// cores — far beyond the configs the suite models).
const COORD_MAX: u64 = 63;
/// Flit counts saturate at 2^20 − 1 per transaction; a single home
/// transaction never moves a fraction of that.
const FLITS_MAX: u64 = (1 << 20) - 1;

/// Packs a home router's `(row, col)` mesh position and a transaction's
/// flit-hop count into a `noc_route` instant `arg`.
///
/// Layout: `[row:6][col:6][flits:20]` from the high end of the used 32
/// bits. Each field saturates rather than wraps, and the packed value
/// stays ≤ 2³², so summing args across any realistic event count cannot
/// overflow the `u64` accumulation in [`crate::Trace::counters`].
pub fn pack_route(row: usize, col: usize, flits: u64) -> u64 {
    let row = (row as u64).min(COORD_MAX);
    let col = (col as u64).min(COORD_MAX);
    ((row << 6 | col) << 20) | flits.min(FLITS_MAX)
}

/// Inverse of [`pack_route`]: `(row, col, flits)`.
pub fn unpack_route(arg: u64) -> (usize, usize, u64) {
    let router = arg >> 20;
    ((router >> 6) as usize, (router & COORD_MAX) as usize, arg & FLITS_MAX)
}

/// Flit traffic accumulated at one mesh router.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterTraffic {
    /// Total flit-hops of transactions homed at this router.
    pub flits: u64,
    /// Number of home transactions (`noc_route` instants).
    pub events: u64,
}

/// Per-router aggregation of a trace's `noc_route` instants.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Heatmap {
    /// Dense row-major `rows × cols` grid (bounding box of the routers
    /// actually seen; untouched routers hold zeroes).
    cells: Vec<RouterTraffic>,
    rows: usize,
    cols: usize,
}

impl Heatmap {
    /// Grid height (0 when the trace held no `noc_route` instants).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid width.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Traffic at router `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when the coordinates lie outside the grid.
    pub fn at(&self, row: usize, col: usize) -> RouterTraffic {
        assert!(row < self.rows && col < self.cols, "router outside grid");
        self.cells[row * self.cols + col]
    }

    /// Total flit-hops across all routers.
    pub fn total_flits(&self) -> u64 {
        self.cells.iter().map(|c| c.flits).sum()
    }

    /// Total `noc_route` instants aggregated.
    pub fn total_events(&self) -> u64 {
        self.cells.iter().map(|c| c.events).sum()
    }

    /// Builds a heatmap from packed `(row, col, flits)` samples.
    pub fn from_samples(samples: impl IntoIterator<Item = u64>) -> Heatmap {
        let mut seen: Vec<(usize, usize, u64)> = Vec::new();
        let (mut rows, mut cols) = (0, 0);
        for arg in samples {
            let (row, col, flits) = unpack_route(arg);
            rows = rows.max(row + 1);
            cols = cols.max(col + 1);
            seen.push((row, col, flits));
        }
        let mut cells = vec![RouterTraffic::default(); rows * cols];
        for (row, col, flits) in seen {
            let cell = &mut cells[row * cols + col];
            cell.flits += flits;
            cell.events += 1;
        }
        Heatmap { cells, rows, cols }
    }

    /// Extracts every `noc_route` instant from a Chrome trace-event JSON
    /// document and aggregates it.
    ///
    /// Errors when the document does not look like a `crono trace`
    /// output, or when it contains no `noc_route` instants (the trace
    /// was captured without NoC geometry — pointing that out beats
    /// writing an all-zero table).
    pub fn from_chrome_json(json: &str) -> Result<Heatmap, String> {
        if !json.contains("\"traceEvents\"") {
            return Err("not a crono trace (no \"traceEvents\" key)".into());
        }
        let mut samples = Vec::new();
        for line in json.lines() {
            if !line.contains("\"name\":\"noc_route\"") {
                continue;
            }
            let arg = line
                .split("\"value\":")
                .nth(1)
                .and_then(|rest| {
                    let digits: String =
                        rest.chars().take_while(char::is_ascii_digit).collect();
                    digits.parse::<u64>().ok()
                })
                .ok_or_else(|| format!("malformed noc_route instant: {line}"))?;
            samples.push(arg);
        }
        if samples.is_empty() {
            return Err(
                "trace contains no noc_route instants; re-capture it with NoC \
                 geometry enabled (crono trace writes it by default)"
                    .into(),
            );
        }
        Ok(Heatmap::from_samples(samples))
    }

    /// Renders the full grid as TSV: header `row\tcol\tflits\tevents`,
    /// then one line per router in row-major order, zero rows included
    /// (a plotting script gets the complete mesh without reindexing).
    pub fn to_tsv(&self) -> String {
        let mut out = String::from("row\tcol\tflits\tevents\n");
        for row in 0..self.rows {
            for col in 0..self.cols {
                let c = self.at(row, col);
                let _ = writeln!(out, "{row}\t{col}\t{}\t{}", c.flits, c.events);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trips() {
        for (row, col, flits) in [(0, 0, 0), (3, 5, 17), (63, 63, FLITS_MAX)] {
            assert_eq!(unpack_route(pack_route(row, col, flits)), (row, col, flits));
        }
    }

    #[test]
    fn pack_saturates_out_of_range_fields() {
        let (row, col, flits) = unpack_route(pack_route(100, 200, u64::MAX));
        assert_eq!((row, col, flits), (63, 63, FLITS_MAX));
        assert!(pack_route(usize::MAX, usize::MAX, u64::MAX) <= u32::MAX as u64);
    }

    #[test]
    fn aggregates_samples_into_bounding_grid() {
        let map = Heatmap::from_samples([
            pack_route(0, 1, 10),
            pack_route(0, 1, 5),
            pack_route(2, 0, 7),
        ]);
        assert_eq!((map.rows(), map.cols()), (3, 2));
        assert_eq!(map.at(0, 1), RouterTraffic { flits: 15, events: 2 });
        assert_eq!(map.at(2, 0), RouterTraffic { flits: 7, events: 1 });
        assert_eq!(map.at(1, 1), RouterTraffic::default(), "untouched router is zero");
        assert_eq!(map.total_flits(), 22);
        assert_eq!(map.total_events(), 3);
    }

    #[test]
    fn tsv_covers_every_router_including_zeroes() {
        let map = Heatmap::from_samples([pack_route(1, 1, 3)]);
        let tsv = map.to_tsv();
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines[0], "row\tcol\tflits\tevents");
        assert_eq!(lines.len(), 1 + 4, "2x2 grid: header + 4 routers");
        assert!(lines.contains(&"0\t0\t0\t0"));
        assert!(lines.contains(&"1\t1\t3\t1"));
    }

    #[test]
    fn parses_noc_route_instants_out_of_chrome_json() {
        let json = format!(
            "{{\n\"traceEvents\": [\n\
             {{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"x\"}}}},\n\
             {{\"ph\":\"i\",\"pid\":0,\"tid\":0,\"ts\":5,\"name\":\"noc_flits\",\"cat\":\"noc\",\"s\":\"t\",\"args\":{{\"value\":9}}}},\n\
             {{\"ph\":\"i\",\"pid\":0,\"tid\":0,\"ts\":5,\"name\":\"noc_route\",\"cat\":\"noc\",\"s\":\"t\",\"args\":{{\"value\":{}}}}},\n\
             {{\"ph\":\"i\",\"pid\":0,\"tid\":1,\"ts\":8,\"name\":\"noc_route\",\"cat\":\"noc\",\"s\":\"t\",\"args\":{{\"value\":{}}}}}\n\
             ],\n\"otherData\": {{}}\n}}",
            pack_route(0, 1, 4),
            pack_route(0, 1, 6),
        );
        let map = Heatmap::from_chrome_json(&json).expect("parse");
        assert_eq!(map.at(0, 1), RouterTraffic { flits: 10, events: 2 });
        assert_eq!(map.total_events(), 2, "noc_flits instants are not misparsed");
    }

    #[test]
    fn rejects_geometry_free_traces_with_guidance() {
        let err = Heatmap::from_chrome_json("{\"traceEvents\": []}").unwrap_err();
        assert!(err.contains("no noc_route instants"), "{err}");
        let err = Heatmap::from_chrome_json("not json").unwrap_err();
        assert!(err.contains("traceEvents"), "{err}");
    }
}
