//! The per-thread event ring buffer.

/// How an [`Event`] renders in the Chrome trace-event format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Span open (`ph: "B"`); must be closed by a matching [`EventKind::End`]
    /// on the same thread, in stack order.
    Begin,
    /// Span close (`ph: "E"`).
    End,
    /// A point event (`ph: "i"`, thread scope); `arg` is the payload value.
    Instant,
    /// A self-contained span (`ph: "X"`); `arg` is the duration in ticks.
    /// Complete spans need no nesting discipline, so backends use them for
    /// waits whose begin/end straddle other events (locks, barriers).
    Complete,
}

/// One trace event. 40 bytes, `Copy` — recording is a bounds check and a
/// `Vec` push.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Timestamp in backend ticks (simulated cycles or native nanoseconds).
    pub ts: u64,
    /// Payload: the value for [`EventKind::Instant`], the duration for
    /// [`EventKind::Complete`], unused (0) for `Begin`/`End`.
    pub arg: u64,
    /// Event name (e.g. `"l1_miss_cold"`, `"bfs:level"`). Static so the
    /// ring never allocates per event.
    pub name: &'static str,
    /// Category track (`"algo"`, `"mem"`, `"coherence"`, `"noc"`,
    /// `"dram"`, `"sync"`).
    pub cat: &'static str,
    /// How the event renders.
    pub kind: EventKind,
}

/// Tracer configuration shared by every backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Ring capacity in events **per thread**. Once a thread's ring is
    /// full, further events are dropped and counted exactly — memory
    /// stays bounded and the loss is always reported, never silent.
    pub capacity: usize,
    /// Emit per-router NoC geometry instants (`noc_route`): each home
    /// transaction additionally records its home slice's mesh
    /// coordinates and flit count, packed into the instant's `arg` (see
    /// [`crate::heatmap`]). Off by default — the extra event per
    /// transaction changes counter fingerprints, so geometry is strictly
    /// opt-in (the `crono trace`/`crono heatmap` path turns it on).
    pub noc_geometry: bool,
}

impl TraceConfig {
    /// A config with the given per-thread event capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "trace ring needs capacity > 0");
        TraceConfig { capacity, ..Self::default() }
    }

    /// Returns the config with NoC geometry instants switched on/off.
    pub fn noc_geometry(mut self, on: bool) -> Self {
        self.noc_geometry = on;
        self
    }
}

impl Default for TraceConfig {
    /// 64 Ki events per thread (~2.5 MB/thread at 40 B/event), no NoC
    /// geometry instants.
    fn default() -> Self {
        TraceConfig { capacity: 64 * 1024, noc_geometry: false }
    }
}

/// A per-thread event recorder with a fixed-capacity ring.
///
/// Exactly one thread owns each tracer (`&mut self` recording), so there
/// is no synchronization: the cost of a recorded event is one branch and
/// one push into pre-growable storage; the cost of a dropped event is one
/// branch and one increment.
#[derive(Debug)]
pub struct ThreadTracer {
    events: Vec<Event>,
    capacity: usize,
    dropped: u64,
}

impl ThreadTracer {
    /// A tracer holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace ring needs capacity > 0");
        ThreadTracer {
            // Start small: most threads of a short run never fill the ring.
            events: Vec::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
        }
    }

    /// A tracer configured by `config`.
    pub fn from_config(config: &TraceConfig) -> Self {
        Self::new(config.capacity)
    }

    /// Records `ev`, or counts it as dropped if the ring is full.
    #[inline]
    pub fn record(&mut self, ev: Event) {
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// Records a span open.
    #[inline]
    pub fn begin(&mut self, cat: &'static str, name: &'static str, ts: u64) {
        self.record(Event { ts, arg: 0, name, cat, kind: EventKind::Begin });
    }

    /// Records a span close.
    #[inline]
    pub fn end(&mut self, cat: &'static str, name: &'static str, ts: u64) {
        self.record(Event { ts, arg: 0, name, cat, kind: EventKind::End });
    }

    /// Records an instant with payload `value`.
    #[inline]
    pub fn instant(&mut self, cat: &'static str, name: &'static str, ts: u64, value: u64) {
        self.record(Event { ts, arg: value, name, cat, kind: EventKind::Instant });
    }

    /// Records a self-contained span `[ts, ts + dur]`.
    #[inline]
    pub fn complete(&mut self, cat: &'static str, name: &'static str, ts: u64, dur: u64) {
        self.record(Event { ts, arg: dur, name, cat, kind: EventKind::Complete });
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded (dropped events count as
    /// recorded attempts, not emptiness).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped at capacity so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Freezes the tracer into its final [`ThreadTrace`].
    pub fn finish(self) -> ThreadTrace {
        ThreadTrace {
            events: self.events,
            dropped: self.dropped,
        }
    }
}

/// The frozen event stream of one thread.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ThreadTrace {
    /// Recorded events in record order (timestamps are per-thread
    /// monotone for same-kind sources).
    pub events: Vec<Event>,
    /// Events lost because the ring was full — exact, never estimated.
    pub dropped: u64,
}

/// Aggregate statistics for one event name (see [`crate::Trace::counters`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterStat {
    /// Occurrences across all threads.
    pub count: u64,
    /// Sum of `arg` payloads (instant values / complete durations).
    pub arg_sum: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut t = ThreadTracer::new(16);
        t.begin("algo", "phase", 1);
        t.instant("mem", "miss", 2, 99);
        t.end("algo", "phase", 3);
        let tr = t.finish();
        assert_eq!(tr.events.len(), 3);
        assert_eq!(tr.events[0].kind, EventKind::Begin);
        assert_eq!(tr.events[1].arg, 99);
        assert_eq!(tr.events[2].ts, 3);
        assert_eq!(tr.dropped, 0);
    }

    #[test]
    fn overflow_drops_exactly_and_never_panics() {
        let mut t = ThreadTracer::new(4);
        for i in 0..10 {
            t.instant("mem", "miss", i, i);
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 6);
        let tr = t.finish();
        assert_eq!(tr.events.len(), 4);
        assert_eq!(tr.dropped, 6);
        // The survivors are the oldest four, untouched.
        assert_eq!(tr.events[3].ts, 3);
    }

    #[test]
    #[should_panic(expected = "capacity > 0")]
    fn zero_capacity_rejected() {
        ThreadTracer::new(0);
    }

    #[test]
    fn default_config_capacity() {
        assert_eq!(TraceConfig::default().capacity, 65536);
        assert_eq!(
            ThreadTracer::from_config(&TraceConfig::with_capacity(8)).capacity,
            8
        );
    }
}
