use crono_graph::{CsrGraph, VertexId, Weight};
use crono_runtime::{ReadArray, ThreadCtx};

/// A CSR graph wrapped for context-tracked access: the three CSR arrays
/// (offsets, neighbors, weights) get symbolic cache-line addresses, so
/// the simulated backend observes every vertex/edge touch the benchmark
/// makes — the unstructured access pattern the paper characterizes.
///
/// # Examples
///
/// ```
/// use crono_algos::SharedGraph;
/// use crono_graph::CsrGraph;
/// use crono_runtime::{Machine, NativeMachine};
///
/// let csr = CsrGraph::from_edges(3, vec![(0, 1, 5), (0, 2, 7)]);
/// let graph = SharedGraph::new(&csr);
/// NativeMachine::new(1).run(|ctx| {
///     let mut sum = 0;
///     for e in graph.edge_range(ctx, 0) {
///         let (_, w) = graph.edge(ctx, e);
///         sum += w;
///     }
///     assert_eq!(sum, 12);
/// });
/// ```
#[derive(Debug)]
pub struct SharedGraph<'a> {
    csr: &'a CsrGraph,
    offsets: ReadArray<'a, u32>,
    neighbors: ReadArray<'a, VertexId>,
    weights: ReadArray<'a, Weight>,
}

impl<'a> SharedGraph<'a> {
    /// Wraps `csr`, allocating symbolic regions for its arrays.
    pub fn new(csr: &'a CsrGraph) -> Self {
        SharedGraph {
            csr,
            offsets: ReadArray::new(csr.offset_slice()),
            neighbors: ReadArray::new(csr.neighbor_slice()),
            weights: ReadArray::new(csr.weight_slice()),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.csr.num_vertices()
    }

    /// Number of directed edges.
    pub fn num_directed_edges(&self) -> usize {
        self.csr.num_directed_edges()
    }

    /// The underlying CSR graph (for untracked, outside-the-region use).
    pub fn csr(&self) -> &'a CsrGraph {
        self.csr
    }

    /// Edge-index range of `v`'s adjacency list (two offset loads).
    #[inline]
    pub fn edge_range<C: ThreadCtx>(&self, ctx: &mut C, v: VertexId) -> std::ops::Range<usize> {
        let start = self.offsets.get(ctx, v as usize) as usize;
        let end = self.offsets.get(ctx, v as usize + 1) as usize;
        start..end
    }

    /// The `(neighbor, weight)` pair at flat edge index `e` (two loads).
    #[inline]
    pub fn edge<C: ThreadCtx>(&self, ctx: &mut C, e: usize) -> (VertexId, Weight) {
        (self.neighbors.get(ctx, e), self.weights.get(ctx, e))
    }

    /// The neighbor at flat edge index `e` (one load; for unweighted
    /// traversals like BFS/DFS/triangles that never touch weights).
    #[inline]
    pub fn neighbor<C: ThreadCtx>(&self, ctx: &mut C, e: usize) -> VertexId {
        self.neighbors.get(ctx, e)
    }

    /// Out-degree of `v` (two offset loads).
    #[inline]
    pub fn degree<C: ThreadCtx>(&self, ctx: &mut C, v: VertexId) -> usize {
        let r = self.edge_range(ctx, v);
        r.end - r.start
    }
}

/// The half-open vertex range thread `tid` of `nthreads` owns under
/// static graph division (CRONO's "graph is statically divided amongst
/// threads").
pub(crate) fn chunk(n: usize, tid: usize, nthreads: usize) -> std::ops::Range<usize> {
    let per = n.div_ceil(nthreads);
    let start = (tid * per).min(n);
    let end = ((tid + 1) * per).min(n);
    start..end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crono_runtime::{Machine, NativeMachine};

    #[test]
    fn tracked_access_matches_csr() {
        let csr = CsrGraph::from_edges(4, vec![(0, 1, 2), (1, 2, 3), (1, 3, 4)]);
        let g = SharedGraph::new(&csr);
        NativeMachine::new(1).run(|ctx| {
            assert_eq!(g.degree(ctx, 1), 2);
            let r = g.edge_range(ctx, 1);
            let edges: Vec<_> = r.map(|e| g.edge(ctx, e)).collect();
            assert_eq!(edges, vec![(2, 3), (3, 4)]);
        });
    }

    #[test]
    fn chunks_cover_exactly() {
        for n in [0usize, 1, 7, 64, 100] {
            for t in [1usize, 2, 3, 8] {
                let mut covered = vec![false; n];
                for tid in 0..t {
                    for i in chunk(n, tid, t) {
                        assert!(!covered[i], "overlap at {i}");
                        covered[i] = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "n={n} t={t} left gaps");
            }
        }
    }
}
