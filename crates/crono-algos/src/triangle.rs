//! `TRI_CNT` — triangle counting (§III-8).
//!
//! CRONO's structure: "a global data structure is maintained for each
//! vertex, which stores the connections between vertices. The loop then
//! runs over all vertices inside each thread, and updates to the global
//! data structure are done via atomic locks. Then a barrier is applied,
//! after which another loop runs ... that computes the number of
//! triangles for each vertex." Phase 1 registers every edge into the
//! shared connection structure under striped per-vertex locks; phase 2
//! uses the exact *forward* (degree-ordered) algorithm of Satish et al.:
//! each triangle is counted once at its lowest-rank vertex, where rank
//! orders vertices by degree (ties by id). Degree ordering bounds the
//! per-edge intersection work at O(E^1.5) even on power-law graphs whose
//! hubs would make naive neighbor intersection quadratic.

use crate::graph_view::{chunk, SharedGraph};
use crate::{costs, AlgoOutcome};
use crono_graph::{CsrGraph, VertexId};
use crono_runtime::{LockSet, Machine, SharedU64s, ThreadCtx};

/// Result of a triangle-counting run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriangleOutput {
    /// Total triangles in the graph (each counted once).
    pub total: u64,
    /// `per_vertex[v]` = triangles counted at `v` (their lowest-rank
    /// vertex under degree-then-id ordering).
    pub per_vertex: Vec<u64>,
}

/// The forward structure: vertices relabeled in rank order (degree, then
/// id), with edges kept only from lower to higher rank. Intersecting two
/// forward lists is then a sorted two-pointer scan, and total phase-2
/// work is O(E^1.5) even on power-law graphs.
fn forward_graph(graph: &CsrGraph) -> (CsrGraph, Vec<VertexId>) {
    let n = graph.num_vertices();
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.sort_unstable_by_key(|&v| (graph.degree(v), v));
    let mut rank = vec![0u32; n];
    for (r, &v) in order.iter().enumerate() {
        rank[v as usize] = r as u32;
    }
    let mut edges = Vec::with_capacity(graph.num_directed_edges() / 2);
    for v in 0..n as VertexId {
        for (u, _) in graph.neighbors(v) {
            if rank[v as usize] < rank[u as usize] {
                edges.push((rank[v as usize], rank[u as usize], 1));
            }
        }
    }
    (CsrGraph::from_edges(n, edges), order)
}

/// Parallel triangle counting: graph division + atomic per-vertex counts
/// (Table I).
pub fn parallel<M: Machine>(machine: &M, graph: &CsrGraph) -> AlgoOutcome<TriangleOutput> {
    let n = graph.num_vertices();
    let shared = SharedGraph::new(graph);
    let per_vertex = SharedU64s::new(n);
    let total = SharedU64s::new(1);
    // The "global data structure ... storing connections between
    // vertices": per-vertex degree tallies registered under atomic locks
    // in phase 1, exactly as the C suite populates its structure.
    let connections = SharedU64s::new(n);
    let locks = LockSet::new(n.min(4096));
    let (forward, order) = forward_graph(graph);
    let fwd_shared = SharedGraph::new(&forward);

    let outcome = machine.run(|ctx| {
        let tid = ctx.thread_id();
        let nthreads = ctx.num_threads();
        // Phase 1: register every edge of the owned section.
        for v in chunk(n, tid, nthreads) {
            for e in shared.edge_range(ctx, v as VertexId) {
                let u = shared.neighbor(ctx, e) as usize;
                ctx.compute(costs::INTERSECT);
                ctx.lock_for(&locks, u);
                let c = connections.get(ctx, u);
                connections.set(ctx, u, c + 1);
                ctx.unlock_for(&locks, u);
            }
        }
        ctx.barrier();
        let mut local_total = 0u64;
        // Phase 2 walks the forward structure: `rv` iterates rank-space.
        for rv in chunk(n, tid, nthreads) {
            ctx.record_active(1);
            let mut v_count = 0u64;
            let rv = rv as VertexId;
            let range_v = fwd_shared.edge_range(ctx, rv);
            for e in range_v.clone() {
                let ru = fwd_shared.neighbor(ctx, e);
                // Two-pointer intersection of the sorted forward lists.
                let mut i = range_v.start;
                let mut j = fwd_shared.edge_range(ctx, ru).start;
                let v_end = range_v.end;
                let u_end = fwd_shared.edge_range(ctx, ru).end;
                while i < v_end && j < u_end {
                    ctx.compute(costs::INTERSECT);
                    let a = fwd_shared.neighbor(ctx, i);
                    let b = fwd_shared.neighbor(ctx, j);
                    match a.cmp(&b) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            v_count += 1;
                            i += 1;
                            j += 1;
                        }
                    }
                }
            }
            if v_count > 0 {
                // "updates to the global data structure via atomic locks"
                per_vertex.fetch_add(ctx, order[rv as usize] as usize, v_count);
                local_total += v_count;
            }
        }
        ctx.barrier();
        // Second phase: aggregate the global count.
        if local_total > 0 {
            total.fetch_add(ctx, 0, local_total);
        }
    });
    AlgoOutcome {
        output: TriangleOutput {
            total: total.get_plain(0),
            per_vertex: per_vertex.to_vec(),
        },
        report: outcome.report,
    }
}

/// Sequential reference.
///
/// # Panics
///
/// Panics if `machine.num_threads() != 1`.
pub fn sequential<M: Machine>(machine: &M, graph: &CsrGraph) -> AlgoOutcome<TriangleOutput> {
    assert_eq!(machine.num_threads(), 1, "sequential reference needs 1 thread");
    parallel(machine, graph)
}

/// O(n³) brute-force oracle for the tests (undirected graphs).
pub fn reference(graph: &CsrGraph) -> u64 {
    let n = graph.num_vertices() as VertexId;
    let has = |a: VertexId, b: VertexId| graph.neighbors(a).any(|(x, _)| x == b);
    let mut count = 0u64;
    for a in 0..n {
        for (b, _) in graph.neighbors(a) {
            if b <= a {
                continue;
            }
            for (c, _) in graph.neighbors(a) {
                if c <= b {
                    continue;
                }
                if has(b, c) {
                    count += 1;
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crono_graph::gen::{rmat, uniform_random, RmatParams};
    use crono_runtime::NativeMachine;
    use crono_graph::EdgeList;

    #[test]
    fn single_triangle() {
        let mut el = EdgeList::new(3);
        el.push_undirected(0, 1, 1).unwrap();
        el.push_undirected(1, 2, 1).unwrap();
        el.push_undirected(0, 2, 1).unwrap();
        let g = el.into_csr();
        let out = parallel(&NativeMachine::new(2), &g);
        assert_eq!(out.output.total, 1);
        assert_eq!(out.output.per_vertex, vec![1, 0, 0]);
    }

    #[test]
    fn complete_graph_k5_has_ten() {
        let mut el = EdgeList::new(5);
        for a in 0..5u32 {
            for b in a + 1..5 {
                el.push_undirected(a, b, 1).unwrap();
            }
        }
        let out = parallel(&NativeMachine::new(3), &el.into_csr());
        assert_eq!(out.output.total, 10);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        for seed in 0..4 {
            let g = uniform_random(40, 150, 3, seed);
            let out = parallel(&NativeMachine::new(4), &g);
            assert_eq!(out.output.total, reference(&g), "seed {seed}");
        }
    }

    #[test]
    fn social_graphs_have_many_triangles() {
        let g = rmat(9, 4096, 3, RmatParams::default(), 3);
        let out = parallel(&NativeMachine::new(4), &g);
        assert_eq!(out.output.total, reference(&g));
        assert!(out.output.total > 0, "hubs close triangles");
    }

    #[test]
    fn per_vertex_sums_to_total() {
        let g = uniform_random(64, 300, 3, 9);
        let out = parallel(&NativeMachine::new(4), &g);
        let sum: u64 = out.output.per_vertex.iter().sum();
        assert_eq!(sum, out.output.total);
    }

    #[test]
    fn thread_count_invariant() {
        let g = uniform_random(64, 256, 3, 1);
        let a = parallel(&NativeMachine::new(1), &g);
        let b = parallel(&NativeMachine::new(8), &g);
        assert_eq!(a.output.total, b.output.total);
        assert_eq!(a.output.per_vertex, b.output.per_vertex);
    }
}
