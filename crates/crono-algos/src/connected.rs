//! `CONN_COMP` — connected components (§III-7).
//!
//! Iterative label propagation, CRONO's formulation: "a global data
//! structure ... contains labels for each vertex", a loop "runs over all
//! the vertices ... maintaining and updating labels iteratively", the
//! loop "is statically divided amongst threads", and "barriers separate
//! functions that set and update these labels". Labels converge to the
//! minimum vertex id of each component. The three barrier-separated
//! phases per iteration (propagate / count / check) give the sinusoidal
//! active-vertex pattern of Fig. 2.

use crate::graph_view::{chunk, SharedGraph};
use crate::{costs, AlgoOutcome};
use crono_graph::{CsrGraph, VertexId};
use crono_runtime::{Machine, RunOutcome, SharedBitmap, SharedU32s, SharedU64s, ThreadCtx};

/// Result of a connected-components run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnCompOutput {
    /// `labels[v]` = smallest vertex id in `v`'s component.
    pub labels: Vec<u32>,
    /// Number of connected components.
    pub components: usize,
    /// Label-propagation iterations until convergence.
    pub iterations: u32,
}

/// Parallel connected components: graph division with barrier-separated
/// phases (Table I).
pub fn parallel<M: Machine>(machine: &M, graph: &CsrGraph) -> AlgoOutcome<ConnCompOutput> {
    let n = graph.num_vertices();
    let shared = SharedGraph::new(graph);
    let labels = SharedU32s::from_values(0..n as u32);
    let changes = SharedU64s::new(3);

    let outcome = machine.run(|ctx| {
        let tid = ctx.thread_id();
        let nthreads = ctx.num_threads();
        let mut iter = 0usize;
        loop {
            if ctx.cancelled() {
                break;
            }
            ctx.span_begin("conncomp:iter");
            changes.set(ctx, (iter + 2) % 3, 0);
            let mut local_changes = 0u64;
            let mut active = 0u64;
            // Phase 1: propagate the minimum label across every edge.
            for v in chunk(n, tid, nthreads) {
                ctx.compute(costs::LABEL_OP);
                let lv = labels.get(ctx, v);
                let mut best = lv;
                for e in shared.edge_range(ctx, v as VertexId) {
                    let u = shared.neighbor(ctx, e) as usize;
                    ctx.compute(costs::LABEL_OP);
                    let lu = labels.get(ctx, u);
                    if lu < best {
                        best = lu;
                    }
                }
                if best < lv {
                    labels.fetch_min(ctx, v, best);
                    local_changes += 1;
                    active += 1;
                }
            }
            if active > 0 {
                ctx.record_active(active);
            }
            ctx.barrier();
            // Phase 2: publish this iteration's change count.
            if local_changes > 0 {
                changes.fetch_add(ctx, (iter + 1) % 3, local_changes);
            }
            ctx.barrier();
            // Phase 3: convergence check.
            let converged = changes.get(ctx, (iter + 1) % 3) == 0;
            ctx.span_end("conncomp:iter");
            if converged {
                break;
            }
            iter += 1;
        }
        iter as u32 + 1
    });
    summarize(labels.to_vec(), outcome)
}

fn summarize(labels: Vec<u32>, outcome: RunOutcome<u32>) -> AlgoOutcome<ConnCompOutput> {
    let mut uniq: Vec<u32> = labels.clone();
    uniq.sort_unstable();
    uniq.dedup();
    AlgoOutcome {
        output: ConnCompOutput {
            components: uniq.len(),
            iterations: outcome.per_thread[0],
            labels,
        },
        report: outcome.report,
    }
}

/// The scan strategy of one `parallel_bitmap` iteration. Every thread
/// derives the mode from the shared change count, so all threads agree
/// without extra communication.
#[derive(Clone, Copy, PartialEq, Eq)]
enum CcScanMode {
    /// Scan every vertex, ignore the bitmaps (identical to [`parallel`]).
    Dense,
    /// Scan every vertex and seed the active set for the next iteration.
    DenseSeeding,
    /// Word-skipping scan of the active set only.
    Sparse,
}

/// Parallel connected components with a word-packed active set — the
/// `frontier_repr` ablation (PR 3).
///
/// The default kernel rescans every vertex each iteration. This hybrid
/// variant runs identical dense scans while labels are churning (a
/// [`SharedBitmap`] of active vertices would only add coherence traffic
/// then, since nearly everything is active), and switches to the bitmap
/// once the per-iteration change count falls below `n / 4`: one dense
/// iteration seeds the set with every vertex adjacent to a label drop,
/// and the convergence tail is then scanned sparsely with word skipping.
/// Labels still converge to the per-component minimum, so outputs match
/// [`parallel`] exactly; the iteration count may differ.
pub fn parallel_bitmap<M: Machine>(machine: &M, graph: &CsrGraph) -> AlgoOutcome<ConnCompOutput> {
    let n = graph.num_vertices();
    let shared = SharedGraph::new(graph);
    let labels = SharedU32s::from_values(0..n as u32);
    let changes = SharedU64s::new(3);
    // Ping-pong active sets, both empty: dense iterations never touch
    // them, the seeding iteration fills `next`, and every sparse
    // iteration wipes the set it scanned before reusing it.
    let active_sets = [SharedBitmap::new(n), SharedBitmap::new(n)];

    let outcome = machine.run(|ctx| {
        let tid = ctx.thread_id();
        let nthreads = ctx.num_threads();
        let mut iter = 0usize;
        let mut mode = CcScanMode::Dense;
        // Per-vertex scratch keeping the neighborhood's labels in
        // thread-local storage (registers/stack on real hardware) so
        // the activation pass does not re-read the shared label array
        // the min-pull just loaded.
        let mut nbrs: Vec<(usize, u32)> = Vec::new();
        loop {
            if ctx.cancelled() {
                break;
            }
            ctx.span_begin("conncomp:iter");
            let cur = &active_sets[iter % 2];
            let next = &active_sets[(iter + 1) % 2];
            changes.set(ctx, (iter + 2) % 3, 0);
            let mut local_changes = 0u64;
            let mut active = 0u64;
            let range = chunk(n, tid, nthreads);
            let seeding = mode != CcScanMode::Dense;
            // Phase 1: pull the minimum label into each scanned vertex.
            // Sparse mode walks only set bits (one load per word);
            // bits are not cleared per vertex — a per-bit clear is an
            // RMW on a word some other thread's activation wrote, i.e.
            // a guaranteed sharing miss — phase 2 wipes the whole set
            // word-at-a-time instead.
            let mut pos = range.start;
            loop {
                let v = match mode {
                    CcScanMode::Sparse => match cur.find_set_from(ctx, pos) {
                        Some(v) if v < range.end => v,
                        _ => break,
                    },
                    _ if pos < range.end => pos,
                    _ => break,
                };
                pos = v + 1;
                ctx.compute(costs::LABEL_OP);
                let lv = labels.get(ctx, v);
                let mut best = lv;
                nbrs.clear();
                for e in shared.edge_range(ctx, v as VertexId) {
                    let u = shared.neighbor(ctx, e) as usize;
                    ctx.compute(costs::LABEL_OP);
                    let lu = labels.get(ctx, u);
                    if seeding {
                        nbrs.push((u, lu));
                    }
                    if lu < best {
                        best = lu;
                    }
                }
                if best < lv {
                    labels.fetch_min(ctx, v, best);
                    // v's label dropped: its neighbors may adopt it next
                    // iteration. Activate only neighbors whose label was
                    // above the new one (labels are monotone decreasing,
                    // so a skipped vertex never needs v's label), and
                    // test each bit before the RMW so already-active
                    // words stay in shared state instead of bouncing
                    // between exclusive owners.
                    if seeding {
                        for &(u, lu) in &nbrs {
                            if lu > best && !next.get(ctx, u) {
                                next.set(ctx, u);
                            }
                        }
                    }
                    local_changes += 1;
                    active += 1;
                }
            }
            if active > 0 {
                ctx.record_active(active);
            }
            ctx.barrier();
            // Phase 2: publish this iteration's change count; sparse
            // iterations also wipe the scanned set wholesale (one store
            // per word) so it is empty when it becomes `next` in the
            // following iteration. Every scanner is past the phase-1
            // barrier, so nothing races the wipe.
            if local_changes > 0 {
                changes.fetch_add(ctx, (iter + 1) % 3, local_changes);
            }
            if mode == CcScanMode::Sparse {
                cur.clear_words(ctx, chunk(cur.num_words(), tid, nthreads));
            }
            ctx.barrier();
            // Phase 3: convergence check and mode transition. Every
            // thread reads the same change count, so all agree on the
            // next mode without further synchronization.
            let c = changes.get(ctx, (iter + 1) % 3);
            ctx.span_end("conncomp:iter");
            if c == 0 {
                break;
            }
            mode = match mode {
                CcScanMode::Dense if (c as usize) <= n / 4 => CcScanMode::DenseSeeding,
                CcScanMode::Dense => CcScanMode::Dense,
                CcScanMode::DenseSeeding | CcScanMode::Sparse => CcScanMode::Sparse,
            };
            iter += 1;
        }
        iter as u32 + 1
    });
    summarize(labels.to_vec(), outcome)
}

/// Out-edges each vertex links before Afforest samples component sizes.
const AFFOREST_ROUNDS: usize = 2;

/// Vertices (strided, deterministic) sampled to find the most frequent
/// component.
const AFFOREST_SAMPLES: usize = 1024;

/// Lock-free min-hooking union: joins `u`'s and `v`'s trees by CAS-ing
/// the *higher* root under the lower one, so the smallest vertex id of a
/// component is never hooked and survives as the root. Returns whether
/// this call performed the hook (for activity accounting).
fn afforest_link<C: ThreadCtx>(ctx: &mut C, comp: &SharedU32s, u: u32, v: u32) -> bool {
    let mut p1 = comp.get(ctx, u as usize);
    let mut p2 = comp.get(ctx, v as usize);
    while p1 != p2 {
        ctx.compute(costs::LABEL_OP);
        let (high, low) = if p1 > p2 { (p1, p2) } else { (p2, p1) };
        let p_high = comp.get(ctx, high as usize);
        if p_high == low {
            break;
        }
        if p_high == high && comp.compare_exchange(ctx, high as usize, high, low).is_ok() {
            return true;
        }
        // Lost the race or `high` is no longer a root: chase one
        // grandparent step and retry against the (monotone) lower label.
        let ph = comp.get(ctx, high as usize);
        p1 = comp.get(ctx, ph as usize);
        p2 = low;
    }
    false
}

/// Flattens every vertex in `range` onto its current root (pointer
/// chasing with full shortening; concurrent calls only ever write labels
/// closer to a root, so races are benign).
fn afforest_compress<C: ThreadCtx>(
    ctx: &mut C,
    comp: &SharedU32s,
    range: std::ops::Range<usize>,
) {
    for v in range {
        ctx.compute(costs::LABEL_OP);
        let mut c = comp.get(ctx, v);
        let mut cc = comp.get(ctx, c as usize);
        while c != cc {
            comp.set(ctx, v, cc);
            c = cc;
            cc = comp.get(ctx, c as usize);
        }
    }
}

/// Parallel connected components by *Afforest* (Sutton, Ben-Nun &
/// Barak; the GAP-style `afforest_cc` ablation) — subgraph sampling
/// with lock-free min-hooking union-find instead of iterative label
/// propagation.
///
/// Two *neighbor rounds* link only each vertex's first
/// [`AFFOREST_ROUNDS`] out-edges, which is enough to coalesce the giant
/// component of skewed graphs. After a compress, a deterministic strided
/// sample of [`AFFOREST_SAMPLES`] labels identifies the most frequent
/// component, and the final pass skips every vertex already inside it —
/// the bulk of the graph — linking only the remaining out-edges (and
/// in-edges via the precomputed transpose, so directed inputs are
/// covered). Min-hooking makes the smallest vertex id of each component
/// its root, so after the final compress the labels are bit-identical
/// to [`parallel`]'s; `iterations` reports the link phases executed
/// (always [`AFFOREST_ROUNDS`] + 1).
pub fn parallel_afforest<M: Machine>(machine: &M, graph: &CsrGraph) -> AlgoOutcome<ConnCompOutput> {
    let n = graph.num_vertices();
    let shared = SharedGraph::new(graph);
    let transpose = graph.transpose();
    let tshared = SharedGraph::new(&transpose);
    let comp = SharedU32s::from_values(0..n as u32);
    let majority = SharedU64s::new(1);

    let outcome = machine.run(|ctx| {
        let tid = ctx.thread_id();
        let nthreads = ctx.num_threads();
        let range = chunk(n, tid, nthreads);
        // Phase 1: neighbor rounds — link the r-th out-edge of every
        // vertex, one round at a time, then flatten.
        ctx.span_begin("conncomp:link");
        let mut hooks = 0u64;
        for r in 0..AFFOREST_ROUNDS {
            if !ctx.cancelled() {
                for v in range.clone() {
                    let er = shared.edge_range(ctx, v as VertexId);
                    if er.len() > r {
                        let u = shared.neighbor(ctx, er.start + r);
                        if afforest_link(ctx, &comp, v as u32, u) {
                            hooks += 1;
                        }
                    }
                }
            }
            ctx.barrier();
        }
        afforest_compress(ctx, &comp, range.clone());
        if hooks > 0 {
            ctx.record_active(hooks);
        }
        ctx.barrier();
        ctx.span_end("conncomp:link");
        // Phase 2: one thread samples every `stride`-th label and
        // publishes the most frequent one (sorted longest run — no
        // hashing, so the pick is deterministic).
        ctx.span_begin("conncomp:sample");
        if tid == 0 && n > 0 && !ctx.cancelled() {
            let stride = n.div_ceil(AFFOREST_SAMPLES).max(1);
            let mut samples: Vec<u32> = Vec::new();
            let mut v = 0;
            while v < n {
                ctx.compute(costs::LABEL_OP);
                samples.push(comp.get(ctx, v));
                v += stride;
            }
            samples.sort_unstable();
            let mut best = samples[0];
            let mut best_len = 0usize;
            let mut i = 0;
            while i < samples.len() {
                ctx.compute(costs::LABEL_OP);
                let mut j = i;
                while j < samples.len() && samples[j] == samples[i] {
                    j += 1;
                }
                if j - i > best_len {
                    best_len = j - i;
                    best = samples[i];
                }
                i = j;
            }
            majority.set(ctx, 0, best as u64);
        }
        ctx.barrier();
        let big = majority.get(ctx, 0) as u32;
        ctx.span_end("conncomp:sample");
        // Phase 3: vertices outside the majority component finish their
        // remaining out-edges plus their in-edges, then a final flatten
        // leaves min-id labels.
        ctx.span_begin("conncomp:final");
        let mut final_hooks = 0u64;
        if !ctx.cancelled() {
            for v in range.clone() {
                ctx.compute(costs::LABEL_OP);
                if comp.get(ctx, v) == big {
                    continue;
                }
                for e in shared.edge_range(ctx, v as VertexId).skip(AFFOREST_ROUNDS) {
                    let u = shared.neighbor(ctx, e);
                    if afforest_link(ctx, &comp, v as u32, u) {
                        final_hooks += 1;
                    }
                }
                for e in tshared.edge_range(ctx, v as VertexId) {
                    let u = tshared.neighbor(ctx, e);
                    if afforest_link(ctx, &comp, v as u32, u) {
                        final_hooks += 1;
                    }
                }
            }
        }
        if final_hooks > 0 {
            ctx.record_active(final_hooks);
        }
        ctx.barrier();
        afforest_compress(ctx, &comp, range);
        ctx.barrier();
        ctx.span_end("conncomp:final");
        AFFOREST_ROUNDS as u32 + 1
    });
    summarize(comp.to_vec(), outcome)
}

/// Sequential reference (label propagation on one thread).
///
/// # Panics
///
/// Panics if `machine.num_threads() != 1`.
pub fn sequential<M: Machine>(machine: &M, graph: &CsrGraph) -> AlgoOutcome<ConnCompOutput> {
    assert_eq!(machine.num_threads(), 1, "sequential reference needs 1 thread");
    parallel(machine, graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crono_graph::dsu::Dsu;
    use crono_graph::gen::{rmat, uniform_random, RmatParams};
    use crono_runtime::NativeMachine;

    fn dsu_labels(graph: &CsrGraph) -> Vec<u32> {
        let mut dsu = Dsu::new(graph.num_vertices());
        for v in 0..graph.num_vertices() as u32 {
            for (u, _) in graph.neighbors(v) {
                dsu.union(v, u);
            }
        }
        dsu.canonical_labels()
    }

    #[test]
    fn matches_union_find_on_connected_graph() {
        let g = uniform_random(200, 600, 4, 2);
        let out = parallel(&NativeMachine::new(4), &g);
        assert_eq!(out.output.labels, dsu_labels(&g));
        assert_eq!(out.output.components, 1);
    }

    #[test]
    fn matches_union_find_on_fragmented_graph() {
        // R-MAT with few edges leaves many isolated vertices.
        let g = rmat(8, 100, 4, RmatParams::default(), 7);
        let out = parallel(&NativeMachine::new(4), &g);
        let expected = dsu_labels(&g);
        assert_eq!(out.output.labels, expected);
        let mut uniq = expected;
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(out.output.components, uniq.len());
    }

    #[test]
    fn isolated_vertices_keep_own_label() {
        let g = CsrGraph::from_edges(4, vec![(1, 2, 1), (2, 1, 1)]);
        let out = parallel(&NativeMachine::new(2), &g);
        assert_eq!(out.output.labels, vec![0, 1, 1, 3]);
        assert_eq!(out.output.components, 3);
    }

    #[test]
    fn bitmap_variant_matches_union_find() {
        let g = uniform_random(200, 600, 4, 2);
        let expected = dsu_labels(&g);
        for threads in [1, 2, 4, 8] {
            let out = parallel_bitmap(&NativeMachine::new(threads), &g);
            assert_eq!(out.output.labels, expected, "threads={threads}");
            assert_eq!(out.output.components, 1);
        }
        // Fragmented graph: isolated vertices must keep their own label.
        let g = rmat(8, 100, 4, RmatParams::default(), 7);
        let out = parallel_bitmap(&NativeMachine::new(4), &g);
        assert_eq!(out.output.labels, dsu_labels(&g));
    }

    #[test]
    fn thread_count_invariant() {
        let g = uniform_random(128, 400, 4, 5);
        let a = parallel(&NativeMachine::new(1), &g);
        let b = parallel(&NativeMachine::new(8), &g);
        assert_eq!(a.output.labels, b.output.labels);
    }

    #[test]
    fn afforest_matches_union_find() {
        let g = uniform_random(200, 600, 4, 2);
        let expected = dsu_labels(&g);
        for threads in [1, 2, 4, 8] {
            let out = parallel_afforest(&NativeMachine::new(threads), &g);
            assert_eq!(out.output.labels, expected, "threads={threads}");
            assert_eq!(out.output.components, 1);
            assert_eq!(out.output.iterations, AFFOREST_ROUNDS as u32 + 1);
        }
    }

    #[test]
    fn afforest_on_fragmented_graph() {
        // R-MAT with few edges: many isolated vertices and tiny
        // components, so the majority-component skip covers little and
        // the final phase does the work.
        let g = rmat(8, 100, 4, RmatParams::default(), 7);
        let expected = dsu_labels(&g);
        for threads in [1, 4] {
            let out = parallel_afforest(&NativeMachine::new(threads), &g);
            assert_eq!(out.output.labels, expected, "threads={threads}");
        }
    }

    #[test]
    fn afforest_isolated_vertices_keep_own_label() {
        let g = CsrGraph::from_edges(4, vec![(1, 2, 1), (2, 1, 1)]);
        let out = parallel_afforest(&NativeMachine::new(2), &g);
        assert_eq!(out.output.labels, vec![0, 1, 1, 3]);
        assert_eq!(out.output.components, 3);
    }

    #[test]
    fn afforest_links_high_degree_tail_edges() {
        // A star whose spokes sit *after* the first AFFOREST_ROUNDS
        // out-edges of the hub: the neighbor rounds alone cannot finish
        // the component, so this exercises the final phase's `skip`.
        let mut edges = Vec::new();
        for s in 1..32u32 {
            edges.push((0, s, 1));
            edges.push((s, 0, 1));
        }
        let g = CsrGraph::from_edges(33, edges);
        let out = parallel_afforest(&NativeMachine::new(4), &g);
        assert_eq!(out.output.labels, dsu_labels(&g));
        assert_eq!(out.output.components, 2); // star + isolated vertex 32
    }

    #[test]
    fn path_graph_needs_multiple_iterations() {
        // Min-label propagation sweeps each thread's chunk in one pass
        // (ascending scan order), so a path needs roughly one iteration
        // per chunk boundary plus the convergence check.
        let mut edges = Vec::new();
        for v in 0..63u32 {
            edges.push((v, v + 1, 1));
            edges.push((v + 1, v, 1));
        }
        let g = CsrGraph::from_edges(64, edges);
        let out = parallel(&NativeMachine::new(4), &g);
        assert_eq!(out.output.components, 1);
        assert_eq!(out.output.labels, vec![0; 64]);
        assert!(out.output.iterations >= 2, "got {}", out.output.iterations);
    }
}
