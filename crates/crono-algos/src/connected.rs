//! `CONN_COMP` — connected components (§III-7).
//!
//! Iterative label propagation, CRONO's formulation: "a global data
//! structure ... contains labels for each vertex", a loop "runs over all
//! the vertices ... maintaining and updating labels iteratively", the
//! loop "is statically divided amongst threads", and "barriers separate
//! functions that set and update these labels". Labels converge to the
//! minimum vertex id of each component. The three barrier-separated
//! phases per iteration (propagate / count / check) give the sinusoidal
//! active-vertex pattern of Fig. 2.

use crate::graph_view::{chunk, SharedGraph};
use crate::{costs, AlgoOutcome};
use crono_graph::{CsrGraph, VertexId};
use crono_runtime::{Machine, SharedU32s, SharedU64s, ThreadCtx};

/// Result of a connected-components run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnCompOutput {
    /// `labels[v]` = smallest vertex id in `v`'s component.
    pub labels: Vec<u32>,
    /// Number of connected components.
    pub components: usize,
    /// Label-propagation iterations until convergence.
    pub iterations: u32,
}

/// Parallel connected components: graph division with barrier-separated
/// phases (Table I).
pub fn parallel<M: Machine>(machine: &M, graph: &CsrGraph) -> AlgoOutcome<ConnCompOutput> {
    let n = graph.num_vertices();
    let shared = SharedGraph::new(graph);
    let labels = SharedU32s::from_values(0..n as u32);
    let changes = SharedU64s::new(3);

    let outcome = machine.run(|ctx| {
        let tid = ctx.thread_id();
        let nthreads = ctx.num_threads();
        let mut iter = 0usize;
        loop {
            ctx.span_begin("conncomp:iter");
            changes.set(ctx, (iter + 2) % 3, 0);
            let mut local_changes = 0u64;
            let mut active = 0u64;
            // Phase 1: propagate the minimum label across every edge.
            for v in chunk(n, tid, nthreads) {
                ctx.compute(costs::LABEL_OP);
                let lv = labels.get(ctx, v);
                let mut best = lv;
                for e in shared.edge_range(ctx, v as VertexId) {
                    let u = shared.neighbor(ctx, e) as usize;
                    ctx.compute(costs::LABEL_OP);
                    let lu = labels.get(ctx, u);
                    if lu < best {
                        best = lu;
                    }
                }
                if best < lv {
                    labels.fetch_min(ctx, v, best);
                    local_changes += 1;
                    active += 1;
                }
            }
            if active > 0 {
                ctx.record_active(active);
            }
            ctx.barrier();
            // Phase 2: publish this iteration's change count.
            if local_changes > 0 {
                changes.fetch_add(ctx, (iter + 1) % 3, local_changes);
            }
            ctx.barrier();
            // Phase 3: convergence check.
            let converged = changes.get(ctx, (iter + 1) % 3) == 0;
            ctx.span_end("conncomp:iter");
            if converged {
                break;
            }
            iter += 1;
        }
        iter as u32 + 1
    });
    let labels = labels.to_vec();
    let mut uniq: Vec<u32> = labels.clone();
    uniq.sort_unstable();
    uniq.dedup();
    AlgoOutcome {
        output: ConnCompOutput {
            components: uniq.len(),
            iterations: outcome.per_thread[0],
            labels,
        },
        report: outcome.report,
    }
}

/// Sequential reference (label propagation on one thread).
///
/// # Panics
///
/// Panics if `machine.num_threads() != 1`.
pub fn sequential<M: Machine>(machine: &M, graph: &CsrGraph) -> AlgoOutcome<ConnCompOutput> {
    assert_eq!(machine.num_threads(), 1, "sequential reference needs 1 thread");
    parallel(machine, graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crono_graph::dsu::Dsu;
    use crono_graph::gen::{rmat, uniform_random, RmatParams};
    use crono_runtime::NativeMachine;

    fn dsu_labels(graph: &CsrGraph) -> Vec<u32> {
        let mut dsu = Dsu::new(graph.num_vertices());
        for v in 0..graph.num_vertices() as u32 {
            for (u, _) in graph.neighbors(v) {
                dsu.union(v, u);
            }
        }
        dsu.canonical_labels()
    }

    #[test]
    fn matches_union_find_on_connected_graph() {
        let g = uniform_random(200, 600, 4, 2);
        let out = parallel(&NativeMachine::new(4), &g);
        assert_eq!(out.output.labels, dsu_labels(&g));
        assert_eq!(out.output.components, 1);
    }

    #[test]
    fn matches_union_find_on_fragmented_graph() {
        // R-MAT with few edges leaves many isolated vertices.
        let g = rmat(8, 100, 4, RmatParams::default(), 7);
        let out = parallel(&NativeMachine::new(4), &g);
        let expected = dsu_labels(&g);
        assert_eq!(out.output.labels, expected);
        let mut uniq = expected;
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(out.output.components, uniq.len());
    }

    #[test]
    fn isolated_vertices_keep_own_label() {
        let g = CsrGraph::from_edges(4, vec![(1, 2, 1), (2, 1, 1)]);
        let out = parallel(&NativeMachine::new(2), &g);
        assert_eq!(out.output.labels, vec![0, 1, 1, 3]);
        assert_eq!(out.output.components, 3);
    }

    #[test]
    fn thread_count_invariant() {
        let g = uniform_random(128, 400, 4, 5);
        let a = parallel(&NativeMachine::new(1), &g);
        let b = parallel(&NativeMachine::new(8), &g);
        assert_eq!(a.output.labels, b.output.labels);
    }

    #[test]
    fn path_graph_needs_multiple_iterations() {
        // Min-label propagation sweeps each thread's chunk in one pass
        // (ascending scan order), so a path needs roughly one iteration
        // per chunk boundary plus the convergence check.
        let mut edges = Vec::new();
        for v in 0..63u32 {
            edges.push((v, v + 1, 1));
            edges.push((v + 1, v, 1));
        }
        let g = CsrGraph::from_edges(64, edges);
        let out = parallel(&NativeMachine::new(4), &g);
        assert_eq!(out.output.components, 1);
        assert_eq!(out.output.labels, vec![0; 64]);
        assert!(out.output.iterations >= 2, "got {}", out.output.iterations);
    }
}
