//! Compute-cost constants (cycles of single-issue ALU work) charged via
//! [`crono_runtime::ThreadCtx::compute`] alongside the memory accesses the
//! kernels already report. The values approximate the instruction counts
//! of the corresponding inner-loop bodies in the original C suite; they
//! matter for the Compute share of the completion-time breakdown, not for
//! correctness.

/// Relaxing one edge: add + compare + branch.
pub const RELAX: u32 = 3;

/// One binary-heap operation in sequential Dijkstra (amortized).
pub const HEAP_OP: u32 = 8;

/// Scanning one candidate in the matrix-Dijkstra min scan.
pub const MIN_SCAN: u32 = 2;

/// Visiting one vertex in a traversal (bookkeeping).
pub const VISIT: u32 = 2;

/// One intersection step in triangle counting.
pub const INTERSECT: u32 = 2;

/// One floating-point PageRank accumulation (divide + add).
pub const RANK_UPDATE: u32 = 6;

/// Evaluating one branch-and-bound tour extension.
pub const TOUR_STEP: u32 = 4;

/// Evaluating one modularity-gain candidate in Louvain.
pub const MODULARITY_EVAL: u32 = 10;

/// Per-vertex label comparison in connected components.
pub const LABEL_OP: u32 = 2;
