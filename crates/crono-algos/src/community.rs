//! `COMM` — community detection (§III-10).
//!
//! A parallel one-level Louvain pass after Lu et al., with CRONO's
//! *bounded heuristic*: modularity-maximizing vertex moves proceed for a
//! bounded number of rounds, "propagating a loss of modularity accuracy
//! with the increase in parallelism" — concurrent moves read slightly
//! stale community totals, exactly the relaxation the paper describes.
//! The graph is statically divided amongst threads; community totals are
//! maintained with atomic adds; rounds are separated by barriers.

use crate::graph_view::{chunk, SharedGraph};
use crate::{costs, AlgoOutcome};
use crono_graph::{CsrGraph, VertexId};
use crono_runtime::{LockSet, Machine, SharedF64s, SharedU32s, SharedU64s, ThreadCtx};
use std::collections::HashMap;

/// Result of a community-detection run.
#[derive(Debug, Clone, PartialEq)]
pub struct CommunityOutput {
    /// `community[v]` = community id of `v` (a vertex id).
    pub community: Vec<u32>,
    /// Modularity of the final partition.
    pub modularity: f64,
    /// Number of distinct communities.
    pub num_communities: usize,
    /// Move rounds executed.
    pub rounds: u32,
}

/// Parallel Louvain move phase: graph division with bounded rounds
/// (Table I).
///
/// # Panics
///
/// Panics if `max_rounds == 0` or the graph has no edges.
pub fn parallel<M: Machine>(
    machine: &M,
    graph: &CsrGraph,
    max_rounds: u32,
) -> AlgoOutcome<CommunityOutput> {
    assert!(max_rounds > 0, "need at least one round");
    let n = graph.num_vertices();
    let m2 = graph.total_weight();
    assert!(m2 > 0, "community detection needs a weighted edge");
    let shared = SharedGraph::new(graph);
    let community = SharedU32s::from_values(0..n as u32);
    // Weighted degree of each community (starts as each vertex alone).
    let totals = SharedU64s::from_values(
        (0..n as VertexId).map(|v| graph.neighbors(v).map(|(_, w)| w as u64).sum()),
    );
    let moves_made = SharedU64s::new(3);
    let locks = LockSet::new(n.min(4096));
    // The running global modularity delta — the algorithm "terminates
    // when the modularity can not be increased any further", so every
    // accepted move contributes its gain to one shared accumulator.
    let global_gain = SharedF64s::filled(1, 0.0);

    let outcome = machine.run(|ctx| {
        let tid = ctx.thread_id();
        let nthreads = ctx.num_threads();
        let mut round = 0usize;
        loop {
            if ctx.cancelled() {
                break;
            }
            moves_made.set(ctx, (round + 2) % 3, 0);
            let mut local_moves = 0u64;
            for v in chunk(n, tid, nthreads) {
                let vd: u64 = {
                    let r = shared.edge_range(ctx, v as VertexId);
                    let mut sum = 0u64;
                    for e in r {
                        let (_, w) = shared.edge(ctx, e);
                        sum += w as u64;
                    }
                    sum
                };
                if vd == 0 {
                    continue;
                }
                let cur = community.get(ctx, v);
                // Tally edge weight from v into each neighbor community.
                let mut weights: HashMap<u32, u64> = HashMap::new();
                for e in shared.edge_range(ctx, v as VertexId) {
                    let (u, w) = shared.edge(ctx, e);
                    let cu = community.get(ctx, u as usize);
                    *weights.entry(cu).or_insert(0) += w as u64;
                }
                // Gain of joining community c (Louvain one-level):
                //   w(v, c) / m  −  deg(v) · tot(c) / (2 m²)
                // evaluated with tot excluding v when c == cur.
                let gain = |ctx: &mut <M as Machine>::Ctx,
                            c: u32,
                            w_vc: u64,
                            totals: &SharedU64s|
                 -> f64 {
                    ctx.compute(costs::MODULARITY_EVAL);
                    let mut tot = totals.get(ctx, c as usize) as f64;
                    if c == cur {
                        tot -= vd as f64;
                    }
                    w_vc as f64 / m2 as f64 - (vd as f64) * tot / (m2 as f64 * m2 as f64)
                };
                let stay = gain(ctx, cur, weights.get(&cur).copied().unwrap_or(0), &totals);
                let mut best_c = cur;
                let mut best_gain = stay;
                for (&c, &w_vc) in &weights {
                    if c == cur {
                        continue;
                    }
                    let g = gain(ctx, c, w_vc, &totals);
                    if g > best_gain + 1e-12 {
                        best_gain = g;
                        best_c = c;
                    }
                }
                if best_c != cur {
                    // Lock both communities' totals (stripe-ordered to
                    // avoid deadlock), as the parallel Louvain of Lu et
                    // al. does for its fine-grain updates.
                    let sa = cur as usize % locks.len();
                    let sb = best_c as usize % locks.len();
                    ctx.lock(&locks, sa.min(sb));
                    if sa != sb {
                        ctx.lock(&locks, sa.max(sb));
                    }
                    community.set(ctx, v, best_c);
                    totals.fetch_add(ctx, cur as usize, (vd).wrapping_neg());
                    totals.fetch_add(ctx, best_c as usize, vd);
                    if sa != sb {
                        ctx.unlock(&locks, sa.max(sb));
                    }
                    ctx.unlock(&locks, sa.min(sb));
                    global_gain.fetch_add(ctx, 0, best_gain - stay);
                    local_moves += 1;
                }
            }
            if local_moves > 0 {
                ctx.record_active(local_moves);
                moves_made.fetch_add(ctx, (round + 1) % 3, local_moves);
            }
            ctx.barrier();
            let total_moves = moves_made.get(ctx, (round + 1) % 3);
            round += 1;
            if total_moves == 0 || round as u32 >= max_rounds {
                break;
            }
        }
        round as u32
    });
    let community_vec = community.to_vec();
    let mut uniq = community_vec.clone();
    uniq.sort_unstable();
    uniq.dedup();
    AlgoOutcome {
        output: CommunityOutput {
            modularity: modularity(graph, &community_vec),
            num_communities: uniq.len(),
            rounds: outcome.per_thread[0],
            community: community_vec,
        },
        report: outcome.report,
    }
}

/// Sequential reference.
///
/// # Panics
///
/// Panics if `machine.num_threads() != 1`.
pub fn sequential<M: Machine>(
    machine: &M,
    graph: &CsrGraph,
    max_rounds: u32,
) -> AlgoOutcome<CommunityOutput> {
    assert_eq!(machine.num_threads(), 1, "sequential reference needs 1 thread");
    parallel(machine, graph, max_rounds)
}

/// Newman modularity of a partition (untracked oracle):
/// `Q = Σ_c [ w_in(c)/2m − (tot(c)/2m)² ]`, where `w_in` sums the
/// directed intra-community edge weights and `tot` the community's
/// weighted degree.
pub fn modularity(graph: &CsrGraph, community: &[u32]) -> f64 {
    let m2 = graph.total_weight() as f64;
    if m2 == 0.0 {
        return 0.0;
    }
    let n = graph.num_vertices();
    let mut tot: HashMap<u32, f64> = HashMap::new();
    let mut w_in: HashMap<u32, f64> = HashMap::new();
    for v in 0..n as VertexId {
        let c = community[v as usize];
        for (u, w) in graph.neighbors(v) {
            *tot.entry(c).or_insert(0.0) += w as f64;
            if c == community[u as usize] {
                *w_in.entry(c).or_insert(0.0) += w as f64;
            }
        }
    }
    tot.iter()
        .map(|(c, t)| {
            let win = w_in.get(c).copied().unwrap_or(0.0);
            win / m2 - (t / m2) * (t / m2)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crono_graph::gen::uniform_random;
    use crono_graph::EdgeList;
    use crono_runtime::NativeMachine;

    /// Two K5 cliques joined by a single bridge edge.
    fn two_cliques() -> CsrGraph {
        let mut el = EdgeList::new(10);
        for base in [0u32, 5] {
            for a in 0..5 {
                for b in a + 1..5 {
                    el.push_undirected(base + a, base + b, 10).unwrap();
                }
            }
        }
        el.push_undirected(4, 5, 1).unwrap();
        el.into_csr()
    }

    #[test]
    fn finds_the_two_cliques() {
        let g = two_cliques();
        let out = sequential(&NativeMachine::new(1), &g, 16);
        let c = &out.output.community;
        for v in 1..5 {
            assert_eq!(c[v], c[0], "first clique together");
        }
        for v in 6..10 {
            assert_eq!(c[v], c[5], "second clique together");
        }
        assert!(out.output.modularity > 0.3, "Q = {}", out.output.modularity);
    }

    #[test]
    fn modularity_improves_over_singletons() {
        let g = two_cliques();
        let singleton: Vec<u32> = (0..10).collect();
        let q0 = modularity(&g, &singleton);
        let out = parallel(&NativeMachine::new(4), &g, 16);
        assert!(
            out.output.modularity > q0,
            "{} should beat singleton {q0}",
            out.output.modularity
        );
    }

    #[test]
    fn modularity_is_bounded() {
        let g = uniform_random(100, 300, 8, 3);
        let out = parallel(&NativeMachine::new(4), &g, 8);
        assert!(out.output.modularity >= -0.5 && out.output.modularity <= 1.0);
        assert!(out.output.num_communities >= 1);
        assert!(out.output.rounds <= 8);
    }

    #[test]
    fn all_in_one_community_has_zero_modularity() {
        let g = two_cliques();
        let all_zero = vec![0u32; 10];
        assert!(modularity(&g, &all_zero).abs() < 1e-12);
    }

    #[test]
    fn bounded_rounds_respected() {
        let g = uniform_random(64, 200, 4, 5);
        let out = parallel(&NativeMachine::new(2), &g, 1);
        assert_eq!(out.output.rounds, 1);
    }
}
