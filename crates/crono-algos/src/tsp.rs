//! `TSP` — traveling salesman (§III-6).
//!
//! Exact branch-and-bound, parallelized exactly as the paper describes:
//! "branches are designated at static time, while the global bound is
//! maintained dynamically via an atomic lock". Tour prefixes of depth 2–3
//! form the static branches, assigned round-robin to threads at static
//! time; each thread searches its branches depth-first, prunes against
//! the shared global bound, and publishes improvements under the bound
//! lock.

use crate::{costs, AlgoOutcome};
use crono_graph::gen::TspInstance;
use crono_runtime::{LockSet, Machine, ReadArray, SharedU64s, ThreadCtx};
use crono_runtime::Mutex;

/// Result of a TSP run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TspOutput {
    /// Length of the optimal closed tour.
    pub best_len: u64,
    /// One optimal tour (city visit order, starting at city 0).
    pub tour: Vec<usize>,
}

/// Admissible lower bound: cost so far + each unvisited city's (and the
/// current city's) cheapest outgoing edge.
fn lower_bound<C: ThreadCtx>(
    ctx: &mut C,
    min_out: &[u64],
    n: usize,
    cost: u64,
    visited_mask: u64,
    current: usize,
) -> u64 {
    let mut bound = cost + min_out[current];
    for city in 0..n {
        ctx.compute(1);
        if visited_mask & (1 << city) == 0 {
            bound += min_out[city];
        }
    }
    bound
}

struct SearchState<'a, 'b> {
    dist: &'a ReadArray<'b, u32>,
    n: usize,
    min_out: Vec<u64>,
    best: &'a SharedU64s,
    best_tour: &'a Mutex<Vec<usize>>,
    bound_lock: &'a LockSet,
}

impl SearchState<'_, '_> {
    fn search<C: ThreadCtx>(
        &self,
        ctx: &mut C,
        path: &mut Vec<usize>,
        visited_mask: u64,
        cost: u64,
    ) {
        let current = *path.last().expect("path never empty");
        if path.len() == self.n {
            let total = cost + self.dist.get(ctx, current * self.n) as u64;
            // Publish under the global-bound lock (paper: atomic lock).
            // The host mutex guard spans the whole modeled
            // lock..unlock window, so the simulated `lock_hold` span
            // and the real mutual exclusion cover the same region.
            ctx.lock(self.bound_lock, 0);
            {
                let mut tour = self.best_tour.lock();
                if total < self.best.get(ctx, 0) {
                    self.best.set(ctx, 0, total);
                    *tour = path.clone();
                }
            }
            ctx.unlock(self.bound_lock, 0);
            return;
        }
        // Prune against the shared global bound.
        let bound = lower_bound(ctx, &self.min_out, self.n, cost, visited_mask, current);
        if bound >= self.best.get(ctx, 0) {
            return;
        }
        ctx.record_active((self.n - path.len()) as u64);
        for next in 1..self.n {
            if visited_mask & (1 << next) != 0 {
                continue;
            }
            ctx.compute(costs::TOUR_STEP);
            let step = self.dist.get(ctx, current * self.n + next) as u64;
            let ncost = cost + step;
            if ncost >= self.best.get(ctx, 0) {
                continue;
            }
            path.push(next);
            self.search(ctx, path, visited_mask | (1 << next), ncost);
            path.pop();
        }
    }
}

fn min_out(instance: &TspInstance) -> Vec<u64> {
    let n = instance.num_cities();
    (0..n)
        .map(|a| {
            (0..n)
                .filter(|&b| b != a)
                .map(|b| instance.distance(a, b) as u64)
                .min()
                .unwrap_or(0)
        })
        .collect()
}

/// Static branch prefixes: depth-3 tours `0 → a → b` when enough cities
/// exist, else depth-2.
fn branch_prefixes(n: usize) -> Vec<Vec<usize>> {
    let mut prefixes = Vec::new();
    if n > 4 {
        for a in 1..n {
            for b in 1..n {
                if b != a {
                    prefixes.push(vec![0, a, b]);
                }
            }
        }
    } else {
        for a in 1..n {
            prefixes.push(vec![0, a]);
        }
    }
    prefixes
}

/// Greedy nearest-neighbor tour — used to seed the global bound so every
/// branch starts with meaningful pruning ("thresholds are defined by
/// heuristics", §IV-A), and useful on its own as a fast approximation.
///
/// # Panics
///
/// Panics if the instance has fewer than 2 cities.
pub fn greedy_tour(instance: &TspInstance) -> (Vec<usize>, u64) {
    let n = instance.num_cities();
    assert!(n >= 2, "need at least 2 cities");
    let mut tour = vec![0usize];
    let mut visited = vec![false; n];
    visited[0] = true;
    while tour.len() < n {
        let here = *tour.last().expect("tour non-empty");
        let next = (0..n)
            .filter(|&c| !visited[c])
            .min_by_key(|&c| instance.distance(here, c))
            .expect("unvisited city exists");
        visited[next] = true;
        tour.push(next);
    }
    let len = instance.tour_length(&tour);
    (tour, len)
}

/// Parallel branch-and-bound TSP (Table I).
///
/// # Panics
///
/// Panics if the instance has fewer than 3 or more than 63 cities.
pub fn parallel<M: Machine>(machine: &M, instance: &TspInstance) -> AlgoOutcome<TspOutput> {
    let n = instance.num_cities();
    assert!((3..=63).contains(&n), "tsp supports 3..=63 cities");
    let dist = ReadArray::new(instance.distance_matrix());
    let best = SharedU64s::new(1);
    // Seed the bound with the greedy tour (heuristic threshold, §IV-A).
    let (seed_tour, seed_len) = greedy_tour(instance);
    best.set_plain(0, seed_len);
    let best_tour = Mutex::new(seed_tour);
    let bound_lock = LockSet::new(1);
    let prefixes = branch_prefixes(n);
    let min_out = min_out(instance);

    let outcome = machine.run(|ctx| {
        let state = SearchState {
            dist: &dist,
            n,
            min_out: min_out.clone(),
            best: &best,
            best_tour: &best_tour,
            bound_lock: &bound_lock,
        };
        // Branches designated at static time: round-robin over threads.
        let mut b = ctx.thread_id();
        while b < prefixes.len() {
            if ctx.cancelled() {
                break;
            }
            let mut path = prefixes[b].clone();
            let mut mask = 0u64;
            let mut cost = 0u64;
            for w in path.windows(2) {
                cost += dist.get(ctx, w[0] * n + w[1]) as u64;
            }
            for &c in &path {
                mask |= 1 << c;
            }
            ctx.record_active((prefixes.len() - b) as u64);
            if cost < best.get(ctx, 0) {
                state.search(ctx, &mut path, mask, cost);
            }
            b += ctx.num_threads();
        }
    });
    AlgoOutcome {
        output: TspOutput {
            best_len: best.get_plain(0),
            tour: best_tour.into_inner(),
        },
        report: outcome.report,
    }
}

/// Lock-free search state: the bound is published with `fetch_min` and
/// the tour under a seqlock-style version word — no [`LockSet`] at all,
/// so traces of this variant contain zero `lock_hold` spans.
struct LockfreeState<'a, 'b> {
    dist: &'a ReadArray<'b, u32>,
    n: usize,
    min_out: Vec<u64>,
    /// `best[0]` is the global bound, monotonically lowered via CAS.
    best: &'a SharedU64s,
    /// Seqlock version word: even = stable, odd = writer active.
    tour_version: &'a SharedU64s,
    /// The tour matching the last published bound (`n` slots).
    tour_slots: &'a SharedU64s,
}

impl LockfreeState<'_, '_> {
    /// Publishes `path` (length `total`) under the seqlock, unless a
    /// strictly better bound landed in the meantime.
    fn publish_tour<C: ThreadCtx>(&self, ctx: &mut C, path: &[usize], total: u64) {
        loop {
            let v = self.tour_version.get(ctx, 0);
            if v % 2 == 1 {
                // A writer is mid-publication; model the retry spin.
                ctx.compute(1);
                continue;
            }
            if self.tour_version.compare_exchange(ctx, 0, v, v + 1).is_err() {
                continue;
            }
            // We own the seqlock. Only write if our bound is still THE
            // bound — a concurrent thread may have beaten `total`
            // between our fetch_min and now, and its tour must win.
            if self.best.get(ctx, 0) == total {
                for (i, &city) in path.iter().enumerate() {
                    self.tour_slots.set(ctx, i, city as u64);
                }
            }
            self.tour_version.set(ctx, 0, v + 2);
            return;
        }
    }

    fn search<C: ThreadCtx>(
        &self,
        ctx: &mut C,
        path: &mut Vec<usize>,
        visited_mask: u64,
        cost: u64,
    ) {
        let current = *path.last().expect("path never empty");
        if path.len() == self.n {
            let total = cost + self.dist.get(ctx, current * self.n) as u64;
            // Lock-free publication: a plain load screens out tours that
            // cannot improve the bound (most leaves), so only genuine
            // improvements pay the atomic min on the bound line. The
            // screen is safe: if `total >= bound` the `fetch_min` would
            // have been a no-op anyway, and a concurrent improvement
            // between screen and CAS just makes `fetch_min` return
            // `old <= total`, suppressing the publish exactly as it
            // should. Only a strict improvement wins the right to
            // publish the tour (ties keep the incumbent), so at most
            // one thread per bound value enters the seqlock.
            if total < self.best.get(ctx, 0) {
                let old = self.best.fetch_min(ctx, 0, total);
                if total < old {
                    self.publish_tour(ctx, path, total);
                }
            }
            return;
        }
        // Prune against a plain load of the bound — stale reads only
        // delay pruning, never break correctness (the bound is
        // monotone non-increasing).
        let bound = lower_bound(ctx, &self.min_out, self.n, cost, visited_mask, current);
        if bound >= self.best.get(ctx, 0) {
            return;
        }
        ctx.record_active((self.n - path.len()) as u64);
        for next in 1..self.n {
            if visited_mask & (1 << next) != 0 {
                continue;
            }
            ctx.compute(costs::TOUR_STEP);
            let step = self.dist.get(ctx, current * self.n + next) as u64;
            let ncost = cost + step;
            if ncost >= self.best.get(ctx, 0) {
                continue;
            }
            path.push(next);
            self.search(ctx, path, visited_mask | (1 << next), ncost);
            path.pop();
        }
    }
}

/// Parallel branch-and-bound TSP with lock-free bound publication
/// ([`Ablation::LockfreeBound`](crate::Ablation::LockfreeBound)).
///
/// Same static round-robin branches as [`parallel`], but the global
/// bound is maintained without the paper's atomic lock: threads prune
/// against plain loads of the bound word, publish improvements with a
/// single `fetch_min`, and store the winning tour under a seqlock-style
/// version check. Traces of this variant contain **zero** `lock_hold`
/// spans. Branch-and-bound prunes depend on bound arrival order, so
/// simulated *timing* varies with schedule — but the optimal length and
/// a matching tour are schedule-independent.
///
/// # Panics
///
/// Panics if the instance has fewer than 3 or more than 63 cities.
pub fn parallel_lockfree<M: Machine>(
    machine: &M,
    instance: &TspInstance,
) -> AlgoOutcome<TspOutput> {
    let n = instance.num_cities();
    assert!((3..=63).contains(&n), "tsp supports 3..=63 cities");
    let dist = ReadArray::new(instance.distance_matrix());
    let best = SharedU64s::new(1);
    let tour_version = SharedU64s::new(1);
    let tour_slots = SharedU64s::new(n);
    // Seed bound and tour with the greedy heuristic (§IV-A), so the
    // slots are valid even if no branch improves on it.
    let (seed_tour, seed_len) = greedy_tour(instance);
    best.set_plain(0, seed_len);
    for (i, &city) in seed_tour.iter().enumerate() {
        tour_slots.set_plain(i, city as u64);
    }
    let prefixes = branch_prefixes(n);
    let min_out = min_out(instance);

    let outcome = machine.run(|ctx| {
        let state = LockfreeState {
            dist: &dist,
            n,
            min_out: min_out.clone(),
            best: &best,
            tour_version: &tour_version,
            tour_slots: &tour_slots,
        };
        let mut b = ctx.thread_id();
        while b < prefixes.len() {
            if ctx.cancelled() {
                break;
            }
            let mut path = prefixes[b].clone();
            let mut mask = 0u64;
            let mut cost = 0u64;
            for w in path.windows(2) {
                cost += dist.get(ctx, w[0] * n + w[1]) as u64;
            }
            for &c in &path {
                mask |= 1 << c;
            }
            ctx.record_active((prefixes.len() - b) as u64);
            if cost < best.get(ctx, 0) {
                state.search(ctx, &mut path, mask, cost);
            }
            b += ctx.num_threads();
        }
    });
    AlgoOutcome {
        output: TspOutput {
            best_len: best.get_plain(0),
            // Workers have joined, so the seqlock is even and stable;
            // the slots hold the tour of the final bound.
            tour: (0..n).map(|i| tour_slots.get_plain(i) as usize).collect(),
        },
        report: outcome.report,
    }
}

/// Sequential reference.
///
/// # Panics
///
/// Panics if `machine.num_threads() != 1`.
pub fn sequential<M: Machine>(machine: &M, instance: &TspInstance) -> AlgoOutcome<TspOutput> {
    assert_eq!(machine.num_threads(), 1, "sequential reference needs 1 thread");
    parallel(machine, instance)
}

/// Brute-force permutation oracle (untracked; factorial time — keep
/// `n ≤ 9`).
pub fn reference(instance: &TspInstance) -> u64 {
    let n = instance.num_cities();
    let mut cities: Vec<usize> = (1..n).collect();
    let mut best = u64::MAX;
    permute(&mut cities, 0, &mut |perm| {
        let mut order = vec![0];
        order.extend_from_slice(perm);
        best = best.min(instance.tour_length(&order));
    });
    best
}

fn permute(items: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crono_graph::gen::tsp_cities;
    use crono_runtime::NativeMachine;

    #[test]
    fn matches_brute_force() {
        for seed in 0..3 {
            let inst = tsp_cities(8, seed);
            let out = parallel(&NativeMachine::new(4), &inst);
            assert_eq!(out.output.best_len, reference(&inst), "seed {seed}");
        }
    }

    #[test]
    fn tour_is_valid_permutation_of_matching_length() {
        let inst = tsp_cities(9, 5);
        let out = parallel(&NativeMachine::new(4), &inst);
        let tour = &out.output.tour;
        assert_eq!(tour.len(), 9);
        let mut sorted = tour.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..9).collect::<Vec<_>>());
        assert_eq!(inst.tour_length(tour), out.output.best_len);
    }

    #[test]
    fn greedy_tour_is_valid_and_no_better_than_optimal() {
        let inst = tsp_cities(9, 3);
        let (tour, len) = greedy_tour(&inst);
        let mut sorted = tour.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..9).collect::<Vec<_>>());
        assert_eq!(inst.tour_length(&tour), len);
        assert!(len >= reference(&inst));
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let inst = tsp_cities(10, 7);
        let seq = sequential(&NativeMachine::new(1), &inst);
        let par = parallel(&NativeMachine::new(8), &inst);
        assert_eq!(seq.output.best_len, par.output.best_len);
    }

    #[test]
    fn lockfree_variant_matches_brute_force() {
        for seed in 0..3 {
            let inst = tsp_cities(8, seed);
            for threads in [1, 4, 8] {
                let out = parallel_lockfree(&NativeMachine::new(threads), &inst);
                assert_eq!(
                    out.output.best_len,
                    reference(&inst),
                    "seed {seed} threads {threads}"
                );
                let mut sorted = out.output.tour.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..8).collect::<Vec<_>>(), "tour is a permutation");
                assert_eq!(
                    inst.tour_length(&out.output.tour),
                    out.output.best_len,
                    "published tour matches the published bound"
                );
            }
        }
    }

    #[test]
    fn lockfree_handles_unimprovable_greedy_seed() {
        // 3 cities: every tour has the same length, so no branch ever
        // beats the greedy seed and the seeded slots must survive.
        let inst = tsp_cities(3, 2);
        let out = parallel_lockfree(&NativeMachine::new(2), &inst);
        assert_eq!(out.output.best_len, inst.tour_length(&[0, 1, 2]));
        assert_eq!(inst.tour_length(&out.output.tour), out.output.best_len);
    }

    #[test]
    fn triangle_instance_is_trivial() {
        let inst = tsp_cities(3, 1);
        let out = parallel(&NativeMachine::new(2), &inst);
        assert_eq!(
            out.output.best_len,
            inst.tour_length(&[0, 1, 2]),
            "all 3-city tours have equal length"
        );
    }

    #[test]
    #[should_panic(expected = "3..=63")]
    fn oversized_instance_rejected() {
        let inst = tsp_cities(64, 0);
        parallel(&NativeMachine::new(1), &inst);
    }
}
