//! `PageRank` — (§III-9, Eq. 1).
//!
//! Per-iteration implementation "based on [Satish et al.], with no
//! approximations": the graph is statically divided amongst threads;
//! every vertex pushes `PR(v)/degree(v)` to its neighbors' accumulators
//! under striped per-vertex locks ("updates for page ranks done via
//! atomic locks, as threads may converge on common neighbors"); a barrier
//! separates the push phase from the apply phase that computes
//! `PR' = r + (1 − r) · Σ`.

use crate::graph_view::{chunk, SharedGraph};
use crate::{costs, AlgoOutcome};
use crono_graph::{CsrGraph, VertexId};
use crono_runtime::{LockSet, Machine, ReadArray, RunError, RunOptions, SharedF64s, ThreadCtx};

/// The paper's `r`: probability of a random page visit.
pub const DAMPING_R: f64 = 0.15;

/// Result of a PageRank run.
#[derive(Debug, Clone, PartialEq)]
pub struct PageRankOutput {
    /// Final per-vertex ranks.
    pub ranks: Vec<f64>,
    /// Iterations performed.
    pub iterations: u32,
}

/// Parallel PageRank: graph division with atomic rank updates (Table I).
///
/// Runs exactly `iterations` rounds of Eq. 1.
///
/// # Panics
///
/// Panics if `iterations == 0`.
pub fn parallel<M: Machine>(
    machine: &M,
    graph: &CsrGraph,
    iterations: u32,
) -> AlgoOutcome<PageRankOutput> {
    assert!(iterations > 0, "need at least one iteration");
    let n = graph.num_vertices();
    let shared = SharedGraph::new(graph);
    let ranks = SharedF64s::filled(n, 1.0 / n as f64);
    let sums = SharedF64s::filled(n, 0.0);
    let locks = LockSet::new(n.min(4096));

    let outcome = machine.run(|ctx| {
        let tid = ctx.thread_id();
        let nthreads = ctx.num_threads();
        for _ in 0..iterations {
            if ctx.cancelled() {
                break;
            }
            ctx.span_begin("pagerank:iter");
            // Push phase: scatter contributions to neighbors.
            let mut active = 0u64;
            for v in chunk(n, tid, nthreads) {
                let r = shared.edge_range(ctx, v as VertexId);
                let degree = r.len();
                if degree == 0 {
                    continue;
                }
                active += 1;
                ctx.compute(costs::RANK_UPDATE);
                let contribution = ranks.get(ctx, v) / degree as f64;
                for e in r {
                    let u = shared.neighbor(ctx, e) as usize;
                    ctx.compute(costs::RANK_UPDATE);
                    // "updates for page ranks done via atomic locks"
                    ctx.lock_for(&locks, u);
                    let s = sums.get(ctx, u);
                    sums.set(ctx, u, s + contribution);
                    ctx.unlock_for(&locks, u);
                }
            }
            if active > 0 {
                ctx.record_active(active);
            }
            ctx.barrier();
            // Apply phase: Eq. 1, then reset the accumulators.
            for v in chunk(n, tid, nthreads) {
                ctx.compute(costs::RANK_UPDATE);
                let s = sums.get(ctx, v);
                ranks.set(ctx, v, DAMPING_R + (1.0 - DAMPING_R) * s);
                sums.set(ctx, v, 0.0);
            }
            ctx.barrier();
            ctx.span_end("pagerank:iter");
        }
    });
    AlgoOutcome {
        output: PageRankOutput {
            ranks: ranks.to_vec(),
            iterations,
        },
        report: outcome.report,
    }
}

/// Parallel PageRank with lock-free CAS accumulation — the
/// `pagerank_update` ablation (PR 3).
///
/// Identical to [`parallel`] except the striped-lock critical section
/// around each neighbor accumulator is replaced by a single
/// [`SharedF64s::fetch_add`] CAS loop (the GARDENIA-style atomic
/// update). Floating-point addition order may differ from the locked
/// version, so ranks match the reference to tolerance, not bitwise.
///
/// # Panics
///
/// Panics if `iterations == 0`.
pub fn parallel_cas<M: Machine>(
    machine: &M,
    graph: &CsrGraph,
    iterations: u32,
) -> AlgoOutcome<PageRankOutput> {
    assert!(iterations > 0, "need at least one iteration");
    let n = graph.num_vertices();
    let shared = SharedGraph::new(graph);
    let ranks = SharedF64s::filled(n, 1.0 / n as f64);
    let sums = SharedF64s::filled(n, 0.0);

    let outcome = machine.run(|ctx| {
        let tid = ctx.thread_id();
        let nthreads = ctx.num_threads();
        for _ in 0..iterations {
            if ctx.cancelled() {
                break;
            }
            ctx.span_begin("pagerank:iter");
            let mut active = 0u64;
            for v in chunk(n, tid, nthreads) {
                let r = shared.edge_range(ctx, v as VertexId);
                let degree = r.len();
                if degree == 0 {
                    continue;
                }
                active += 1;
                ctx.compute(costs::RANK_UPDATE);
                let contribution = ranks.get(ctx, v) / degree as f64;
                for e in r {
                    let u = shared.neighbor(ctx, e) as usize;
                    ctx.compute(costs::RANK_UPDATE);
                    // One CAS-loop RMW instead of lock / load / store /
                    // unlock: no convoy on shared high-degree neighbors.
                    sums.fetch_add(ctx, u, contribution);
                }
            }
            if active > 0 {
                ctx.record_active(active);
            }
            ctx.barrier();
            for v in chunk(n, tid, nthreads) {
                ctx.compute(costs::RANK_UPDATE);
                let s = sums.get(ctx, v);
                ranks.set(ctx, v, DAMPING_R + (1.0 - DAMPING_R) * s);
                sums.set(ctx, v, 0.0);
            }
            ctx.barrier();
            ctx.span_end("pagerank:iter");
        }
    });
    AlgoOutcome {
        output: PageRankOutput {
            ranks: ranks.to_vec(),
            iterations,
        },
        report: outcome.report,
    }
}

/// Parallel PageRank in *pull* mode over the transpose — the serving
/// engine's snapshot builder (PR 10).
///
/// Each thread owns a static chunk of vertices and gathers
/// `PR(v)/degree(v)` from its in-neighbors into a private accumulator:
/// no locks, no CAS, and — because [`CsrGraph::from_edges`] sorts
/// adjacency lists — the floating-point additions for a vertex happen in
/// ascending in-neighbor order, which is exactly the order the
/// push-mode [`reference`] applies them in. The ranks are therefore
/// **bitwise identical** to `reference(graph, iterations)` at every
/// thread count, so a cache keyed on the snapshot stays byte-stable no
/// matter which machine built it. The transpose and the out-degree
/// table are data preparation built outside the timed region, like the
/// light/heavy split in [`crate::sssp::parallel_delta`].
///
/// # Panics
///
/// Panics if `iterations == 0`.
pub fn parallel_pull<M: Machine>(
    machine: &M,
    graph: &CsrGraph,
    iterations: u32,
) -> AlgoOutcome<PageRankOutput> {
    match try_parallel_pull(machine, &RunOptions::default(), graph, iterations) {
        Ok(outcome) => outcome,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`parallel_pull`]: the serving engine builds snapshots
/// through this so a faulted or hung machine surfaces as a
/// [`RunError`] (cancelling the consuming queries) instead of
/// unwinding the whole batch.
///
/// # Errors
///
/// Whatever [`Machine::try_run_with`] reports: a worker panic, the
/// watchdog timeout, or an unroutable mesh.
///
/// # Panics
///
/// Panics if `iterations == 0`.
pub fn try_parallel_pull<M: Machine>(
    machine: &M,
    opts: &RunOptions,
    graph: &CsrGraph,
    iterations: u32,
) -> Result<AlgoOutcome<PageRankOutput>, RunError> {
    assert!(iterations > 0, "need at least one iteration");
    let n = graph.num_vertices();
    let transpose_edges: Vec<(VertexId, VertexId, u32)> = (0..n as VertexId)
        .flat_map(|v| graph.neighbors(v).map(move |(u, w)| (u, v, w)))
        .collect();
    let transpose = CsrGraph::from_edges(n, transpose_edges);
    let shared_t = SharedGraph::new(&transpose);
    let degrees: Vec<u32> = (0..n as VertexId).map(|v| graph.degree(v) as u32).collect();
    let degrees = ReadArray::new(&degrees);
    let ranks = SharedF64s::filled(n, 1.0 / n as f64);
    let sums = SharedF64s::filled(n, 0.0);

    let outcome = machine.try_run_with(opts, |ctx| {
        let tid = ctx.thread_id();
        let nthreads = ctx.num_threads();
        for _ in 0..iterations {
            if ctx.cancelled() {
                break;
            }
            ctx.span_begin("pagerank:iter");
            // Pull phase: gather in ascending in-neighbor order.
            let mut active = 0u64;
            for u in chunk(n, tid, nthreads) {
                let r = shared_t.edge_range(ctx, u as VertexId);
                if r.is_empty() {
                    continue;
                }
                active += 1;
                let mut sum = 0.0f64;
                for e in r {
                    let v = shared_t.neighbor(ctx, e) as usize;
                    ctx.compute(costs::RANK_UPDATE);
                    sum += ranks.get(ctx, v) / degrees.get(ctx, v) as f64;
                }
                sums.set(ctx, u, sum);
            }
            if active > 0 {
                ctx.record_active(active);
            }
            ctx.barrier();
            for v in chunk(n, tid, nthreads) {
                ctx.compute(costs::RANK_UPDATE);
                let s = sums.get(ctx, v);
                ranks.set(ctx, v, DAMPING_R + (1.0 - DAMPING_R) * s);
                sums.set(ctx, v, 0.0);
            }
            ctx.barrier();
            ctx.span_end("pagerank:iter");
        }
    })?;
    Ok(AlgoOutcome {
        output: PageRankOutput {
            ranks: ranks.to_vec(),
            iterations,
        },
        report: outcome.report,
    })
}

/// Sequential reference.
///
/// # Panics
///
/// Panics if `machine.num_threads() != 1` or `iterations == 0`.
pub fn sequential<M: Machine>(
    machine: &M,
    graph: &CsrGraph,
    iterations: u32,
) -> AlgoOutcome<PageRankOutput> {
    assert_eq!(machine.num_threads(), 1, "sequential reference needs 1 thread");
    parallel(machine, graph, iterations)
}

/// Untracked oracle implementing Eq. 1 directly.
pub fn reference(graph: &CsrGraph, iterations: u32) -> Vec<f64> {
    let n = graph.num_vertices();
    let mut ranks = vec![1.0 / n as f64; n];
    for _ in 0..iterations {
        let mut sums = vec![0.0f64; n];
        for v in 0..n as VertexId {
            let degree = graph.degree(v);
            if degree == 0 {
                continue;
            }
            let contribution = ranks[v as usize] / degree as f64;
            for (u, _) in graph.neighbors(v) {
                sums[u as usize] += contribution;
            }
        }
        for v in 0..n {
            ranks[v] = DAMPING_R + (1.0 - DAMPING_R) * sums[v];
        }
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crono_graph::gen::{rmat, uniform_random, RmatParams};
    use crono_runtime::NativeMachine;

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < 1e-9, "rank {i}: {x} vs {y}");
        }
    }

    #[test]
    fn matches_reference() {
        let g = uniform_random(128, 512, 4, 3);
        let out = parallel(&NativeMachine::new(4), &g, 10);
        assert_close(&out.output.ranks, &reference(&g, 10));
    }

    #[test]
    fn cas_variant_matches_reference() {
        let g = uniform_random(128, 512, 4, 3);
        let oracle = reference(&g, 10);
        for threads in [1, 2, 4, 8] {
            let out = parallel_cas(&NativeMachine::new(threads), &g, 10);
            assert_close(&out.output.ranks, &oracle);
        }
    }

    #[test]
    fn thread_count_does_not_change_ranks() {
        let g = uniform_random(64, 256, 4, 8);
        let a = parallel(&NativeMachine::new(1), &g, 5);
        let b = parallel(&NativeMachine::new(8), &g, 5);
        assert_close(&a.output.ranks, &b.output.ranks);
    }

    #[test]
    fn hubs_rank_higher() {
        let g = rmat(9, 4096, 4, RmatParams::default(), 5);
        let out = parallel(&NativeMachine::new(4), &g, 20);
        let max_deg_v = (0..g.num_vertices() as u32)
            .max_by_key(|&v| g.degree(v))
            .unwrap() as usize;
        let avg: f64 = out.output.ranks.iter().sum::<f64>() / g.num_vertices() as f64;
        assert!(
            out.output.ranks[max_deg_v] > 2.0 * avg,
            "hub rank {} vs avg {avg}",
            out.output.ranks[max_deg_v]
        );
    }

    #[test]
    fn ranks_are_positive_and_bounded() {
        let g = uniform_random(64, 200, 4, 1);
        let out = parallel(&NativeMachine::new(2), &g, 15);
        assert!(out.output.ranks.iter().all(|&r| r > 0.0 && r.is_finite()));
    }

    #[test]
    fn isolated_vertex_settles_at_r() {
        let g = CsrGraph::from_edges(3, vec![(0, 1, 1), (1, 0, 1)]);
        let out = parallel(&NativeMachine::new(2), &g, 10);
        assert!((out.output.ranks[2] - DAMPING_R).abs() < 1e-12);
    }

    #[test]
    fn pull_variant_is_bitwise_equal_to_reference() {
        // The serving engine's on-pool snapshot builder relies on this:
        // the pull kernel gathers in ascending in-neighbor order, the
        // same FP addition order the push reference uses, so the ranks
        // are identical down to the last bit at every thread count.
        for (g, iters) in [
            (uniform_random(128, 512, 4, 3), 10u32),
            (rmat(8, 1024, 4, RmatParams::default(), 5), 20u32),
        ] {
            let oracle = reference(&g, iters);
            for threads in [1, 2, 4, 8] {
                let out = parallel_pull(&NativeMachine::new(threads), &g, iters);
                let got: Vec<u64> = out.output.ranks.iter().map(|r| r.to_bits()).collect();
                let want: Vec<u64> = oracle.iter().map(|r| r.to_bits()).collect();
                assert_eq!(got, want, "threads={threads}");
            }
        }
    }

    #[test]
    fn pull_variant_handles_dangling_and_isolated_vertices() {
        // Vertex 2 has no out-edges (dangling), vertex 3 no edges at all.
        let g = CsrGraph::from_edges(4, vec![(0, 1, 1), (1, 0, 1), (0, 2, 1)]);
        let out = parallel_pull(&NativeMachine::new(2), &g, 10);
        let oracle = reference(&g, 10);
        assert_eq!(
            out.output.ranks.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
            oracle.iter().map(|r| r.to_bits()).collect::<Vec<_>>()
        );
        assert!((out.output.ranks[3] - DAMPING_R).abs() < 1e-12);
    }
}
