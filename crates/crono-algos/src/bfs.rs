//! `BFS` — breadth-first search (§III-4).
//!
//! Level-synchronous traversal with CRONO's *graph division* strategy:
//! each level's frontier is statically divided amongst threads, vertices
//! claim their neighbors with an atomic test-and-set (the paper's "vertex
//! capture ... via atomic locks"), and "a barrier is required ... to hop
//! to the next vertex in each iteration".

use crate::graph_view::{chunk, SharedGraph};
use crate::{costs, AlgoOutcome};
use crono_graph::{CsrGraph, VertexId};
use crono_runtime::{
    LockSet, Machine, SharedBitmap, SharedFlags, SharedU32s, SharedU64s, SlidingQueue, ThreadCtx,
    TrackedVec,
};
use std::collections::VecDeque;

/// Level assigned to vertices the search never reaches.
pub const UNVISITED: u32 = u32::MAX;

/// Result of a BFS run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsOutput {
    /// `level[v]` = hop distance from the source ([`UNVISITED`] if
    /// unreached).
    pub level: Vec<u32>,
    /// Number of vertices reached (including the source).
    pub reachable: usize,
    /// Number of levels traversed (graph eccentricity of the source + 1).
    pub levels: u32,
}

/// Sequential queue BFS, reported through `ctx`.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn run_seq<C: ThreadCtx>(ctx: &mut C, graph: &SharedGraph<'_>, source: VertexId) -> Vec<u32> {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source vertex out of range");
    let mut level = TrackedVec::filled(n, UNVISITED);
    level.set(ctx, source as usize, 0);
    let mut queue = VecDeque::from([source]);
    while let Some(v) = queue.pop_front() {
        // Uncharged poll: lets a cancelled (or over-budget, see
        // `crono_runtime::BudgetCtx`) query drain out early without
        // changing what a completed run charges.
        if ctx.cancelled() {
            break;
        }
        ctx.compute(costs::VISIT);
        ctx.record_active(queue.len() as u64 + 1);
        let lv = level.get(ctx, v as usize);
        for e in graph.edge_range(ctx, v) {
            let u = graph.neighbor(ctx, e);
            if level.get(ctx, u as usize) == UNVISITED {
                level.set(ctx, u as usize, lv + 1);
                queue.push_back(u);
            }
        }
    }
    level.into_vec()
}

/// Width of one multi-source batch: sources share the bit lanes of a
/// `u64` mask, so one shared graph sweep serves up to 64 searches.
pub const MULTI_WIDTH: usize = 64;

/// Multi-source BFS: runs up to [`MULTI_WIDTH`] searches in **one**
/// shared level-synchronous sweep (the MS-BFS idea: per-vertex `u64`
/// masks carry one bit lane per source, so a frontier vertex expands
/// once for every search that reaches it at the same depth).
///
/// Returns one level array per source, each **identical** to what
/// [`run_seq`] returns for that source alone — BFS hop distances are
/// schedule-independent, so batching is purely a cost optimization: the
/// offset/neighbor arrays are touched once per level instead of once per
/// level *per source*. The serving engine amortizes the sweep's modeled
/// cost evenly across the batched queries.
///
/// # Panics
///
/// Panics if `sources` is empty, longer than [`MULTI_WIDTH`], or
/// contains an out-of-range vertex.
pub fn run_multi<C: ThreadCtx>(
    ctx: &mut C,
    graph: &SharedGraph<'_>,
    sources: &[VertexId],
) -> Vec<Vec<u32>> {
    let n = graph.num_vertices();
    let k = sources.len();
    assert!(k > 0, "multi-source BFS needs at least one source");
    assert!(k <= MULTI_WIDTH, "at most {MULTI_WIDTH} sources per batch");
    for &s in sources {
        assert!((s as usize) < n, "source vertex out of range");
    }
    // `seen`/`cur`/`next` are the per-vertex lane masks; every touch is
    // charged so the sweep's modeled cost reflects the real amortization
    // (one mask word read per vertex replaces k frontier-byte reads).
    let mut seen = TrackedVec::filled(n, 0u64);
    let mut fronts = [TrackedVec::filled(n, 0u64), TrackedVec::filled(n, 0u64)];
    let mut level = vec![vec![UNVISITED; n]; k];
    for (lane, &s) in sources.iter().enumerate() {
        let bit = 1u64 << lane;
        let prev = seen.get(ctx, s as usize);
        seen.set(ctx, s as usize, prev | bit);
        let cur0 = fronts[0].get(ctx, s as usize);
        fronts[0].set(ctx, s as usize, cur0 | bit);
        level[lane][s as usize] = 0;
    }
    let mut depth = 0u32;
    loop {
        if ctx.cancelled() {
            break;
        }
        ctx.span_begin("bfs:multi_level");
        let (cur, next) = {
            let (a, b) = fronts.split_at_mut(1);
            if depth % 2 == 0 {
                (&mut a[0], &mut b[0])
            } else {
                (&mut b[0], &mut a[0])
            }
        };
        let mut activated = false;
        let mut processed = 0u64;
        for v in 0..n {
            let mask = cur.get(ctx, v);
            if mask == 0 {
                continue;
            }
            cur.set(ctx, v, 0);
            processed += 1;
            ctx.compute(costs::VISIT);
            for e in graph.edge_range(ctx, v as VertexId) {
                let u = graph.neighbor(ctx, e) as usize;
                let seen_u = seen.get(ctx, u);
                let fresh = mask & !seen_u;
                if fresh != 0 {
                    seen.set(ctx, u, seen_u | fresh);
                    let next_u = next.get(ctx, u);
                    next.set(ctx, u, next_u | fresh);
                    activated = true;
                    let mut lanes = fresh;
                    while lanes != 0 {
                        let lane = lanes.trailing_zeros() as usize;
                        level[lane][u] = depth + 1;
                        lanes &= lanes - 1;
                    }
                }
            }
        }
        if processed > 0 {
            ctx.record_active(processed);
        }
        ctx.span_end("bfs:multi_level");
        if !activated {
            break;
        }
        depth += 1;
    }
    level
}

/// Runs the sequential reference on a one-thread machine.
///
/// # Panics
///
/// Panics if `machine.num_threads() != 1` or `source` is out of range.
pub fn sequential<M: Machine>(
    machine: &M,
    graph: &CsrGraph,
    source: VertexId,
) -> AlgoOutcome<BfsOutput> {
    assert_eq!(machine.num_threads(), 1, "sequential reference needs 1 thread");
    let shared = SharedGraph::new(graph);
    let mut outcome = machine.run(|ctx| run_seq(ctx, &shared, source));
    let level = outcome.per_thread.pop().expect("one thread ran");
    AlgoOutcome {
        output: summarize(level),
        report: outcome.report,
    }
}

/// Parallel level-synchronous BFS: graph division (Table I).
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn parallel<M: Machine>(
    machine: &M,
    graph: &CsrGraph,
    source: VertexId,
) -> AlgoOutcome<BfsOutput> {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source vertex out of range");
    let shared = SharedGraph::new(graph);
    let level = SharedU32s::filled(n, UNVISITED);
    level.set_plain(source as usize, 0);
    let visited = SharedFlags::new(n);
    visited.set_plain(source as usize, true);
    let fronts = [SharedFlags::new(n), SharedFlags::new(n)];
    fronts[0].set_plain(source as usize, true);
    let activations = SharedU64s::new(3);
    let locks = LockSet::new(n.min(4096));

    let outcome = machine.run(|ctx| {
        let tid = ctx.thread_id();
        let nthreads = ctx.num_threads();
        let mut depth = 0u32;
        loop {
            if ctx.cancelled() {
                break;
            }
            ctx.span_begin("bfs:level");
            let cur = &fronts[(depth as usize) % 2];
            let next = &fronts[(depth as usize + 1) % 2];
            activations.set(ctx, (depth as usize + 2) % 3, 0);
            let mut processed = 0u64;
            let mut activated = 0u64;
            // As in the C suite, every thread scans the full frontier
            // array and claims the vertices it owns (striped graph
            // division); the shared scan bounds BFS scaling exactly as
            // the paper measures.
            for v in 0..n {
                if !cur.get(ctx, v) {
                    continue;
                }
                if v % nthreads != tid {
                    continue;
                }
                cur.set(ctx, v, false);
                processed += 1;
                ctx.compute(costs::VISIT);
                for e in shared.edge_range(ctx, v as VertexId) {
                    let u = shared.neighbor(ctx, e) as usize;
                    // Vertex capture "done via atomic locks": exactly one
                    // thread claims u.
                    if !visited.get(ctx, u) {
                        ctx.lock_for(&locks, u);
                        if !visited.get(ctx, u) {
                            visited.set(ctx, u, true);
                            level.set(ctx, u, depth + 1);
                            next.set(ctx, u, true);
                            activated += 1;
                        }
                        ctx.unlock_for(&locks, u);
                    }
                }
            }
            if processed > 0 {
                ctx.record_active(processed);
            }
            if activated > 0 {
                activations.fetch_add(ctx, (depth as usize + 1) % 3, activated);
            }
            ctx.barrier();
            let frontier_empty = activations.get(ctx, (depth as usize + 1) % 3) == 0;
            ctx.span_end("bfs:level");
            if frontier_empty {
                break;
            }
            depth += 1;
        }
        depth + 1
    });
    AlgoOutcome {
        output: summarize(level.to_vec()),
        report: outcome.report,
    }
}

/// Parallel BFS with a word-packed frontier — the `frontier_repr`
/// ablation (GAP-style bitmap, PR 3).
///
/// Identical algorithm to [`parallel`] except the two frontier arrays
/// are [`SharedBitmap`]s scanned with `find_set_from`, so an empty
/// stretch of 64 vertices costs one simulated load instead of 64. The
/// byte-array scan stays the paper-faithful default; this variant
/// quantifies how much of CRONO's reported BFS synchronization/miss
/// profile is an artifact of the frontier representation.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn parallel_bitmap<M: Machine>(
    machine: &M,
    graph: &CsrGraph,
    source: VertexId,
) -> AlgoOutcome<BfsOutput> {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source vertex out of range");
    let shared = SharedGraph::new(graph);
    let level = SharedU32s::filled(n, UNVISITED);
    level.set_plain(source as usize, 0);
    let visited = SharedFlags::new(n);
    visited.set_plain(source as usize, true);
    let fronts = [SharedBitmap::new(n), SharedBitmap::new(n)];
    fronts[0].set_plain(source as usize);
    let activations = SharedU64s::new(3);
    let locks = LockSet::new(n.min(4096));

    let outcome = machine.run(|ctx| {
        let tid = ctx.thread_id();
        let nthreads = ctx.num_threads();
        let mut depth = 0u32;
        loop {
            if ctx.cancelled() {
                break;
            }
            ctx.span_begin("bfs:level");
            let cur = &fronts[(depth as usize) % 2];
            let next = &fronts[(depth as usize + 1) % 2];
            activations.set(ctx, (depth as usize + 2) % 3, 0);
            let mut processed = 0u64;
            let mut activated = 0u64;
            // Word-skipping scan over the packed frontier; ownership
            // striping and vertex capture are unchanged from `parallel`.
            let mut pos = 0;
            while let Some(v) = cur.find_set_from(ctx, pos) {
                pos = v + 1;
                if v % nthreads != tid {
                    continue;
                }
                cur.clear(ctx, v);
                processed += 1;
                ctx.compute(costs::VISIT);
                for e in shared.edge_range(ctx, v as VertexId) {
                    let u = shared.neighbor(ctx, e) as usize;
                    if !visited.get(ctx, u) {
                        ctx.lock_for(&locks, u);
                        if !visited.get(ctx, u) {
                            visited.set(ctx, u, true);
                            level.set(ctx, u, depth + 1);
                            next.set(ctx, u);
                            activated += 1;
                        }
                        ctx.unlock_for(&locks, u);
                    }
                }
            }
            if processed > 0 {
                ctx.record_active(processed);
            }
            if activated > 0 {
                activations.fetch_add(ctx, (depth as usize + 1) % 3, activated);
            }
            ctx.barrier();
            let frontier_empty = activations.get(ctx, (depth as usize + 1) % 3) == 0;
            ctx.span_end("bfs:level");
            if frontier_empty {
                break;
            }
            depth += 1;
        }
        depth + 1
    });
    AlgoOutcome {
        output: summarize(level.to_vec()),
        report: outcome.report,
    }
}

/// Push→pull switch threshold: leave top-down when the frontier's
/// outgoing edges exceed `edges_remaining / DIROP_ALPHA` (Beamer's
/// direction-optimizing heuristic, GAP's `alpha`).
pub const DIROP_ALPHA: u64 = 15;

/// Pull→push switch threshold: return to top-down once the frontier
/// shrinks below `n / DIROP_BETA` vertices (GAP's `beta`).
pub const DIROP_BETA: u64 = 18;

/// Per-thread buffered discoveries flushed into the [`SlidingQueue`]
/// with one chunked claim.
const DIROP_CHUNK: usize = 64;

/// The traversal direction a direction-optimizing BFS level ran in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Top-down: expand the frontier's out-edges (sparse frontiers).
    Push,
    /// Bottom-up: unvisited vertices probe their in-edges for a frontier
    /// parent (dense frontiers).
    Pull,
}

/// Direction-optimizing BFS (Beamer's push/pull hybrid, the GAP
/// reference implementation) — the `dirop_bfs` ablation.
///
/// Top-down levels drain a [`SlidingQueue`] frontier: each thread takes
/// a static share of the level's window, claims neighbors with one
/// `test_and_set` on a shared `visited` [`SharedBitmap`] (no locks), and
/// publishes its discoveries with chunked queue claims. When the
/// frontier's outgoing edge count exceeds `edges_remaining /`
/// [`DIROP_ALPHA`], the level flips to bottom-up: the frontier converts
/// to a bitmap and every *unvisited* vertex scans its in-edges for an
/// already-visited parent, early-exiting on the first hit — writes
/// become owner-local (each vertex is claimed by the thread that owns
/// its chunk), which is what collapses the sharing-miss and NoC-flit
/// counters on low-diameter R-MAT graphs. Once the frontier shrinks
/// below `n /` [`DIROP_BETA`], it converts back to the queue.
///
/// Levels are hop distances — schedule-independent — so the output is
/// bit-identical to [`sequential`] regardless of direction decisions or
/// thread count. The decisions themselves depend only on aggregate
/// frontier counts, so they are a deterministic function of
/// `(graph, source)`; [`parallel_dirop_traced`] exposes them for tests.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn parallel_dirop<M: Machine>(
    machine: &M,
    graph: &CsrGraph,
    source: VertexId,
) -> AlgoOutcome<BfsOutput> {
    parallel_dirop_traced(machine, graph, source).0
}

/// [`parallel_dirop`], additionally returning the per-level direction
/// decisions (index = BFS depth of the frontier processed).
pub fn parallel_dirop_traced<M: Machine>(
    machine: &M,
    graph: &CsrGraph,
    source: VertexId,
) -> (AlgoOutcome<BfsOutput>, Vec<Direction>) {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source vertex out of range");
    let m = graph.num_directed_edges() as u64;
    let shared = SharedGraph::new(graph);
    // The transpose serves the bottom-up in-edge probes. Generators emit
    // symmetric graphs (transpose == graph), but building it keeps the
    // kernel correct on directed inputs; like all input prep it happens
    // outside the timed region.
    let transpose = graph.transpose();
    let tshared = SharedGraph::new(&transpose);
    let level = SharedU32s::filled(n, UNVISITED);
    level.set_plain(source as usize, 0);
    let visited = SharedBitmap::new(n);
    visited.set_plain(source as usize);
    // Every vertex enters the queue at most once (test_and_set claims
    // dedupe), so capacity n never overflows and no reset is needed:
    // the window slides monotonically, GAP-style.
    let queue = SlidingQueue::new(n);
    queue.push_plain(source);
    let pull_fronts = [SharedBitmap::new(n), SharedBitmap::new(n)];
    let activations = SharedU64s::new(3);
    let scouts = SharedU64s::new(3);
    let source_degree = graph.neighbors(source).count() as u64;

    let outcome = machine.run(|ctx| {
        let tid = ctx.thread_id();
        let nthreads = ctx.num_threads();
        let mut depth = 0u32;
        let mut mode = Direction::Push;
        let mut modes = Vec::new();
        // All of these mirror *published aggregate* counters, so every
        // thread holds identical values and makes identical decisions.
        let mut taken = 0usize;
        let mut frontier_count = 1u64;
        let mut scout_prev = source_degree;
        let mut edges_remaining = m;
        loop {
            if ctx.cancelled() {
                break;
            }
            modes.push(mode);
            let mut activated = 0u64;
            let mut scout = 0u64;
            match mode {
                Direction::Push => {
                    ctx.span_begin("bfs:push");
                    edges_remaining = edges_remaining.saturating_sub(scout_prev);
                    activations.set(ctx, (depth as usize + 2) % 3, 0);
                    scouts.set(ctx, (depth as usize + 2) % 3, 0);
                    // Every activation pushed exactly one queue entry, so
                    // the window end is `taken + frontier_count` — known
                    // from the published counter without racing threads
                    // that already push the *next* level's entries.
                    let end = taken + frontier_count as usize;
                    let mut buf: Vec<u32> = Vec::with_capacity(DIROP_CHUNK);
                    let mut processed = 0u64;
                    for k in chunk(end - taken, tid, nthreads) {
                        let v = queue.get(ctx, taken + k);
                        processed += 1;
                        ctx.compute(costs::VISIT);
                        for e in shared.edge_range(ctx, v) {
                            let u = shared.neighbor(ctx, e) as usize;
                            // Read-then-claim: the RMW only fires on
                            // plausibly-unvisited vertices.
                            if !visited.get(ctx, u) && !visited.test_and_set(ctx, u) {
                                level.set(ctx, u, depth + 1);
                                activated += 1;
                                scout += shared.degree(ctx, u as VertexId) as u64;
                                buf.push(u as u32);
                                if buf.len() == DIROP_CHUNK {
                                    queue.push_chunk(ctx, &buf);
                                    buf.clear();
                                }
                            }
                        }
                    }
                    queue.push_chunk(ctx, &buf);
                    taken = end;
                    if processed > 0 {
                        ctx.record_active(processed);
                    }
                }
                Direction::Pull => {
                    ctx.span_begin("bfs:pull");
                    activations.set(ctx, (depth as usize + 2) % 3, 0);
                    scouts.set(ctx, (depth as usize + 2) % 3, 0);
                    let cur = &pull_fronts[depth as usize % 2];
                    let next = &pull_fronts[(depth as usize + 1) % 2];
                    // Wipe the stale ping-pong bitmap (word-chunked)
                    // before anyone writes activations into it.
                    next.clear_words(ctx, chunk(next.num_words(), tid, nthreads));
                    ctx.barrier();
                    for v in chunk(n, tid, nthreads) {
                        if visited.get(ctx, v) {
                            continue;
                        }
                        ctx.compute(costs::VISIT);
                        for e in tshared.edge_range(ctx, v as VertexId) {
                            let u = tshared.neighbor(ctx, e) as usize;
                            if cur.get(ctx, u) {
                                // Owner-writes: v lives in this thread's
                                // chunk, so no other thread touches its
                                // level entry or frontier bit.
                                visited.set(ctx, v);
                                level.set(ctx, v, depth + 1);
                                next.set(ctx, v);
                                activated += 1;
                                scout += shared.degree(ctx, v as VertexId) as u64;
                                break;
                            }
                        }
                    }
                    if activated > 0 {
                        ctx.record_active(activated);
                    }
                }
            }
            if activated > 0 {
                activations.fetch_add(ctx, (depth as usize + 1) % 3, activated);
                scouts.fetch_add(ctx, (depth as usize + 1) % 3, scout);
            }
            ctx.barrier();
            frontier_count = activations.get(ctx, (depth as usize + 1) % 3);
            scout_prev = scouts.get(ctx, (depth as usize + 1) % 3);
            ctx.span_end(match mode {
                Direction::Push => "bfs:push",
                Direction::Pull => "bfs:pull",
            });
            if frontier_count == 0 {
                break;
            }
            let next_mode = match mode {
                // Beamer: go bottom-up when the frontier's out-edges
                // dominate the unexplored edges.
                Direction::Push if scout_prev > edges_remaining / DIROP_ALPHA => Direction::Pull,
                // ... and back once the frontier is sparse again.
                Direction::Pull if frontier_count < n as u64 / DIROP_BETA => Direction::Push,
                other => other,
            };
            match (mode, next_mode) {
                (Direction::Push, Direction::Pull) => {
                    // Queue window -> bitmap: wipe both ping-pong maps,
                    // then mirror the frontier into the level's `cur`.
                    let end = taken + frontier_count as usize;
                    pull_fronts[0].clear_words(
                        ctx,
                        chunk(pull_fronts[0].num_words(), tid, nthreads),
                    );
                    pull_fronts[1].clear_words(
                        ctx,
                        chunk(pull_fronts[1].num_words(), tid, nthreads),
                    );
                    ctx.barrier();
                    let cur = &pull_fronts[(depth as usize + 1) % 2];
                    for k in chunk(end - taken, tid, nthreads) {
                        let v = queue.get(ctx, taken + k);
                        cur.set(ctx, v as usize);
                    }
                    taken = end;
                    // The pull prologue's barrier orders these writes
                    // before any cross-chunk read.
                }
                (Direction::Pull, Direction::Push) => {
                    // Bitmap -> queue: collect this thread's words of the
                    // fresh frontier and publish them with chunked claims.
                    let cur = &pull_fronts[(depth as usize + 1) % 2];
                    let words = chunk(cur.num_words(), tid, nthreads);
                    let mut buf: Vec<u32> = Vec::with_capacity(DIROP_CHUNK);
                    let mut pos = words.start * 64;
                    let limit = (words.end * 64).min(n);
                    while let Some(v) = cur.find_set_from(ctx, pos) {
                        if v >= limit {
                            break;
                        }
                        pos = v + 1;
                        buf.push(v as u32);
                        if buf.len() == DIROP_CHUNK {
                            queue.push_chunk(ctx, &buf);
                            buf.clear();
                        }
                    }
                    queue.push_chunk(ctx, &buf);
                    // The next push level reads the queue tail, so every
                    // conversion push must land first.
                    ctx.barrier();
                }
                _ => {}
            }
            mode = next_mode;
            depth += 1;
        }
        modes
    });
    let modes = outcome
        .per_thread
        .first()
        .cloned()
        .unwrap_or_default();
    (
        AlgoOutcome {
            output: summarize(level.to_vec()),
            report: outcome.report,
        },
        modes,
    )
}

/// Parallel BFS with *inner-loop* parallelization — the paper's §III-4
/// alternative: "each thread picks a vertex and searches its neighbors
/// ... the neighbors are statically divided amongst threads ... a
/// barrier is required in inner loop based parallelism to hop to the
/// next vertex in each iteration". Every thread walks the same frontier
/// sequence; one barrier per frontier vertex.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn parallel_inner<M: Machine>(
    machine: &M,
    graph: &CsrGraph,
    source: VertexId,
) -> AlgoOutcome<BfsOutput> {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source vertex out of range");
    let shared = SharedGraph::new(graph);
    let level = SharedU32s::filled(n, UNVISITED);
    level.set_plain(source as usize, 0);
    let visited = SharedFlags::new(n);
    visited.set_plain(source as usize, true);
    let fronts = [SharedFlags::new(n), SharedFlags::new(n)];
    fronts[0].set_plain(source as usize, true);
    let activations = SharedU64s::new(3);
    let locks = LockSet::new(n.min(4096));

    let outcome = machine.run(|ctx| {
        let tid = ctx.thread_id();
        let nthreads = ctx.num_threads();
        let mut depth = 0u32;
        let mut processed: Vec<usize> = Vec::new();
        loop {
            if ctx.cancelled() {
                break;
            }
            let cur = &fronts[(depth as usize) % 2];
            let next = &fronts[(depth as usize + 1) % 2];
            activations.set(ctx, (depth as usize + 2) % 3, 0);
            let mut activated = 0u64;
            processed.clear();
            for v in 0..n {
                if !cur.get(ctx, v) {
                    continue;
                }
                processed.push(v);
                ctx.compute(costs::VISIT);
                ctx.record_active(1);
                let range = shared.edge_range(ctx, v as VertexId);
                for (k, e) in range.enumerate() {
                    if k % nthreads != tid {
                        continue;
                    }
                    let u = shared.neighbor(ctx, e) as usize;
                    if !visited.get(ctx, u) {
                        ctx.lock_for(&locks, u);
                        if !visited.get(ctx, u) {
                            visited.set(ctx, u, true);
                            level.set(ctx, u, depth + 1);
                            next.set(ctx, u, true);
                            activated += 1;
                        }
                        ctx.unlock_for(&locks, u);
                    }
                }
                ctx.barrier();
            }
            for &v in &processed {
                if v % nthreads == tid {
                    cur.set(ctx, v, false);
                }
            }
            if activated > 0 {
                activations.fetch_add(ctx, (depth as usize + 1) % 3, activated);
            }
            ctx.barrier();
            if activations.get(ctx, (depth as usize + 1) % 3) == 0 {
                break;
            }
            depth += 1;
        }
    });
    AlgoOutcome {
        output: summarize(level.to_vec()),
        report: outcome.report,
    }
}

fn summarize(level: Vec<u32>) -> BfsOutput {
    let reachable = level.iter().filter(|&&l| l != UNVISITED).count();
    let levels = level
        .iter()
        .filter(|&&l| l != UNVISITED)
        .max()
        .map_or(0, |&m| m + 1);
    BfsOutput {
        level,
        reachable,
        levels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crono_graph::gen::{road_network, uniform_random};
    use crono_runtime::NativeMachine;

    #[test]
    fn sequential_levels_are_hop_distances() {
        // Path 0-1-2-3.
        let g = CsrGraph::from_edges(
            4,
            vec![(0, 1, 1), (1, 0, 1), (1, 2, 1), (2, 1, 1), (2, 3, 1), (3, 2, 1)],
        );
        let out = sequential(&NativeMachine::new(1), &g, 0);
        assert_eq!(out.output.level, vec![0, 1, 2, 3]);
        assert_eq!(out.output.levels, 4);
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = uniform_random(256, 1024, 4, 2);
        let seq = sequential(&NativeMachine::new(1), &g, 3);
        for threads in [1, 2, 4, 8] {
            let par = parallel(&NativeMachine::new(threads), &g, 3);
            assert_eq!(par.output.level, seq.output.level, "threads={threads}");
        }
    }

    #[test]
    fn road_network_full_coverage() {
        let g = road_network(16, 16, 4, 0.2, 0.0, 5);
        let out = parallel(&NativeMachine::new(4), &g, 0);
        assert_eq!(out.output.reachable, 256, "road generator is connected");
        assert!(out.output.levels > 10, "grids have high eccentricity");
    }

    #[test]
    fn unreachable_vertices_marked() {
        let g = CsrGraph::from_edges(4, vec![(0, 1, 1), (1, 0, 1), (2, 3, 1), (3, 2, 1)]);
        let out = parallel(&NativeMachine::new(2), &g, 0);
        assert_eq!(out.output.level[2], UNVISITED);
        assert_eq!(out.output.reachable, 2);
    }

    #[test]
    fn bitmap_variant_matches_sequential() {
        let g = uniform_random(256, 1024, 4, 2);
        let seq = sequential(&NativeMachine::new(1), &g, 3);
        for threads in [1, 2, 4, 8] {
            let par = parallel_bitmap(&NativeMachine::new(threads), &g, 3);
            assert_eq!(par.output.level, seq.output.level, "threads={threads}");
        }
    }

    #[test]
    fn inner_loop_variant_matches_outer_loop() {
        let g = uniform_random(128, 512, 4, 11);
        let outer = parallel(&NativeMachine::new(4), &g, 0);
        for threads in [1, 3, 4] {
            let inner = parallel_inner(&NativeMachine::new(threads), &g, 0);
            assert_eq!(inner.output.level, outer.output.level, "threads={threads}");
        }
    }

    #[test]
    fn multi_source_matches_independent_runs() {
        let g = uniform_random(256, 1024, 4, 9);
        let sources: Vec<VertexId> = vec![0, 3, 17, 42, 100, 255, 3];
        let (multi, singles) = NativeMachine::new(1)
            .run(|ctx| {
                let view = SharedGraph::new(&g);
                let multi = run_multi(ctx, &view, &sources);
                let singles: Vec<Vec<u32>> = sources
                    .iter()
                    .map(|&s| run_seq(ctx, &view, s))
                    .collect();
                (multi, singles)
            })
            .per_thread
            .pop()
            .expect("one thread");
        assert_eq!(multi, singles);
    }

    #[test]
    fn multi_source_full_width_batch() {
        let g = road_network(16, 16, 4, 0.2, 0.0, 5);
        let sources: Vec<VertexId> = (0..MULTI_WIDTH as u32 * 4).step_by(4).collect();
        assert_eq!(sources.len(), MULTI_WIDTH);
        NativeMachine::new(1).run(|ctx| {
            let view = SharedGraph::new(&g);
            let multi = run_multi(ctx, &view, &sources);
            for (lane, &s) in sources.iter().enumerate() {
                let single = run_seq(ctx, &view, s);
                assert_eq!(multi[lane], single, "lane {lane} (source {s})");
            }
        });
    }

    #[test]
    fn multi_source_amortizes_sweep_cost() {
        // The whole point of batching: k searches in one sweep must charge
        // far fewer modeled instructions than k independent sweeps.
        let g = uniform_random(512, 4096, 4, 21);
        let sources: Vec<VertexId> = (0..32).map(|i| i * 16).collect();
        NativeMachine::new(1).run(|ctx| {
            let view = SharedGraph::new(&g);
            let before = ctx.instructions();
            let _ = run_multi(ctx, &view, &sources);
            let batched = ctx.instructions() - before;
            let before = ctx.instructions();
            for &s in &sources {
                let _ = run_seq(ctx, &view, s);
            }
            let independent = ctx.instructions() - before;
            assert!(
                batched * 2 < independent,
                "batched={batched} independent={independent}"
            );
        });
    }

    #[test]
    fn dirop_matches_sequential() {
        let g = uniform_random(256, 1024, 4, 2);
        let seq = sequential(&NativeMachine::new(1), &g, 3);
        for threads in [1, 2, 4, 8] {
            let par = parallel_dirop(&NativeMachine::new(threads), &g, 3);
            assert_eq!(par.output.level, seq.output.level, "threads={threads}");
        }
    }

    #[test]
    fn dirop_direction_schedule_is_thread_count_invariant() {
        let g = uniform_random(256, 1024, 4, 2);
        let (_, base) = parallel_dirop_traced(&NativeMachine::new(1), &g, 3);
        for threads in [2, 4, 8] {
            let (_, modes) = parallel_dirop_traced(&NativeMachine::new(threads), &g, 3);
            assert_eq!(modes, base, "threads={threads}");
        }
    }

    #[test]
    fn bfs_levels_consistent_with_edges() {
        let g = uniform_random(128, 512, 4, 7);
        let out = parallel(&NativeMachine::new(4), &g, 0);
        for v in 0..128u32 {
            let lv = out.output.level[v as usize];
            if lv == UNVISITED {
                continue;
            }
            for (u, _) in g.neighbors(v) {
                let lu = out.output.level[u as usize];
                assert!(lu != UNVISITED && lu <= lv + 1 && lv <= lu + 1);
            }
        }
    }
}
