//! `APSP` — all-pairs shortest paths (§III-2).
//!
//! As in CRONO, the input is an adjacency *matrix* (§IV-F) and
//! parallelization is by **vertex capture**: each thread atomically
//! captures a source vertex, computes that vertex's shortest paths with
//! its own private distance array, then captures another. The per-source
//! kernel is the O(n²) matrix Dijkstra (linear min-scans, no heap) the C
//! suite uses — each source scans the full n×n matrix, which is exactly
//! what thrashes the private L1s and produces APSP's high capacity miss
//! rate (Fig. 3). A Floyd–Warshall reference validates the results in the
//! test-suite.
//!
//! Work per source is fully independent, so APSP scales near-linearly
//! (204× at 256 threads in the paper).

use crate::{costs, AlgoOutcome};
use crono_graph::{AdjacencyMatrix, VertexId};
use crono_runtime::{
    Machine, ReadArray, SharedU32s, SharedU64s, TaskPool, ThreadCtx, TrackedVec,
};

/// Seed for the work-stealing variant's victim selection (fixed so two
/// runs of the same input are schedule-identical).
pub(crate) const STEAL_SEED: u64 = 0xC0_90_05;

/// Distance assigned to unreachable pairs (same sentinel as
/// [`AdjacencyMatrix::INFINITY`]).
pub const UNREACHABLE: u32 = AdjacencyMatrix::INFINITY;

/// Result of an APSP run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApspOutput {
    /// Row-major `n × n` distance matrix.
    pub dist: Vec<u32>,
    /// Number of vertices.
    pub n: usize,
}

impl ApspOutput {
    /// Distance from `s` to `t`.
    pub fn distance(&self, s: VertexId, t: VertexId) -> u32 {
        self.dist[s as usize * self.n + t as usize]
    }
}

/// One source's matrix Dijkstra: O(n²) with linear min-scans, writing the
/// finished row into the shared result matrix.
pub(crate) fn dijkstra_row<C: ThreadCtx>(
    ctx: &mut C,
    matrix: &ReadArray<'_, u32>,
    n: usize,
    source: usize,
    result: &SharedU32s,
) {
    let mut dist = TrackedVec::filled(n, UNREACHABLE);
    let mut done = TrackedVec::filled(n, false);
    dist.set(ctx, source, 0);
    for _ in 0..n {
        // Linear scan for the nearest unfinished vertex.
        let mut best = UNREACHABLE;
        let mut v = usize::MAX;
        for cand in 0..n {
            ctx.compute(costs::MIN_SCAN);
            if !done.get(ctx, cand) {
                let d = dist.get(ctx, cand);
                if d < best {
                    best = d;
                    v = cand;
                }
            }
        }
        if v == usize::MAX {
            break;
        }
        done.set(ctx, v, true);
        // Relax the full matrix row of v.
        for u in 0..n {
            ctx.compute(costs::RELAX);
            let w = matrix.get(ctx, v * n + u);
            if w != UNREACHABLE {
                let nd = best + w;
                if nd < dist.get(ctx, u) {
                    dist.set(ctx, u, nd);
                }
            }
        }
    }
    for u in 0..n {
        let d = dist.get(ctx, u);
        result.set(ctx, source * n + u, d);
    }
}

/// The shared vertex-capture loop both APSP and betweenness phase 1 use.
pub(crate) fn capture_sources<C: ThreadCtx>(
    ctx: &mut C,
    matrix: &ReadArray<'_, u32>,
    n: usize,
    counter: &SharedU64s,
    result: &SharedU32s,
) {
    loop {
        if ctx.cancelled() {
            break;
        }
        // Vertex capture: threads compete for source vertices.
        let s = counter.fetch_add(ctx, 0, 1) as usize;
        if s >= n {
            break;
        }
        ctx.record_active((n - s) as u64);
        dijkstra_row(ctx, matrix, n, s, result);
    }
}

/// Parallel APSP by vertex capture (Table I).
///
/// # Panics
///
/// Panics if the matrix has more than 16,384 vertices (the result matrix
/// would exceed 1 GiB — the paper's own APSP ceiling, Table III).
pub fn parallel<M: Machine>(machine: &M, matrix: &AdjacencyMatrix) -> AlgoOutcome<ApspOutput> {
    let n = matrix.num_vertices();
    assert!(n <= 16_384, "APSP result matrix capped at 16K vertices");
    let shared = ReadArray::new(matrix.as_slice());
    let result = SharedU32s::filled(n * n, UNREACHABLE);
    let counter = SharedU64s::new(1);
    let outcome = machine.run(|ctx| capture_sources(ctx, &shared, n, &counter, &result));
    AlgoOutcome {
        output: ApspOutput {
            dist: result.to_vec(),
            n,
        },
        report: outcome.report,
    }
}

/// Parallel APSP with sources as stealable tasks
/// ([`Ablation::TaskSteal`](crate::Ablation::TaskSteal)).
///
/// The paper-faithful [`parallel`] makes every thread hammer one shared
/// capture counter — a single cache line whose directory entry serializes
/// all 256 cores. Here the sources are dealt round-robin into per-thread
/// Chase–Lev deques before the timed region; threads drain their own
/// deque and steal (seeded victim order) only when empty, so the common
/// case touches a thread-private line and contention is spread across
/// one line per owner. Results are schedule-independent (each source's
/// row is written exactly once), so the output is identical to
/// [`parallel`].
///
/// # Panics
///
/// Same conditions as [`parallel`].
pub fn parallel_steal<M: Machine>(
    machine: &M,
    matrix: &AdjacencyMatrix,
) -> AlgoOutcome<ApspOutput> {
    let n = matrix.num_vertices();
    assert!(n <= 16_384, "APSP result matrix capped at 16K vertices");
    let threads = machine.num_threads();
    let shared = ReadArray::new(matrix.as_slice());
    let result = SharedU32s::filled(n * n, UNREACHABLE);
    let pool = TaskPool::new(threads, n / threads + 1, STEAL_SEED);
    for s in 0..n {
        let pushed = pool.push_plain(s % threads, s as u64);
        debug_assert!(pushed, "deques are sized for all sources");
    }
    let outcome = machine.run(|ctx| {
        while !ctx.cancelled() {
            let Some(s) = pool.take_fixed(ctx) else { break };
            ctx.record_active(1);
            dijkstra_row(ctx, &shared, n, s as usize, &result);
        }
    });
    AlgoOutcome {
        output: ApspOutput {
            dist: result.to_vec(),
            n,
        },
        report: outcome.report,
    }
}

/// Sequential reference (one thread captures every vertex).
///
/// # Panics
///
/// Panics if `machine.num_threads() != 1`.
pub fn sequential<M: Machine>(machine: &M, matrix: &AdjacencyMatrix) -> AlgoOutcome<ApspOutput> {
    assert_eq!(machine.num_threads(), 1, "sequential reference needs 1 thread");
    parallel(machine, matrix)
}

/// Floyd–Warshall oracle used by the tests (not context-tracked).
pub fn floyd_warshall(matrix: &AdjacencyMatrix) -> Vec<u32> {
    let n = matrix.num_vertices();
    let mut d = matrix.as_slice().to_vec();
    for k in 0..n {
        for i in 0..n {
            let dik = d[i * n + k];
            if dik == UNREACHABLE {
                continue;
            }
            for j in 0..n {
                let cand = dik + d[k * n + j];
                if cand < d[i * n + j] {
                    d[i * n + j] = cand;
                }
            }
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crono_graph::gen::uniform_random;
    use crono_runtime::NativeMachine;

    fn small_matrix(seed: u64) -> AdjacencyMatrix {
        AdjacencyMatrix::from_csr(&uniform_random(48, 140, 9, seed))
    }

    #[test]
    fn matches_floyd_warshall() {
        let m = small_matrix(3);
        let out = parallel(&NativeMachine::new(4), &m);
        assert_eq!(out.output.dist, floyd_warshall(&m));
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let m = small_matrix(8);
        let one = parallel(&NativeMachine::new(1), &m);
        let eight = parallel(&NativeMachine::new(8), &m);
        assert_eq!(one.output.dist, eight.output.dist);
    }

    #[test]
    fn diagonal_is_zero() {
        let m = small_matrix(5);
        let out = parallel(&NativeMachine::new(2), &m);
        for v in 0..48 {
            assert_eq!(out.output.distance(v, v), 0);
        }
    }

    #[test]
    fn symmetric_input_gives_symmetric_distances() {
        let m = small_matrix(7);
        let out = parallel(&NativeMachine::new(4), &m);
        for s in 0..48 {
            for t in 0..48 {
                assert_eq!(out.output.distance(s, t), out.output.distance(t, s));
            }
        }
    }

    #[test]
    fn steal_variant_matches_default_at_every_thread_count() {
        let m = small_matrix(11);
        let expect = floyd_warshall(&m);
        for threads in [1, 2, 4, 8] {
            let out = parallel_steal(&NativeMachine::new(threads), &m);
            assert_eq!(out.output.dist, expect, "threads={threads}");
        }
    }

    #[test]
    fn directed_asymmetric_graph() {
        let mut m = AdjacencyMatrix::new(3);
        m.set(0, 1, 5);
        m.set(1, 2, 5);
        let out = parallel(&NativeMachine::new(2), &m);
        assert_eq!(out.output.distance(0, 2), 10);
        assert_eq!(out.output.distance(2, 0), UNREACHABLE);
    }
}
