//! `BETW_CENT` — betweenness centrality (§III-3).
//!
//! CRONO's formulation: first compute all-pairs shortest paths (the same
//! vertex-capture matrix-Dijkstra phase as [`crate::apsp`]), "then a
//! barrier is applied, and finally a loop executes to compute the
//! centralities of each vertex. The final loop is statically divided
//! amongst threads, with each thread reading shortest path values and
//! updating the centralities via atomic locks."
//!
//! The centrality of `v` here is the number of ordered pairs `(s, t)`
//! (`s ≠ v ≠ t`) that have *some* shortest path through `v`, detected by
//! the distance identity `dist(s,v) + dist(v,t) == dist(s,t)` — the
//! direct parallelization of the paper's description. (Brandes'
//! fractional definition differs; the test-suite checks this one against
//! a brute-force oracle.)

use crate::apsp::{capture_sources, dijkstra_row, STEAL_SEED, UNREACHABLE};
use crate::graph_view::chunk;
use crate::{costs, AlgoOutcome};
use crono_graph::AdjacencyMatrix;
use crono_runtime::{
    Machine, ReadArray, RunError, RunOptions, SharedU32s, SharedU64s, TaskPool, ThreadCtx,
};

/// Result of a betweenness-centrality run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BetweennessOutput {
    /// `centrality[v]` = ordered `(s, t)` pairs with a shortest path
    /// through `v`.
    pub centrality: Vec<u64>,
    /// The APSP distance matrix computed in phase 1 (row-major).
    pub dist: Vec<u32>,
}

/// Parallel betweenness centrality: vertex capture (phase 1) + statically
/// divided outer loop (phase 2), separated by a barrier (Table I).
///
/// # Panics
///
/// Panics if the matrix has more than 16,384 vertices.
pub fn parallel<M: Machine>(
    machine: &M,
    matrix: &AdjacencyMatrix,
) -> AlgoOutcome<BetweennessOutput> {
    match try_parallel(machine, &RunOptions::default(), matrix) {
        Ok(outcome) => outcome,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`parallel`]: the serving engine's asymmetric-snapshot
/// fallback, where a faulted machine must surface as a [`RunError`]
/// rather than unwind the batch.
///
/// # Errors
///
/// Whatever [`Machine::try_run_with`] reports: a worker panic, the
/// watchdog timeout, or an unroutable mesh.
///
/// # Panics
///
/// Panics if the matrix has more than 16,384 vertices.
pub fn try_parallel<M: Machine>(
    machine: &M,
    opts: &RunOptions,
    matrix: &AdjacencyMatrix,
) -> Result<AlgoOutcome<BetweennessOutput>, RunError> {
    let n = matrix.num_vertices();
    assert!(n <= 16_384, "BETW_CENT matrix capped at 16K vertices");
    let shared = ReadArray::new(matrix.as_slice());
    let dist = SharedU32s::filled(n * n, UNREACHABLE);
    let counter = SharedU64s::new(1);
    let centrality = SharedU64s::new(n);

    let outcome = machine.try_run_with(opts, |ctx| {
        // Phase 1: APSP by vertex capture.
        capture_sources(ctx, &shared, n, &counter, &dist);
        ctx.barrier();
        // Phase 2: centrality loop, statically divided. This is the
        // terminal activity spike visible in Fig. 2.
        let tid = ctx.thread_id();
        let nthreads = ctx.num_threads();
        for v in chunk(n, tid, nthreads) {
            if ctx.cancelled() {
                break;
            }
            ctx.record_active(1);
            let mut count = 0u64;
            for s in 0..n {
                if s == v {
                    continue;
                }
                let sv = dist.get(ctx, s * n + v);
                if sv == UNREACHABLE {
                    continue;
                }
                for t in 0..n {
                    ctx.compute(costs::MIN_SCAN);
                    if t == v || t == s {
                        continue;
                    }
                    let vt = dist.get(ctx, v * n + t);
                    if vt == UNREACHABLE {
                        continue;
                    }
                    if sv + vt == dist.get(ctx, s * n + t) {
                        count += 1;
                    }
                }
            }
            if count > 0 {
                // "updating the centralities via atomic locks"
                centrality.fetch_add(ctx, v, count);
            }
        }
    })?;
    Ok(AlgoOutcome {
        output: BetweennessOutput {
            centrality: centrality.to_vec(),
            dist: dist.to_vec(),
        },
        report: outcome.report,
    })
}

/// Parallel betweenness centrality with both phases as stealable tasks
/// ([`Ablation::TaskSteal`](crate::Ablation::TaskSteal)).
///
/// Phase 1 replaces the shared capture counter with per-thread deques of
/// source vertices (as in [`crate::apsp::parallel_steal`]); phase 2
/// replaces the static `chunk` split with stealable per-vertex
/// centrality tasks, so a thread whose chunk would have held the
/// expensive high-degree vertices no longer straggles while the rest
/// idle at the barrier. Both phases write disjoint locations per task
/// (row `s` of `dist`; `centrality[v]` is added exactly once), so the
/// output is schedule-independent and identical to [`parallel`].
///
/// # Panics
///
/// Panics if the matrix has more than 16,384 vertices.
pub fn parallel_steal<M: Machine>(
    machine: &M,
    matrix: &AdjacencyMatrix,
) -> AlgoOutcome<BetweennessOutput> {
    let n = matrix.num_vertices();
    assert!(n <= 16_384, "BETW_CENT matrix capped at 16K vertices");
    let threads = machine.num_threads();
    let shared = ReadArray::new(matrix.as_slice());
    let dist = SharedU32s::filled(n * n, UNREACHABLE);
    let centrality = SharedU64s::new(n);
    let sources = TaskPool::new(threads, n / threads + 1, STEAL_SEED);
    let vertices = TaskPool::new(threads, n / threads + 1, STEAL_SEED ^ 1);
    for v in 0..n {
        let pushed = sources.push_plain(v % threads, v as u64)
            && vertices.push_plain(v % threads, v as u64);
        debug_assert!(pushed, "deques are sized for all vertices");
    }

    let outcome = machine.run(|ctx| {
        // Phase 1: APSP rows as stealable tasks.
        while !ctx.cancelled() {
            let Some(s) = sources.take_fixed(ctx) else { break };
            ctx.record_active(1);
            dijkstra_row(ctx, &shared, n, s as usize, &dist);
        }
        ctx.barrier();
        // Phase 2: per-vertex centrality tasks (dynamic, not chunked).
        while !ctx.cancelled() {
            let Some(v) = vertices.take_fixed(ctx) else { break };
            let v = v as usize;
            ctx.record_active(1);
            let mut count = 0u64;
            for s in 0..n {
                if s == v {
                    continue;
                }
                let sv = dist.get(ctx, s * n + v);
                if sv == UNREACHABLE {
                    continue;
                }
                for t in 0..n {
                    ctx.compute(costs::MIN_SCAN);
                    if t == v || t == s {
                        continue;
                    }
                    let vt = dist.get(ctx, v * n + t);
                    if vt == UNREACHABLE {
                        continue;
                    }
                    if sv + vt == dist.get(ctx, s * n + t) {
                        count += 1;
                    }
                }
            }
            if count > 0 {
                centrality.fetch_add(ctx, v, count);
            }
        }
    });
    AlgoOutcome {
        output: BetweennessOutput {
            centrality: centrality.to_vec(),
            dist: dist.to_vec(),
        },
        report: outcome.report,
    }
}

/// Result of a [`parallel_pipelined`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelinedBetweenness {
    /// `centrality[v]` = ordered `(s, t)` pairs with a shortest path
    /// through `v` (identical to [`BetweennessOutput::centrality`]).
    pub centrality: Vec<u64>,
    /// The APSP distance matrix (row-major).
    pub dist: Vec<u32>,
    /// Deterministic instruction total of the useful work (APSP rows,
    /// pair votes, and pair scans), independent of how the deques
    /// interleaved it. The serving engine charges this as the snapshot
    /// build cost; raw per-thread reports also include
    /// schedule-dependent steal probes, so they are not byte-stable.
    pub work: u64,
}

/// Betweenness centrality with the backward (dependency-accumulation)
/// phase *pipelined* against the forward APSP phase through the deques —
/// no barrier between them (closes the PR-5 item).
///
/// Restricted to **symmetric** matrices, where vertex `v` is interior to
/// the pair `{s, t}` iff `d(s,v) + d(t,v) == d(s,t)` — an identity that
/// needs only rows `s` and `t`. Each pool task computes one APSP row and
/// then votes on every pair it belongs to with a per-pair arrival
/// counter: `fetch_add` returning 1 means the other endpoint's row is
/// already done (the RMW's release sequence publishes it), so the
/// *second* arrival accumulates the pair inline — exactly once, while
/// other rows are still being computed. Each unordered hit contributes 2
/// (both orders), so the centralities equal [`parallel`]'s.
///
/// # Panics
///
/// Panics if the matrix has more than 16,384 vertices or is not
/// symmetric.
pub fn parallel_pipelined<M: Machine>(
    machine: &M,
    matrix: &AdjacencyMatrix,
) -> AlgoOutcome<PipelinedBetweenness> {
    match try_parallel_pipelined(machine, &RunOptions::default(), matrix) {
        Ok(outcome) => outcome,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`parallel_pipelined`]: the serving engine builds the
/// centrality snapshot through this so a faulted or hung machine
/// surfaces as a [`RunError`] (cancelling the consuming queries)
/// instead of unwinding the whole batch.
///
/// # Errors
///
/// Whatever [`Machine::try_run_with`] reports: a worker panic, the
/// watchdog timeout, or an unroutable mesh.
///
/// # Panics
///
/// Panics if the matrix has more than 16,384 vertices or is not
/// symmetric.
pub fn try_parallel_pipelined<M: Machine>(
    machine: &M,
    opts: &RunOptions,
    matrix: &AdjacencyMatrix,
) -> Result<AlgoOutcome<PipelinedBetweenness>, RunError> {
    let n = matrix.num_vertices();
    assert!(n <= 16_384, "BETW_CENT matrix capped at 16K vertices");
    for s in 0..n as u32 {
        for t in 0..s {
            assert!(
                matrix.get(s, t) == matrix.get(t, s),
                "pipelined betweenness needs a symmetric matrix"
            );
        }
    }
    let threads = machine.num_threads();
    let shared = ReadArray::new(matrix.as_slice());
    let dist = SharedU32s::filled(n * n, UNREACHABLE);
    let centrality = SharedU64s::new(n);
    // One arrival counter per unordered pair {lo, hi}, triangular-packed.
    let pair_votes = SharedU32s::new(n * n.saturating_sub(1) / 2);
    let rows = TaskPool::new(threads, n / threads + 1, STEAL_SEED);
    for s in 0..n {
        let pushed = rows.push_plain(s % threads, s as u64);
        debug_assert!(pushed, "deques are sized for all rows");
    }

    let outcome = machine.try_run_with(opts, |ctx| {
        let mut work = 0u64;
        while !ctx.cancelled() {
            let Some(s) = rows.take_fixed(ctx) else { break };
            let s = s as usize;
            ctx.record_active(1);
            let t0 = ctx.instructions();
            dijkstra_row(ctx, &shared, n, s, &dist);
            // Vote on every pair this row completes. The second arrival
            // owns the pair: its `fetch_add` observes the first, so both
            // rows are published and the scan can run immediately —
            // pipelined against the rows still in the deques.
            for y in 0..n {
                if y == s {
                    continue;
                }
                let (lo, hi) = (s.min(y), s.max(y));
                if pair_votes.fetch_add(ctx, hi * (hi - 1) / 2 + lo, 1) != 1 {
                    continue;
                }
                let c = dist.get(ctx, s * n + y);
                if c == UNREACHABLE {
                    continue;
                }
                for v in 0..n {
                    ctx.compute(costs::MIN_SCAN);
                    if v == s || v == y {
                        continue;
                    }
                    let a = dist.get(ctx, s * n + v);
                    if a == UNREACHABLE {
                        continue;
                    }
                    let b = dist.get(ctx, y * n + v);
                    if b == UNREACHABLE {
                        continue;
                    }
                    if a + b == c {
                        // Interior to both (s,y) and (y,s).
                        centrality.fetch_add(ctx, v, 2);
                    }
                }
            }
            work += ctx.instructions() - t0;
        }
        work
    })?;
    Ok(AlgoOutcome {
        output: PipelinedBetweenness {
            centrality: centrality.to_vec(),
            dist: dist.to_vec(),
            work: outcome.per_thread.iter().sum(),
        },
        report: outcome.report,
    })
}

/// Sequential reference (one thread).
///
/// # Panics
///
/// Panics if `machine.num_threads() != 1`.
pub fn sequential<M: Machine>(
    machine: &M,
    matrix: &AdjacencyMatrix,
) -> AlgoOutcome<BetweennessOutput> {
    assert_eq!(machine.num_threads(), 1, "sequential reference needs 1 thread");
    parallel(machine, matrix)
}

/// Brute-force oracle from a Floyd–Warshall matrix (not tracked).
pub fn reference(matrix: &AdjacencyMatrix) -> Vec<u64> {
    let n = matrix.num_vertices();
    let d = crate::apsp::floyd_warshall(matrix);
    let mut centrality = vec![0u64; n];
    for (v, c) in centrality.iter_mut().enumerate() {
        for s in 0..n {
            for t in 0..n {
                if s == v || t == v || s == t {
                    continue;
                }
                if d[s * n + v] != UNREACHABLE
                    && d[v * n + t] != UNREACHABLE
                    && d[s * n + v] + d[v * n + t] == d[s * n + t]
                {
                    *c += 1;
                }
            }
        }
    }
    centrality
}

#[cfg(test)]
mod tests {
    use super::*;
    use crono_graph::gen::uniform_random;
    use crono_runtime::NativeMachine;

    #[test]
    fn matches_brute_force() {
        let m = AdjacencyMatrix::from_csr(&uniform_random(32, 90, 7, 4));
        let out = parallel(&NativeMachine::new(4), &m);
        assert_eq!(out.output.centrality, reference(&m));
    }

    #[test]
    fn path_graph_center_has_max_centrality() {
        // 0 - 1 - 2 - 3 - 4: vertex 2 lies on the most pairs.
        let mut m = AdjacencyMatrix::new(5);
        for v in 0..4u32 {
            m.set(v, v + 1, 1);
            m.set(v + 1, v, 1);
        }
        let out = parallel(&NativeMachine::new(2), &m);
        let c = &out.output.centrality;
        assert_eq!(c[2], *c.iter().max().unwrap());
        assert_eq!(c[0], 0, "endpoints are never interior");
        // 1 is interior to (0,2), (0,3), (0,4) and reverses: 6 pairs.
        assert_eq!(c[1], 6);
    }

    #[test]
    fn star_graph_hub_dominates() {
        let mut m = AdjacencyMatrix::new(6);
        for leaf in 1..6u32 {
            m.set(0, leaf, 1);
            m.set(leaf, 0, 1);
        }
        let out = parallel(&NativeMachine::new(3), &m);
        // Hub is interior to all 5*4 = 20 ordered leaf pairs.
        assert_eq!(out.output.centrality[0], 20);
        assert!(out.output.centrality[1..].iter().all(|&c| c == 0));
    }

    #[test]
    fn steal_variant_matches_default_at_every_thread_count() {
        let m = AdjacencyMatrix::from_csr(&uniform_random(32, 90, 7, 6));
        let expect = reference(&m);
        for threads in [1, 2, 4, 8] {
            let out = parallel_steal(&NativeMachine::new(threads), &m);
            assert_eq!(out.output.centrality, expect, "threads={threads}");
        }
    }

    #[test]
    fn thread_count_invariant() {
        let m = AdjacencyMatrix::from_csr(&uniform_random(24, 60, 5, 9));
        let a = parallel(&NativeMachine::new(1), &m);
        let b = parallel(&NativeMachine::new(8), &m);
        assert_eq!(a.output.centrality, b.output.centrality);
        assert_eq!(a.output.dist, b.output.dist);
    }

    #[test]
    fn pipelined_matches_reference_at_every_thread_count() {
        // uniform_random graphs are stored symmetrically, so the
        // pairwise decomposition applies.
        let m = AdjacencyMatrix::from_csr(&uniform_random(32, 90, 7, 4));
        let expect = reference(&m);
        for threads in [1, 2, 4, 8] {
            let out = parallel_pipelined(&NativeMachine::new(threads), &m);
            assert_eq!(out.output.centrality, expect, "threads={threads}");
        }
    }

    #[test]
    fn pipelined_on_path_and_star_fixtures() {
        let mut path = AdjacencyMatrix::new(5);
        for v in 0..4u32 {
            path.set(v, v + 1, 1);
            path.set(v + 1, v, 1);
        }
        let out = parallel_pipelined(&NativeMachine::new(2), &path);
        assert_eq!(out.output.centrality, reference(&path));
        assert_eq!(out.output.centrality[1], 6);

        let mut star = AdjacencyMatrix::new(6);
        for leaf in 1..6u32 {
            star.set(0, leaf, 1);
            star.set(leaf, 0, 1);
        }
        let out = parallel_pipelined(&NativeMachine::new(3), &star);
        assert_eq!(out.output.centrality[0], 20);
        assert!(out.output.centrality[1..].iter().all(|&c| c == 0));
    }

    #[test]
    fn pipelined_work_is_schedule_independent() {
        // The useful-work total must not depend on which worker won
        // which pair, or on the machine width — it is the deterministic
        // cost the serving engine charges for a centrality snapshot.
        let m = AdjacencyMatrix::from_csr(&uniform_random(28, 80, 6, 13));
        let base = parallel_pipelined(&NativeMachine::new(1), &m).output.work;
        assert!(base > 0);
        for threads in [1, 2, 4, 8] {
            for _ in 0..2 {
                let out = parallel_pipelined(&NativeMachine::new(threads), &m);
                assert_eq!(out.output.work, base, "threads={threads}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn pipelined_rejects_directed_matrices() {
        let mut m = AdjacencyMatrix::new(3);
        m.set(0, 1, 1); // no reverse edge
        parallel_pipelined(&NativeMachine::new(2), &m);
    }
}
