//! `SSSP_DIJK` — single-source shortest paths (§III-1).
//!
//! The sequential reference is Dijkstra's algorithm with a binary heap.
//! The parallel version uses CRONO's *graph division* strategy over
//! dynamically opened **pareto fronts**: each round, the current frontier
//! is statically divided amongst threads; relaxations update the shared
//! distance array under per-vertex (striped) atomic locks, activating the
//! next front; a barrier ends the round. Road-network-style graphs with
//! few neighbors per vertex make this outer-loop parallelization
//! effective (§III-1), but the lock traffic and barriers bound its
//! scaling — the paper measures only 4.45× at 256 threads.

use crate::graph_view::{chunk, SharedGraph};
use crate::{costs, AlgoOutcome};
use crono_graph::{CsrGraph, VertexId};
use crono_runtime::{
    LockSet, Machine, SharedBitmap, SharedFlags, SharedU32s, SharedU64s, SlidingQueue, ThreadCtx,
    TrackedVec,
};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Distance assigned to unreachable vertices. Chosen so one edge-weight
/// addition cannot overflow `u32`.
pub const UNREACHABLE: u32 = u32::MAX / 4;

/// Result of an SSSP run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SsspOutput {
    /// `dist[v]` = weight of the shortest path from the source to `v`
    /// ([`UNREACHABLE`] if none).
    pub dist: Vec<u32>,
    /// Rounds (pareto fronts) the parallel algorithm processed; 1 for the
    /// sequential reference.
    pub rounds: u32,
}

/// Sequential Dijkstra with a binary heap, reported through `ctx`.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn run_seq<C: ThreadCtx>(ctx: &mut C, graph: &SharedGraph<'_>, source: VertexId) -> Vec<u32> {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source vertex out of range");
    let mut dist = TrackedVec::filled(n, UNREACHABLE);
    let mut done = TrackedVec::filled(n, false);
    dist.set(ctx, source as usize, 0);
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0u32, source)));
    while let Some(Reverse((d, v))) = heap.pop() {
        // Uncharged poll: lets a cancelled (or over-budget, see
        // `crono_runtime::BudgetCtx`) query drain out early without
        // changing what a completed run charges.
        if ctx.cancelled() {
            break;
        }
        ctx.compute(costs::HEAP_OP);
        if done.get(ctx, v as usize) {
            continue;
        }
        done.set(ctx, v as usize, true);
        ctx.record_active(heap.len() as u64 + 1);
        for e in graph.edge_range(ctx, v) {
            let (u, w) = graph.edge(ctx, e);
            ctx.compute(costs::RELAX);
            let nd = d + w;
            if nd < dist.get(ctx, u as usize) {
                dist.set(ctx, u as usize, nd);
                ctx.compute(costs::HEAP_OP);
                heap.push(Reverse((nd, u)));
            }
        }
    }
    dist.into_vec()
}

/// Runs the sequential reference on a one-thread machine.
///
/// # Panics
///
/// Panics if `machine.num_threads() != 1` or `source` is out of range.
pub fn sequential<M: Machine>(
    machine: &M,
    graph: &CsrGraph,
    source: VertexId,
) -> AlgoOutcome<SsspOutput> {
    assert_eq!(
        machine.num_threads(),
        1,
        "sequential reference needs a one-thread machine"
    );
    let shared = SharedGraph::new(graph);
    let mut outcome = machine.run(|ctx| run_seq(ctx, &shared, source));
    AlgoOutcome {
        output: SsspOutput {
            dist: outcome.per_thread.pop().expect("one thread ran"),
            rounds: 1,
        },
        report: outcome.report,
    }
}

/// Parallel SSSP: graph division over pareto fronts (Table I).
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn parallel<M: Machine>(
    machine: &M,
    graph: &CsrGraph,
    source: VertexId,
) -> AlgoOutcome<SsspOutput> {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source vertex out of range");
    let shared = SharedGraph::new(graph);
    let dist = SharedU32s::filled(n, UNREACHABLE);
    dist.set_plain(source as usize, 0);
    // Ping-pong frontiers plus rotating round-activation counters.
    let fronts = [SharedFlags::new(n), SharedFlags::new(n)];
    fronts[0].set_plain(source as usize, true);
    let activations = SharedU64s::new(3);
    let locks = LockSet::new(n.min(8192));

    let rounds_done = machine.run(|ctx| {
        let tid = ctx.thread_id();
        let nthreads = ctx.num_threads();
        let mut round = 0usize;
        loop {
            if ctx.cancelled() {
                break;
            }
            ctx.span_begin("sssp:round");
            let cur = &fronts[round % 2];
            let next = &fronts[(round + 1) % 2];
            // Prepare the counter two rounds ahead (rotation keeps the
            // slot being read this round untouched).
            activations.set(ctx, (round + 2) % 3, 0);
            let mut processed = 0u64;
            let mut activated = 0u64;
            // As in the C suite, every thread scans the full frontier
            // array and processes the vertices it owns (graph division
            // by striping) — the shared scan is the non-parallelizable
            // component that bounds SSSP's scaling.
            for v in 0..n {
                if !cur.get(ctx, v) {
                    continue;
                }
                if v % nthreads != tid {
                    continue;
                }
                cur.set(ctx, v, false);
                processed += 1;
                ctx.compute(costs::VISIT);
                let dv = dist.get(ctx, v);
                for e in shared.edge_range(ctx, v as VertexId) {
                    let (u, w) = shared.edge(ctx, e);
                    ctx.compute(costs::RELAX);
                    let nd = dv + w;
                    // Test, then lock-guarded test-and-set: CRONO updates
                    // "vertex path costs using atomic locks".
                    if nd < dist.get(ctx, u as usize) {
                        ctx.lock_for(&locks, u as usize);
                        if nd < dist.get(ctx, u as usize) {
                            dist.set(ctx, u as usize, nd);
                            if !next.get(ctx, u as usize) {
                                next.set(ctx, u as usize, true);
                                activated += 1;
                            }
                        }
                        ctx.unlock_for(&locks, u as usize);
                    }
                }
            }
            if processed > 0 {
                ctx.record_active(processed);
            }
            if activated > 0 {
                activations.fetch_add(ctx, (round + 1) % 3, activated);
            }
            ctx.barrier();
            let frontier_empty = activations.get(ctx, (round + 1) % 3) == 0;
            ctx.span_end("sssp:round");
            if frontier_empty {
                break;
            }
            round += 1;
        }
        round as u32 + 1
    });
    AlgoOutcome {
        output: SsspOutput {
            dist: dist.to_vec(),
            rounds: rounds_done.per_thread[0],
        },
        report: rounds_done.report,
    }
}

/// Parallel SSSP with a word-packed frontier — the `frontier_repr`
/// ablation (GAP-style bitmap, PR 3).
///
/// Identical relaxation algorithm to [`parallel`], but both pareto-front
/// arrays are [`SharedBitmap`]s: the per-round scan skips 64 inactive
/// vertices per simulated load, and next-front activation uses the
/// word-level `test_and_set` instead of a byte check-then-store (still
/// under the distance lock, so the activation count is unchanged).
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn parallel_bitmap<M: Machine>(
    machine: &M,
    graph: &CsrGraph,
    source: VertexId,
) -> AlgoOutcome<SsspOutput> {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source vertex out of range");
    let shared = SharedGraph::new(graph);
    let dist = SharedU32s::filled(n, UNREACHABLE);
    dist.set_plain(source as usize, 0);
    let fronts = [SharedBitmap::new(n), SharedBitmap::new(n)];
    fronts[0].set_plain(source as usize);
    let activations = SharedU64s::new(3);
    let locks = LockSet::new(n.min(8192));

    let rounds_done = machine.run(|ctx| {
        let tid = ctx.thread_id();
        let nthreads = ctx.num_threads();
        let mut round = 0usize;
        loop {
            if ctx.cancelled() {
                break;
            }
            ctx.span_begin("sssp:round");
            let cur = &fronts[round % 2];
            let next = &fronts[(round + 1) % 2];
            activations.set(ctx, (round + 2) % 3, 0);
            let mut processed = 0u64;
            let mut activated = 0u64;
            // Word-skipping scan over the packed front; ownership
            // striping and locking are unchanged from `parallel`.
            let mut pos = 0;
            while let Some(v) = cur.find_set_from(ctx, pos) {
                pos = v + 1;
                if v % nthreads != tid {
                    continue;
                }
                cur.clear(ctx, v);
                processed += 1;
                ctx.compute(costs::VISIT);
                let dv = dist.get(ctx, v);
                for e in shared.edge_range(ctx, v as VertexId) {
                    let (u, w) = shared.edge(ctx, e);
                    ctx.compute(costs::RELAX);
                    let nd = dv + w;
                    if nd < dist.get(ctx, u as usize) {
                        ctx.lock_for(&locks, u as usize);
                        if nd < dist.get(ctx, u as usize) {
                            dist.set(ctx, u as usize, nd);
                            if !next.test_and_set(ctx, u as usize) {
                                activated += 1;
                            }
                        }
                        ctx.unlock_for(&locks, u as usize);
                    }
                }
            }
            if processed > 0 {
                ctx.record_active(processed);
            }
            if activated > 0 {
                activations.fetch_add(ctx, (round + 1) % 3, activated);
            }
            ctx.barrier();
            let frontier_empty = activations.get(ctx, (round + 1) % 3) == 0;
            ctx.span_end("sssp:round");
            if frontier_empty {
                break;
            }
            round += 1;
        }
        round as u32 + 1
    });
    AlgoOutcome {
        output: SsspOutput {
            dist: dist.to_vec(),
            rounds: rounds_done.per_thread[0],
        },
        report: rounds_done.report,
    }
}

/// Parallel SSSP with *inner-loop* parallelization — the paper's §III-1
/// alternative strategy: the frontier is walked identically by every
/// thread, each vertex's adjacency list is statically divided amongst
/// threads, and "a barrier is required ... to hop to the next vertex in
/// each iteration".
///
/// Real-world graphs "are known to have a small number of neighboring
/// vertices, and hence the outer loop parallelization works well in
/// these cases" — this variant exists to *demonstrate* that claim (the
/// `ablation_sssp_strategy` bench compares the two).
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn parallel_inner<M: Machine>(
    machine: &M,
    graph: &CsrGraph,
    source: VertexId,
) -> AlgoOutcome<SsspOutput> {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source vertex out of range");
    let shared = SharedGraph::new(graph);
    let dist = SharedU32s::filled(n, UNREACHABLE);
    dist.set_plain(source as usize, 0);
    let fronts = [SharedFlags::new(n), SharedFlags::new(n)];
    fronts[0].set_plain(source as usize, true);
    let activations = SharedU64s::new(3);
    let locks = LockSet::new(n.min(8192));

    let rounds_done = machine.run(|ctx| {
        let tid = ctx.thread_id();
        let nthreads = ctx.num_threads();
        let mut round = 0usize;
        let mut processed: Vec<usize> = Vec::new();
        loop {
            if ctx.cancelled() {
                break;
            }
            let cur = &fronts[round % 2];
            let next = &fronts[(round + 1) % 2];
            activations.set(ctx, (round + 2) % 3, 0);
            let mut activated = 0u64;
            processed.clear();
            // Every thread walks the same frontier sequence; only the
            // inner (neighbor) loop is divided.
            for v in 0..n {
                if !cur.get(ctx, v) {
                    continue;
                }
                processed.push(v);
                ctx.compute(costs::VISIT);
                let dv = dist.get(ctx, v);
                ctx.record_active(1);
                let range = shared.edge_range(ctx, v as VertexId);
                for (k, e) in range.enumerate() {
                    if k % nthreads != tid {
                        continue;
                    }
                    let (u, w) = shared.edge(ctx, e);
                    ctx.compute(costs::RELAX);
                    let nd = dv + w;
                    if nd < dist.get(ctx, u as usize) {
                        ctx.lock_for(&locks, u as usize);
                        if nd < dist.get(ctx, u as usize) {
                            dist.set(ctx, u as usize, nd);
                            if !next.get(ctx, u as usize) {
                                next.set(ctx, u as usize, true);
                                activated += 1;
                            }
                        }
                        ctx.unlock_for(&locks, u as usize);
                    }
                }
                // "a barrier is required ... to hop to the next vertex".
                ctx.barrier();
            }
            // Clear the processed frontier (striped; everyone has passed
            // the last per-vertex barrier, so no scan still reads these).
            for &v in &processed {
                if v % nthreads == tid {
                    cur.set(ctx, v, false);
                }
            }
            if activated > 0 {
                activations.fetch_add(ctx, (round + 1) % 3, activated);
            }
            ctx.barrier();
            if activations.get(ctx, (round + 1) % 3) == 0 {
                break;
            }
            round += 1;
        }
        round as u32 + 1
    });
    AlgoOutcome {
        output: SsspOutput {
            dist: dist.to_vec(),
            rounds: rounds_done.per_thread[0],
        },
        report: rounds_done.report,
    }
}

/// Picks the delta-stepping bucket width: the mean edge weight, clamped
/// to at least 1. A width near the average weight keeps light buckets
/// busy without serializing into one-vertex Dijkstra steps. Computed
/// outside the timed region.
fn pick_delta(graph: &CsrGraph) -> u32 {
    let mut total = 0u64;
    let mut count = 0u64;
    for v in 0..graph.num_vertices() as VertexId {
        for (_, w) in graph.neighbors(v) {
            total += w as u64;
            count += 1;
        }
    }
    if count == 0 {
        1
    } else {
        ((total / count) as u32).max(1)
    }
}

/// Splits `graph` into its light (`w <= delta`) and heavy (`w > delta`)
/// edge sub-CSRs. Built outside the timed region, like the transpose the
/// pull kernels precompute.
fn split_by_weight(graph: &CsrGraph, delta: u32) -> (CsrGraph, CsrGraph) {
    let n = graph.num_vertices();
    let mut light = Vec::new();
    let mut heavy = Vec::new();
    for v in 0..n as VertexId {
        for (u, w) in graph.neighbors(v) {
            if w <= delta {
                light.push((v, u, w));
            } else {
                heavy.push((v, u, w));
            }
        }
    }
    (CsrGraph::from_edges(n, light), CsrGraph::from_edges(n, heavy))
}

/// Parallel SSSP by *delta-stepping* (Meyer & Sanders; the GAP-style
/// `delta_sssp` ablation) over [`SlidingQueue`] bucket frontiers.
///
/// Tentative distances are grouped into buckets of width `delta` (the
/// mean edge weight). Each bucket is drained by barrier-synchronous
/// *light* iterations that relax only edges with `w <= delta` — an
/// improved vertex whose new distance stays inside the bucket re-enters
/// the current frontier window, one outside it is parked in a pending
/// queue (deduplicated by a membership bitmap; a vertex is parked at
/// most once, redistribution always re-reads its fresh distance). Once
/// the bucket stops changing, every vertex it settled relaxes its
/// *heavy* edges exactly once — those can only land in later buckets —
/// and the pending entries are redistributed in two statically-divided
/// passes: a `fetch_min` vote picks the next non-empty bucket, then
/// entries move either into the new frontier or into the ping-pong
/// pending queue. Distance updates reuse the striped-lock relaxation of
/// [`parallel`], so the result is bit-identical to the sequential
/// Dijkstra reference; `rounds` reports the number of buckets drained.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn parallel_delta<M: Machine>(
    machine: &M,
    graph: &CsrGraph,
    source: VertexId,
) -> AlgoOutcome<SsspOutput> {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source vertex out of range");
    let m = graph.num_directed_edges();
    let delta = pick_delta(graph);
    let (light, heavy) = split_by_weight(graph, delta);
    let light = SharedGraph::new(&light);
    let heavy = SharedGraph::new(&heavy);
    let dist = SharedU32s::filled(n, UNREACHABLE);
    dist.set_plain(source as usize, 0);
    // Current-bucket frontier (reset once per bucket), ping-pong pending
    // queues (at most one live entry per vertex, so capacity n), and the
    // once-per-vertex settled log the heavy phase drains.
    let cur = SlidingQueue::new(2 * m + n + 64);
    cur.push_plain(source);
    let pend = [SlidingQueue::new(n + 64), SlidingQueue::new(n + 64)];
    let pending_mark = SharedBitmap::new(n);
    let settled = SlidingQueue::new(n + 64);
    let settled_mark = SharedBitmap::new(n);
    let next_min = SharedU64s::filled(1, u64::MAX);
    let locks = LockSet::new(n.min(8192));

    let rounds_done = machine.run(|ctx| {
        let tid = ctx.thread_id();
        let nthreads = ctx.num_threads();
        let mut k = 0u64;
        let mut a = 0usize;
        let mut buckets = 0u32;
        loop {
            if ctx.cancelled() {
                break;
            }
            ctx.span_begin("sssp:bucket");
            buckets += 1;
            // All finite distances stay below UNREACHABLE, so capping the
            // bucket boundary there is harmless and overflow-free.
            let bucket_end = ((k + 1) * delta as u64).min(UNREACHABLE as u64) as u32;
            // Light iterations: drain successive frontier windows until
            // one comes up empty. Every push lands beyond the window
            // being drained, so a slide between barriers opens exactly
            // the entries the previous iteration produced.
            loop {
                if tid == 0 {
                    cur.slide(ctx);
                }
                ctx.barrier();
                let w = cur.window(ctx);
                if w.is_empty() {
                    break;
                }
                let len = w.end - w.start;
                let mut processed = 0u64;
                for i in chunk(len, tid, nthreads) {
                    let v = cur.get(ctx, w.start + i) as usize;
                    ctx.compute(costs::VISIT);
                    let dv = dist.get(ctx, v);
                    if dv >= bucket_end {
                        continue;
                    }
                    processed += 1;
                    if !settled_mark.get(ctx, v) && !settled_mark.test_and_set(ctx, v) {
                        settled.push(ctx, v as u32);
                    }
                    for e in light.edge_range(ctx, v as VertexId) {
                        let (u, wt) = light.edge(ctx, e);
                        ctx.compute(costs::RELAX);
                        let nd = dv + wt;
                        if nd < dist.get(ctx, u as usize) {
                            ctx.lock_for(&locks, u as usize);
                            if nd < dist.get(ctx, u as usize) {
                                dist.set(ctx, u as usize, nd);
                                if nd < bucket_end {
                                    cur.push(ctx, u);
                                } else if !pending_mark.get(ctx, u as usize)
                                    && !pending_mark.test_and_set(ctx, u as usize)
                                {
                                    pend[a].push(ctx, u);
                                }
                            }
                            ctx.unlock_for(&locks, u as usize);
                        }
                    }
                }
                if processed > 0 {
                    ctx.record_active(processed);
                }
                ctx.barrier();
            }
            // Heavy phase: everything this bucket settled relaxes its
            // heavy edges exactly once (`w > delta` forces the target
            // past the bucket boundary, so successes park in `pend`).
            // The frontier is fully drained, so tid 0 reclaims it.
            if tid == 0 {
                settled.slide(ctx);
                cur.reset(ctx);
            }
            ctx.barrier();
            let sw = settled.window(ctx);
            let slen = sw.end - sw.start;
            let mut hprocessed = 0u64;
            for i in chunk(slen, tid, nthreads) {
                let v = settled.get(ctx, sw.start + i) as usize;
                ctx.compute(costs::VISIT);
                let dv = dist.get(ctx, v);
                hprocessed += 1;
                for e in heavy.edge_range(ctx, v as VertexId) {
                    let (u, wt) = heavy.edge(ctx, e);
                    ctx.compute(costs::RELAX);
                    let nd = dv + wt;
                    if nd < dist.get(ctx, u as usize) {
                        ctx.lock_for(&locks, u as usize);
                        if nd < dist.get(ctx, u as usize) {
                            dist.set(ctx, u as usize, nd);
                            if !pending_mark.get(ctx, u as usize)
                                && !pending_mark.test_and_set(ctx, u as usize)
                            {
                                pend[a].push(ctx, u);
                            }
                        }
                        ctx.unlock_for(&locks, u as usize);
                    }
                }
            }
            if hprocessed > 0 {
                ctx.record_active(hprocessed);
            }
            ctx.barrier();
            // Redistribution: vote on the next non-empty bucket, then
            // move live pending entries to the frontier or the other
            // pending queue. Settled entries are stale and dropped.
            if tid == 0 {
                pend[a].slide(ctx);
                next_min.set(ctx, 0, u64::MAX);
            }
            ctx.barrier();
            let pw = pend[a].window(ctx);
            let plen = pw.end - pw.start;
            if plen == 0 {
                ctx.span_end("sssp:bucket");
                break;
            }
            for i in chunk(plen, tid, nthreads) {
                let v = pend[a].get(ctx, pw.start + i) as usize;
                ctx.compute(costs::VISIT);
                if settled_mark.get(ctx, v) {
                    continue;
                }
                let dv = dist.get(ctx, v);
                next_min.fetch_min(ctx, 0, dv as u64 / delta as u64);
            }
            ctx.barrier();
            let k2 = next_min.get(ctx, 0);
            if k2 == u64::MAX {
                ctx.span_end("sssp:bucket");
                break;
            }
            for i in chunk(plen, tid, nthreads) {
                let v = pend[a].get(ctx, pw.start + i) as usize;
                if settled_mark.get(ctx, v) {
                    continue;
                }
                let dv = dist.get(ctx, v);
                if dv as u64 / delta as u64 == k2 {
                    cur.push(ctx, v as u32);
                } else {
                    pend[1 - a].push(ctx, v as u32);
                }
            }
            ctx.barrier();
            if tid == 0 {
                pend[a].reset(ctx);
            }
            ctx.span_end("sssp:bucket");
            k = k2;
            a = 1 - a;
        }
        buckets
    });
    AlgoOutcome {
        output: SsspOutput {
            dist: dist.to_vec(),
            rounds: rounds_done.per_thread[0],
        },
        report: rounds_done.report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crono_graph::gen::{road_network, uniform_random};
    use crono_runtime::NativeMachine;

    /// Bellman-Ford oracle.
    fn reference(graph: &CsrGraph, source: VertexId) -> Vec<u32> {
        let n = graph.num_vertices();
        let mut dist = vec![UNREACHABLE; n];
        dist[source as usize] = 0;
        for _ in 0..n {
            let mut changed = false;
            for v in 0..n as VertexId {
                if dist[v as usize] == UNREACHABLE {
                    continue;
                }
                for (u, w) in graph.neighbors(v) {
                    let nd = dist[v as usize] + w;
                    if nd < dist[u as usize] {
                        dist[u as usize] = nd;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        dist
    }

    #[test]
    fn sequential_matches_bellman_ford() {
        let g = uniform_random(128, 512, 16, 3);
        let out = sequential(&NativeMachine::new(1), &g, 0);
        assert_eq!(out.output.dist, reference(&g, 0));
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = uniform_random(256, 1024, 32, 5);
        let seq = sequential(&NativeMachine::new(1), &g, 7);
        for threads in [1, 2, 4, 8] {
            let par = parallel(&NativeMachine::new(threads), &g, 7);
            assert_eq!(par.output.dist, seq.output.dist, "threads={threads}");
            assert!(par.output.rounds >= 1);
        }
    }

    #[test]
    fn road_network_distances_correct() {
        let g = road_network(12, 12, 8, 0.2, 0.05, 9);
        let par = parallel(&NativeMachine::new(4), &g, 0);
        assert_eq!(par.output.dist, reference(&g, 0));
    }

    #[test]
    fn disconnected_vertices_stay_unreachable() {
        let g = CsrGraph::from_edges(3, vec![(0, 1, 4), (1, 0, 4)]);
        let out = parallel(&NativeMachine::new(2), &g, 0);
        assert_eq!(out.output.dist, vec![0, 4, UNREACHABLE]);
    }

    #[test]
    fn source_distance_is_zero_and_triangle_inequality() {
        let g = uniform_random(64, 256, 8, 11);
        let out = parallel(&NativeMachine::new(3), &g, 5);
        assert_eq!(out.output.dist[5], 0);
        for v in 0..64u32 {
            for (u, w) in g.neighbors(v) {
                assert!(
                    out.output.dist[u as usize] <= out.output.dist[v as usize].saturating_add(w),
                    "edge ({v},{u}) violates triangle inequality"
                );
            }
        }
    }

    #[test]
    fn bitmap_variant_matches_bellman_ford() {
        let g = uniform_random(256, 1024, 32, 5);
        let oracle = reference(&g, 7);
        for threads in [1, 2, 4, 8] {
            let par = parallel_bitmap(&NativeMachine::new(threads), &g, 7);
            assert_eq!(par.output.dist, oracle, "threads={threads}");
            assert!(par.output.rounds >= 1);
        }
    }

    #[test]
    fn inner_loop_variant_matches_outer_loop() {
        let g = uniform_random(128, 512, 16, 6);
        let outer = parallel(&NativeMachine::new(4), &g, 2);
        for threads in [1, 3, 4] {
            let inner = parallel_inner(&NativeMachine::new(threads), &g, 2);
            assert_eq!(inner.output.dist, outer.output.dist, "threads={threads}");
        }
    }

    #[test]
    fn inner_loop_variant_on_road_network() {
        let g = road_network(10, 10, 8, 0.2, 0.05, 3);
        let seq = sequential(&NativeMachine::new(1), &g, 0);
        let inner = parallel_inner(&NativeMachine::new(4), &g, 0);
        assert_eq!(inner.output.dist, seq.output.dist);
    }

    #[test]
    fn delta_stepping_matches_sequential() {
        let g = uniform_random(256, 1024, 32, 5);
        let seq = sequential(&NativeMachine::new(1), &g, 7);
        for threads in [1, 2, 4, 8] {
            let par = parallel_delta(&NativeMachine::new(threads), &g, 7);
            assert_eq!(par.output.dist, seq.output.dist, "threads={threads}");
            assert!(par.output.rounds >= 1);
        }
    }

    #[test]
    fn delta_stepping_on_road_network() {
        let g = road_network(12, 12, 8, 0.2, 0.05, 9);
        let oracle = reference(&g, 0);
        for threads in [1, 4] {
            let par = parallel_delta(&NativeMachine::new(threads), &g, 0);
            assert_eq!(par.output.dist, oracle, "threads={threads}");
        }
    }

    #[test]
    fn delta_stepping_disconnected_and_uniform_weights() {
        // Disconnected vertices stay unreachable.
        let g = CsrGraph::from_edges(3, vec![(0, 1, 4), (1, 0, 4)]);
        let out = parallel_delta(&NativeMachine::new(2), &g, 0);
        assert_eq!(out.output.dist, vec![0, 4, UNREACHABLE]);
        // All-equal weights: every edge is light, the heavy phase is a
        // no-op, and the kernel degenerates to bucketed Bellman-Ford.
        let g = uniform_random(128, 512, 1, 6);
        let oracle = reference(&g, 2);
        let out = parallel_delta(&NativeMachine::new(4), &g, 2);
        assert_eq!(out.output.dist, oracle);
    }

    #[test]
    fn delta_stepping_uses_multiple_buckets() {
        // Wide weight spread forces several non-empty buckets.
        let g = uniform_random(256, 1024, 64, 8);
        let out = parallel_delta(&NativeMachine::new(4), &g, 0);
        assert_eq!(out.output.dist, reference(&g, 0));
        assert!(out.output.rounds >= 2, "got {} buckets", out.output.rounds);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn delta_bad_source_rejected() {
        let g = uniform_random(8, 12, 4, 0);
        parallel_delta(&NativeMachine::new(2), &g, 100);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_source_rejected() {
        let g = uniform_random(8, 12, 4, 0);
        parallel(&NativeMachine::new(2), &g, 100);
    }
}
