//! `SSSP_DIJK` — single-source shortest paths (§III-1).
//!
//! The sequential reference is Dijkstra's algorithm with a binary heap.
//! The parallel version uses CRONO's *graph division* strategy over
//! dynamically opened **pareto fronts**: each round, the current frontier
//! is statically divided amongst threads; relaxations update the shared
//! distance array under per-vertex (striped) atomic locks, activating the
//! next front; a barrier ends the round. Road-network-style graphs with
//! few neighbors per vertex make this outer-loop parallelization
//! effective (§III-1), but the lock traffic and barriers bound its
//! scaling — the paper measures only 4.45× at 256 threads.

use crate::graph_view::SharedGraph;
use crate::{costs, AlgoOutcome};
use crono_graph::{CsrGraph, VertexId};
use crono_runtime::{
    LockSet, Machine, SharedBitmap, SharedFlags, SharedU32s, SharedU64s, ThreadCtx, TrackedVec,
};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Distance assigned to unreachable vertices. Chosen so one edge-weight
/// addition cannot overflow `u32`.
pub const UNREACHABLE: u32 = u32::MAX / 4;

/// Result of an SSSP run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SsspOutput {
    /// `dist[v]` = weight of the shortest path from the source to `v`
    /// ([`UNREACHABLE`] if none).
    pub dist: Vec<u32>,
    /// Rounds (pareto fronts) the parallel algorithm processed; 1 for the
    /// sequential reference.
    pub rounds: u32,
}

/// Sequential Dijkstra with a binary heap, reported through `ctx`.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn run_seq<C: ThreadCtx>(ctx: &mut C, graph: &SharedGraph<'_>, source: VertexId) -> Vec<u32> {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source vertex out of range");
    let mut dist = TrackedVec::filled(n, UNREACHABLE);
    let mut done = TrackedVec::filled(n, false);
    dist.set(ctx, source as usize, 0);
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0u32, source)));
    while let Some(Reverse((d, v))) = heap.pop() {
        // Uncharged poll: lets a cancelled (or over-budget, see
        // `crono_runtime::BudgetCtx`) query drain out early without
        // changing what a completed run charges.
        if ctx.cancelled() {
            break;
        }
        ctx.compute(costs::HEAP_OP);
        if done.get(ctx, v as usize) {
            continue;
        }
        done.set(ctx, v as usize, true);
        ctx.record_active(heap.len() as u64 + 1);
        for e in graph.edge_range(ctx, v) {
            let (u, w) = graph.edge(ctx, e);
            ctx.compute(costs::RELAX);
            let nd = d + w;
            if nd < dist.get(ctx, u as usize) {
                dist.set(ctx, u as usize, nd);
                ctx.compute(costs::HEAP_OP);
                heap.push(Reverse((nd, u)));
            }
        }
    }
    dist.into_vec()
}

/// Runs the sequential reference on a one-thread machine.
///
/// # Panics
///
/// Panics if `machine.num_threads() != 1` or `source` is out of range.
pub fn sequential<M: Machine>(
    machine: &M,
    graph: &CsrGraph,
    source: VertexId,
) -> AlgoOutcome<SsspOutput> {
    assert_eq!(
        machine.num_threads(),
        1,
        "sequential reference needs a one-thread machine"
    );
    let shared = SharedGraph::new(graph);
    let mut outcome = machine.run(|ctx| run_seq(ctx, &shared, source));
    AlgoOutcome {
        output: SsspOutput {
            dist: outcome.per_thread.pop().expect("one thread ran"),
            rounds: 1,
        },
        report: outcome.report,
    }
}

/// Parallel SSSP: graph division over pareto fronts (Table I).
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn parallel<M: Machine>(
    machine: &M,
    graph: &CsrGraph,
    source: VertexId,
) -> AlgoOutcome<SsspOutput> {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source vertex out of range");
    let shared = SharedGraph::new(graph);
    let dist = SharedU32s::filled(n, UNREACHABLE);
    dist.set_plain(source as usize, 0);
    // Ping-pong frontiers plus rotating round-activation counters.
    let fronts = [SharedFlags::new(n), SharedFlags::new(n)];
    fronts[0].set_plain(source as usize, true);
    let activations = SharedU64s::new(3);
    let locks = LockSet::new(n.min(8192));

    let rounds_done = machine.run(|ctx| {
        let tid = ctx.thread_id();
        let nthreads = ctx.num_threads();
        let mut round = 0usize;
        loop {
            if ctx.cancelled() {
                break;
            }
            ctx.span_begin("sssp:round");
            let cur = &fronts[round % 2];
            let next = &fronts[(round + 1) % 2];
            // Prepare the counter two rounds ahead (rotation keeps the
            // slot being read this round untouched).
            activations.set(ctx, (round + 2) % 3, 0);
            let mut processed = 0u64;
            let mut activated = 0u64;
            // As in the C suite, every thread scans the full frontier
            // array and processes the vertices it owns (graph division
            // by striping) — the shared scan is the non-parallelizable
            // component that bounds SSSP's scaling.
            for v in 0..n {
                if !cur.get(ctx, v) {
                    continue;
                }
                if v % nthreads != tid {
                    continue;
                }
                cur.set(ctx, v, false);
                processed += 1;
                ctx.compute(costs::VISIT);
                let dv = dist.get(ctx, v);
                for e in shared.edge_range(ctx, v as VertexId) {
                    let (u, w) = shared.edge(ctx, e);
                    ctx.compute(costs::RELAX);
                    let nd = dv + w;
                    // Test, then lock-guarded test-and-set: CRONO updates
                    // "vertex path costs using atomic locks".
                    if nd < dist.get(ctx, u as usize) {
                        ctx.lock_for(&locks, u as usize);
                        if nd < dist.get(ctx, u as usize) {
                            dist.set(ctx, u as usize, nd);
                            if !next.get(ctx, u as usize) {
                                next.set(ctx, u as usize, true);
                                activated += 1;
                            }
                        }
                        ctx.unlock_for(&locks, u as usize);
                    }
                }
            }
            if processed > 0 {
                ctx.record_active(processed);
            }
            if activated > 0 {
                activations.fetch_add(ctx, (round + 1) % 3, activated);
            }
            ctx.barrier();
            let frontier_empty = activations.get(ctx, (round + 1) % 3) == 0;
            ctx.span_end("sssp:round");
            if frontier_empty {
                break;
            }
            round += 1;
        }
        round as u32 + 1
    });
    AlgoOutcome {
        output: SsspOutput {
            dist: dist.to_vec(),
            rounds: rounds_done.per_thread[0],
        },
        report: rounds_done.report,
    }
}

/// Parallel SSSP with a word-packed frontier — the `frontier_repr`
/// ablation (GAP-style bitmap, PR 3).
///
/// Identical relaxation algorithm to [`parallel`], but both pareto-front
/// arrays are [`SharedBitmap`]s: the per-round scan skips 64 inactive
/// vertices per simulated load, and next-front activation uses the
/// word-level `test_and_set` instead of a byte check-then-store (still
/// under the distance lock, so the activation count is unchanged).
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn parallel_bitmap<M: Machine>(
    machine: &M,
    graph: &CsrGraph,
    source: VertexId,
) -> AlgoOutcome<SsspOutput> {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source vertex out of range");
    let shared = SharedGraph::new(graph);
    let dist = SharedU32s::filled(n, UNREACHABLE);
    dist.set_plain(source as usize, 0);
    let fronts = [SharedBitmap::new(n), SharedBitmap::new(n)];
    fronts[0].set_plain(source as usize);
    let activations = SharedU64s::new(3);
    let locks = LockSet::new(n.min(8192));

    let rounds_done = machine.run(|ctx| {
        let tid = ctx.thread_id();
        let nthreads = ctx.num_threads();
        let mut round = 0usize;
        loop {
            if ctx.cancelled() {
                break;
            }
            ctx.span_begin("sssp:round");
            let cur = &fronts[round % 2];
            let next = &fronts[(round + 1) % 2];
            activations.set(ctx, (round + 2) % 3, 0);
            let mut processed = 0u64;
            let mut activated = 0u64;
            // Word-skipping scan over the packed front; ownership
            // striping and locking are unchanged from `parallel`.
            let mut pos = 0;
            while let Some(v) = cur.find_set_from(ctx, pos) {
                pos = v + 1;
                if v % nthreads != tid {
                    continue;
                }
                cur.clear(ctx, v);
                processed += 1;
                ctx.compute(costs::VISIT);
                let dv = dist.get(ctx, v);
                for e in shared.edge_range(ctx, v as VertexId) {
                    let (u, w) = shared.edge(ctx, e);
                    ctx.compute(costs::RELAX);
                    let nd = dv + w;
                    if nd < dist.get(ctx, u as usize) {
                        ctx.lock_for(&locks, u as usize);
                        if nd < dist.get(ctx, u as usize) {
                            dist.set(ctx, u as usize, nd);
                            if !next.test_and_set(ctx, u as usize) {
                                activated += 1;
                            }
                        }
                        ctx.unlock_for(&locks, u as usize);
                    }
                }
            }
            if processed > 0 {
                ctx.record_active(processed);
            }
            if activated > 0 {
                activations.fetch_add(ctx, (round + 1) % 3, activated);
            }
            ctx.barrier();
            let frontier_empty = activations.get(ctx, (round + 1) % 3) == 0;
            ctx.span_end("sssp:round");
            if frontier_empty {
                break;
            }
            round += 1;
        }
        round as u32 + 1
    });
    AlgoOutcome {
        output: SsspOutput {
            dist: dist.to_vec(),
            rounds: rounds_done.per_thread[0],
        },
        report: rounds_done.report,
    }
}

/// Parallel SSSP with *inner-loop* parallelization — the paper's §III-1
/// alternative strategy: the frontier is walked identically by every
/// thread, each vertex's adjacency list is statically divided amongst
/// threads, and "a barrier is required ... to hop to the next vertex in
/// each iteration".
///
/// Real-world graphs "are known to have a small number of neighboring
/// vertices, and hence the outer loop parallelization works well in
/// these cases" — this variant exists to *demonstrate* that claim (the
/// `ablation_sssp_strategy` bench compares the two).
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn parallel_inner<M: Machine>(
    machine: &M,
    graph: &CsrGraph,
    source: VertexId,
) -> AlgoOutcome<SsspOutput> {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source vertex out of range");
    let shared = SharedGraph::new(graph);
    let dist = SharedU32s::filled(n, UNREACHABLE);
    dist.set_plain(source as usize, 0);
    let fronts = [SharedFlags::new(n), SharedFlags::new(n)];
    fronts[0].set_plain(source as usize, true);
    let activations = SharedU64s::new(3);
    let locks = LockSet::new(n.min(8192));

    let rounds_done = machine.run(|ctx| {
        let tid = ctx.thread_id();
        let nthreads = ctx.num_threads();
        let mut round = 0usize;
        let mut processed: Vec<usize> = Vec::new();
        loop {
            if ctx.cancelled() {
                break;
            }
            let cur = &fronts[round % 2];
            let next = &fronts[(round + 1) % 2];
            activations.set(ctx, (round + 2) % 3, 0);
            let mut activated = 0u64;
            processed.clear();
            // Every thread walks the same frontier sequence; only the
            // inner (neighbor) loop is divided.
            for v in 0..n {
                if !cur.get(ctx, v) {
                    continue;
                }
                processed.push(v);
                ctx.compute(costs::VISIT);
                let dv = dist.get(ctx, v);
                ctx.record_active(1);
                let range = shared.edge_range(ctx, v as VertexId);
                for (k, e) in range.enumerate() {
                    if k % nthreads != tid {
                        continue;
                    }
                    let (u, w) = shared.edge(ctx, e);
                    ctx.compute(costs::RELAX);
                    let nd = dv + w;
                    if nd < dist.get(ctx, u as usize) {
                        ctx.lock_for(&locks, u as usize);
                        if nd < dist.get(ctx, u as usize) {
                            dist.set(ctx, u as usize, nd);
                            if !next.get(ctx, u as usize) {
                                next.set(ctx, u as usize, true);
                                activated += 1;
                            }
                        }
                        ctx.unlock_for(&locks, u as usize);
                    }
                }
                // "a barrier is required ... to hop to the next vertex".
                ctx.barrier();
            }
            // Clear the processed frontier (striped; everyone has passed
            // the last per-vertex barrier, so no scan still reads these).
            for &v in &processed {
                if v % nthreads == tid {
                    cur.set(ctx, v, false);
                }
            }
            if activated > 0 {
                activations.fetch_add(ctx, (round + 1) % 3, activated);
            }
            ctx.barrier();
            if activations.get(ctx, (round + 1) % 3) == 0 {
                break;
            }
            round += 1;
        }
        round as u32 + 1
    });
    AlgoOutcome {
        output: SsspOutput {
            dist: dist.to_vec(),
            rounds: rounds_done.per_thread[0],
        },
        report: rounds_done.report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crono_graph::gen::{road_network, uniform_random};
    use crono_runtime::NativeMachine;

    /// Bellman-Ford oracle.
    fn reference(graph: &CsrGraph, source: VertexId) -> Vec<u32> {
        let n = graph.num_vertices();
        let mut dist = vec![UNREACHABLE; n];
        dist[source as usize] = 0;
        for _ in 0..n {
            let mut changed = false;
            for v in 0..n as VertexId {
                if dist[v as usize] == UNREACHABLE {
                    continue;
                }
                for (u, w) in graph.neighbors(v) {
                    let nd = dist[v as usize] + w;
                    if nd < dist[u as usize] {
                        dist[u as usize] = nd;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        dist
    }

    #[test]
    fn sequential_matches_bellman_ford() {
        let g = uniform_random(128, 512, 16, 3);
        let out = sequential(&NativeMachine::new(1), &g, 0);
        assert_eq!(out.output.dist, reference(&g, 0));
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = uniform_random(256, 1024, 32, 5);
        let seq = sequential(&NativeMachine::new(1), &g, 7);
        for threads in [1, 2, 4, 8] {
            let par = parallel(&NativeMachine::new(threads), &g, 7);
            assert_eq!(par.output.dist, seq.output.dist, "threads={threads}");
            assert!(par.output.rounds >= 1);
        }
    }

    #[test]
    fn road_network_distances_correct() {
        let g = road_network(12, 12, 8, 0.2, 0.05, 9);
        let par = parallel(&NativeMachine::new(4), &g, 0);
        assert_eq!(par.output.dist, reference(&g, 0));
    }

    #[test]
    fn disconnected_vertices_stay_unreachable() {
        let g = CsrGraph::from_edges(3, vec![(0, 1, 4), (1, 0, 4)]);
        let out = parallel(&NativeMachine::new(2), &g, 0);
        assert_eq!(out.output.dist, vec![0, 4, UNREACHABLE]);
    }

    #[test]
    fn source_distance_is_zero_and_triangle_inequality() {
        let g = uniform_random(64, 256, 8, 11);
        let out = parallel(&NativeMachine::new(3), &g, 5);
        assert_eq!(out.output.dist[5], 0);
        for v in 0..64u32 {
            for (u, w) in g.neighbors(v) {
                assert!(
                    out.output.dist[u as usize] <= out.output.dist[v as usize].saturating_add(w),
                    "edge ({v},{u}) violates triangle inequality"
                );
            }
        }
    }

    #[test]
    fn bitmap_variant_matches_bellman_ford() {
        let g = uniform_random(256, 1024, 32, 5);
        let oracle = reference(&g, 7);
        for threads in [1, 2, 4, 8] {
            let par = parallel_bitmap(&NativeMachine::new(threads), &g, 7);
            assert_eq!(par.output.dist, oracle, "threads={threads}");
            assert!(par.output.rounds >= 1);
        }
    }

    #[test]
    fn inner_loop_variant_matches_outer_loop() {
        let g = uniform_random(128, 512, 16, 6);
        let outer = parallel(&NativeMachine::new(4), &g, 2);
        for threads in [1, 3, 4] {
            let inner = parallel_inner(&NativeMachine::new(threads), &g, 2);
            assert_eq!(inner.output.dist, outer.output.dist, "threads={threads}");
        }
    }

    #[test]
    fn inner_loop_variant_on_road_network() {
        let g = road_network(10, 10, 8, 0.2, 0.05, 3);
        let seq = sequential(&NativeMachine::new(1), &g, 0);
        let inner = parallel_inner(&NativeMachine::new(4), &g, 0);
        assert_eq!(inner.output.dist, seq.output.dist);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_source_rejected() {
        let g = uniform_random(8, 12, 4, 0);
        parallel(&NativeMachine::new(2), &g, 100);
    }
}
