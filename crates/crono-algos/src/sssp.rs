//! `SSSP_DIJK` — single-source shortest paths (§III-1).
//!
//! The sequential reference is Dijkstra's algorithm with a binary heap.
//! The parallel version uses CRONO's *graph division* strategy over
//! dynamically opened **pareto fronts**: each round, the current frontier
//! is statically divided amongst threads; relaxations update the shared
//! distance array under per-vertex (striped) atomic locks, activating the
//! next front; a barrier ends the round. Road-network-style graphs with
//! few neighbors per vertex make this outer-loop parallelization
//! effective (§III-1), but the lock traffic and barriers bound its
//! scaling — the paper measures only 4.45× at 256 threads.

use crate::graph_view::{chunk, SharedGraph};
use crate::{costs, AlgoOutcome};
use crono_graph::{CsrGraph, VertexId};
use crono_runtime::{
    LockSet, Machine, SharedBitmap, SharedFlags, SharedU32s, SharedU64s, SlidingQueue, ThreadCtx,
    TrackedVec,
};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Distance assigned to unreachable vertices. Chosen so one edge-weight
/// addition cannot overflow `u32`.
pub const UNREACHABLE: u32 = u32::MAX / 4;

/// Result of an SSSP run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SsspOutput {
    /// `dist[v]` = weight of the shortest path from the source to `v`
    /// ([`UNREACHABLE`] if none).
    pub dist: Vec<u32>,
    /// Rounds (pareto fronts) the parallel algorithm processed; 1 for the
    /// sequential reference.
    pub rounds: u32,
}

/// Sequential Dijkstra with a binary heap, reported through `ctx`.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn run_seq<C: ThreadCtx>(ctx: &mut C, graph: &SharedGraph<'_>, source: VertexId) -> Vec<u32> {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source vertex out of range");
    let mut dist = TrackedVec::filled(n, UNREACHABLE);
    let mut done = TrackedVec::filled(n, false);
    dist.set(ctx, source as usize, 0);
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0u32, source)));
    while let Some(Reverse((d, v))) = heap.pop() {
        // Uncharged poll: lets a cancelled (or over-budget, see
        // `crono_runtime::BudgetCtx`) query drain out early without
        // changing what a completed run charges.
        if ctx.cancelled() {
            break;
        }
        ctx.compute(costs::HEAP_OP);
        if done.get(ctx, v as usize) {
            continue;
        }
        done.set(ctx, v as usize, true);
        ctx.record_active(heap.len() as u64 + 1);
        for e in graph.edge_range(ctx, v) {
            let (u, w) = graph.edge(ctx, e);
            ctx.compute(costs::RELAX);
            let nd = d + w;
            if nd < dist.get(ctx, u as usize) {
                dist.set(ctx, u as usize, nd);
                ctx.compute(costs::HEAP_OP);
                heap.push(Reverse((nd, u)));
            }
        }
    }
    dist.into_vec()
}

/// Runs the sequential reference on a one-thread machine.
///
/// # Panics
///
/// Panics if `machine.num_threads() != 1` or `source` is out of range.
pub fn sequential<M: Machine>(
    machine: &M,
    graph: &CsrGraph,
    source: VertexId,
) -> AlgoOutcome<SsspOutput> {
    assert_eq!(
        machine.num_threads(),
        1,
        "sequential reference needs a one-thread machine"
    );
    let shared = SharedGraph::new(graph);
    let mut outcome = machine.run(|ctx| run_seq(ctx, &shared, source));
    AlgoOutcome {
        output: SsspOutput {
            dist: outcome.per_thread.pop().expect("one thread ran"),
            rounds: 1,
        },
        report: outcome.report,
    }
}

/// Parallel SSSP: graph division over pareto fronts (Table I).
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn parallel<M: Machine>(
    machine: &M,
    graph: &CsrGraph,
    source: VertexId,
) -> AlgoOutcome<SsspOutput> {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source vertex out of range");
    let shared = SharedGraph::new(graph);
    let dist = SharedU32s::filled(n, UNREACHABLE);
    dist.set_plain(source as usize, 0);
    // Ping-pong frontiers plus rotating round-activation counters.
    let fronts = [SharedFlags::new(n), SharedFlags::new(n)];
    fronts[0].set_plain(source as usize, true);
    let activations = SharedU64s::new(3);
    let locks = LockSet::new(n.min(8192));

    let rounds_done = machine.run(|ctx| {
        let tid = ctx.thread_id();
        let nthreads = ctx.num_threads();
        let mut round = 0usize;
        loop {
            if ctx.cancelled() {
                break;
            }
            ctx.span_begin("sssp:round");
            let cur = &fronts[round % 2];
            let next = &fronts[(round + 1) % 2];
            // Prepare the counter two rounds ahead (rotation keeps the
            // slot being read this round untouched).
            activations.set(ctx, (round + 2) % 3, 0);
            let mut processed = 0u64;
            let mut activated = 0u64;
            // As in the C suite, every thread scans the full frontier
            // array and processes the vertices it owns (graph division
            // by striping) — the shared scan is the non-parallelizable
            // component that bounds SSSP's scaling.
            for v in 0..n {
                if !cur.get(ctx, v) {
                    continue;
                }
                if v % nthreads != tid {
                    continue;
                }
                cur.set(ctx, v, false);
                processed += 1;
                ctx.compute(costs::VISIT);
                let dv = dist.get(ctx, v);
                for e in shared.edge_range(ctx, v as VertexId) {
                    let (u, w) = shared.edge(ctx, e);
                    ctx.compute(costs::RELAX);
                    let nd = dv + w;
                    // Test, then lock-guarded test-and-set: CRONO updates
                    // "vertex path costs using atomic locks".
                    if nd < dist.get(ctx, u as usize) {
                        ctx.lock_for(&locks, u as usize);
                        if nd < dist.get(ctx, u as usize) {
                            dist.set(ctx, u as usize, nd);
                            if !next.get(ctx, u as usize) {
                                next.set(ctx, u as usize, true);
                                activated += 1;
                            }
                        }
                        ctx.unlock_for(&locks, u as usize);
                    }
                }
            }
            if processed > 0 {
                ctx.record_active(processed);
            }
            if activated > 0 {
                activations.fetch_add(ctx, (round + 1) % 3, activated);
            }
            ctx.barrier();
            let frontier_empty = activations.get(ctx, (round + 1) % 3) == 0;
            ctx.span_end("sssp:round");
            if frontier_empty {
                break;
            }
            round += 1;
        }
        round as u32 + 1
    });
    AlgoOutcome {
        output: SsspOutput {
            dist: dist.to_vec(),
            rounds: rounds_done.per_thread[0],
        },
        report: rounds_done.report,
    }
}

/// Parallel SSSP with a word-packed frontier — the `frontier_repr`
/// ablation (GAP-style bitmap, PR 3).
///
/// Identical relaxation algorithm to [`parallel`], but both pareto-front
/// arrays are [`SharedBitmap`]s: the per-round scan skips 64 inactive
/// vertices per simulated load, and next-front activation uses the
/// word-level `test_and_set` instead of a byte check-then-store (still
/// under the distance lock, so the activation count is unchanged).
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn parallel_bitmap<M: Machine>(
    machine: &M,
    graph: &CsrGraph,
    source: VertexId,
) -> AlgoOutcome<SsspOutput> {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source vertex out of range");
    let shared = SharedGraph::new(graph);
    let dist = SharedU32s::filled(n, UNREACHABLE);
    dist.set_plain(source as usize, 0);
    let fronts = [SharedBitmap::new(n), SharedBitmap::new(n)];
    fronts[0].set_plain(source as usize);
    let activations = SharedU64s::new(3);
    let locks = LockSet::new(n.min(8192));

    let rounds_done = machine.run(|ctx| {
        let tid = ctx.thread_id();
        let nthreads = ctx.num_threads();
        let mut round = 0usize;
        loop {
            if ctx.cancelled() {
                break;
            }
            ctx.span_begin("sssp:round");
            let cur = &fronts[round % 2];
            let next = &fronts[(round + 1) % 2];
            activations.set(ctx, (round + 2) % 3, 0);
            let mut processed = 0u64;
            let mut activated = 0u64;
            // Word-skipping scan over the packed front; ownership
            // striping and locking are unchanged from `parallel`.
            let mut pos = 0;
            while let Some(v) = cur.find_set_from(ctx, pos) {
                pos = v + 1;
                if v % nthreads != tid {
                    continue;
                }
                cur.clear(ctx, v);
                processed += 1;
                ctx.compute(costs::VISIT);
                let dv = dist.get(ctx, v);
                for e in shared.edge_range(ctx, v as VertexId) {
                    let (u, w) = shared.edge(ctx, e);
                    ctx.compute(costs::RELAX);
                    let nd = dv + w;
                    if nd < dist.get(ctx, u as usize) {
                        ctx.lock_for(&locks, u as usize);
                        if nd < dist.get(ctx, u as usize) {
                            dist.set(ctx, u as usize, nd);
                            if !next.test_and_set(ctx, u as usize) {
                                activated += 1;
                            }
                        }
                        ctx.unlock_for(&locks, u as usize);
                    }
                }
            }
            if processed > 0 {
                ctx.record_active(processed);
            }
            if activated > 0 {
                activations.fetch_add(ctx, (round + 1) % 3, activated);
            }
            ctx.barrier();
            let frontier_empty = activations.get(ctx, (round + 1) % 3) == 0;
            ctx.span_end("sssp:round");
            if frontier_empty {
                break;
            }
            round += 1;
        }
        round as u32 + 1
    });
    AlgoOutcome {
        output: SsspOutput {
            dist: dist.to_vec(),
            rounds: rounds_done.per_thread[0],
        },
        report: rounds_done.report,
    }
}

/// Parallel SSSP with *inner-loop* parallelization — the paper's §III-1
/// alternative strategy: the frontier is walked identically by every
/// thread, each vertex's adjacency list is statically divided amongst
/// threads, and "a barrier is required ... to hop to the next vertex in
/// each iteration".
///
/// Real-world graphs "are known to have a small number of neighboring
/// vertices, and hence the outer loop parallelization works well in
/// these cases" — this variant exists to *demonstrate* that claim (the
/// `ablation_sssp_strategy` bench compares the two).
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn parallel_inner<M: Machine>(
    machine: &M,
    graph: &CsrGraph,
    source: VertexId,
) -> AlgoOutcome<SsspOutput> {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source vertex out of range");
    let shared = SharedGraph::new(graph);
    let dist = SharedU32s::filled(n, UNREACHABLE);
    dist.set_plain(source as usize, 0);
    let fronts = [SharedFlags::new(n), SharedFlags::new(n)];
    fronts[0].set_plain(source as usize, true);
    let activations = SharedU64s::new(3);
    let locks = LockSet::new(n.min(8192));

    let rounds_done = machine.run(|ctx| {
        let tid = ctx.thread_id();
        let nthreads = ctx.num_threads();
        let mut round = 0usize;
        let mut processed: Vec<usize> = Vec::new();
        loop {
            if ctx.cancelled() {
                break;
            }
            let cur = &fronts[round % 2];
            let next = &fronts[(round + 1) % 2];
            activations.set(ctx, (round + 2) % 3, 0);
            let mut activated = 0u64;
            processed.clear();
            // Every thread walks the same frontier sequence; only the
            // inner (neighbor) loop is divided.
            for v in 0..n {
                if !cur.get(ctx, v) {
                    continue;
                }
                processed.push(v);
                ctx.compute(costs::VISIT);
                let dv = dist.get(ctx, v);
                ctx.record_active(1);
                let range = shared.edge_range(ctx, v as VertexId);
                for (k, e) in range.enumerate() {
                    if k % nthreads != tid {
                        continue;
                    }
                    let (u, w) = shared.edge(ctx, e);
                    ctx.compute(costs::RELAX);
                    let nd = dv + w;
                    if nd < dist.get(ctx, u as usize) {
                        ctx.lock_for(&locks, u as usize);
                        if nd < dist.get(ctx, u as usize) {
                            dist.set(ctx, u as usize, nd);
                            if !next.get(ctx, u as usize) {
                                next.set(ctx, u as usize, true);
                                activated += 1;
                            }
                        }
                        ctx.unlock_for(&locks, u as usize);
                    }
                }
                // "a barrier is required ... to hop to the next vertex".
                ctx.barrier();
            }
            // Clear the processed frontier (striped; everyone has passed
            // the last per-vertex barrier, so no scan still reads these).
            for &v in &processed {
                if v % nthreads == tid {
                    cur.set(ctx, v, false);
                }
            }
            if activated > 0 {
                activations.fetch_add(ctx, (round + 1) % 3, activated);
            }
            ctx.barrier();
            if activations.get(ctx, (round + 1) % 3) == 0 {
                break;
            }
            round += 1;
        }
        round as u32 + 1
    });
    AlgoOutcome {
        output: SsspOutput {
            dist: dist.to_vec(),
            rounds: rounds_done.per_thread[0],
        },
        report: rounds_done.report,
    }
}

/// Picks the delta-stepping bucket width: the mean edge weight, clamped
/// to at least 1. A width near the average weight keeps light buckets
/// busy without serializing into one-vertex Dijkstra steps. Computed
/// outside the timed region (the serving engine caches it per epoch).
pub fn pick_delta(graph: &CsrGraph) -> u32 {
    let mut total = 0u64;
    let mut count = 0u64;
    for v in 0..graph.num_vertices() as VertexId {
        for (_, w) in graph.neighbors(v) {
            total += w as u64;
            count += 1;
        }
    }
    if count == 0 {
        1
    } else {
        ((total / count) as u32).max(1)
    }
}

/// Splits `graph` into its light (`w <= delta`) and heavy (`w > delta`)
/// edge sub-CSRs. Built outside the timed region, like the transpose the
/// pull kernels precompute.
fn split_by_weight(graph: &CsrGraph, delta: u32) -> (CsrGraph, CsrGraph) {
    let n = graph.num_vertices();
    let mut light = Vec::new();
    let mut heavy = Vec::new();
    for v in 0..n as VertexId {
        for (u, w) in graph.neighbors(v) {
            if w <= delta {
                light.push((v, u, w));
            } else {
                heavy.push((v, u, w));
            }
        }
    }
    (CsrGraph::from_edges(n, light), CsrGraph::from_edges(n, heavy))
}

/// Parallel SSSP by *delta-stepping* (Meyer & Sanders; the GAP-style
/// `delta_sssp` ablation) over [`SlidingQueue`] bucket frontiers.
///
/// Tentative distances are grouped into buckets of width `delta` (the
/// mean edge weight). Each bucket is drained by barrier-synchronous
/// *light* iterations that relax only edges with `w <= delta` — an
/// improved vertex whose new distance stays inside the bucket re-enters
/// the current frontier window, one outside it is parked in a pending
/// queue (deduplicated by a membership bitmap; a vertex is parked at
/// most once, redistribution always re-reads its fresh distance). Once
/// the bucket stops changing, every vertex it settled relaxes its
/// *heavy* edges exactly once — those can only land in later buckets —
/// and the pending entries are redistributed in two statically-divided
/// passes: a `fetch_min` vote picks the next non-empty bucket, then
/// entries move either into the new frontier or into the ping-pong
/// pending queue. Distance updates reuse the striped-lock relaxation of
/// [`parallel`], so the result is bit-identical to the sequential
/// Dijkstra reference; `rounds` reports the number of buckets drained.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn parallel_delta<M: Machine>(
    machine: &M,
    graph: &CsrGraph,
    source: VertexId,
) -> AlgoOutcome<SsspOutput> {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source vertex out of range");
    let m = graph.num_directed_edges();
    let delta = pick_delta(graph);
    let (light, heavy) = split_by_weight(graph, delta);
    let light = SharedGraph::new(&light);
    let heavy = SharedGraph::new(&heavy);
    let dist = SharedU32s::filled(n, UNREACHABLE);
    dist.set_plain(source as usize, 0);
    // Current-bucket frontier (reset once per bucket), ping-pong pending
    // queues (at most one live entry per vertex, so capacity n), and the
    // once-per-vertex settled log the heavy phase drains.
    let cur = SlidingQueue::new(2 * m + n + 64);
    cur.push_plain(source);
    let pend = [SlidingQueue::new(n + 64), SlidingQueue::new(n + 64)];
    let pending_mark = SharedBitmap::new(n);
    let settled = SlidingQueue::new(n + 64);
    let settled_mark = SharedBitmap::new(n);
    let next_min = SharedU64s::filled(1, u64::MAX);
    let locks = LockSet::new(n.min(8192));

    let rounds_done = machine.run(|ctx| {
        let tid = ctx.thread_id();
        let nthreads = ctx.num_threads();
        let mut k = 0u64;
        let mut a = 0usize;
        let mut buckets = 0u32;
        loop {
            if ctx.cancelled() {
                break;
            }
            ctx.span_begin("sssp:bucket");
            buckets += 1;
            // All finite distances stay below UNREACHABLE, so capping the
            // bucket boundary there is harmless and overflow-free.
            let bucket_end = ((k + 1) * delta as u64).min(UNREACHABLE as u64) as u32;
            // Light iterations: drain successive frontier windows until
            // one comes up empty. Every push lands beyond the window
            // being drained, so a slide between barriers opens exactly
            // the entries the previous iteration produced.
            loop {
                if tid == 0 {
                    cur.slide(ctx);
                }
                ctx.barrier();
                let w = cur.window(ctx);
                if w.is_empty() {
                    break;
                }
                let len = w.end - w.start;
                let mut processed = 0u64;
                for i in chunk(len, tid, nthreads) {
                    let v = cur.get(ctx, w.start + i) as usize;
                    ctx.compute(costs::VISIT);
                    let dv = dist.get(ctx, v);
                    if dv >= bucket_end {
                        continue;
                    }
                    processed += 1;
                    if !settled_mark.get(ctx, v) && !settled_mark.test_and_set(ctx, v) {
                        settled.push(ctx, v as u32);
                    }
                    for e in light.edge_range(ctx, v as VertexId) {
                        let (u, wt) = light.edge(ctx, e);
                        ctx.compute(costs::RELAX);
                        let nd = dv + wt;
                        if nd < dist.get(ctx, u as usize) {
                            ctx.lock_for(&locks, u as usize);
                            if nd < dist.get(ctx, u as usize) {
                                dist.set(ctx, u as usize, nd);
                                if nd < bucket_end {
                                    cur.push(ctx, u);
                                } else if !pending_mark.get(ctx, u as usize)
                                    && !pending_mark.test_and_set(ctx, u as usize)
                                {
                                    pend[a].push(ctx, u);
                                }
                            }
                            ctx.unlock_for(&locks, u as usize);
                        }
                    }
                }
                if processed > 0 {
                    ctx.record_active(processed);
                }
                ctx.barrier();
            }
            // Heavy phase: everything this bucket settled relaxes its
            // heavy edges exactly once (`w > delta` forces the target
            // past the bucket boundary, so successes park in `pend`).
            // The frontier is fully drained, so tid 0 reclaims it.
            if tid == 0 {
                settled.slide(ctx);
                cur.reset(ctx);
            }
            ctx.barrier();
            let sw = settled.window(ctx);
            let slen = sw.end - sw.start;
            let mut hprocessed = 0u64;
            for i in chunk(slen, tid, nthreads) {
                let v = settled.get(ctx, sw.start + i) as usize;
                ctx.compute(costs::VISIT);
                let dv = dist.get(ctx, v);
                hprocessed += 1;
                for e in heavy.edge_range(ctx, v as VertexId) {
                    let (u, wt) = heavy.edge(ctx, e);
                    ctx.compute(costs::RELAX);
                    let nd = dv + wt;
                    if nd < dist.get(ctx, u as usize) {
                        ctx.lock_for(&locks, u as usize);
                        if nd < dist.get(ctx, u as usize) {
                            dist.set(ctx, u as usize, nd);
                            if !pending_mark.get(ctx, u as usize)
                                && !pending_mark.test_and_set(ctx, u as usize)
                            {
                                pend[a].push(ctx, u);
                            }
                        }
                        ctx.unlock_for(&locks, u as usize);
                    }
                }
            }
            if hprocessed > 0 {
                ctx.record_active(hprocessed);
            }
            ctx.barrier();
            // Redistribution: vote on the next non-empty bucket, then
            // move live pending entries to the frontier or the other
            // pending queue. Settled entries are stale and dropped.
            if tid == 0 {
                pend[a].slide(ctx);
                next_min.set(ctx, 0, u64::MAX);
            }
            ctx.barrier();
            let pw = pend[a].window(ctx);
            let plen = pw.end - pw.start;
            if plen == 0 {
                ctx.span_end("sssp:bucket");
                break;
            }
            for i in chunk(plen, tid, nthreads) {
                let v = pend[a].get(ctx, pw.start + i) as usize;
                ctx.compute(costs::VISIT);
                if settled_mark.get(ctx, v) {
                    continue;
                }
                let dv = dist.get(ctx, v);
                next_min.fetch_min(ctx, 0, dv as u64 / delta as u64);
            }
            ctx.barrier();
            let k2 = next_min.get(ctx, 0);
            if k2 == u64::MAX {
                ctx.span_end("sssp:bucket");
                break;
            }
            for i in chunk(plen, tid, nthreads) {
                let v = pend[a].get(ctx, pw.start + i) as usize;
                if settled_mark.get(ctx, v) {
                    continue;
                }
                let dv = dist.get(ctx, v);
                if dv as u64 / delta as u64 == k2 {
                    cur.push(ctx, v as u32);
                } else {
                    pend[1 - a].push(ctx, v as u32);
                }
            }
            ctx.barrier();
            if tid == 0 {
                pend[a].reset(ctx);
            }
            ctx.span_end("sssp:bucket");
            k = k2;
            a = 1 - a;
        }
        buckets
    });
    AlgoOutcome {
        output: SsspOutput {
            dist: dist.to_vec(),
            rounds: rounds_done.per_thread[0],
        },
        report: rounds_done.report,
    }
}

/// Maximum number of sources one [`run_multi_delta`] sweep can share —
/// one lane per bit of the `u64` frontier masks, mirroring
/// [`crate::bfs::MULTI_WIDTH`].
pub const MULTI_WIDTH: usize = 64;

/// Multi-source delta-stepping: one bucket walk shared by up to
/// [`MULTI_WIDTH`] sources.
///
/// The serving engine batches up to 64 deadline-free SSSP misses into a
/// single sweep, the way MS-BFS shares levels ([`crate::bfs::run_multi`]).
/// Each vertex carries a lane-major distance row (`dist[v * k + lane]`)
/// plus three `u64` lane masks: the current-bucket frontier, the parked
/// (pending, later-bucket) lanes, and the settled lanes. The light/heavy
/// bucket walk of [`parallel_delta`] runs *once*: a vertex in the
/// [`SlidingQueue`] frontier loads its adjacency list one time and
/// relaxes every active lane against it, so the edge traffic — the
/// dominant cost of running the sweep per source — is amortized across
/// the batch. Light improvements that stay inside the bucket re-enter
/// the frontier (vertex-deduplicated by mask transition), ones that leave
/// it park in the pending ping-pong queues; after the light fixpoint the
/// lanes the bucket settled relax their heavy edges exactly once, and a
/// min-bucket vote over the live parked lanes picks the next bucket.
///
/// The kernel is sequential over one `ctx` (a single pool worker runs
/// the whole batch, like `bfs::run_multi`), so the per-lane results and
/// the charged cost are independent of machine thread count. Distances
/// equal a per-source [`run_seq`] exactly.
///
/// # Panics
///
/// Panics if `sources` is empty, holds more than [`MULTI_WIDTH`]
/// entries, or contains an out-of-range vertex.
pub fn run_multi_delta<C: ThreadCtx>(
    ctx: &mut C,
    graph: &SharedGraph<'_>,
    sources: &[VertexId],
    delta: u32,
) -> Vec<Vec<u32>> {
    let n = graph.num_vertices();
    let k = sources.len();
    assert!(k >= 1, "source batch is empty");
    assert!(k <= MULTI_WIDTH, "source batch exceeds MULTI_WIDTH");
    for &s in sources {
        assert!((s as usize) < n, "source vertex out of range");
    }
    let delta = delta.max(1);
    let m = graph.num_directed_edges();
    // Lane-major distances plus per-vertex lane masks. `bucket_lanes`
    // logs which lanes the current bucket settled (the heavy phase
    // drains and clears it each bucket).
    let mut dist = TrackedVec::filled(n * k, UNREACHABLE);
    let mut cur_mask = TrackedVec::filled(n, 0u64);
    let mut pend_mask = TrackedVec::filled(n, 0u64);
    let mut settled_mask = TrackedVec::filled(n, 0u64);
    let mut bucket_lanes = TrackedVec::filled(n, 0u64);
    // Frontier sizing mirrors `parallel_delta`; the pending queues hold
    // at most one live entry per vertex (`pend_mask != 0` exactly when
    // the vertex has an entry in one of them), and the settled log is
    // reset once its bucket's heavy phase has drained it.
    let cur = SlidingQueue::new(2 * m + n + 64);
    let pend = [SlidingQueue::new(n + 64), SlidingQueue::new(n + 64)];
    let settled = SlidingQueue::new(n + 64);
    for (lane, &s) in sources.iter().enumerate() {
        dist.set(ctx, s as usize * k + lane, 0);
        let mask = cur_mask.get(ctx, s as usize);
        if mask == 0 {
            cur.push(ctx, s);
        }
        cur_mask.set(ctx, s as usize, mask | 1 << lane);
    }
    let mut dvs = [0u32; MULTI_WIDTH];
    let mut bucket = 0u64;
    let mut a = 0usize;
    'buckets: loop {
        if ctx.cancelled() {
            break;
        }
        ctx.span_begin("sssp:multi_bucket");
        let bucket_end = ((bucket + 1) * delta as u64).min(UNREACHABLE as u64) as u32;
        // Light fixpoint: drain successive frontier windows. Every push
        // lands beyond the window being drained, so each slide opens
        // exactly the entries the previous iteration produced.
        loop {
            if ctx.cancelled() {
                ctx.span_end("sssp:multi_bucket");
                break 'buckets;
            }
            cur.slide(ctx);
            let w = cur.window(ctx);
            if w.is_empty() {
                break;
            }
            for i in w.clone() {
                let v = cur.get(ctx, i) as usize;
                ctx.compute(costs::VISIT);
                let mask = cur_mask.get(ctx, v);
                cur_mask.set(ctx, v, 0);
                // Lanes only enter the frontier with an in-bucket
                // distance, and distances never grow, so every masked
                // lane is active; cache its distance for the edge scan.
                let mut l = mask;
                while l != 0 {
                    let lane = l.trailing_zeros() as usize;
                    l &= l - 1;
                    dvs[lane] = dist.get(ctx, v * k + lane);
                }
                let already = settled_mask.get(ctx, v);
                let newly = mask & !already;
                if newly != 0 {
                    settled_mask.set(ctx, v, already | newly);
                    let bl = bucket_lanes.get(ctx, v);
                    if bl == 0 {
                        settled.push(ctx, v as u32);
                    }
                    bucket_lanes.set(ctx, v, bl | newly);
                }
                for e in graph.edge_range(ctx, v as VertexId) {
                    let (u, wt) = graph.edge(ctx, e);
                    if wt > delta {
                        continue; // heavy edges wait for the bucket to settle
                    }
                    let u = u as usize;
                    let mut l = mask;
                    while l != 0 {
                        let lane = l.trailing_zeros() as usize;
                        l &= l - 1;
                        ctx.compute(costs::RELAX);
                        let nd = dvs[lane] + wt;
                        if nd < dist.get(ctx, u * k + lane) {
                            dist.set(ctx, u * k + lane, nd);
                            if nd < bucket_end {
                                let cm = cur_mask.get(ctx, u);
                                if cm == 0 {
                                    cur.push(ctx, u as u32);
                                }
                                cur_mask.set(ctx, u, cm | 1 << lane);
                            } else {
                                let pm = pend_mask.get(ctx, u);
                                if pm & (1 << lane) == 0 {
                                    if pm == 0 {
                                        pend[a].push(ctx, u as u32);
                                    }
                                    pend_mask.set(ctx, u, pm | 1 << lane);
                                }
                            }
                        }
                    }
                }
            }
        }
        // The frontier is fully drained; reclaim it for the next bucket.
        cur.reset(ctx);
        // Heavy phase: every (vertex, lane) this bucket settled relaxes
        // its heavy edges exactly once. `w > delta` pushes the target
        // past the bucket boundary, so successes always park.
        settled.slide(ctx);
        let sw = settled.window(ctx);
        for i in sw.clone() {
            let v = settled.get(ctx, i) as usize;
            ctx.compute(costs::VISIT);
            let lanes = bucket_lanes.get(ctx, v);
            bucket_lanes.set(ctx, v, 0);
            let mut l = lanes;
            while l != 0 {
                let lane = l.trailing_zeros() as usize;
                l &= l - 1;
                dvs[lane] = dist.get(ctx, v * k + lane);
            }
            for e in graph.edge_range(ctx, v as VertexId) {
                let (u, wt) = graph.edge(ctx, e);
                if wt <= delta {
                    continue;
                }
                let u = u as usize;
                let mut l = lanes;
                while l != 0 {
                    let lane = l.trailing_zeros() as usize;
                    l &= l - 1;
                    ctx.compute(costs::RELAX);
                    let nd = dvs[lane] + wt;
                    if nd < dist.get(ctx, u * k + lane) {
                        dist.set(ctx, u * k + lane, nd);
                        let pm = pend_mask.get(ctx, u);
                        if pm & (1 << lane) == 0 {
                            if pm == 0 {
                                pend[a].push(ctx, u as u32);
                            }
                            pend_mask.set(ctx, u, pm | 1 << lane);
                        }
                    }
                }
            }
        }
        settled.reset(ctx);
        // Redistribution: vote on the next non-empty bucket over the
        // live parked lanes (parked bits whose lane has since settled
        // are stale and filtered), then move matching lanes into the
        // frontier and re-park the rest in the other pending queue.
        pend[a].slide(ctx);
        let pw = pend[a].window(ctx);
        if pw.is_empty() {
            ctx.span_end("sssp:multi_bucket");
            break;
        }
        let mut kmin = u64::MAX;
        for i in pw.clone() {
            let v = pend[a].get(ctx, i) as usize;
            ctx.compute(costs::VISIT);
            let live = pend_mask.get(ctx, v) & !settled_mask.get(ctx, v);
            let mut l = live;
            while l != 0 {
                let lane = l.trailing_zeros() as usize;
                l &= l - 1;
                let dv = dist.get(ctx, v * k + lane);
                kmin = kmin.min(dv as u64 / delta as u64);
            }
        }
        if kmin == u64::MAX {
            ctx.span_end("sssp:multi_bucket");
            break;
        }
        for i in pw.clone() {
            let v = pend[a].get(ctx, i) as usize;
            let live = pend_mask.get(ctx, v) & !settled_mask.get(ctx, v);
            let mut moved = 0u64;
            let mut stay = 0u64;
            let mut l = live;
            while l != 0 {
                let lane = l.trailing_zeros() as usize;
                l &= l - 1;
                let dv = dist.get(ctx, v * k + lane);
                if dv as u64 / delta as u64 == kmin {
                    moved |= 1 << lane;
                } else {
                    stay |= 1 << lane;
                }
            }
            if moved != 0 {
                let cm = cur_mask.get(ctx, v);
                if cm == 0 {
                    cur.push(ctx, v as u32);
                }
                cur_mask.set(ctx, v, cm | moved);
            }
            pend_mask.set(ctx, v, stay);
            if stay != 0 {
                pend[1 - a].push(ctx, v as u32);
            }
        }
        pend[a].reset(ctx);
        ctx.span_end("sssp:multi_bucket");
        bucket = kmin;
        a = 1 - a;
    }
    let flat = dist.into_vec();
    (0..k)
        .map(|lane| (0..n).map(|v| flat[v * k + lane]).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crono_graph::gen::catalog::Dataset;
    use crono_graph::gen::{road_network, uniform_random};
    use crono_runtime::NativeMachine;

    /// Bellman-Ford oracle.
    fn reference(graph: &CsrGraph, source: VertexId) -> Vec<u32> {
        let n = graph.num_vertices();
        let mut dist = vec![UNREACHABLE; n];
        dist[source as usize] = 0;
        for _ in 0..n {
            let mut changed = false;
            for v in 0..n as VertexId {
                if dist[v as usize] == UNREACHABLE {
                    continue;
                }
                for (u, w) in graph.neighbors(v) {
                    let nd = dist[v as usize] + w;
                    if nd < dist[u as usize] {
                        dist[u as usize] = nd;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        dist
    }

    #[test]
    fn sequential_matches_bellman_ford() {
        let g = uniform_random(128, 512, 16, 3);
        let out = sequential(&NativeMachine::new(1), &g, 0);
        assert_eq!(out.output.dist, reference(&g, 0));
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = uniform_random(256, 1024, 32, 5);
        let seq = sequential(&NativeMachine::new(1), &g, 7);
        for threads in [1, 2, 4, 8] {
            let par = parallel(&NativeMachine::new(threads), &g, 7);
            assert_eq!(par.output.dist, seq.output.dist, "threads={threads}");
            assert!(par.output.rounds >= 1);
        }
    }

    #[test]
    fn road_network_distances_correct() {
        let g = road_network(12, 12, 8, 0.2, 0.05, 9);
        let par = parallel(&NativeMachine::new(4), &g, 0);
        assert_eq!(par.output.dist, reference(&g, 0));
    }

    #[test]
    fn disconnected_vertices_stay_unreachable() {
        let g = CsrGraph::from_edges(3, vec![(0, 1, 4), (1, 0, 4)]);
        let out = parallel(&NativeMachine::new(2), &g, 0);
        assert_eq!(out.output.dist, vec![0, 4, UNREACHABLE]);
    }

    #[test]
    fn source_distance_is_zero_and_triangle_inequality() {
        let g = uniform_random(64, 256, 8, 11);
        let out = parallel(&NativeMachine::new(3), &g, 5);
        assert_eq!(out.output.dist[5], 0);
        for v in 0..64u32 {
            for (u, w) in g.neighbors(v) {
                assert!(
                    out.output.dist[u as usize] <= out.output.dist[v as usize].saturating_add(w),
                    "edge ({v},{u}) violates triangle inequality"
                );
            }
        }
    }

    #[test]
    fn bitmap_variant_matches_bellman_ford() {
        let g = uniform_random(256, 1024, 32, 5);
        let oracle = reference(&g, 7);
        for threads in [1, 2, 4, 8] {
            let par = parallel_bitmap(&NativeMachine::new(threads), &g, 7);
            assert_eq!(par.output.dist, oracle, "threads={threads}");
            assert!(par.output.rounds >= 1);
        }
    }

    #[test]
    fn inner_loop_variant_matches_outer_loop() {
        let g = uniform_random(128, 512, 16, 6);
        let outer = parallel(&NativeMachine::new(4), &g, 2);
        for threads in [1, 3, 4] {
            let inner = parallel_inner(&NativeMachine::new(threads), &g, 2);
            assert_eq!(inner.output.dist, outer.output.dist, "threads={threads}");
        }
    }

    #[test]
    fn inner_loop_variant_on_road_network() {
        let g = road_network(10, 10, 8, 0.2, 0.05, 3);
        let seq = sequential(&NativeMachine::new(1), &g, 0);
        let inner = parallel_inner(&NativeMachine::new(4), &g, 0);
        assert_eq!(inner.output.dist, seq.output.dist);
    }

    #[test]
    fn delta_stepping_matches_sequential() {
        let g = uniform_random(256, 1024, 32, 5);
        let seq = sequential(&NativeMachine::new(1), &g, 7);
        for threads in [1, 2, 4, 8] {
            let par = parallel_delta(&NativeMachine::new(threads), &g, 7);
            assert_eq!(par.output.dist, seq.output.dist, "threads={threads}");
            assert!(par.output.rounds >= 1);
        }
    }

    #[test]
    fn delta_stepping_on_road_network() {
        let g = road_network(12, 12, 8, 0.2, 0.05, 9);
        let oracle = reference(&g, 0);
        for threads in [1, 4] {
            let par = parallel_delta(&NativeMachine::new(threads), &g, 0);
            assert_eq!(par.output.dist, oracle, "threads={threads}");
        }
    }

    #[test]
    fn delta_stepping_disconnected_and_uniform_weights() {
        // Disconnected vertices stay unreachable.
        let g = CsrGraph::from_edges(3, vec![(0, 1, 4), (1, 0, 4)]);
        let out = parallel_delta(&NativeMachine::new(2), &g, 0);
        assert_eq!(out.output.dist, vec![0, 4, UNREACHABLE]);
        // All-equal weights: every edge is light, the heavy phase is a
        // no-op, and the kernel degenerates to bucketed Bellman-Ford.
        let g = uniform_random(128, 512, 1, 6);
        let oracle = reference(&g, 2);
        let out = parallel_delta(&NativeMachine::new(4), &g, 2);
        assert_eq!(out.output.dist, oracle);
    }

    #[test]
    fn delta_stepping_uses_multiple_buckets() {
        // Wide weight spread forces several non-empty buckets.
        let g = uniform_random(256, 1024, 64, 8);
        let out = parallel_delta(&NativeMachine::new(4), &g, 0);
        assert_eq!(out.output.dist, reference(&g, 0));
        assert!(out.output.rounds >= 2, "got {} buckets", out.output.rounds);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn delta_bad_source_rejected() {
        let g = uniform_random(8, 12, 4, 0);
        parallel_delta(&NativeMachine::new(2), &g, 100);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_source_rejected() {
        let g = uniform_random(8, 12, 4, 0);
        parallel(&NativeMachine::new(2), &g, 100);
    }

    /// Runs the multi-source sweep on thread 0 of a `threads`-wide
    /// machine (the engine executes it the same way: one pool worker
    /// owns the whole batch).
    fn multi_on(threads: usize, g: &CsrGraph, sources: &[VertexId]) -> Vec<Vec<u32>> {
        let shared = SharedGraph::new(g);
        let delta = pick_delta(g);
        let outcome = NativeMachine::new(threads).run(|ctx| {
            if ctx.thread_id() == 0 {
                Some(run_multi_delta(ctx, &shared, sources, delta))
            } else {
                None
            }
        });
        outcome.per_thread.into_iter().flatten().next().unwrap()
    }

    fn seq_on(g: &CsrGraph, source: VertexId) -> Vec<u32> {
        let shared = SharedGraph::new(g);
        let mut outcome = NativeMachine::new(1).run(|ctx| run_seq(ctx, &shared, source));
        outcome.per_thread.pop().unwrap()
    }

    #[test]
    fn multi_delta_matches_run_seq_across_catalog() {
        // The five Table III generators, shrunk to test scale, at 1, 4,
        // and 16 machine threads (the kernel is single-ctx, so thread
        // count must not change a single distance).
        for (di, dataset) in Dataset::ALL.iter().enumerate() {
            let g = dataset.generate(14, 0xC0DE + di as u64);
            let n = g.num_vertices() as VertexId;
            let sources: Vec<VertexId> = (0..8).map(|i| (i * 7 + 3) % n).collect();
            let expect: Vec<Vec<u32>> = sources.iter().map(|&s| seq_on(&g, s)).collect();
            for threads in [1usize, 4, 16] {
                let got = multi_on(threads, &g, &sources);
                assert_eq!(
                    got,
                    expect,
                    "dataset {} threads {threads}",
                    dataset.label()
                );
            }
        }
    }

    #[test]
    fn multi_delta_full_width_batch() {
        let g = uniform_random(256, 1024, 32, 5);
        let sources: Vec<VertexId> = (0..MULTI_WIDTH as VertexId).map(|i| i * 3).collect();
        let got = multi_on(4, &g, &sources);
        for (lane, &s) in sources.iter().enumerate() {
            assert_eq!(got[lane], seq_on(&g, s), "lane {lane} source {s}");
        }
    }

    #[test]
    fn multi_delta_sources_in_distinct_components() {
        // Two components (0..3 and 3..6) plus an isolated vertex 6;
        // lanes must not leak reachability across components.
        let g = CsrGraph::from_edges(
            7,
            vec![
                (0, 1, 2),
                (1, 0, 2),
                (1, 2, 5),
                (2, 1, 5),
                (3, 4, 1),
                (4, 3, 1),
                (4, 5, 9),
                (5, 4, 9),
            ],
        );
        let sources = [0, 3, 6];
        let got = multi_on(2, &g, &sources);
        for (lane, &s) in sources.iter().enumerate() {
            assert_eq!(got[lane], seq_on(&g, s), "lane {lane}");
        }
        assert_eq!(got[0][3], UNREACHABLE);
        assert_eq!(got[1][0], UNREACHABLE);
        assert_eq!(got[2], vec![UNREACHABLE, UNREACHABLE, UNREACHABLE, UNREACHABLE, UNREACHABLE, UNREACHABLE, 0]);
    }

    #[test]
    fn multi_delta_charges_are_deterministic() {
        let g = uniform_random(128, 512, 48, 11);
        let shared = SharedGraph::new(&g);
        let delta = pick_delta(&g);
        let sources: Vec<VertexId> = vec![0, 17, 33, 64, 90];
        let run = || {
            let outcome = NativeMachine::new(1).run(|ctx| {
                let start = ctx.instructions();
                let dists = run_multi_delta(ctx, &shared, &sources, delta);
                (dists, ctx.instructions() - start)
            });
            outcome.per_thread.into_iter().next().unwrap()
        };
        let (d1, c1) = run();
        let (d2, c2) = run();
        assert_eq!(d1, d2);
        assert_eq!(c1, c2, "charged cost must be repeatable");
        assert!(c1 > 0);
    }

    #[test]
    fn multi_delta_shares_work_across_lanes() {
        // The whole point: k lanes in one sweep must charge well under
        // k independent sequential runs.
        let g = uniform_random(256, 2048, 32, 7);
        let shared = SharedGraph::new(&g);
        let delta = pick_delta(&g);
        let sources: Vec<VertexId> = (0..16).map(|i| i * 11).collect();
        let multi_cost = NativeMachine::new(1)
            .run(|ctx| {
                let start = ctx.instructions();
                run_multi_delta(ctx, &shared, &sources, delta);
                ctx.instructions() - start
            })
            .per_thread[0];
        let seq_cost: u64 = sources
            .iter()
            .map(|&s| {
                NativeMachine::new(1)
                    .run(|ctx| {
                        let start = ctx.instructions();
                        run_seq(ctx, &shared, s);
                        ctx.instructions() - start
                    })
                    .per_thread[0]
            })
            .sum();
        assert!(
            multi_cost < seq_cost * 4 / 5,
            "multi {multi_cost} vs {} sequential {seq_cost}",
            sources.len()
        );
    }

    #[test]
    #[should_panic(expected = "source batch is empty")]
    fn multi_delta_rejects_empty_batch() {
        let g = uniform_random(8, 12, 4, 0);
        let shared = SharedGraph::new(&g);
        NativeMachine::new(1).run(|ctx| run_multi_delta(ctx, &shared, &[], 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn multi_delta_rejects_bad_source() {
        let g = uniform_random(8, 12, 4, 0);
        let shared = SharedGraph::new(&g);
        NativeMachine::new(1).run(|ctx| run_multi_delta(ctx, &shared, &[0, 100], 1));
    }
}
