//! `DFS` — depth-first search (§III-5).
//!
//! CRONO parallelizes DFS at *branch* level: "branches are connected
//! components of a graph that extend outward like branches in a tree from
//! a source vertex ... these branches can be searched in parallel". Each
//! thread takes a branch root from a shared work stack (guarded by an
//! atomic lock), explores it depth-first claiming vertices with atomic
//! test-and-set, and donates its sibling branches back to the shared
//! stack when other threads are starving. Only branch-level parallelism
//! exists, so DFS scales worst of the suite (3.57× in Table IV).

use crate::graph_view::SharedGraph;
use crate::{costs, AlgoOutcome};
use crono_graph::{CsrGraph, VertexId};
use crono_runtime::{LockSet, Machine, SharedFlags, SharedU64s, TaskPool, ThreadCtx};
use crono_runtime::Mutex;

/// Per-thread deque capacity for the stealing variant; deeper branches
/// overflow into the owner's private stack, bounding shared memory at
/// `threads × 8 KiB` regardless of graph size.
const STEAL_DEQUE_CAP: usize = 1024;

/// Result of a DFS run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DfsOutput {
    /// Whether the target vertex was reached.
    pub found: bool,
    /// Number of vertices visited (= reachable set when the target is
    /// absent or equals the full search).
    pub visited: usize,
}

/// Sequential stack DFS, reported through `ctx`.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn run_seq<C: ThreadCtx>(
    ctx: &mut C,
    graph: &SharedGraph<'_>,
    source: VertexId,
    target: Option<VertexId>,
) -> DfsOutput {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source vertex out of range");
    let mut visited = vec![false; n];
    let mut stack = vec![source];
    let mut count = 0usize;
    while let Some(v) = stack.pop() {
        if visited[v as usize] {
            continue;
        }
        visited[v as usize] = true;
        ctx.compute(costs::VISIT);
        count += 1;
        if target == Some(v) {
            return DfsOutput {
                found: true,
                visited: count,
            };
        }
        ctx.record_active(stack.len() as u64 + 1);
        for e in graph.edge_range(ctx, v) {
            let u = graph.neighbor(ctx, e);
            if !visited[u as usize] {
                stack.push(u);
            }
        }
    }
    DfsOutput {
        found: target.is_some_and(|t| visited[t as usize]),
        visited: count,
    }
}

/// Runs the sequential reference on a one-thread machine.
///
/// # Panics
///
/// Panics if `machine.num_threads() != 1` or `source` is out of range.
pub fn sequential<M: Machine>(
    machine: &M,
    graph: &CsrGraph,
    source: VertexId,
    target: Option<VertexId>,
) -> AlgoOutcome<DfsOutput> {
    assert_eq!(machine.num_threads(), 1, "sequential reference needs 1 thread");
    let shared = SharedGraph::new(graph);
    let mut outcome = machine.run(|ctx| run_seq(ctx, &shared, source, target));
    AlgoOutcome {
        output: outcome.per_thread.pop().expect("one thread ran"),
        report: outcome.report,
    }
}

/// Parallel DFS: branch capture from a shared work stack (Table I).
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn parallel<M: Machine>(
    machine: &M,
    graph: &CsrGraph,
    source: VertexId,
    target: Option<VertexId>,
) -> AlgoOutcome<DfsOutput> {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source vertex out of range");
    let shared = SharedGraph::new(graph);
    let claimed = SharedFlags::new(n);
    let found = SharedFlags::new(1);
    let visit_count = SharedU64s::new(1);
    // The shared branch stack. The lock set models the "atomic lock"
    // guarding it; the mutex provides the actual exclusion for the Vec.
    let branch_stack: Mutex<Vec<VertexId>> = Mutex::new(vec![source]);
    let stack_lock = LockSet::new(1);
    let stack_len = SharedU64s::new(1);
    stack_len.set_plain(0, 1);

    let outcome = machine.run(|ctx| {
        let mut local: Vec<VertexId> = Vec::new();
        let mut visited = 0u64;
        'search: loop {
            // Take a branch from the shared stack (branch capture).
            let v = match local.pop() {
                Some(v) => v,
                None => {
                    if found.get(ctx, 0) {
                        break;
                    }
                    ctx.lock(&stack_lock, 0);
                    let taken = branch_stack.lock().pop();
                    if taken.is_some() {
                        stack_len.fetch_add(ctx, 0, u64::MAX); // wrapping -1
                    }
                    ctx.unlock(&stack_lock, 0);
                    match taken {
                        Some(v) => v,
                        None => {
                            // No shared work: finished when every thread
                            // is idle; approximation: if nothing is
                            // claimed-in-flight the search is done. Spin a
                            // few times to let producers publish.
                            if stack_len.get(ctx, 0) == 0 {
                                break;
                            }
                            continue;
                        }
                    }
                }
            };
            if claimed.test_and_set(ctx, v as usize) {
                continue;
            }
            visited += 1;
            ctx.compute(costs::VISIT);
            if target == Some(v) {
                found.set(ctx, 0, true);
                break;
            }
            ctx.record_active(local.len() as u64 + 1);
            // Explore: keep the first unclaimed child for depth-first
            // descent, donate alternate branches when the shared stack
            // has run dry.
            let mut donated = 0u64;
            for e in shared.edge_range(ctx, v) {
                let u = shared.neighbor(ctx, e);
                if claimed.get(ctx, u as usize) {
                    continue;
                }
                if donated < 2 && stack_len.get(ctx, 0) < ctx.num_threads() as u64 {
                    ctx.lock(&stack_lock, 0);
                    branch_stack.lock().push(u);
                    stack_len.fetch_add(ctx, 0, 1);
                    ctx.unlock(&stack_lock, 0);
                    donated += 1;
                } else {
                    local.push(u);
                }
            }
            if found.get(ctx, 0) {
                break 'search;
            }
        }
        if visited > 0 {
            visit_count.fetch_add(ctx, 0, visited);
        }
    });
    AlgoOutcome {
        output: DfsOutput {
            found: found.get_plain(0)
                || target.is_some_and(|t| claimed.get_plain(t as usize)),
            visited: visit_count.get_plain(0) as usize,
        },
        report: outcome.report,
    }
}

/// Parallel DFS with branches in per-thread work-stealing deques
/// ([`Ablation::TaskSteal`](crate::Ablation::TaskSteal)).
///
/// The paper-faithful [`parallel`] funnels every branch donation and
/// capture through one lock-guarded shared stack. Here each thread
/// pushes discovered branches into its own Chase–Lev deque: the owner
/// pops the newest branch (depth-first descent, usually hitting its
/// private L1), while starving threads steal the *oldest* — the branch
/// closest to the source and therefore likely the largest — from a
/// seeded-order victim. Branches beyond the deque's capacity overflow
/// into the owner's private stack, which is always drained first.
/// Vertex claims stay atomic test-and-set, so every vertex is visited
/// exactly once and `visited`/`found` match [`parallel`].
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn parallel_steal<M: Machine>(
    machine: &M,
    graph: &CsrGraph,
    source: VertexId,
    target: Option<VertexId>,
) -> AlgoOutcome<DfsOutput> {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source vertex out of range");
    let threads = machine.num_threads();
    let shared = SharedGraph::new(graph);
    let claimed = SharedFlags::new(n);
    let found = SharedFlags::new(1);
    let visit_count = SharedU64s::new(1);
    let pool = TaskPool::new(threads, STEAL_DEQUE_CAP, crate::apsp::STEAL_SEED ^ 2);
    pool.push_plain(0, source as u64);

    let outcome = machine.run(|ctx| {
        let mut overflow: Vec<VertexId> = Vec::new();
        let mut visited = 0u64;
        // Empty-handed retries back off exponentially (modeled cycles)
        // so starved threads stop hammering the deque lines while the
        // frontier is narrow.
        let mut backoff = 32u32;
        loop {
            if ctx.cancelled() || found.get(ctx, 0) {
                break;
            }
            // Private overflow first (deepest work), then own deque /
            // steals. Pool-taken branches owe a `complete`.
            let (v, pooled) = match overflow.pop() {
                Some(v) => (v, false),
                None => match pool.try_take(ctx) {
                    Some(task) => (task as VertexId, true),
                    None => {
                        if pool.pending_total(ctx) == 0 {
                            break;
                        }
                        // Work is in flight elsewhere; retry.
                        ctx.compute(backoff);
                        backoff = (backoff * 2).min(4096);
                        continue;
                    }
                },
            };
            backoff = 32;
            if !claimed.test_and_set(ctx, v as usize) {
                visited += 1;
                ctx.compute(costs::VISIT);
                if target == Some(v) {
                    found.set(ctx, 0, true);
                    if pooled {
                        pool.complete(ctx);
                    }
                    break;
                }
                ctx.record_active(overflow.len() as u64 + 1);
                for e in shared.edge_range(ctx, v) {
                    let u = shared.neighbor(ctx, e);
                    if claimed.get(ctx, u as usize) {
                        continue;
                    }
                    if !pool.push(ctx, u as u64) {
                        overflow.push(u);
                    }
                }
            }
            if pooled {
                pool.complete(ctx);
            }
        }
        if visited > 0 {
            visit_count.fetch_add(ctx, 0, visited);
        }
    });
    AlgoOutcome {
        output: DfsOutput {
            found: found.get_plain(0)
                || target.is_some_and(|t| claimed.get_plain(t as usize)),
            visited: visit_count.get_plain(0) as usize,
        },
        report: outcome.report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crono_graph::gen::{road_network, uniform_random};
    use crono_runtime::NativeMachine;

    #[test]
    fn sequential_visits_reachable_set() {
        let g = uniform_random(128, 400, 4, 2);
        let out = sequential(&NativeMachine::new(1), &g, 0, None);
        assert_eq!(out.output.visited, 128, "generator is connected");
        assert!(!out.output.found, "no target requested");
    }

    #[test]
    fn sequential_finds_target() {
        let g = uniform_random(64, 200, 4, 3);
        let out = sequential(&NativeMachine::new(1), &g, 0, Some(63));
        assert!(out.output.found);
    }

    #[test]
    fn parallel_visits_whole_component_without_target() {
        let g = uniform_random(256, 800, 4, 4);
        for threads in [1, 2, 4, 8] {
            let out = parallel(&NativeMachine::new(threads), &g, 0, None);
            assert_eq!(out.output.visited, 256, "threads={threads}");
        }
    }

    #[test]
    fn parallel_finds_target_on_road_network() {
        let g = road_network(16, 16, 4, 0.2, 0.0, 6);
        let out = parallel(&NativeMachine::new(4), &g, 0, Some(255));
        assert!(out.output.found);
    }

    #[test]
    fn unreachable_target_not_found() {
        let g = CsrGraph::from_edges(4, vec![(0, 1, 1), (1, 0, 1), (2, 3, 1), (3, 2, 1)]);
        let out = parallel(&NativeMachine::new(2), &g, 0, Some(3));
        assert!(!out.output.found);
        assert_eq!(out.output.visited, 2);
    }

    #[test]
    fn steal_variant_visits_whole_component() {
        let g = uniform_random(256, 800, 4, 4);
        for threads in [1, 2, 4, 8] {
            let out = parallel_steal(&NativeMachine::new(threads), &g, 0, None);
            assert_eq!(out.output.visited, 256, "threads={threads}");
        }
    }

    #[test]
    fn steal_variant_finds_target_and_handles_unreachable() {
        let g = road_network(16, 16, 4, 0.2, 0.0, 6);
        let out = parallel_steal(&NativeMachine::new(4), &g, 0, Some(255));
        assert!(out.output.found);
        let g2 = CsrGraph::from_edges(4, vec![(0, 1, 1), (1, 0, 1), (2, 3, 1), (3, 2, 1)]);
        let out = parallel_steal(&NativeMachine::new(2), &g2, 0, Some(3));
        assert!(!out.output.found);
        assert_eq!(out.output.visited, 2);
    }

    #[test]
    fn steal_variant_overflow_path_still_exact() {
        // A star graph fans out n-1 children from the source at once —
        // far past STEAL_DEQUE_CAP would need a huge n, so instead use
        // a tiny pool capacity via a dense graph and many threads to
        // exercise steals; exactness is what matters.
        let g = uniform_random(512, 4000, 8, 11);
        let out = parallel_steal(&NativeMachine::new(8), &g, 3, None);
        assert_eq!(out.output.visited, 512, "claims are exclusive");
    }

    #[test]
    fn each_vertex_claimed_once() {
        let g = uniform_random(128, 512, 4, 9);
        let out = parallel(&NativeMachine::new(8), &g, 5, None);
        assert_eq!(out.output.visited, 128, "claims are exclusive");
    }
}
