//! Scale-track kernels: representation-generic sequential references
//! and shard-aware parallel drivers on the work-stealing [`TaskPool`].
//!
//! Everything here is written against [`AdjacencyView`], so the same
//! code runs on the flat [`crono_graph::CsrGraph`] and the varint
//! [`crono_graph::CompressedCsr`] — the equivalence tests pin their
//! outputs bit-identical. The sharded drivers execute one
//! [`crono_graph::shard::ShardedGraph`] with an owner-computes update
//! discipline:
//!
//! * **Scan phase** — one task per edge shard walks its slice of the
//!   frontier's adjacency and deposits candidate updates into
//!   per-`(shard, destination-block)` *inbox lanes*. Each lane has
//!   exactly one writer (its shard's task), so lane contents are
//!   deterministic regardless of which thread stole the task.
//! * **Claim phase** — one task per vertex block owns all state writes
//!   for its vertices, draining its lanes in fixed shard order.
//!
//! BFS claims are order-independent, SSSP claims are a commutative
//! `min`, and PageRank pulls partial sums in ascending shard order —
//! so results are bit-identical across shard counts (for PageRank,
//! under [`Placement::Block`], which preserves the global neighbor
//! order; see [`sharded_pagerank`]).
//!
//! Per-shard cost is attributed by deltas of
//! [`ThreadCtx::instructions`] around each task body: the body charges
//! the same modeled operations wherever it runs, so per-shard cycle
//! counts — and the MTEPS derived from them at the suite's 1 GHz
//! convention — are deterministic on the *native* backend too, unlike
//! wall-clock. Work-stealing retry backoff is deliberately excluded
//! from the attribution (it is scheduling-dependent).
//!
//! [`Placement::Block`]: crono_graph::shard::Placement::Block

use std::collections::{BinaryHeap, VecDeque};

use crate::costs;
use crono_graph::shard::ShardedGraph;
use crono_graph::{AdjacencyView, VertexId};
use crono_runtime::{
    Machine, Mutex, ReadArray, RunReport, SharedF64s, SharedU32s, SharedU64s, TaskPool, ThreadCtx,
};

/// Level label for unreached vertices in BFS output.
pub const UNVISITED: u32 = u32::MAX;

/// Distance label for unreached vertices in SSSP output.
pub const UNREACHED: u32 = u32::MAX;

/// PageRank damping, matching [`crate::pagerank`]: `0.15 + 0.85 * sum`.
const DAMPING: f64 = 0.15;

/// Steal-order seed for the scale drivers' pools.
const STEAL_SEED: u64 = 0x5CA1_E000;

// ---------------------------------------------------------------------
// Sequential references (host-side, representation-generic)
// ---------------------------------------------------------------------

/// Sequential BFS levels from `source`; `UNVISITED` where unreached.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn bfs_levels<V: AdjacencyView>(g: &V, source: VertexId) -> Vec<u32> {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source vertex out of range");
    let mut level = vec![UNVISITED; n];
    level[source as usize] = 0;
    let mut queue = VecDeque::from([source]);
    while let Some(v) = queue.pop_front() {
        let next = level[v as usize] + 1;
        for (u, _) in g.neighbors_of(v) {
            if level[u as usize] == UNVISITED {
                level[u as usize] = next;
                queue.push_back(u);
            }
        }
    }
    level
}

/// Sequential Dijkstra distances from `source`; `UNREACHED` where
/// unreached. Shortest-path distances are unique, so this oracle agrees
/// with the round-based relaxation in [`sharded_sssp`] exactly.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn sssp_distances<V: AdjacencyView>(g: &V, source: VertexId) -> Vec<u32> {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source vertex out of range");
    let mut dist = vec![UNREACHED; n];
    dist[source as usize] = 0;
    let mut heap = BinaryHeap::from([std::cmp::Reverse((0u32, source))]);
    while let Some(std::cmp::Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        for (u, w) in g.neighbors_of(v) {
            let nd = d.saturating_add(w);
            if nd < dist[u as usize] {
                dist[u as usize] = nd;
                heap.push(std::cmp::Reverse((nd, u)));
            }
        }
    }
    dist
}

/// Sequential pull-model PageRank, `iterations` fixed sweeps in
/// canonical adjacency order — the bit-exact oracle for
/// [`sharded_pagerank`]. Dangling vertices contribute zero.
pub fn pagerank_pull<V: AdjacencyView>(g: &V, iterations: usize) -> Vec<f64> {
    let n = g.num_vertices();
    let mut rank = vec![1.0 / n.max(1) as f64; n];
    let mut contrib = vec![0.0f64; n];
    for _ in 0..iterations {
        for v in 0..n {
            let deg = g.degree(v as VertexId);
            contrib[v] = if deg > 0 { rank[v] / deg as f64 } else { 0.0 };
        }
        for v in 0..n as VertexId {
            let mut sum = 0.0f64;
            for (u, _) in g.neighbors_of(v) {
                sum += contrib[u as usize];
            }
            rank[v as usize] = DAMPING + (1.0 - DAMPING) * sum;
        }
    }
    rank
}

// ---------------------------------------------------------------------
// Sharded drivers
// ---------------------------------------------------------------------

/// Deterministic modeled cost of one shard across a sharded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard id (for PageRank: the source-block id).
    pub shard: usize,
    /// Edges this shard's scan tasks traversed.
    pub edges: u64,
    /// Modeled cycles attributed to this shard's task bodies.
    pub cycles: u64,
}

impl ShardStats {
    /// Millions of traversed edges per second at the suite's 1 GHz
    /// modeled clock (`edges * 1e3 / cycles`).
    pub fn mteps(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.edges as f64 * 1e3 / self.cycles as f64
        }
    }
}

/// Result of a sharded driver run.
#[derive(Debug)]
pub struct ScaleOutcome<T> {
    /// The kernel output (levels, distances, or ranks).
    pub output: T,
    /// Per-shard scan-side cost, indexed by shard (PageRank: by block).
    pub shards: Vec<ShardStats>,
    /// Modeled cycles spent in claim/apply task bodies (owner-side
    /// work not attributable to a single scanning shard).
    pub claim_cycles: u64,
    /// The backend's run report.
    pub report: RunReport,
}

impl<T> ScaleOutcome<T> {
    /// Total edges traversed across all shards.
    pub fn total_edges(&self) -> u64 {
        self.shards.iter().map(|s| s.edges).sum()
    }

    /// Total modeled cycles across scan and claim task bodies.
    pub fn total_cycles(&self) -> u64 {
        self.shards.iter().map(|s| s.cycles).sum::<u64>() + self.claim_cycles
    }

    /// Aggregate modeled MTEPS assuming the task cycles spread
    /// perfectly over `threads` cores at 1 GHz — the deterministic
    /// throughput figure `results/scale.tsv` reports.
    pub fn total_mteps(&self, threads: usize) -> f64 {
        let cycles = self.total_cycles();
        if cycles == 0 {
            0.0
        } else {
            self.total_edges() as f64 * 1e3 * threads as f64 / cycles as f64
        }
    }
}

/// Pushes task ids `tid, tid + T, ...` below `count` to the caller's
/// own deque.
fn push_own_tasks<C: ThreadCtx>(ctx: &mut C, pool: &TaskPool, count: usize) {
    let mut k = ctx.thread_id();
    while k < count {
        let pushed = pool.push(ctx, k as u64);
        debug_assert!(pushed, "scale pools are sized to hold every task");
        k += ctx.num_threads();
    }
}

/// Drains a pool with stealing, exponential backoff while starved.
fn drain_pool<C: ThreadCtx>(ctx: &mut C, pool: &TaskPool, mut body: impl FnMut(&mut C, usize)) {
    let mut backoff = 32u32;
    loop {
        match pool.try_take(ctx) {
            Some(task) => {
                backoff = 32;
                body(ctx, task as usize);
                pool.complete(ctx);
            }
            None => {
                if pool.pending_total(ctx) == 0 {
                    break;
                }
                // Scheduling-dependent; never counted in shard stats.
                ctx.compute(backoff);
                backoff = (backoff * 2).min(4096);
            }
        }
    }
}

/// Per-deque capacity so every task of a phase fits without overflow.
fn pool_capacity(tasks: usize, threads: usize) -> usize {
    tasks.div_ceil(threads.max(1)).max(4)
}

/// Level-synchronous sharded BFS from `source`.
///
/// Works on 1-D and 2-D partitions and either placement; output is
/// bit-identical to [`bfs_levels`] on the unsharded graph for every
/// combination (level claims are order-independent).
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn sharded_bfs<M: Machine, G: AdjacencyView + Sync>(
    machine: &M,
    graph: &ShardedGraph<G>,
    source: VertexId,
) -> ScaleOutcome<Vec<u32>> {
    let p = *graph.partition();
    let n = p.num_vertices();
    assert!((source as usize) < n, "source vertex out of range");
    let s_count = p.num_shards();
    let b_count = p.blocks();
    let threads = machine.num_threads();

    let level = SharedU32s::filled(n, UNVISITED);
    level.set_plain(source as usize, 0);
    let frontiers: Vec<Mutex<Vec<VertexId>>> = (0..b_count)
        .map(|b| {
            Mutex::new(if b == p.block_of(source) {
                vec![source]
            } else {
                Vec::new()
            })
        })
        .collect();
    let lanes: Vec<Vec<Mutex<Vec<VertexId>>>> = (0..s_count)
        .map(|_| (0..b_count).map(|_| Mutex::new(Vec::new())).collect())
        .collect();
    let scan_cycles = SharedU64s::new(s_count);
    let scan_edges = SharedU64s::new(s_count);
    let claim_cycles = SharedU64s::new(b_count);
    let next_total = SharedU64s::new(1);
    let scan_pool = TaskPool::new(threads, pool_capacity(s_count, threads), STEAL_SEED);
    let claim_pool = TaskPool::new(threads, pool_capacity(b_count, threads), STEAL_SEED ^ 1);

    let outcome = machine.run(|ctx| {
        let mut depth = 0u32;
        loop {
            push_own_tasks(ctx, &scan_pool, s_count);
            ctx.barrier();
            drain_pool(ctx, &scan_pool, |ctx, s| {
                let t0 = ctx.instructions();
                let frontier = frontiers[p.shard_src_block(s)].lock();
                if frontier.is_empty() {
                    return;
                }
                let shard = graph.shard(s);
                let mut local: Vec<Vec<VertexId>> = vec![Vec::new(); b_count];
                let mut edges = 0u64;
                for &v in frontier.iter() {
                    ctx.compute(costs::VISIT);
                    for (u, _) in shard.neighbors_of(v) {
                        edges += 1;
                        ctx.compute(costs::RELAX);
                        if level.get(ctx, u as usize) == UNVISITED {
                            local[p.block_of(u)].push(u);
                        }
                    }
                }
                drop(frontier);
                for (b, candidates) in local.into_iter().enumerate() {
                    if !candidates.is_empty() {
                        lanes[s][b].lock().extend(candidates);
                    }
                }
                let dt = ctx.instructions() - t0;
                scan_cycles.fetch_add(ctx, s, dt);
                scan_edges.fetch_add(ctx, s, edges);
            });
            ctx.barrier();

            push_own_tasks(ctx, &claim_pool, b_count);
            ctx.barrier();
            drain_pool(ctx, &claim_pool, |ctx, b| {
                let t0 = ctx.instructions();
                let mut new_front = Vec::new();
                for shard_lanes in lanes.iter() {
                    let mut lane = shard_lanes[b].lock();
                    for &u in lane.iter() {
                        ctx.compute(costs::VISIT);
                        if level.get(ctx, u as usize) == UNVISITED {
                            level.set(ctx, u as usize, depth + 1);
                            new_front.push(u);
                        }
                    }
                    lane.clear();
                }
                if !new_front.is_empty() {
                    next_total.fetch_add(ctx, 0, new_front.len() as u64);
                }
                *frontiers[b].lock() = new_front;
                let dt = ctx.instructions() - t0;
                claim_cycles.fetch_add(ctx, b, dt);
            });
            ctx.barrier();

            // Read the frontier size, then barrier BEFORE thread 0
            // resets the counter: a reset racing with slower readers
            // would let some threads observe 0 and exit early.
            let total = next_total.get(ctx, 0);
            ctx.barrier();
            if total == 0 {
                break;
            }
            if ctx.thread_id() == 0 {
                next_total.set(ctx, 0, 0);
            }
            depth += 1;
            ctx.barrier();
        }
    });

    ScaleOutcome {
        output: (0..n).map(|v| level.get_plain(v)).collect(),
        shards: (0..s_count)
            .map(|s| ShardStats {
                shard: s,
                edges: scan_edges.get_plain(s),
                cycles: scan_cycles.get_plain(s),
            })
            .collect(),
        claim_cycles: (0..b_count).map(|b| claim_cycles.get_plain(b)).sum(),
        report: outcome.report,
    }
}

/// Round-based sharded SSSP (level-synchronous Bellman–Ford) from
/// `source`. Claims are a commutative `min`, so distances are
/// bit-identical to [`sssp_distances`] across shard counts, partitions,
/// and placements.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn sharded_sssp<M: Machine, G: AdjacencyView + Sync>(
    machine: &M,
    graph: &ShardedGraph<G>,
    source: VertexId,
) -> ScaleOutcome<Vec<u32>> {
    let p = *graph.partition();
    let n = p.num_vertices();
    assert!((source as usize) < n, "source vertex out of range");
    let s_count = p.num_shards();
    let b_count = p.blocks();
    let threads = machine.num_threads();

    let dist = SharedU32s::filled(n, UNREACHED);
    dist.set_plain(source as usize, 0);
    let frontiers: Vec<Mutex<Vec<VertexId>>> = (0..b_count)
        .map(|b| {
            Mutex::new(if b == p.block_of(source) {
                vec![source]
            } else {
                Vec::new()
            })
        })
        .collect();
    let lanes: Vec<Vec<Mutex<Vec<(VertexId, u32)>>>> = (0..s_count)
        .map(|_| (0..b_count).map(|_| Mutex::new(Vec::new())).collect())
        .collect();
    let scan_cycles = SharedU64s::new(s_count);
    let scan_edges = SharedU64s::new(s_count);
    let claim_cycles = SharedU64s::new(b_count);
    let next_total = SharedU64s::new(1);
    let scan_pool = TaskPool::new(threads, pool_capacity(s_count, threads), STEAL_SEED ^ 2);
    let claim_pool = TaskPool::new(threads, pool_capacity(b_count, threads), STEAL_SEED ^ 3);

    let outcome = machine.run(|ctx| {
        loop {
            push_own_tasks(ctx, &scan_pool, s_count);
            ctx.barrier();
            drain_pool(ctx, &scan_pool, |ctx, s| {
                let t0 = ctx.instructions();
                let frontier = frontiers[p.shard_src_block(s)].lock();
                if frontier.is_empty() {
                    return;
                }
                let shard = graph.shard(s);
                let mut local: Vec<Vec<(VertexId, u32)>> = vec![Vec::new(); b_count];
                let mut edges = 0u64;
                for &v in frontier.iter() {
                    ctx.compute(costs::VISIT);
                    let dv = dist.get(ctx, v as usize);
                    for (u, w) in shard.neighbors_of(v) {
                        edges += 1;
                        ctx.compute(costs::RELAX);
                        let nd = dv.saturating_add(w);
                        if nd < dist.get(ctx, u as usize) {
                            local[p.block_of(u)].push((u, nd));
                        }
                    }
                }
                drop(frontier);
                for (b, candidates) in local.into_iter().enumerate() {
                    if !candidates.is_empty() {
                        lanes[s][b].lock().extend(candidates);
                    }
                }
                let dt = ctx.instructions() - t0;
                scan_cycles.fetch_add(ctx, s, dt);
                scan_edges.fetch_add(ctx, s, edges);
            });
            ctx.barrier();

            push_own_tasks(ctx, &claim_pool, b_count);
            ctx.barrier();
            drain_pool(ctx, &claim_pool, |ctx, b| {
                let t0 = ctx.instructions();
                let mut improved = Vec::new();
                for shard_lanes in lanes.iter() {
                    let mut lane = shard_lanes[b].lock();
                    for &(u, nd) in lane.iter() {
                        ctx.compute(costs::RELAX);
                        if nd < dist.get(ctx, u as usize) {
                            dist.set(ctx, u as usize, nd);
                            improved.push(u);
                        }
                    }
                    lane.clear();
                }
                // A vertex can improve more than once in a round;
                // sort + dedup keeps the next frontier canonical.
                improved.sort_unstable();
                improved.dedup();
                if !improved.is_empty() {
                    next_total.fetch_add(ctx, 0, improved.len() as u64);
                }
                *frontiers[b].lock() = improved;
                let dt = ctx.instructions() - t0;
                claim_cycles.fetch_add(ctx, b, dt);
            });
            ctx.barrier();

            // Same read-then-barrier-then-reset dance as sharded_bfs:
            // resetting before every thread has read races the exit test.
            let total = next_total.get(ctx, 0);
            ctx.barrier();
            if total == 0 {
                break;
            }
            if ctx.thread_id() == 0 {
                next_total.set(ctx, 0, 0);
            }
            ctx.barrier();
        }
    });

    ScaleOutcome {
        output: (0..n).map(|v| dist.get_plain(v)).collect(),
        shards: (0..s_count)
            .map(|s| ShardStats {
                shard: s,
                edges: scan_edges.get_plain(s),
                cycles: scan_cycles.get_plain(s),
            })
            .collect(),
        claim_cycles: (0..b_count).map(|b| claim_cycles.get_plain(b)).sum(),
        report: outcome.report,
    }
}

/// Pull-model sharded PageRank, `iterations` fixed sweeps.
///
/// Each source block is one task that pulls its row's shards in
/// ascending shard order; under [`Placement::Block`] that visits every
/// vertex's neighbors in the same global ascending order as
/// [`pagerank_pull`], so ranks are bit-identical across shard counts
/// and partitions. Under [`Placement::Hashed`] the summation order
/// changes and ranks agree only to floating-point reassociation — the
/// hashed variant exists for the sim locality comparison, not for
/// golden-gated output.
///
/// `ShardStats.shard` is the *source block* id here (for 1-D, block id
/// and shard id coincide).
///
/// [`Placement::Block`]: crono_graph::shard::Placement::Block
/// [`Placement::Hashed`]: crono_graph::shard::Placement::Hashed
pub fn sharded_pagerank<M: Machine, G: AdjacencyView + Sync>(
    machine: &M,
    graph: &ShardedGraph<G>,
    iterations: usize,
) -> ScaleOutcome<Vec<f64>> {
    let p = *graph.partition();
    let n = p.num_vertices();
    let b_count = p.blocks();
    let threads = machine.num_threads();

    // Global degrees: each vertex's full adjacency lives in its source
    // block's row of shards.
    let mut degrees = vec![0u32; n];
    let members: Vec<Vec<VertexId>> = (0..b_count).map(|b| p.block_members(b)).collect();
    let row_shards: Vec<Vec<usize>> = (0..b_count)
        .map(|b| {
            if p.is_two_d() {
                (0..b_count).map(|j| b * b_count + j).collect()
            } else {
                vec![b]
            }
        })
        .collect();
    for b in 0..b_count {
        for &s in &row_shards[b] {
            let shard = graph.shard(s);
            for &v in &members[b] {
                degrees[v as usize] += shard.degree(v) as u32;
            }
        }
    }
    let degree_arr = ReadArray::new(&degrees);

    let ranks = SharedF64s::filled(n, 1.0 / n.max(1) as f64);
    let contrib = SharedF64s::filled(n, 0.0);
    let block_cycles = SharedU64s::new(b_count);
    let block_edges = SharedU64s::new(b_count);
    let contrib_pool = TaskPool::new(threads, pool_capacity(b_count, threads), STEAL_SEED ^ 4);
    let pull_pool = TaskPool::new(threads, pool_capacity(b_count, threads), STEAL_SEED ^ 5);

    let outcome = machine.run(|ctx| {
        for _ in 0..iterations {
            push_own_tasks(ctx, &contrib_pool, b_count);
            ctx.barrier();
            drain_pool(ctx, &contrib_pool, |ctx, b| {
                let t0 = ctx.instructions();
                for &v in &members[b] {
                    ctx.compute(costs::RANK_UPDATE);
                    let deg = degree_arr.get(ctx, v as usize);
                    let c = if deg > 0 {
                        ranks.get(ctx, v as usize) / deg as f64
                    } else {
                        0.0
                    };
                    contrib.set(ctx, v as usize, c);
                }
                let dt = ctx.instructions() - t0;
                block_cycles.fetch_add(ctx, b, dt);
            });
            ctx.barrier();

            push_own_tasks(ctx, &pull_pool, b_count);
            ctx.barrier();
            drain_pool(ctx, &pull_pool, |ctx, b| {
                let t0 = ctx.instructions();
                let mut edges = 0u64;
                for &v in &members[b] {
                    let mut sum = 0.0f64;
                    for &s in &row_shards[b] {
                        for (u, _) in graph.shard(s).neighbors_of(v) {
                            edges += 1;
                            ctx.compute(costs::RANK_UPDATE);
                            sum += contrib.get(ctx, u as usize);
                        }
                    }
                    ranks.set(ctx, v as usize, DAMPING + (1.0 - DAMPING) * sum);
                }
                let dt = ctx.instructions() - t0;
                block_cycles.fetch_add(ctx, b, dt);
                block_edges.fetch_add(ctx, b, edges);
            });
            ctx.barrier();
        }
    });

    ScaleOutcome {
        output: (0..n).map(|v| ranks.get_plain(v)).collect(),
        shards: (0..b_count)
            .map(|b| ShardStats {
                shard: b,
                edges: block_edges.get_plain(b),
                cycles: block_cycles.get_plain(b),
            })
            .collect(),
        claim_cycles: 0,
        report: outcome.report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crono_graph::gen::{rmat, RmatParams};
    use crono_graph::shard::Partition;
    use crono_graph::CsrGraph;
    use crono_runtime::NativeMachine;

    fn graph() -> CsrGraph {
        rmat(7, 256, 8, RmatParams::default(), 42)
    }

    #[test]
    fn reference_bfs_matches_existing_kernel() {
        let g = graph();
        let machine = NativeMachine::new(1);
        let existing = machine
            .run(|ctx| crate::bfs::run_seq(ctx, &crate::SharedGraph::new(&g), 0))
            .per_thread
            .into_iter()
            .next()
            .unwrap();
        assert_eq!(bfs_levels(&g, 0), existing);
    }

    #[test]
    fn sharded_bfs_matches_reference() {
        let g = graph();
        let n = g.num_vertices();
        let reference = bfs_levels(&g, 0);
        let machine = NativeMachine::new(4);
        for blocks in [1, 2, 4, 7] {
            let sharded =
                ShardedGraph::<CsrGraph>::from_csr(&g, Partition::one_d(n, blocks)).unwrap();
            let out = sharded_bfs(&machine, &sharded, 0);
            assert_eq!(out.output, reference, "1-D blocks={blocks}");
            assert_eq!(out.total_edges() > 0, true);
        }
        let sharded = ShardedGraph::<CsrGraph>::from_csr(&g, Partition::two_d(n, 3)).unwrap();
        assert_eq!(sharded_bfs(&machine, &sharded, 0).output, reference, "2-D");
    }

    #[test]
    fn sharded_sssp_matches_dijkstra() {
        let g = graph();
        let n = g.num_vertices();
        let reference = sssp_distances(&g, 0);
        let machine = NativeMachine::new(4);
        for blocks in [1, 4] {
            let sharded =
                ShardedGraph::<CsrGraph>::from_csr(&g, Partition::one_d(n, blocks)).unwrap();
            assert_eq!(sharded_sssp(&machine, &sharded, 0).output, reference);
        }
    }

    #[test]
    fn sharded_pagerank_is_bit_identical_to_pull_reference() {
        let g = graph();
        let n = g.num_vertices();
        let reference = pagerank_pull(&g, 5);
        let machine = NativeMachine::new(4);
        for partition in [
            Partition::one_d(n, 1),
            Partition::one_d(n, 4),
            Partition::two_d(n, 2),
        ] {
            let sharded = ShardedGraph::<CsrGraph>::from_csr(&g, partition).unwrap();
            let out = sharded_pagerank(&machine, &sharded, 5);
            // Bitwise equality, not tolerance: same f64 operation order.
            assert!(out
                .output
                .iter()
                .zip(&reference)
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn shard_stats_are_deterministic_across_runs() {
        let g = graph();
        let n = g.num_vertices();
        let sharded = ShardedGraph::<CsrGraph>::from_csr(&g, Partition::one_d(n, 4)).unwrap();
        let machine = NativeMachine::new(4);
        let a = sharded_bfs(&machine, &sharded, 0);
        let b = sharded_bfs(&machine, &sharded, 0);
        assert_eq!(a.shards, b.shards);
        assert_eq!(a.claim_cycles, b.claim_cycles);
    }
}
