//! The ten CRONO benchmarks (§III of the paper), each implemented twice:
//! a sequential reference and a parallel version using the exact
//! parallelization strategy of Table I. All kernels are generic over
//! [`crono_runtime::ThreadCtx`], so one implementation runs on the real
//! machine (native backend) *and* on the Graphite-style simulator.
//!
//! | Module | Identifier | Parallelization (Table I) |
//! |---|---|---|
//! | [`sssp`] | `SSSP_DIJK` | Graph division over pareto fronts |
//! | [`apsp`] | `APSP` | Vertex capture |
//! | [`betweenness`] | `BETW_CENT` | Vertex capture & outer loop |
//! | [`bfs`] | `BFS` | Graph division (level-synchronous) |
//! | [`dfs`] | `DFS` | Branch and bound (branch capture) |
//! | [`tsp`] | `TSP` | Branch and bound |
//! | [`connected`] | `CONN_COMP` | Graph division |
//! | [`triangle`] | `TRI_CNT` | Vertex capture & graph division |
//! | [`pagerank`] | `PageRank` | Vertex capture & graph division |
//! | [`community`] | `COMM` | Vertex capture & graph division |
//!
//! # Examples
//!
//! ```
//! use crono_algos::{bfs, sssp};
//! use crono_graph::gen::uniform_random;
//! use crono_runtime::NativeMachine;
//!
//! let graph = uniform_random(512, 2_048, 32, 7);
//! let machine = NativeMachine::new(4);
//!
//! let b = bfs::parallel(&machine, &graph, 0);
//! assert_eq!(b.output.reachable, 512);
//!
//! let s = sssp::parallel(&machine, &graph, 0);
//! assert_eq!(s.output.dist[0], 0);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph_view;

pub mod apsp;
pub mod betweenness;
pub mod bfs;
pub mod community;
pub mod connected;
pub mod costs;
pub mod dfs;
pub mod pagerank;
pub mod scale;
pub mod sssp;
pub mod triangle;
pub mod tsp;

pub use graph_view::SharedGraph;

use crono_runtime::RunReport;

/// A benchmark's algorithmic output plus the backend's run report.
#[derive(Debug, Clone)]
pub struct AlgoOutcome<T> {
    /// The algorithm's result (distances, labels, counts, …).
    pub output: T,
    /// Timing/characterization report from the backend.
    pub report: RunReport,
}

/// The ten CRONO benchmarks, with the paper's identifiers and Table I
/// parallelization strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Single-source shortest path, Dijkstra.
    SsspDijk,
    /// All-pairs shortest path.
    Apsp,
    /// Betweenness centrality.
    BetwCent,
    /// Breadth-first search.
    Bfs,
    /// Depth-first search.
    Dfs,
    /// Traveling salesman problem.
    Tsp,
    /// Connected components.
    ConnComp,
    /// Triangle counting.
    TriCnt,
    /// PageRank.
    PageRank,
    /// Community detection (Louvain).
    Comm,
}

impl Benchmark {
    /// All benchmarks in the paper's Table I order.
    pub const ALL: [Benchmark; 10] = [
        Benchmark::SsspDijk,
        Benchmark::Apsp,
        Benchmark::BetwCent,
        Benchmark::Bfs,
        Benchmark::Dfs,
        Benchmark::Tsp,
        Benchmark::ConnComp,
        Benchmark::TriCnt,
        Benchmark::PageRank,
        Benchmark::Comm,
    ];

    /// The identifier used throughout the paper's tables and figures.
    pub fn label(self) -> &'static str {
        match self {
            Benchmark::SsspDijk => "SSSP_DIJK",
            Benchmark::Apsp => "APSP",
            Benchmark::BetwCent => "BETW_CENT",
            Benchmark::Bfs => "BFS",
            Benchmark::Dfs => "DFS",
            Benchmark::Tsp => "TSP",
            Benchmark::ConnComp => "CONN_COMP",
            Benchmark::TriCnt => "TRI_CNT",
            Benchmark::PageRank => "PageRank",
            Benchmark::Comm => "COMM",
        }
    }

    /// Looks a benchmark up by its [`Benchmark::label`],
    /// case-insensitively (so CLI users can write `bfs` or `BFS`).
    ///
    /// # Examples
    ///
    /// ```
    /// use crono_algos::Benchmark;
    ///
    /// assert_eq!(Benchmark::by_label("bfs"), Some(Benchmark::Bfs));
    /// assert_eq!(Benchmark::by_label("PageRank"), Some(Benchmark::PageRank));
    /// assert_eq!(Benchmark::by_label("nope"), None);
    /// ```
    pub fn by_label(label: &str) -> Option<Benchmark> {
        Benchmark::ALL
            .into_iter()
            .find(|b| b.label().eq_ignore_ascii_case(label))
    }

    /// The parallelization strategy from Table I.
    pub fn strategy(self) -> &'static str {
        match self {
            Benchmark::SsspDijk => "Graph Division",
            Benchmark::Apsp => "Vertex Capture",
            Benchmark::BetwCent => "Vertex Capture & Outer Loop",
            Benchmark::Bfs => "Graph Division",
            Benchmark::Dfs => "Branch and Bound",
            Benchmark::Tsp => "Branch and Bound",
            Benchmark::ConnComp => "Graph Division",
            Benchmark::TriCnt => "Vertex Capture & Graph Division",
            Benchmark::PageRank => "Vertex Capture & Graph Division",
            Benchmark::Comm => "Vertex Capture & Graph Division",
        }
    }

    /// The paper category (§III): path planning, search, or graph
    /// processing.
    pub fn category(self) -> &'static str {
        match self {
            Benchmark::SsspDijk | Benchmark::Apsp | Benchmark::BetwCent => "Path Planning",
            Benchmark::Bfs | Benchmark::Dfs | Benchmark::Tsp => "Search",
            _ => "Graph Processing",
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Opt-in optimized kernel variants (PR 3's `--ablation` flag).
///
/// The paper-faithful kernels stay the default everywhere; an ablation
/// selects a faster variant of the same algorithm so the suite can
/// characterize the optimization the way the paper characterizes
/// everything else. Benchmarks an ablation does not apply to run their
/// default kernel unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ablation {
    /// Word-packed `SharedBitmap` frontiers (GAP-style) for the BFS,
    /// SSSP, and connected-components scans instead of byte arrays.
    FrontierRepr,
    /// Lock-free CAS-loop rank accumulation for PageRank instead of
    /// striped per-vertex locks.
    PagerankUpdate,
    /// Work-stealing task distribution (Chase–Lev per-thread deques,
    /// seeded victim order) for the task-parallel kernels instead of a
    /// shared capture counter (APSP, BETW_CENT) or a lock-guarded
    /// global branch stack (DFS).
    TaskSteal,
    /// Lock-free branch-and-bound publication for TSP: `fetch_min` on
    /// the global bound plus a seqlock-guarded tour, eliminating the
    /// paper's atomic bound lock entirely.
    LockfreeBound,
    /// Direction-optimizing BFS (Beamer et al.): sliding-queue push
    /// levels that switch to bitmap pull levels on the GAP heuristic
    /// once the frontier's scouted edges dominate the unexplored rest.
    DiropBfs,
    /// Delta-stepping SSSP (Meyer & Sanders): bucketed sliding-queue
    /// frontiers with a precomputed light/heavy edge split instead of
    /// full-array pareto-front scans.
    DeltaSssp,
    /// Afforest connected components (Sutton et al.): lock-free
    /// min-hooking union-find with neighbor-round sampling that skips
    /// the most frequent component, instead of iterative label
    /// propagation.
    AfforestCc,
}

impl Ablation {
    /// Every ablation, in CLI-listing order.
    pub const ALL: [Ablation; 7] = [
        Ablation::FrontierRepr,
        Ablation::PagerankUpdate,
        Ablation::TaskSteal,
        Ablation::LockfreeBound,
        Ablation::DiropBfs,
        Ablation::DeltaSssp,
        Ablation::AfforestCc,
    ];

    /// The CLI / TSV key of this ablation.
    pub fn name(self) -> &'static str {
        match self {
            Ablation::FrontierRepr => "frontier_repr",
            Ablation::PagerankUpdate => "pagerank_update",
            Ablation::TaskSteal => "task_steal",
            Ablation::LockfreeBound => "lockfree_bound",
            Ablation::DiropBfs => "dirop_bfs",
            Ablation::DeltaSssp => "delta_sssp",
            Ablation::AfforestCc => "afforest_cc",
        }
    }

    /// Looks an ablation up by [`Ablation::name`], case-insensitively.
    ///
    /// # Examples
    ///
    /// ```
    /// use crono_algos::Ablation;
    ///
    /// assert_eq!(Ablation::by_name("frontier_repr"), Some(Ablation::FrontierRepr));
    /// assert_eq!(Ablation::by_name("nope"), None);
    /// ```
    pub fn by_name(name: &str) -> Option<Ablation> {
        Ablation::ALL
            .into_iter()
            .find(|a| a.name().eq_ignore_ascii_case(name))
    }

    /// The benchmarks whose kernel this ablation replaces.
    pub fn benchmarks(self) -> &'static [Benchmark] {
        match self {
            Ablation::FrontierRepr => {
                &[Benchmark::Bfs, Benchmark::SsspDijk, Benchmark::ConnComp]
            }
            Ablation::PagerankUpdate => &[Benchmark::PageRank],
            Ablation::TaskSteal => {
                &[Benchmark::Apsp, Benchmark::BetwCent, Benchmark::Dfs]
            }
            Ablation::LockfreeBound => &[Benchmark::Tsp],
            Ablation::DiropBfs => &[Benchmark::Bfs],
            Ablation::DeltaSssp => &[Benchmark::SsspDijk],
            Ablation::AfforestCc => &[Benchmark::ConnComp],
        }
    }

    /// Whether this ablation changes `bench`'s kernel.
    pub fn applies_to(self, bench: Benchmark) -> bool {
        self.benchmarks().contains(&bench)
    }
}

impl std::fmt::Display for Ablation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_identifiers() {
        let labels: Vec<_> = Benchmark::ALL.iter().map(|b| b.label()).collect();
        assert_eq!(
            labels,
            vec![
                "SSSP_DIJK",
                "APSP",
                "BETW_CENT",
                "BFS",
                "DFS",
                "TSP",
                "CONN_COMP",
                "TRI_CNT",
                "PageRank",
                "COMM"
            ]
        );
    }

    #[test]
    fn categories_partition_the_suite() {
        let path: Vec<_> = Benchmark::ALL
            .iter()
            .filter(|b| b.category() == "Path Planning")
            .collect();
        let search: Vec<_> = Benchmark::ALL
            .iter()
            .filter(|b| b.category() == "Search")
            .collect();
        assert_eq!(path.len(), 3);
        assert_eq!(search.len(), 3);
    }
}
