//! Property-based tests on benchmark invariants.
//!
//! Formerly driven by `proptest`; now a seeded loop over the in-tree
//! `crono_graph::rng` PRNG so the suite is deterministic and builds
//! offline. Case counts match the old `ProptestConfig::with_cases(24)`.

use crono_algos::*;
use crono_graph::gen::{tsp_cities, uniform_random};
use crono_graph::rng::SmallRng;
use crono_graph::{AdjacencyMatrix, CsrGraph};
use crono_runtime::NativeMachine;

const CASES: u64 = 24;

/// A connected uniform random graph plus a thread count in `1..6`, the
/// shape every invariant below is checked against.
fn arb_graph(rng: &mut SmallRng) -> (CsrGraph, usize) {
    let n = rng.random_range(8..80usize);
    let extra = rng.random_range(0..120usize);
    let seed = rng.random_range(1..50u64);
    let max_extra = n * (n - 1) / 2 - (n - 1);
    let g = uniform_random(n, n - 1 + extra.min(max_extra), 16, seed);
    let threads = rng.random_range(1..6usize);
    (g, threads)
}

#[test]
fn sssp_satisfies_shortest_path_conditions() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xD100 + case);
        let (g, threads) = arb_graph(&mut rng);
        let out = sssp::parallel(&NativeMachine::new(threads), &g, 0).output;
        assert_eq!(out.dist[0], 0);
        // Relaxed: no edge improves any distance (Bellman optimality).
        for v in 0..g.num_vertices() as u32 {
            if out.dist[v as usize] == sssp::UNREACHABLE {
                continue;
            }
            for (u, w) in g.neighbors(v) {
                assert!(out.dist[u as usize] <= out.dist[v as usize] + w);
            }
        }
        // Every non-source reachable vertex has a witness predecessor.
        for v in 1..g.num_vertices() as u32 {
            let dv = out.dist[v as usize];
            if dv == sssp::UNREACHABLE {
                continue;
            }
            let witness = g.neighbors(v).any(|(u, w)| {
                out.dist[u as usize] != sssp::UNREACHABLE && out.dist[u as usize] + w == dv
            });
            assert!(witness, "vertex {v} has no tight incoming edge");
        }
    }
}

#[test]
fn bfs_levels_differ_by_at_most_one_across_edges() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xD200 + case);
        let (g, threads) = arb_graph(&mut rng);
        let out = bfs::parallel(&NativeMachine::new(threads), &g, 0).output;
        for v in 0..g.num_vertices() as u32 {
            let lv = out.level[v as usize];
            if lv == bfs::UNVISITED {
                continue;
            }
            for (u, _) in g.neighbors(v) {
                let lu = out.level[u as usize];
                assert!(lu != bfs::UNVISITED);
                assert!(lu.abs_diff(lv) <= 1);
            }
        }
    }
}

#[test]
fn connected_labels_are_componentwise_minima() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xD300 + case);
        let (g, threads) = arb_graph(&mut rng);
        let out = connected::parallel(&NativeMachine::new(threads), &g).output;
        // Endpoint labels agree across every edge.
        for v in 0..g.num_vertices() as u32 {
            for (u, _) in g.neighbors(v) {
                assert_eq!(out.labels[v as usize], out.labels[u as usize]);
            }
        }
        // A label names the smallest vertex that carries it.
        for (v, &l) in out.labels.iter().enumerate() {
            assert!(l as usize <= v);
            assert_eq!(out.labels[l as usize], l);
        }
    }
}

#[test]
fn pagerank_total_mass_is_stable() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xD400 + case);
        let (g, threads) = arb_graph(&mut rng);
        // With symmetric graphs and no dangling vertices, Eq. 1 preserves
        // r·n + (1-r)·Σ ranks; after enough iterations Σ ranks ≈ n·E[PR].
        let out = pagerank::parallel(&NativeMachine::new(threads), &g, 8).output;
        let expected = pagerank::reference(&g, 8);
        for (a, b) in out.ranks.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}

#[test]
fn triangle_counts_match_reference() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xD500 + case);
        let (g, threads) = arb_graph(&mut rng);
        let out = triangle::parallel(&NativeMachine::new(threads), &g).output;
        assert_eq!(out.total, triangle::reference(&g));
        assert_eq!(out.per_vertex.iter().sum::<u64>(), out.total);
    }
}

#[test]
fn apsp_agrees_with_floyd_warshall() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xD600 + case);
        let n = rng.random_range(6..28usize);
        let seed = rng.random_range(0..30u64);
        let threads = rng.random_range(1..6usize);
        let max_extra = n * (n - 1) / 2 - (n - 1);
        let g = uniform_random(n, (n - 1) + (2 * n).min(max_extra), 9, seed);
        let m = AdjacencyMatrix::from_csr(&g);
        let out = apsp::parallel(&NativeMachine::new(threads), &m).output;
        assert_eq!(out.dist, apsp::floyd_warshall(&m));
    }
}

#[test]
fn tsp_is_optimal_and_symmetric_under_threads() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xD700 + case);
        let n = rng.random_range(4..8usize);
        let seed = rng.random_range(0..20u64);
        let inst = tsp_cities(n, seed);
        let one = tsp::parallel(&NativeMachine::new(1), &inst).output.best_len;
        let four = tsp::parallel(&NativeMachine::new(4), &inst).output.best_len;
        assert_eq!(one, four);
        assert_eq!(one, tsp::reference(&inst));
    }
}

#[test]
fn dfs_claims_exactly_the_reachable_set() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xD800 + case);
        let (g, threads) = arb_graph(&mut rng);
        let out = dfs::parallel(&NativeMachine::new(threads), &g, 0, None).output;
        assert_eq!(out.visited, g.num_vertices(), "generator graphs are connected");
    }
}

#[test]
fn community_modularity_bounded_and_stable() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xD900 + case);
        let (g, threads) = arb_graph(&mut rng);
        let out = community::parallel(&NativeMachine::new(threads), &g, 6).output;
        assert!(out.modularity >= -0.5 && out.modularity <= 1.0);
        assert_eq!(out.num_communities, {
            let mut u = out.community.clone();
            u.sort_unstable();
            u.dedup();
            u.len()
        });
    }
}

#[test]
fn betweenness_endpoints_never_counted() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xDA00 + case);
        let n = rng.random_range(5..20usize);
        let seed = rng.random_range(0..20u64);
        let max_extra = n * (n - 1) / 2 - (n - 1);
        let g = uniform_random(n, (n - 1) + n.min(max_extra), 5, seed);
        let m = AdjacencyMatrix::from_csr(&g);
        let out = betweenness::parallel(&NativeMachine::new(4), &m).output;
        // Total centrality bounded by ordered pairs × interior vertices.
        let bound = (n as u64) * (n as u64 - 1) * (n as u64 - 2);
        assert!(out.centrality.iter().sum::<u64>() <= bound);
        assert_eq!(out.centrality, betweenness::reference(&m));
    }
}
