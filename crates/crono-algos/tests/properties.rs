//! Property-based tests on benchmark invariants.

use crono_algos::*;
use crono_graph::gen::{tsp_cities, uniform_random};
use crono_graph::{AdjacencyMatrix, CsrGraph};
use crono_runtime::NativeMachine;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (8usize..80, 0usize..120, 1u64..50).prop_map(|(n, extra, seed)| {
        let max_extra = n * (n - 1) / 2 - (n - 1);
        uniform_random(n, n - 1 + extra.min(max_extra), 16, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sssp_satisfies_shortest_path_conditions(g in arb_graph(), threads in 1usize..6) {
        let out = sssp::parallel(&NativeMachine::new(threads), &g, 0).output;
        prop_assert_eq!(out.dist[0], 0);
        // Relaxed: no edge improves any distance (Bellman optimality).
        for v in 0..g.num_vertices() as u32 {
            if out.dist[v as usize] == sssp::UNREACHABLE { continue; }
            for (u, w) in g.neighbors(v) {
                prop_assert!(out.dist[u as usize] <= out.dist[v as usize] + w);
            }
        }
        // Every non-source reachable vertex has a witness predecessor.
        for v in 1..g.num_vertices() as u32 {
            let dv = out.dist[v as usize];
            if dv == sssp::UNREACHABLE { continue; }
            let witness = g.neighbors(v).any(|(u, w)| {
                out.dist[u as usize] != sssp::UNREACHABLE
                    && out.dist[u as usize] + w == dv
            });
            prop_assert!(witness, "vertex {v} has no tight incoming edge");
        }
    }

    #[test]
    fn bfs_levels_differ_by_at_most_one_across_edges(g in arb_graph(), threads in 1usize..6) {
        let out = bfs::parallel(&NativeMachine::new(threads), &g, 0).output;
        for v in 0..g.num_vertices() as u32 {
            let lv = out.level[v as usize];
            if lv == bfs::UNVISITED { continue; }
            for (u, _) in g.neighbors(v) {
                let lu = out.level[u as usize];
                prop_assert!(lu != bfs::UNVISITED);
                prop_assert!(lu.abs_diff(lv) <= 1);
            }
        }
    }

    #[test]
    fn connected_labels_are_componentwise_minima(g in arb_graph(), threads in 1usize..6) {
        let out = connected::parallel(&NativeMachine::new(threads), &g).output;
        // Endpoint labels agree across every edge.
        for v in 0..g.num_vertices() as u32 {
            for (u, _) in g.neighbors(v) {
                prop_assert_eq!(out.labels[v as usize], out.labels[u as usize]);
            }
        }
        // A label names the smallest vertex that carries it.
        for (v, &l) in out.labels.iter().enumerate() {
            prop_assert!(l as usize <= v);
            prop_assert_eq!(out.labels[l as usize], l);
        }
    }

    #[test]
    fn pagerank_total_mass_is_stable(g in arb_graph(), threads in 1usize..6) {
        // With symmetric graphs and no dangling vertices, Eq. 1 preserves
        // r·n + (1-r)·Σ ranks; after enough iterations Σ ranks ≈ n·E[PR].
        let out = pagerank::parallel(&NativeMachine::new(threads), &g, 8).output;
        let expected = pagerank::reference(&g, 8);
        for (a, b) in out.ranks.iter().zip(&expected) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn triangle_counts_match_reference(g in arb_graph(), threads in 1usize..6) {
        let out = triangle::parallel(&NativeMachine::new(threads), &g).output;
        prop_assert_eq!(out.total, triangle::reference(&g));
        prop_assert_eq!(out.per_vertex.iter().sum::<u64>(), out.total);
    }

    #[test]
    fn apsp_agrees_with_floyd_warshall(n in 6usize..28, seed in 0u64..30, threads in 1usize..6) {
        let max_extra = n * (n - 1) / 2 - (n - 1);
        let g = uniform_random(n, (n - 1) + (2 * n).min(max_extra), 9, seed);
        let m = AdjacencyMatrix::from_csr(&g);
        let out = apsp::parallel(&NativeMachine::new(threads), &m).output;
        prop_assert_eq!(out.dist, apsp::floyd_warshall(&m));
    }

    #[test]
    fn tsp_is_optimal_and_symmetric_under_threads(n in 4usize..8, seed in 0u64..20) {
        let inst = tsp_cities(n, seed);
        let one = tsp::parallel(&NativeMachine::new(1), &inst).output.best_len;
        let four = tsp::parallel(&NativeMachine::new(4), &inst).output.best_len;
        prop_assert_eq!(one, four);
        prop_assert_eq!(one, tsp::reference(&inst));
    }

    #[test]
    fn dfs_claims_exactly_the_reachable_set(g in arb_graph(), threads in 1usize..6) {
        let out = dfs::parallel(&NativeMachine::new(threads), &g, 0, None).output;
        prop_assert_eq!(out.visited, g.num_vertices(), "generator graphs are connected");
    }

    #[test]
    fn community_modularity_bounded_and_stable(g in arb_graph(), threads in 1usize..6) {
        let out = community::parallel(&NativeMachine::new(threads), &g, 6).output;
        prop_assert!(out.modularity >= -0.5 && out.modularity <= 1.0);
        prop_assert_eq!(
            out.num_communities,
            {
                let mut u = out.community.clone();
                u.sort_unstable();
                u.dedup();
                u.len()
            }
        );
    }

    #[test]
    fn betweenness_endpoints_never_counted(n in 5usize..20, seed in 0u64..20) {
        let max_extra = n * (n - 1) / 2 - (n - 1);
        let g = uniform_random(n, (n - 1) + n.min(max_extra), 5, seed);
        let m = AdjacencyMatrix::from_csr(&g);
        let out = betweenness::parallel(&NativeMachine::new(4), &m).output;
        // Total centrality bounded by ordered pairs × interior vertices.
        let bound = (n as u64) * (n as u64 - 1) * (n as u64 - 2);
        prop_assert!(out.centrality.iter().sum::<u64>() <= bound);
        prop_assert_eq!(out.centrality, betweenness::reference(&m));
    }
}
