//! Cross-representation equivalence for the scale-track kernels.
//!
//! The sharded drivers must produce bit-identical output regardless of
//! adjacency representation (flat CSR vs varint-compressed), shard
//! count, and partition shape. `golden_distance` is the gate
//! `scripts/ci.sh` invokes by name: it pins a BFS-distance fingerprint
//! computed through the compressed representation to the value computed
//! through the plain one.

use crono_algos::scale::{
    bfs_levels, pagerank_pull, sharded_bfs, sharded_pagerank, sharded_sssp, sssp_distances,
};
use crono_graph::gen::{rmat, road_network, RmatParams};
use crono_graph::shard::{Partition, Placement, ShardedGraph};
use crono_graph::{CompressedCsr, CsrGraph};
use crono_runtime::NativeMachine;

fn rmat_graph() -> CsrGraph {
    rmat(8, 512, 8, RmatParams::default(), 7)
}

fn partitions(n: usize) -> Vec<Partition> {
    vec![
        Partition::one_d(n, 1),
        Partition::one_d(n, 2),
        Partition::one_d(n, 4),
        Partition::one_d(n, 7),
        Partition::two_d(n, 2),
        Partition::two_d(n, 3),
    ]
}

/// FNV-1a over little-endian `u64` values, matching the graph-side
/// fingerprint convention in `crono-graph/tests/determinism.rs`.
fn fingerprint(values: impl IntoIterator<Item = u64>) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for value in values {
        for byte in value.to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    hash
}

#[test]
fn sharded_bfs_is_bit_identical_across_representations_and_shards() {
    let g = rmat_graph();
    let n = g.num_vertices();
    let reference = bfs_levels(&g, 0);
    let machine = NativeMachine::new(4);
    for partition in partitions(n) {
        let plain = ShardedGraph::<CsrGraph>::from_csr(&g, partition).unwrap();
        let packed = ShardedGraph::<CompressedCsr>::from_csr(&g, partition).unwrap();
        let via_plain = sharded_bfs(&machine, &plain, 0);
        let via_packed = sharded_bfs(&machine, &packed, 0);
        assert_eq!(via_plain.output, reference, "plain {partition:?}");
        assert_eq!(via_packed.output, reference, "compressed {partition:?}");
        // Modeled per-shard cost must not depend on the byte encoding.
        assert_eq!(via_plain.shards, via_packed.shards, "{partition:?}");
    }
}

#[test]
fn sharded_sssp_is_bit_identical_across_representations_and_shards() {
    let g = road_network(16, 16, 8, 0.2, 0.05, 42);
    let n = g.num_vertices();
    let reference = sssp_distances(&g, 0);
    let machine = NativeMachine::new(4);
    for partition in partitions(n) {
        let plain = ShardedGraph::<CsrGraph>::from_csr(&g, partition).unwrap();
        let packed = ShardedGraph::<CompressedCsr>::from_csr(&g, partition).unwrap();
        assert_eq!(
            sharded_sssp(&machine, &plain, 0).output,
            reference,
            "plain {partition:?}"
        );
        assert_eq!(
            sharded_sssp(&machine, &packed, 0).output,
            reference,
            "compressed {partition:?}"
        );
    }
}

#[test]
fn sharded_pagerank_is_bit_identical_under_block_placement() {
    let g = rmat_graph();
    let n = g.num_vertices();
    let reference = pagerank_pull(&g, 8);
    let machine = NativeMachine::new(4);
    for partition in partitions(n) {
        let plain = ShardedGraph::<CsrGraph>::from_csr(&g, partition).unwrap();
        let packed = ShardedGraph::<CompressedCsr>::from_csr(&g, partition).unwrap();
        for (tag, out) in [
            ("plain", sharded_pagerank(&machine, &plain, 8)),
            ("compressed", sharded_pagerank(&machine, &packed, 8)),
        ] {
            let bitwise = out
                .output
                .iter()
                .zip(&reference)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(bitwise, "{tag} {partition:?}: ranks not bit-identical");
        }
    }
}

#[test]
fn hashed_placement_still_matches_reference_for_bfs_and_sssp() {
    // Hashed placement scatters vertices across blocks; BFS levels and
    // SSSP distances are placement-invariant (unlike PageRank's f64
    // summation order).
    let g = rmat_graph();
    let n = g.num_vertices();
    let bfs_ref = bfs_levels(&g, 0);
    let sssp_ref = sssp_distances(&g, 0);
    let machine = NativeMachine::new(4);
    let partition = Partition::one_d(n, 4).with_placement(Placement::Hashed);
    let sharded = ShardedGraph::<CsrGraph>::from_csr(&g, partition).unwrap();
    assert_eq!(sharded_bfs(&machine, &sharded, 0).output, bfs_ref);
    assert_eq!(sharded_sssp(&machine, &sharded, 0).output, sssp_ref);
}

/// CI gate: the BFS distance fingerprint through the compressed
/// representation equals the fingerprint through the flat CSR. Run by
/// name from `scripts/ci.sh`.
#[test]
fn golden_distance() {
    let g = rmat_graph();
    let n = g.num_vertices();
    let machine = NativeMachine::new(4);
    let plain = ShardedGraph::<CsrGraph>::from_csr(&g, Partition::one_d(n, 4)).unwrap();
    let packed = ShardedGraph::<CompressedCsr>::from_csr(&g, Partition::one_d(n, 4)).unwrap();
    let fp_plain = fingerprint(sharded_bfs(&machine, &plain, 0).output.iter().map(|&l| l as u64));
    let fp_packed = fingerprint(
        sharded_bfs(&machine, &packed, 0)
            .output
            .iter()
            .map(|&l| l as u64),
    );
    assert_eq!(
        fp_plain, fp_packed,
        "compressed and plain CSR disagree on BFS distances"
    );
    // And both must equal the sequential oracle's fingerprint.
    let fp_seq = fingerprint(bfs_levels(&g, 0).iter().map(|&l| l as u64));
    assert_eq!(fp_plain, fp_seq, "sharded BFS diverged from sequential oracle");
}
