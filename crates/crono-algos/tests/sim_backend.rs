//! Every benchmark must produce the same algorithmic output on the
//! simulated backend as on the native backend — the two backends differ
//! only in what they *observe*, never in what the benchmark computes.

use crono_algos::*;
use crono_graph::gen::{tsp_cities, uniform_random};
use crono_graph::AdjacencyMatrix;
use crono_runtime::NativeMachine;
use crono_sim::{SimConfig, SimMachine};

fn sim(threads: usize) -> SimMachine {
    SimMachine::new(SimConfig::tiny(16), threads)
}

#[test]
fn sssp_same_on_both_backends() {
    let g = uniform_random(128, 512, 16, 21);
    let native = sssp::parallel(&NativeMachine::new(4), &g, 0);
    let simmed = sssp::parallel(&sim(4), &g, 0);
    assert_eq!(native.output.dist, simmed.output.dist);
    assert!(simmed.report.completion > 0);
    assert!(simmed.report.misses.l1d_accesses > 0);
}

#[test]
fn bfs_same_on_both_backends() {
    let g = uniform_random(128, 512, 4, 22);
    let native = bfs::parallel(&NativeMachine::new(4), &g, 0);
    let simmed = bfs::parallel(&sim(4), &g, 0);
    assert_eq!(native.output.level, simmed.output.level);
}

#[test]
fn apsp_same_on_both_backends() {
    let m = AdjacencyMatrix::from_csr(&uniform_random(32, 100, 8, 23));
    let native = apsp::parallel(&NativeMachine::new(4), &m);
    let simmed = apsp::parallel(&sim(4), &m);
    assert_eq!(native.output.dist, simmed.output.dist);
}

#[test]
fn betweenness_same_on_both_backends() {
    let m = AdjacencyMatrix::from_csr(&uniform_random(24, 70, 8, 24));
    let native = betweenness::parallel(&NativeMachine::new(2), &m);
    let simmed = betweenness::parallel(&sim(2), &m);
    assert_eq!(native.output.centrality, simmed.output.centrality);
}

#[test]
fn dfs_visits_component_on_sim() {
    let g = uniform_random(96, 300, 4, 25);
    let simmed = dfs::parallel(&sim(4), &g, 0, None);
    assert_eq!(simmed.output.visited, 96);
}

#[test]
fn tsp_optimal_on_sim() {
    let inst = tsp_cities(8, 26);
    let native = tsp::parallel(&NativeMachine::new(4), &inst);
    let simmed = tsp::parallel(&sim(4), &inst);
    assert_eq!(native.output.best_len, simmed.output.best_len);
}

#[test]
fn connected_components_same_on_both_backends() {
    let g = uniform_random(128, 300, 4, 27);
    let native = connected::parallel(&NativeMachine::new(4), &g);
    let simmed = connected::parallel(&sim(4), &g);
    assert_eq!(native.output.labels, simmed.output.labels);
}

#[test]
fn triangles_same_on_both_backends() {
    let g = uniform_random(64, 250, 4, 28);
    let native = triangle::parallel(&NativeMachine::new(4), &g);
    let simmed = triangle::parallel(&sim(4), &g);
    assert_eq!(native.output.total, simmed.output.total);
    assert_eq!(native.output.per_vertex, simmed.output.per_vertex);
}

#[test]
fn pagerank_same_on_both_backends() {
    let g = uniform_random(64, 250, 4, 29);
    let native = pagerank::parallel(&NativeMachine::new(4), &g, 5);
    let simmed = pagerank::parallel(&sim(4), &g, 5);
    for (a, b) in native.output.ranks.iter().zip(&simmed.output.ranks) {
        assert!((a - b).abs() < 1e-9);
    }
}

#[test]
fn community_valid_on_sim() {
    let g = uniform_random(64, 250, 8, 30);
    let simmed = community::parallel(&sim(4), &g, 8);
    assert!(simmed.output.modularity >= -0.5 && simmed.output.modularity <= 1.0);
    assert!(simmed.output.num_communities >= 1);
}

#[test]
fn sim_breakdown_components_sum_to_thread_time() {
    let g = uniform_random(96, 400, 8, 31);
    let outcome = sssp::parallel(&sim(4), &g, 0);
    for (tid, t) in outcome.report.threads.iter().enumerate() {
        assert_eq!(
            t.breakdown.total(),
            t.finish_time,
            "thread {tid}: breakdown must account for every cycle"
        );
    }
}

#[test]
fn sim_completion_is_max_thread_time() {
    let g = uniform_random(96, 400, 8, 32);
    let outcome = bfs::parallel(&sim(4), &g, 0);
    let max = outcome
        .report
        .threads
        .iter()
        .map(|t| t.finish_time)
        .max()
        .unwrap();
    assert_eq!(outcome.report.completion, max);
}

#[test]
fn every_benchmark_records_active_vertices() {
    use crono_graph::AdjacencyMatrix;
    let g = uniform_random(96, 380, 8, 40);
    let m = AdjacencyMatrix::from_csr(&uniform_random(24, 70, 8, 41));
    let inst = tsp_cities(7, 42);
    let machine = sim(4);
    let traces = vec![
        ("sssp", sssp::parallel(&machine, &g, 0).report),
        ("apsp", apsp::parallel(&machine, &m).report),
        ("betw", betweenness::parallel(&machine, &m).report),
        ("bfs", bfs::parallel(&machine, &g, 0).report),
        ("dfs", dfs::parallel(&machine, &g, 0, None).report),
        ("tsp", tsp::parallel(&machine, &inst).report),
        ("conn", connected::parallel(&machine, &g).report),
        ("tri", triangle::parallel(&machine, &g).report),
        ("pagerank", pagerank::parallel(&machine, &g, 3).report),
        ("comm", community::parallel(&machine, &g, 4).report),
    ];
    for (name, report) in traces {
        let trace = report.active_vertex_trace();
        assert!(!trace.is_empty(), "{name} recorded no active-vertex samples");
        assert!(
            trace.iter().all(|&(t, _)| t <= report.completion),
            "{name} has samples beyond completion"
        );
    }
}

#[test]
fn inner_loop_variants_agree_on_sim() {
    let g = uniform_random(96, 380, 8, 43);
    let outer_sssp = sssp::parallel(&sim(4), &g, 0);
    let inner_sssp = sssp::parallel_inner(&sim(4), &g, 0);
    assert_eq!(outer_sssp.output.dist, inner_sssp.output.dist);
    let outer_bfs = bfs::parallel(&sim(4), &g, 0);
    let inner_bfs = bfs::parallel_inner(&sim(4), &g, 0);
    assert_eq!(outer_bfs.output.level, inner_bfs.output.level);
}

#[test]
fn miss_classes_sum_to_misses() {
    let g = uniform_random(96, 400, 8, 33);
    let outcome = pagerank::parallel(&sim(4), &g, 3);
    let m = &outcome.report.misses;
    assert_eq!(
        m.l1d_misses(),
        m.cold_misses + m.capacity_misses + m.sharing_misses
    );
    assert!(m.l1d_misses() <= m.l1d_accesses);
    assert!(m.l2_misses <= m.l2_accesses);
}
