//! Equivalence gates for the GAP-class kernels (direction-optimizing
//! BFS, delta-stepping SSSP, Afforest connected components): every
//! optimized kernel must produce output bit-identical to its sequential
//! reference on every generator family, at 1, 4, and 16 threads — plus
//! pinning tests for the BFS push↔pull schedule, which depends only on
//! deterministic frontier statistics and must therefore never drift
//! without an intentional heuristic change.

use crono_algos::{bfs, connected, sssp};
use crono_graph::gen::catalog::Dataset;
use crono_graph::gen::{
    preferential_attachment, rmat, road_network, uniform_random, RmatParams,
};
use crono_graph::CsrGraph;
use crono_runtime::NativeMachine;

const THREADS: [usize; 3] = [1, 4, 16];

/// One seeded graph per generator family (all five sources the suite
/// ships: uniform, R-MAT, road grid, preferential attachment, and the
/// Table-III catalog stand-ins).
fn generator_zoo() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("uniform_random", uniform_random(300, 1200, 16, 21)),
        ("rmat", rmat(9, 4096, 8, RmatParams::default(), 5)),
        ("road_network", road_network(18, 18, 16, 0.1, 0.02, 7)),
        (
            "preferential_attachment",
            preferential_attachment(400, 4, 16, 9),
        ),
        ("catalog", Dataset::SparseSynthetic.generate(12, 33)),
    ]
}

#[test]
fn dirop_bfs_matches_sequential_on_every_generator() {
    for (name, g) in generator_zoo() {
        let seq = bfs::sequential(&NativeMachine::new(1), &g, 0);
        for threads in THREADS {
            let par = bfs::parallel_dirop(&NativeMachine::new(threads), &g, 0);
            assert_eq!(
                par.output.level, seq.output.level,
                "{name} threads={threads}"
            );
            assert_eq!(par.output.reachable, seq.output.reachable, "{name}");
            assert_eq!(par.output.levels, seq.output.levels, "{name}");
        }
    }
}

#[test]
fn delta_sssp_matches_sequential_on_every_generator() {
    for (name, g) in generator_zoo() {
        let seq = sssp::sequential(&NativeMachine::new(1), &g, 0);
        for threads in THREADS {
            let par = sssp::parallel_delta(&NativeMachine::new(threads), &g, 0);
            assert_eq!(
                par.output.dist, seq.output.dist,
                "{name} threads={threads}"
            );
        }
    }
}

#[test]
fn afforest_cc_matches_sequential_on_every_generator() {
    for (name, g) in generator_zoo() {
        let seq = connected::sequential(&NativeMachine::new(1), &g);
        for threads in THREADS {
            let par = connected::parallel_afforest(&NativeMachine::new(threads), &g);
            assert_eq!(
                par.output.labels, seq.output.labels,
                "{name} threads={threads}"
            );
            assert_eq!(par.output.components, seq.output.components, "{name}");
        }
    }
}

/// Pins the push↔pull schedule on a known low-diameter R-MAT: the GAP
/// heuristic must go bottom-up once the frontier's scouted edges
/// dominate the unexplored remainder, and come back down for the tail.
/// The decision uses only aggregate frontier statistics, so the
/// schedule is identical at every thread count.
#[test]
fn dirop_switches_to_pull_on_rmat() {
    let g = rmat(9, 8192, 4, RmatParams::default(), 5);
    let mut schedules = Vec::new();
    for threads in THREADS {
        let (_, modes) = bfs::parallel_dirop_traced(&NativeMachine::new(threads), &g, 0);
        schedules.push(modes);
    }
    assert_eq!(schedules[0], schedules[1]);
    assert_eq!(schedules[1], schedules[2]);
    let modes = &schedules[0];
    assert_eq!(modes[0], bfs::Direction::Push, "level 0 is a single-vertex push");
    assert!(
        modes.contains(&bfs::Direction::Pull),
        "dense R-MAT never triggered bottom-up: {modes:?}"
    );
}

/// Pins the schedule on a known road grid. A high-diameter planar
/// wavefront stays top-down for the whole first half of the traversal
/// (it never scouts enough edges while plenty remain unexplored), and
/// only once the unexplored remainder is nearly exhausted does the
/// alpha test start firing — at which point the small frontier flips
/// straight back, giving a short push/pull oscillation before the
/// all-push tail. The exact level indices are pinned so any change to
/// the heuristic or its bookkeeping is a conscious one.
#[test]
fn dirop_road_grid_schedule_is_pinned() {
    let g = road_network(24, 24, 16, 0.05, 0.0, 11);
    let mut schedules = Vec::new();
    for threads in THREADS {
        let (out, modes) = bfs::parallel_dirop_traced(&NativeMachine::new(threads), &g, 0);
        assert!(out.output.levels >= 10, "grid should be deep, got {}", out.output.levels);
        schedules.push(modes);
    }
    assert_eq!(schedules[0], schedules[1]);
    assert_eq!(schedules[1], schedules[2]);
    let pulls: Vec<usize> = schedules[0]
        .iter()
        .enumerate()
        .filter(|&(_, &m)| m == bfs::Direction::Pull)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(schedules[0].len(), 47);
    assert_eq!(pulls, vec![21, 23, 25, 27, 29], "pull levels moved");
}
