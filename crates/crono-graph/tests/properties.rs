//! Property-based tests for the graph substrate.
//!
//! Formerly driven by `proptest`; now a seeded loop over the in-tree
//! [`crono_graph::rng`] PRNG so the suite is deterministic and builds
//! offline. Every case derives from a fixed seed — a failure reproduces
//! exactly by rerunning the test.

use crono_graph::dsu::Dsu;
use crono_graph::gen::{rmat, road_network, tsp_cities, uniform_random, RmatParams};
use crono_graph::io::{read_dimacs, read_edge_list, write_dimacs, write_edge_list};
use crono_graph::rng::SmallRng;
use crono_graph::{CsrGraph, EdgeList};

const CASES: u64 = 48;

/// Random vertex count in `2..max_n` plus up to `max_m` random weighted
/// edges (duplicates and self-loops allowed, like proptest's arbitrary
/// edge vectors).
fn arb_edges(rng: &mut SmallRng, max_n: usize, max_m: usize) -> (usize, Vec<(u32, u32, u32)>) {
    let n = rng.random_range(2..max_n);
    let m = rng.random_range(0..max_m);
    let edges = (0..m)
        .map(|_| {
            (
                rng.random_range(0..n as u32),
                rng.random_range(0..n as u32),
                rng.random_range(1..100u32),
            )
        })
        .collect();
    (n, edges)
}

#[test]
fn csr_preserves_every_edge() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x11AA + case);
        let (n, edges) = arb_edges(&mut rng, 64, 256);
        let g = CsrGraph::from_edges(n, edges.clone());
        assert_eq!(g.num_directed_edges(), edges.len());
        for (s, d, w) in edges {
            assert!(g.neighbors(s).any(|(x, wx)| x == d && wx == w));
        }
    }
}

#[test]
fn csr_degrees_sum_to_edge_count() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x22BB + case);
        let (n, edges) = arb_edges(&mut rng, 64, 256);
        let g = CsrGraph::from_edges(n, edges);
        let total: usize = (0..n as u32).map(|v| g.degree(v)).sum();
        assert_eq!(total, g.num_directed_edges());
    }
}

#[test]
fn transpose_is_involutive() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x33CC + case);
        let (n, edges) = arb_edges(&mut rng, 32, 128);
        let g = CsrGraph::from_edges(n, edges);
        assert_eq!(g.transpose().transpose(), g);
    }
}

#[test]
fn edge_list_io_round_trips() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x44DD + case);
        let (n, edges) = arb_edges(&mut rng, 32, 128);
        let g = CsrGraph::from_edges(n, edges);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice(), false).unwrap();
        // Round-trip can lose trailing isolated vertices (edge lists have
        // no vertex-count header); edges must survive exactly.
        assert_eq!(g2.num_directed_edges(), g.num_directed_edges());
        for v in 0..g2.num_vertices() as u32 {
            let a: Vec<_> = g.neighbors(v).collect();
            let b: Vec<_> = g2.neighbors(v).collect();
            assert_eq!(a, b);
        }
    }
}

#[test]
fn dimacs_io_round_trips() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x55EE + case);
        let (n, edges) = arb_edges(&mut rng, 32, 128);
        let g = CsrGraph::from_edges(n, edges);
        let mut buf = Vec::new();
        write_dimacs(&g, &mut buf).unwrap();
        assert_eq!(read_dimacs(buf.as_slice()).unwrap(), g);
    }
}

#[test]
fn uniform_generator_is_connected() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x66FF + case);
        let n = rng.random_range(8..128usize);
        let extra = rng.random_range(0..64usize).min(n * (n - 1) / 2 - (n - 1));
        let seed = rng.random_range(0..100u64);
        let g = uniform_random(n, n - 1 + extra, 16, seed);
        let mut dsu = Dsu::new(n);
        for v in 0..n as u32 {
            for (u, _) in g.neighbors(v) {
                dsu.union(v, u);
            }
        }
        assert_eq!(dsu.num_components(), 1);
    }
}

#[test]
fn road_generator_is_connected() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x7711 + case);
        let rows = rng.random_range(2..20usize);
        let cols = rng.random_range(2..20usize);
        let drop = rng.random_range(0.0..0.6f64);
        let seed = rng.random_range(0..50u64);
        let g = road_network(rows, cols, 8, drop, 0.05, seed);
        let n = g.num_vertices();
        let mut dsu = Dsu::new(n);
        for v in 0..n as u32 {
            for (u, _) in g.neighbors(v) {
                dsu.union(v, u);
            }
        }
        assert_eq!(dsu.num_components(), 1);
    }
}

#[test]
fn rmat_edges_within_range() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x8822 + case);
        let scale = rng.random_range(3..10u32);
        let m = rng.random_range(1..512usize);
        let seed = rng.random_range(0..50u64);
        let g = rmat(scale, m, 8, RmatParams::default(), seed);
        assert_eq!(g.num_vertices(), 1usize << scale);
        assert!(g.num_directed_edges() <= 2 * m);
        // Symmetry
        for v in 0..g.num_vertices() as u32 {
            for (u, w) in g.neighbors(v) {
                assert!(g.neighbors(u).any(|(x, wx)| x == v && wx == w));
            }
        }
    }
}

#[test]
fn tsp_tour_length_invariant_under_rotation() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x9933 + case);
        let n = rng.random_range(3..9usize);
        let seed = rng.random_range(0..50u64);
        let inst = tsp_cities(n, seed);
        let order: Vec<usize> = (0..n).collect();
        let mut rotated = order.clone();
        rotated.rotate_left(1);
        assert_eq!(inst.tour_length(&order), inst.tour_length(&rotated));
    }
}

#[test]
fn dedup_removes_all_duplicates() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xAA44 + case);
        let (n, edges) = arb_edges(&mut rng, 24, 200);
        let mut el = EdgeList::new(n);
        el.extend(edges);
        el.dedup();
        let pairs: Vec<_> = el.iter().map(|(s, d, _)| (s, d)).collect();
        let mut uniq = pairs.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(pairs.len(), uniq.len());
        assert!(el.iter().all(|(s, d, _)| s != d));
    }
}
