//! Property-based tests for the graph substrate.

use crono_graph::dsu::Dsu;
use crono_graph::gen::{rmat, road_network, tsp_cities, uniform_random, RmatParams};
use crono_graph::io::{read_dimacs, read_edge_list, write_dimacs, write_edge_list};
use crono_graph::{CsrGraph, EdgeList};
use proptest::prelude::*;

fn arb_edges(max_n: usize, max_m: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32, u32)>)> {
    (2..max_n).prop_flat_map(move |n| {
        let edges = proptest::collection::vec(
            (0..n as u32, 0..n as u32, 1..100u32),
            0..max_m,
        );
        (Just(n), edges)
    })
}

proptest! {
    #[test]
    fn csr_preserves_every_edge((n, edges) in arb_edges(64, 256)) {
        let g = CsrGraph::from_edges(n, edges.clone());
        prop_assert_eq!(g.num_directed_edges(), edges.len());
        for (s, d, w) in edges {
            prop_assert!(g.neighbors(s).any(|(x, wx)| x == d && wx == w));
        }
    }

    #[test]
    fn csr_degrees_sum_to_edge_count((n, edges) in arb_edges(64, 256)) {
        let g = CsrGraph::from_edges(n, edges);
        let total: usize = (0..n as u32).map(|v| g.degree(v)).sum();
        prop_assert_eq!(total, g.num_directed_edges());
    }

    #[test]
    fn transpose_is_involutive((n, edges) in arb_edges(32, 128)) {
        let g = CsrGraph::from_edges(n, edges);
        prop_assert_eq!(g.transpose().transpose(), g);
    }

    #[test]
    fn edge_list_io_round_trips((n, edges) in arb_edges(32, 128)) {
        let g = CsrGraph::from_edges(n, edges);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice(), false).unwrap();
        // Round-trip can lose trailing isolated vertices (edge lists have
        // no vertex-count header); edges must survive exactly.
        prop_assert_eq!(g2.num_directed_edges(), g.num_directed_edges());
        for v in 0..g2.num_vertices() as u32 {
            let a: Vec<_> = g.neighbors(v).collect();
            let b: Vec<_> = g2.neighbors(v).collect();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn dimacs_io_round_trips((n, edges) in arb_edges(32, 128)) {
        let g = CsrGraph::from_edges(n, edges);
        let mut buf = Vec::new();
        write_dimacs(&g, &mut buf).unwrap();
        prop_assert_eq!(read_dimacs(buf.as_slice()).unwrap(), g);
    }

    #[test]
    fn uniform_generator_is_connected(n in 8usize..128, extra in 0usize..64, seed in 0u64..100) {
        let extra = extra.min(n * (n - 1) / 2 - (n - 1));
        let g = uniform_random(n, n - 1 + extra, 16, seed);
        let mut dsu = Dsu::new(n);
        for v in 0..n as u32 {
            for (u, _) in g.neighbors(v) {
                dsu.union(v, u);
            }
        }
        prop_assert_eq!(dsu.num_components(), 1);
    }

    #[test]
    fn road_generator_is_connected(rows in 2usize..20, cols in 2usize..20,
                                   drop in 0.0f64..0.6, seed in 0u64..50) {
        let g = road_network(rows, cols, 8, drop, 0.05, seed);
        let n = g.num_vertices();
        let mut dsu = Dsu::new(n);
        for v in 0..n as u32 {
            for (u, _) in g.neighbors(v) {
                dsu.union(v, u);
            }
        }
        prop_assert_eq!(dsu.num_components(), 1);
    }

    #[test]
    fn rmat_edges_within_range(scale in 3u32..10, m in 1usize..512, seed in 0u64..50) {
        let g = rmat(scale, m, 8, RmatParams::default(), seed);
        prop_assert_eq!(g.num_vertices(), 1usize << scale);
        prop_assert!(g.num_directed_edges() <= 2 * m);
        // Symmetry
        for v in 0..g.num_vertices() as u32 {
            for (u, w) in g.neighbors(v) {
                prop_assert!(g.neighbors(u).any(|(x, wx)| x == v && wx == w));
            }
        }
    }

    #[test]
    fn tsp_tour_length_invariant_under_rotation(n in 3usize..9, seed in 0u64..50) {
        let inst = tsp_cities(n, seed);
        let order: Vec<usize> = (0..n).collect();
        let mut rotated = order.clone();
        rotated.rotate_left(1);
        prop_assert_eq!(inst.tour_length(&order), inst.tour_length(&rotated));
    }

    #[test]
    fn dedup_removes_all_duplicates((n, edges) in arb_edges(24, 200)) {
        let mut el = EdgeList::new(n);
        el.extend(edges);
        el.dedup();
        let pairs: Vec<_> = el.iter().map(|(s, d, _)| (s, d)).collect();
        let mut uniq = pairs.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(pairs.len(), uniq.len());
        prop_assert!(el.iter().all(|(s, d, _)| s != d));
    }
}
