//! Determinism and golden-snapshot tests for the five synthetic
//! generators.
//!
//! The suite's reproducibility promise is that a (generator, parameters,
//! seed) triple is a *permanent* name for a graph: same seed ⇒
//! byte-identical edge list, in the same process, across processes, and
//! regardless of how many threads the host machine runs. The golden
//! snapshots below pin vertex counts, edge counts, degree histograms, and
//! an FNV-1a fingerprint of the full weighted edge list, so any change to
//! the PRNG or the generators' draw order fails loudly instead of
//! silently invalidating every recorded benchmark result.

use crono_graph::gen::{
    preferential_attachment, rmat, road_network, tsp_cities, uniform_random, RmatParams,
};
use crono_graph::CsrGraph;

/// FNV-1a over the CSR's directed edge stream `(src, dst, weight)`.
fn fingerprint(g: &CsrGraph) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for v in 0..g.num_vertices() as u32 {
        for (u, w) in g.neighbors(v) {
            mix(v as u64);
            mix(u as u64);
            mix(w as u64);
        }
    }
    h
}

/// Vertex count per degree, indexed by degree (len = max degree + 1).
fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() as usize + 1];
    for v in 0..g.num_vertices() as u32 {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// Asserts that `make` yields the same graph twice in-process and once
/// per thread across 4 concurrently spawned threads.
fn assert_deterministic(make: impl Fn() -> CsrGraph + Sync) {
    let once = make();
    assert_eq!(once, make(), "same seed must reproduce in-process");
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..4).map(|_| s.spawn(&make)).collect();
        for h in handles {
            assert_eq!(
                once,
                h.join().expect("generator thread panicked"),
                "same seed must reproduce across threads"
            );
        }
    });
}

#[test]
fn uniform_is_deterministic_across_calls_and_threads() {
    assert_deterministic(|| uniform_random(64, 256, 8, 42));
}

#[test]
fn road_is_deterministic_across_calls_and_threads() {
    assert_deterministic(|| road_network(12, 12, 8, 0.2, 0.05, 42));
}

#[test]
fn rmat_is_deterministic_across_calls_and_threads() {
    assert_deterministic(|| rmat(7, 256, 8, RmatParams::default(), 42));
}

#[test]
fn preferential_is_deterministic_across_calls_and_threads() {
    assert_deterministic(|| preferential_attachment(100, 3, 8, 42));
}

#[test]
fn cities_is_deterministic_across_calls_and_threads() {
    let once = tsp_cities(12, 42);
    assert_eq!(once, tsp_cities(12, 42));
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..4).map(|_| s.spawn(|| tsp_cities(12, 42))).collect();
        for h in handles {
            assert_eq!(once, h.join().expect("generator thread panicked"));
        }
    });
}

#[test]
fn golden_uniform_snapshot() {
    let g = uniform_random(64, 256, 8, 42);
    assert_eq!(g.num_vertices(), 64);
    assert_eq!(g.num_directed_edges(), 512);
    assert_eq!(degree_histogram(&g), GOLDEN_UNIFORM_HIST);
    assert_eq!(fingerprint(&g), GOLDEN_UNIFORM_FP);
}

#[test]
fn golden_road_snapshot() {
    let g = road_network(12, 12, 8, 0.2, 0.05, 42);
    assert_eq!(g.num_vertices(), 144);
    assert_eq!(g.num_directed_edges(), GOLDEN_ROAD_EDGES);
    assert_eq!(degree_histogram(&g), GOLDEN_ROAD_HIST);
    assert_eq!(fingerprint(&g), GOLDEN_ROAD_FP);
}

#[test]
fn golden_rmat_snapshot() {
    let g = rmat(7, 256, 8, RmatParams::default(), 42);
    assert_eq!(g.num_vertices(), 128);
    assert_eq!(g.num_directed_edges(), GOLDEN_RMAT_EDGES);
    assert_eq!(degree_histogram(&g), GOLDEN_RMAT_HIST);
    assert_eq!(fingerprint(&g), GOLDEN_RMAT_FP);
}

#[test]
fn golden_preferential_snapshot() {
    let g = preferential_attachment(100, 3, 8, 42);
    assert_eq!(g.num_vertices(), 100);
    assert_eq!(g.num_directed_edges(), 2 * (6 + 96 * 3));
    assert_eq!(degree_histogram(&g), GOLDEN_PREF_HIST);
    assert_eq!(fingerprint(&g), GOLDEN_PREF_FP);
}

#[test]
fn golden_cities_snapshot() {
    let inst = tsp_cities(12, 42);
    assert_eq!(inst.num_cities(), 12);
    // The distance matrix is integral, so hashing it is exact.
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &d in inst.distance_matrix() {
        for byte in (d as u64).to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    assert_eq!(h, GOLDEN_CITIES_FP);
}

#[test]
fn print_golden_values_for_refresh() {
    // `cargo test -p crono-graph --test determinism -- --nocapture
    // print_golden` regenerates the constants below after an intentional
    // generator change.
    let u = uniform_random(64, 256, 8, 42);
    let r = road_network(12, 12, 8, 0.2, 0.05, 42);
    let m = rmat(7, 256, 8, RmatParams::default(), 42);
    let p = preferential_attachment(100, 3, 8, 42);
    let c = tsp_cities(12, 42);
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &d in c.distance_matrix() {
        for byte in (d as u64).to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    println!("UNIFORM fp={:#018X} hist={:?}", fingerprint(&u), degree_histogram(&u));
    println!(
        "ROAD edges={} fp={:#018X} hist={:?}",
        r.num_directed_edges(),
        fingerprint(&r),
        degree_histogram(&r)
    );
    println!(
        "RMAT edges={} fp={:#018X} hist={:?}",
        m.num_directed_edges(),
        fingerprint(&m),
        degree_histogram(&m)
    );
    println!("PREF fp={:#018X} hist={:?}", fingerprint(&p), degree_histogram(&p));
    println!("CITIES fp={h:#018X}");
}

// ---- Golden values (regenerate with `print_golden_values_for_refresh`) ----

const GOLDEN_UNIFORM_FP: u64 = 0xB370_811C_EA9B_3825;
const GOLDEN_UNIFORM_HIST: &[usize] = &[0, 0, 0, 1, 5, 6, 6, 9, 10, 9, 9, 3, 4, 0, 2];
const GOLDEN_ROAD_EDGES: usize = 454;
const GOLDEN_ROAD_FP: u64 = 0x7F61_562C_D763_BB65;
const GOLDEN_ROAD_HIST: &[usize] = &[0, 1, 27, 69, 43, 4];
const GOLDEN_RMAT_EDGES: usize = 422;
const GOLDEN_RMAT_FP: u64 = 0xF2F0_5565_330D_DBE5;
const GOLDEN_RMAT_HIST: &[usize] = &[
    34, 30, 15, 13, 8, 6, 6, 2, 2, 1, 3, 0, 0, 0, 1, 1, 1, 1, 2, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0,
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1,
];
const GOLDEN_PREF_FP: u64 = 0x417F_B3FF_DF83_1245;
const GOLDEN_PREF_HIST: &[usize] = &[
    0, 0, 0, 35, 22, 13, 7, 6, 2, 1, 2, 0, 0, 4, 1, 1, 2, 1, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 0,
    0, 0, 1,
];
const GOLDEN_CITIES_FP: u64 = 0x2862_1765_54F6_60D9;
