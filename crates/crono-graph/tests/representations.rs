//! Representation-equivalence tests: [`CompressedCsr`] must be a
//! lossless, order-preserving re-encoding of [`CsrGraph`] on every
//! synthetic generator the suite ships.
//!
//! The fingerprint is the same FNV-1a over `(src, dst, weight)` triples
//! pinned by the golden snapshots in `determinism.rs`, computed through
//! the [`AdjacencyView`] trait so both representations walk the exact
//! code path the scale kernels use.

use crono_graph::gen::{
    preferential_attachment, rmat, road_network, tsp_cities, uniform_random, RmatParams,
};
use crono_graph::{view_fingerprint, AdjacencyView, CompressedCsr, CsrGraph, VertexId};

/// The five generator configurations from `determinism.rs`, with the
/// TSP instance expanded into its complete distance graph.
fn generator_zoo() -> Vec<(&'static str, CsrGraph)> {
    let tsp = tsp_cities(12, 42);
    let mut tsp_edges = Vec::new();
    for a in 0..tsp.num_cities() {
        for b in 0..tsp.num_cities() {
            if a != b {
                tsp_edges.push((a as VertexId, b as VertexId, tsp.distance(a, b)));
            }
        }
    }
    vec![
        ("uniform", uniform_random(64, 256, 8, 42)),
        ("road", road_network(12, 12, 8, 0.2, 0.05, 42)),
        ("rmat", rmat(7, 256, 8, RmatParams::default(), 42)),
        ("preferential", preferential_attachment(100, 3, 8, 42)),
        (
            "tsp_complete",
            CsrGraph::from_edges(tsp.num_cities(), tsp_edges),
        ),
    ]
}

#[test]
fn compressed_fingerprints_match_plain_on_every_generator() {
    for (name, plain) in generator_zoo() {
        let packed = CompressedCsr::from_csr(&plain);
        assert_eq!(
            view_fingerprint(&packed),
            view_fingerprint(&plain),
            "{name}: fingerprint mismatch between representations"
        );
        assert_eq!(packed.num_vertices(), AdjacencyView::num_vertices(&plain));
        assert_eq!(
            packed.num_directed_edges(),
            AdjacencyView::num_directed_edges(&plain),
            "{name}: edge count mismatch"
        );
        for v in 0..plain.num_vertices() as VertexId {
            assert_eq!(
                packed.degree(v),
                plain.degree(v),
                "{name}: degree mismatch at {v}"
            );
        }
        assert_eq!(packed.to_csr(), plain, "{name}: round-trip mismatch");
    }
}

#[test]
fn compressed_saves_at_least_30_percent_on_sparse_generators() {
    for (name, plain) in generator_zoo() {
        if name == "tsp_complete" {
            // A 12-city complete graph is dense and tiny; the compression
            // target is about the sparse benchmark inputs.
            continue;
        }
        let packed = CompressedCsr::from_csr(&plain);
        let saved = 1.0 - packed.bytes_per_edge() / plain.bytes_per_edge();
        assert!(
            saved >= 0.30,
            "{name}: expected >=30% fewer bytes/edge, saved {:.1}% \
             (packed {:.2} vs plain {:.2})",
            saved * 100.0,
            packed.bytes_per_edge(),
            plain.bytes_per_edge()
        );
    }
}
