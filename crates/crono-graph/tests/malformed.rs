//! Malformed-input corpus: every reader must reject hostile or broken
//! files with a [`GraphError`] — never a panic, never an unbounded
//! allocation. Each case here is a file a fuzzer or a typo could
//! produce.

use crono_graph::io::{read_dimacs, read_edge_list, read_matrix_market};
use crono_graph::GraphError;

/// Every fixture must come back as `Err` (and, because these run in the
/// normal test harness, without panicking or aborting).
fn assert_all_rejected(format: &str, parse: impl Fn(&str) -> Result<(), GraphError>, corpus: &[&str]) {
    for (i, fixture) in corpus.iter().enumerate() {
        match parse(fixture) {
            Ok(()) => panic!("{format} fixture #{i} unexpectedly parsed: {fixture:?}"),
            Err(e) => {
                // Errors must render as a single line (the CLI prints
                // them verbatim to stderr).
                assert!(!e.to_string().contains('\n'), "{format} fixture #{i}: {e}");
            }
        }
    }
}

#[test]
fn edge_list_rejects_malformed_lines() {
    assert_all_rejected(
        "edge list",
        |s| read_edge_list(s.as_bytes(), false).map(drop),
        &[
            "0\n",                  // missing destination
            "0 1 x\n",              // non-numeric weight
            "a b\n",                // non-numeric endpoints
            "0 99999999999999999\n", // endpoint overflows the vertex id type
            "0 -1\n",               // negative vertex id
        ],
    );
}

#[test]
fn dimacs_rejects_malformed_lines() {
    assert_all_rejected(
        "dimacs",
        |s| read_dimacs(s.as_bytes()).map(drop),
        &[
            "",                              // empty file: no problem line
            "a 1 2 3\n",                     // arc before problem line
            "p sp\n",                        // truncated problem line
            "p tw 2 1\na 1 2 3\n",           // wrong problem type
            "p sp 2 1\np sp 2 1\na 1 2 3\n", // duplicate problem line
            "p sp 2 1\na 1 2\n",             // truncated arc
            "p sp 2 1\na 0 1 5\n",           // 0-based ids
            "p sp 2 1\na 1 3 5\n",           // endpoint beyond declared count
            "p sp 2 2\na 1 2 5\n",           // fewer arcs than declared
            "p sp 2 1\na 1 2 5\na 2 1 5\n",  // more arcs than declared
            "p sp 2 1\nb 1 2 5\n",           // unrecognized line kind
        ],
    );
}

#[test]
fn matrix_market_rejects_malformed_lines() {
    let h = "%%MatrixMarket matrix coordinate real general\n";
    let cases: Vec<String> = vec![
        String::new(),                                   // empty file
        "1 1 0\n".to_string(),                           // missing header
        "%%MatrixMarket vector coordinate\n".to_string(), // not a matrix
        format!("{h}"),                                  // missing size line
        format!("{h}2 2\n"),                             // truncated size line
        format!("{h}2 3 1\n1 2 1.0\n"),                  // rectangular
        format!("{h}2 2 1\n1 2\n"),                      // missing value
        format!("{h}2 2 1\n0 1 1.0\n"),                  // 0-based indices
        format!("{h}2 2 1\n1 3 1.0\n"),                  // index out of range
        format!("{h}2 2 1\n1 2 nan\n"),                  // non-finite value
        format!("{h}2 2 1\n1 2 -1.0\n"),                 // negative weight
        format!("{h}2 2 2\n1 2 1.0\n"),                  // fewer entries than declared
        format!("{h}2 2 1\n1 2 1.0\n2 1 1.0\n"),         // more entries than declared
    ];
    let corpus: Vec<&str> = cases.iter().map(String::as_str).collect();
    assert_all_rejected(
        "matrix market",
        |s| read_matrix_market(s.as_bytes()).map(drop),
        &corpus,
    );
}

#[test]
fn hostile_declared_sizes_do_not_reserve_memory() {
    // A 16-byte file declaring four billion arcs must fail fast on the
    // arc-count check instead of reserving gigabytes for the claim.
    let err = read_dimacs("p sp 4000000000 4000000000\n".as_bytes()).unwrap_err();
    assert!(err.to_string().contains("declared 4000000000 arcs"), "{err}");

    // Same for a matrix-market size line claiming four billion entries.
    let text = "%%MatrixMarket matrix coordinate real general\n4000000 4000000 4000000000\n";
    let err = read_matrix_market(text.as_bytes()).unwrap_err();
    assert!(err.to_string().contains("declared 4000000000 entries"), "{err}");
}
