//! Shard-aware edge partitioning: 1-D owner-by-source and 2-D
//! checkerboard decompositions.
//!
//! The scale track splits a graph's directed edges across shards so the
//! sharded kernel drivers in `crono-algos` can assign each shard to a
//! task with an owner-computes update discipline:
//!
//! * **1-D (owner by source)** — vertices are grouped into `blocks`
//!   blocks; shard *i* holds every edge whose source lies in block *i*.
//!   A shard can reach destinations anywhere, so a scan of shard *i*
//!   produces candidate updates for every block.
//! * **2-D checkerboard** (Yoo et al., PAPERS.md) — shard *(i, j)* holds
//!   edges with source in block *i* and destination in block *j*
//!   (`blocks²` shards). Scans of row *i* only ever produce candidates
//!   for block *j*, bounding communication per shard — the decomposition
//!   that scaled BFS to 32 K BlueGene nodes.
//!
//! Vertex→block placement is normally contiguous ([`Placement::Block`]),
//! which keeps each block's state in adjacent cache lines. The
//! [`Placement::Hashed`] alternative scatters vertices pseudo-randomly —
//! deliberately locality-hostile, used by the sim-backend comparison to
//! show why locality-aware sharding cuts `dir_broadcast`/`noc_flits`.

use crate::view::{AdjacencyPacker, Packable};
use crate::{AdjacencyView, CsrGraph, GraphError, VertexId};

/// Salt for hashed placement so it never degenerates to identity.
const HASH_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// How vertices map to blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Contiguous ranges of vertex ids (locality-aware; the default).
    Block,
    /// Pseudo-random scatter by a splitmix64 hash (locality-hostile;
    /// the sim comparison baseline).
    Hashed,
}

/// A vertex-block / edge-shard decomposition of a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    num_vertices: usize,
    blocks: usize,
    two_d: bool,
    placement: Placement,
}

impl Partition {
    /// 1-D owner-by-source partition into `blocks` shards.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is zero.
    pub fn one_d(num_vertices: usize, blocks: usize) -> Partition {
        assert!(blocks > 0, "partition needs at least one block");
        Partition {
            num_vertices,
            blocks,
            two_d: false,
            placement: Placement::Block,
        }
    }

    /// 2-D checkerboard partition into `blocks × blocks` shards.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is zero.
    pub fn two_d(num_vertices: usize, blocks: usize) -> Partition {
        assert!(blocks > 0, "partition needs at least one block");
        Partition {
            num_vertices,
            blocks,
            two_d: true,
            placement: Placement::Block,
        }
    }

    /// Replaces the vertex placement policy.
    pub fn with_placement(mut self, placement: Placement) -> Partition {
        self.placement = placement;
        self
    }

    /// Number of vertices the partition ranges over.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of vertex blocks per dimension.
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// Whether this is the 2-D checkerboard decomposition.
    pub fn is_two_d(&self) -> bool {
        self.two_d
    }

    /// The vertex placement policy.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// Total number of edge shards (`blocks` for 1-D, `blocks²` for 2-D).
    pub fn num_shards(&self) -> usize {
        if self.two_d {
            self.blocks * self.blocks
        } else {
            self.blocks
        }
    }

    /// The block owning vertex `v`.
    pub fn block_of(&self, v: VertexId) -> usize {
        match self.placement {
            Placement::Block => {
                let per = self.num_vertices.div_ceil(self.blocks).max(1);
                (v as usize / per).min(self.blocks - 1)
            }
            Placement::Hashed => {
                let mut state = (v as u64) ^ HASH_SALT;
                (crate::rng::splitmix64(&mut state) % self.blocks as u64) as usize
            }
        }
    }

    /// The shard owning edge `src -> dst`.
    pub fn shard_of_edge(&self, src: VertexId, dst: VertexId) -> usize {
        if self.two_d {
            self.block_of(src) * self.blocks + self.block_of(dst)
        } else {
            self.block_of(src)
        }
    }

    /// The source block scanned by shard `k` (row index for 2-D).
    pub fn shard_src_block(&self, shard: usize) -> usize {
        if self.two_d {
            shard / self.blocks
        } else {
            shard
        }
    }

    /// The destination block shard `k` can reach, or `None` for 1-D
    /// shards (which reach every block).
    pub fn shard_dst_block(&self, shard: usize) -> Option<usize> {
        if self.two_d {
            Some(shard % self.blocks)
        } else {
            None
        }
    }

    /// All vertices placed in `block`, ascending. O(num_vertices) for
    /// hashed placement; call once per block at driver setup.
    pub fn block_members(&self, block: usize) -> Vec<VertexId> {
        match self.placement {
            Placement::Block => {
                let per = self.num_vertices.div_ceil(self.blocks).max(1);
                let lo = (block * per).min(self.num_vertices);
                let hi = if block + 1 == self.blocks {
                    self.num_vertices
                } else {
                    ((block + 1) * per).min(self.num_vertices)
                };
                (lo as VertexId..hi as VertexId).collect()
            }
            Placement::Hashed => (0..self.num_vertices as VertexId)
                .filter(|&v| self.block_of(v) == block)
                .collect(),
        }
    }
}

/// A graph decomposed into per-shard adjacency structures.
///
/// Every shard spans the *global* vertex id space (each holds its own
/// `num_vertices + 1` offset array — accepted overhead, documented in
/// DESIGN.md, negligible next to adjacency at the scale track's edge
/// factors), so kernels never translate vertex ids.
#[derive(Debug, Clone)]
pub struct ShardedGraph<G> {
    partition: Partition,
    shards: Vec<G>,
}

impl<G: AdjacencyView> ShardedGraph<G> {
    /// Assembles from an already-packed shard vector; used by the
    /// out-of-core builder.
    pub(crate) fn from_parts(partition: Partition, shards: Vec<G>) -> ShardedGraph<G> {
        debug_assert_eq!(shards.len(), partition.num_shards());
        ShardedGraph { partition, shards }
    }

    /// The partition this graph was decomposed with.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// All shards, indexed by shard id.
    pub fn shards(&self) -> &[G] {
        &self.shards
    }

    /// Shard `k`'s adjacency structure.
    pub fn shard(&self, k: usize) -> &G {
        &self.shards[k]
    }

    /// Number of vertices (global id space).
    pub fn num_vertices(&self) -> usize {
        self.partition.num_vertices()
    }

    /// Total directed edges across all shards.
    pub fn num_directed_edges(&self) -> usize {
        self.shards.iter().map(|s| s.num_directed_edges()).sum()
    }

    /// Total adjacency bytes across all shards.
    pub fn adjacency_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.adjacency_bytes()).sum()
    }

    /// Adjacency bytes per directed edge across the whole decomposition.
    pub fn bytes_per_edge(&self) -> f64 {
        let m = self.num_directed_edges();
        if m == 0 {
            0.0
        } else {
            self.adjacency_bytes() as f64 / m as f64
        }
    }
}

impl<G: Packable> ShardedGraph<G> {
    /// Decomposes an in-memory CSR graph under `partition`.
    ///
    /// The CSR's canonical edge order is preserved within every shard
    /// (a per-shard subsequence of a sorted stream stays sorted), so no
    /// re-sort is needed.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidSize`] if the partition's vertex
    /// count disagrees with the graph's, or any packer error.
    pub fn from_csr(g: &CsrGraph, partition: Partition) -> Result<ShardedGraph<G>, GraphError> {
        if partition.num_vertices() != g.num_vertices() {
            return Err(GraphError::InvalidSize(format!(
                "partition over {} vertices given a graph with {}",
                partition.num_vertices(),
                g.num_vertices()
            )));
        }
        let mut packers: Vec<G::Packer> = (0..partition.num_shards())
            .map(|_| G::Packer::new(g.num_vertices()))
            .collect();
        for v in 0..g.num_vertices() as VertexId {
            for (n, w) in g.neighbors(v) {
                packers[partition.shard_of_edge(v, n)].push_edge(v, n, w)?;
            }
        }
        let shards = packers
            .into_iter()
            .map(|p| p.finish())
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedGraph { partition, shards })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CompressedCsr;

    fn sample() -> CsrGraph {
        crate::gen::uniform_random(64, 256, 8, 42)
    }

    #[test]
    fn one_d_blocks_cover_all_vertices() {
        let p = Partition::one_d(10, 3);
        assert_eq!(p.num_shards(), 3);
        let mut seen = vec![];
        for b in 0..3 {
            seen.extend(p.block_members(b));
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        for v in 0..10 {
            assert!(p.block_members(p.block_of(v)).contains(&v));
        }
    }

    #[test]
    fn hashed_blocks_cover_all_vertices() {
        let p = Partition::one_d(100, 4).with_placement(Placement::Hashed);
        let mut seen = vec![];
        for b in 0..4 {
            for v in p.block_members(b) {
                assert_eq!(p.block_of(v), b);
                seen.push(v);
            }
        }
        seen.sort_unstable();
        assert_eq!(seen.len(), 100);
        // The scatter must actually scatter: block 0 is not 0..25.
        assert_ne!(p.block_members(0), (0..25).collect::<Vec<_>>());
    }

    #[test]
    fn two_d_shard_indexing() {
        let p = Partition::two_d(16, 2);
        assert_eq!(p.num_shards(), 4);
        assert_eq!(p.shard_of_edge(0, 15), 1); // row 0, col 1
        assert_eq!(p.shard_src_block(3), 1);
        assert_eq!(p.shard_dst_block(3), Some(1));
        assert_eq!(Partition::one_d(16, 2).shard_dst_block(1), None);
    }

    #[test]
    fn sharded_union_equals_whole_graph() {
        let g = sample();
        for partition in [
            Partition::one_d(64, 4),
            Partition::two_d(64, 3),
            Partition::one_d(64, 4).with_placement(Placement::Hashed),
        ] {
            let sharded = ShardedGraph::<CsrGraph>::from_csr(&g, partition).unwrap();
            assert_eq!(sharded.num_directed_edges(), g.num_directed_edges());
            // Re-merge every shard's edges: must reproduce the graph.
            let mut edges = vec![];
            for shard in sharded.shards() {
                for v in 0..shard.num_vertices() as VertexId {
                    for (n, w) in shard.neighbors(v) {
                        edges.push((v, n, w));
                    }
                }
            }
            let merged = CsrGraph::from_edges(64, edges);
            assert_eq!(merged, g);
        }
    }

    #[test]
    fn compressed_shards_match_plain_shards() {
        let g = sample();
        let p = Partition::one_d(64, 4);
        let plain = ShardedGraph::<CsrGraph>::from_csr(&g, p).unwrap();
        let packed = ShardedGraph::<CompressedCsr>::from_csr(&g, p).unwrap();
        for (a, b) in plain.shards().iter().zip(packed.shards()) {
            assert_eq!(&b.to_csr(), a);
        }
        assert!(packed.adjacency_bytes() < plain.adjacency_bytes());
    }

    #[test]
    fn mismatched_partition_is_rejected() {
        let g = sample();
        let p = Partition::one_d(63, 4);
        assert!(ShardedGraph::<CsrGraph>::from_csr(&g, p).is_err());
    }
}
