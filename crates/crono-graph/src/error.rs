use std::fmt;

/// Error produced when building or parsing a graph fails.
#[derive(Debug)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint was outside `0..num_vertices`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u64,
        /// The number of vertices in the graph being built.
        num_vertices: usize,
    },
    /// A malformed line was encountered while parsing a graph file.
    Parse {
        /// 1-based line number of the malformed input.
        line: usize,
        /// Explanation of what was wrong with the line.
        message: String,
    },
    /// An underlying I/O error.
    Io(std::io::Error),
    /// A requested graph size was invalid (e.g. zero vertices).
    InvalidSize(String),
    /// The directed edge count exceeds what a `u32`-offset CSR can index.
    TooManyEdges {
        /// The number of directed edges requested.
        edges: u64,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} out of range for graph with {num_vertices} vertices"
            ),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::InvalidSize(msg) => write!(f, "invalid graph size: {msg}"),
            GraphError::TooManyEdges { edges } => write!(
                f,
                "edge count {edges} exceeds u32 offset capacity ({})",
                u32::MAX
            ),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let e = GraphError::VertexOutOfRange {
            vertex: 10,
            num_vertices: 5,
        };
        let s = e.to_string();
        assert!(s.contains("vertex 10"));
        assert!(s.starts_with(char::is_lowercase));
    }

    #[test]
    fn too_many_edges_displays_count() {
        let e = GraphError::TooManyEdges {
            edges: 5_000_000_000,
        };
        let s = e.to_string();
        assert!(s.contains("5000000000"));
        assert!(s.starts_with(char::is_lowercase));
    }

    #[test]
    fn io_error_has_source() {
        use std::error::Error;
        let e = GraphError::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
    }
}
