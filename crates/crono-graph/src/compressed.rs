//! Varint/delta-compressed CSR adjacency.
//!
//! [`CompressedCsr`] stores the same sorted adjacency lists as
//! [`CsrGraph`] but encodes each list as a byte stream: a varint degree
//! prefix, the first neighbor as a zigzag delta from the vertex's own id
//! (power-law and road graphs cluster neighbors near the vertex), and
//! every following neighbor as a plain varint gap from its predecessor
//! (non-negative because lists are ascending; parallel edges encode a
//! zero gap). Weights are varint-interleaved after each neighbor.
//!
//! Per-vertex byte positions use a two-level index: a `u64` base per
//! 4096-vertex window plus a `u32` delta per vertex — 4.002 bytes per
//! vertex instead of a flat `u64` array's 8, which matters once shards
//! span tens of millions of vertices (at Graph500 scale 24 with 8
//! shards, flat `u64` offsets alone would cost 4 bytes per *edge*).
//! Indexed positions can still exceed `u32::MAX` bytes of adjacency;
//! only >4 GB of encoding inside a single 4096-vertex window cannot be
//! represented, and the packer reports that as a typed error. On
//! CRONO's R-MAT inputs the encoding lands around 3 bytes per directed
//! edge versus the flat CSR's 8+ (the scale track's acceptance bar is
//! ≥30% saved).

use crate::{CsrGraph, GraphError, VertexId, Weight};

/// LEB128-style varint append.
fn write_varint(buf: &mut Vec<u8>, mut x: u64) {
    loop {
        let b = (x & 0x7F) as u8;
        x >>= 7;
        if x == 0 {
            buf.push(b);
            break;
        }
        buf.push(b | 0x80);
    }
}

/// LEB128-style varint read; advances `pos`.
///
/// The data is always produced by [`write_varint`], so malformed input is
/// a programming error — bounds are enforced by slice indexing.
fn read_varint(data: &[u8], pos: &mut usize) -> u64 {
    let mut x = 0u64;
    let mut shift = 0;
    loop {
        let b = data[*pos];
        *pos += 1;
        x |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return x;
        }
        shift += 7;
    }
}

fn zigzag(x: i64) -> u64 {
    ((x << 1) ^ (x >> 63)) as u64
}

fn unzigzag(x: u64) -> i64 {
    ((x >> 1) as i64) ^ -((x & 1) as i64)
}

/// Vertices per offset window: each window stores one `u64` base, each
/// vertex a `u32` delta from its window's base.
const OFFSET_WINDOW_BITS: u32 = 12;
const OFFSET_WINDOW: usize = 1 << OFFSET_WINDOW_BITS;

/// Converts a flat `u64` offset array (`num_vertices + 1` entries) into
/// the two-level `(bases, deltas)` index.
///
/// # Errors
///
/// Returns [`GraphError::InvalidSize`] if more than `u32::MAX` bytes of
/// encoding accumulate inside a single window.
fn build_offset_index(offsets: &[u64]) -> Result<(Vec<u64>, Vec<u32>), GraphError> {
    let mut bases = Vec::with_capacity((offsets.len() >> OFFSET_WINDOW_BITS) + 1);
    let mut deltas = Vec::with_capacity(offsets.len());
    for (i, &off) in offsets.iter().enumerate() {
        if i & (OFFSET_WINDOW - 1) == 0 {
            bases.push(off);
        }
        let delta = off - bases[i >> OFFSET_WINDOW_BITS];
        if delta > u32::MAX as u64 {
            return Err(GraphError::InvalidSize(format!(
                "compressed adjacency spans {delta} bytes within one \
                 {OFFSET_WINDOW}-vertex offset window (max {})",
                u32::MAX
            )));
        }
        deltas.push(delta as u32);
    }
    Ok((bases, deltas))
}

/// A directed graph with varint/delta-compressed adjacency lists.
///
/// Neighbor order is the same canonical `(dst, weight)` ascending order
/// as [`CsrGraph`], so any [`crate::AdjacencyView`] kernel produces
/// bit-identical output on either representation.
///
/// # Examples
///
/// ```
/// use crono_graph::{AdjacencyView, CompressedCsr, CsrGraph};
///
/// let plain = CsrGraph::from_edges(4, vec![(0, 1, 5), (0, 2, 3), (2, 3, 1)]);
/// let packed = CompressedCsr::from_csr(&plain);
/// let ns: Vec<_> = packed.neighbors_of(0).collect();
/// assert_eq!(ns, vec![(1, 5), (2, 3)]);
/// assert_eq!(packed.to_csr(), plain);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedCsr {
    /// Byte offset of the first vertex of each [`OFFSET_WINDOW`]-vertex
    /// window within `data`.
    bases: Vec<u64>,
    /// Byte offset of each vertex's encoded list relative to its
    /// window's base (`num_vertices + 1` entries). Degree-0 vertices
    /// span zero bytes.
    deltas: Vec<u32>,
    /// Concatenated per-vertex encodings.
    data: Vec<u8>,
    num_edges: u64,
}

impl CompressedCsr {
    #[inline]
    fn offset(&self, i: usize) -> usize {
        (self.bases[i >> OFFSET_WINDOW_BITS] + self.deltas[i] as u64) as usize
    }

    /// Compresses an existing in-memory CSR graph.
    pub fn from_csr(g: &CsrGraph) -> CompressedCsr {
        let mut packer = CompressedPacker::new(g.num_vertices());
        for v in 0..g.num_vertices() as VertexId {
            for (n, w) in g.neighbors(v) {
                packer
                    .push_edge(v, n, w)
                    .expect("CSR iteration is sorted by construction");
            }
        }
        packer
            .finish()
            .expect("in-memory CSR windows cannot overflow the offset index")
    }

    /// Decompresses back into a flat [`CsrGraph`] (exact round-trip).
    pub fn to_csr(&self) -> CsrGraph {
        let n = self.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(self.num_edges as usize);
        let mut weights = Vec::with_capacity(self.num_edges as usize);
        offsets.push(0u32);
        for v in 0..n as VertexId {
            for (nb, w) in self.neighbors_of(v) {
                neighbors.push(nb);
                weights.push(w);
            }
            offsets.push(neighbors.len() as u32);
        }
        CsrGraph::from_raw_parts(offsets, neighbors, weights)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.deltas.len() - 1
    }

    /// Number of directed edges stored.
    pub fn num_directed_edges(&self) -> usize {
        self.num_edges as usize
    }

    /// Out-degree of `v`: one varint decode of the degree prefix.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: VertexId) -> usize {
        let start = self.offset(v as usize);
        let end = self.offset(v as usize + 1);
        if start == end {
            return 0;
        }
        let mut pos = start;
        read_varint(&self.data, &mut pos) as usize
    }

    /// Iterates `(neighbor, weight)` pairs of `v` in canonical ascending
    /// order, decoding lazily.
    pub fn neighbors_of(&self, v: VertexId) -> CompressedNeighbors<'_> {
        let start = self.offset(v as usize);
        let end = self.offset(v as usize + 1);
        let (remaining, pos) = if start == end {
            (0, start)
        } else {
            let mut pos = start;
            let d = read_varint(&self.data, &mut pos) as usize;
            (d, pos)
        };
        CompressedNeighbors {
            data: &self.data,
            pos,
            remaining,
            prev: v as i64,
            first: true,
        }
    }

    /// Resident bytes: encoded adjacency plus the two-level offset
    /// index (`u64` window bases + `u32` per-vertex deltas).
    pub fn adjacency_bytes(&self) -> u64 {
        self.data.len() as u64 + 8 * self.bases.len() as u64 + 4 * self.deltas.len() as u64
    }
}

impl crate::AdjacencyView for CompressedCsr {
    type Neighbors<'a> = CompressedNeighbors<'a>;

    fn num_vertices(&self) -> usize {
        CompressedCsr::num_vertices(self)
    }

    fn num_directed_edges(&self) -> usize {
        CompressedCsr::num_directed_edges(self)
    }

    fn degree(&self, v: VertexId) -> usize {
        CompressedCsr::degree(self, v)
    }

    fn neighbors_of(&self, v: VertexId) -> Self::Neighbors<'_> {
        CompressedCsr::neighbors_of(self, v)
    }

    fn adjacency_bytes(&self) -> u64 {
        CompressedCsr::adjacency_bytes(self)
    }
}

/// Lazy decoder over one vertex's compressed adjacency list.
#[derive(Debug, Clone)]
pub struct CompressedNeighbors<'a> {
    data: &'a [u8],
    pos: usize,
    remaining: usize,
    prev: i64,
    first: bool,
}

impl Iterator for CompressedNeighbors<'_> {
    type Item = (VertexId, Weight);

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let raw = read_varint(self.data, &mut self.pos);
        let neighbor = if self.first {
            self.first = false;
            self.prev + unzigzag(raw)
        } else {
            self.prev + raw as i64
        };
        self.prev = neighbor;
        let weight = read_varint(self.data, &mut self.pos) as Weight;
        Some((neighbor as VertexId, weight))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for CompressedNeighbors<'_> {}

/// Incremental builder consuming a `(src, dst, weight)` stream sorted by
/// `(src, dst, weight)` — the output order of the external-sort merge in
/// [`crate::stream`] — and producing a [`CompressedCsr`] without ever
/// materializing the flat edge list.
///
/// Only the in-flight vertex's adjacency is buffered (the degree prefix
/// must precede the deltas), so peak memory is the output encoding plus
/// one adjacency list.
#[derive(Debug)]
pub struct CompressedPacker {
    num_vertices: usize,
    offsets: Vec<u64>,
    data: Vec<u8>,
    num_edges: u64,
    cur_src: VertexId,
    pending: Vec<(VertexId, Weight)>,
}

impl CompressedPacker {
    /// Creates a packer for a graph over `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> CompressedPacker {
        CompressedPacker {
            num_vertices,
            offsets: vec![0],
            data: Vec::new(),
            num_edges: 0,
            cur_src: 0,
            pending: Vec::new(),
        }
    }

    /// Appends one edge. Sources must be non-decreasing and, within a
    /// source, destinations non-decreasing.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] for a bad endpoint and
    /// [`GraphError::InvalidSize`] if the stream violates sort order.
    pub fn push_edge(&mut self, src: VertexId, dst: VertexId, w: Weight) -> Result<(), GraphError> {
        let far = src.max(dst);
        if far as usize >= self.num_vertices {
            return Err(GraphError::VertexOutOfRange {
                vertex: far as u64,
                num_vertices: self.num_vertices,
            });
        }
        if src < self.cur_src {
            return Err(GraphError::InvalidSize(format!(
                "edge stream not sorted: source {src} after {}",
                self.cur_src
            )));
        }
        if src > self.cur_src {
            self.flush_pending();
            // One boundary per vertex in cur_src..src: the start of each
            // following vertex (degree-0 gaps span zero bytes).
            for _ in self.cur_src..src {
                self.offsets.push(self.data.len() as u64);
            }
            self.cur_src = src;
        } else if let Some(&(prev_dst, _)) = self.pending.last() {
            if dst < prev_dst {
                return Err(GraphError::InvalidSize(format!(
                    "edge stream not sorted: destination {dst} after {prev_dst} at source {src}"
                )));
            }
        }
        self.pending.push((dst, w));
        self.num_edges += 1;
        Ok(())
    }

    /// Finalizes the encoding, folding the flat `u64` offsets into the
    /// two-level window index.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidSize`] if more than `u32::MAX`
    /// bytes of encoding fall inside one offset window — >4 GB of
    /// adjacency across 4096 consecutive vertices.
    pub fn finish(mut self) -> Result<CompressedCsr, GraphError> {
        self.flush_pending();
        while self.offsets.len() < self.num_vertices + 1 {
            self.offsets.push(self.data.len() as u64);
        }
        let (bases, deltas) = build_offset_index(&self.offsets)?;
        Ok(CompressedCsr {
            bases,
            deltas,
            data: self.data,
            num_edges: self.num_edges,
        })
    }

    /// Encodes the in-flight vertex's adjacency into `data`. Offset
    /// boundaries are pushed by the callers, not here.
    fn flush_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        write_varint(&mut self.data, self.pending.len() as u64);
        let mut prev = self.cur_src as i64;
        let mut first = true;
        for &(dst, w) in &self.pending {
            if first {
                first = false;
                write_varint(&mut self.data, zigzag(dst as i64 - prev));
            } else {
                write_varint(&mut self.data, (dst as i64 - prev) as u64);
            }
            prev = dst as i64;
            write_varint(&mut self.data, w as u64);
        }
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AdjacencyView;

    #[test]
    fn varint_round_trip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn zigzag_round_trip() {
        for x in [-5i64, -1, 0, 1, 5, i64::MIN / 2, i64::MAX / 2] {
            assert_eq!(unzigzag(zigzag(x)), x);
        }
    }

    #[test]
    fn round_trips_with_gaps_and_parallel_edges() {
        // Vertex 1 has a parallel edge (gap 0) and vertex 3 is isolated.
        let plain = CsrGraph::from_edges(
            5,
            vec![(0, 4, 9), (1, 2, 3), (1, 2, 7), (1, 4, 1), (4, 0, 9)],
        );
        let packed = CompressedCsr::from_csr(&plain);
        assert_eq!(packed.num_directed_edges(), 5);
        assert_eq!(packed.degree(1), 3);
        assert_eq!(packed.degree(3), 0);
        assert_eq!(packed.to_csr(), plain);
    }

    #[test]
    fn empty_graph_round_trips() {
        let plain = CsrGraph::from_edges(0, vec![]);
        let packed = CompressedCsr::from_csr(&plain);
        assert_eq!(packed.num_vertices(), 0);
        assert_eq!(packed.to_csr(), plain);
    }

    #[test]
    fn backward_first_neighbor_encodes() {
        // Neighbor id far below the source exercises the zigzag path.
        let plain = CsrGraph::from_edges(1000, vec![(999, 0, 1), (999, 998, 2)]);
        let packed = CompressedCsr::from_csr(&plain);
        let ns: Vec<_> = packed.neighbors_of(999).collect();
        assert_eq!(ns, vec![(0, 1), (998, 2)]);
    }

    #[test]
    fn packer_rejects_unsorted_and_out_of_range() {
        let mut p = CompressedPacker::new(4);
        p.push_edge(2, 1, 1).unwrap();
        assert!(matches!(
            p.push_edge(1, 0, 1),
            Err(GraphError::InvalidSize(_))
        ));
        assert!(matches!(
            p.push_edge(2, 9, 1),
            Err(GraphError::VertexOutOfRange { vertex: 9, .. })
        ));
        let mut q = CompressedPacker::new(4);
        q.push_edge(0, 3, 1).unwrap();
        assert!(matches!(
            q.push_edge(0, 2, 1),
            Err(GraphError::InvalidSize(_))
        ));
    }

    #[test]
    fn offset_index_round_trips_across_window_boundaries() {
        // More vertices than one OFFSET_WINDOW, so deltas reset against
        // a second window base; include a hub whose list straddles the
        // boundary region.
        let n = OFFSET_WINDOW + 100;
        let mut edges = Vec::new();
        for v in 0..n as VertexId {
            edges.push((v, (v + 1) % n as VertexId, 1));
        }
        for d in 0..50 {
            edges.push(((OFFSET_WINDOW - 1) as VertexId, d * 7 % n as VertexId, 2));
        }
        let plain = CsrGraph::from_edges(n, edges);
        let packed = CompressedCsr::from_csr(&plain);
        assert!(packed.bases.len() >= 2);
        assert_eq!(packed.to_csr(), plain);
        assert_eq!(
            crate::view_fingerprint(&packed),
            crate::view_fingerprint(&plain)
        );
    }

    #[test]
    fn offset_index_rejects_oversized_windows() {
        // 5 GB of encoding inside one window cannot be expressed as a
        // u32 delta; the index build must fail, not wrap.
        let offsets = [0u64, 5 << 30];
        assert!(matches!(
            build_offset_index(&offsets),
            Err(GraphError::InvalidSize(_))
        ));
        // The same span is fine when it lands on a window boundary.
        let mut offsets = vec![0u64; OFFSET_WINDOW];
        offsets.push(5 << 30);
        let (bases, deltas) = build_offset_index(&offsets).unwrap();
        assert_eq!(bases, vec![0, 5 << 30]);
        assert_eq!(deltas.len(), OFFSET_WINDOW + 1);
        assert_eq!(deltas[OFFSET_WINDOW], 0);
    }

    #[test]
    fn compression_beats_flat_csr_on_rmat() {
        let plain = crate::gen::rmat(7, 256, 8, crate::gen::RmatParams::default(), 42);
        let packed = CompressedCsr::from_csr(&plain);
        assert_eq!(
            crate::view_fingerprint(&packed),
            crate::view_fingerprint(&plain)
        );
        let saved = 1.0 - packed.bytes_per_edge() / plain.bytes_per_edge();
        assert!(
            saved >= 0.30,
            "expected >=30% fewer bytes/edge, saved {:.1}%",
            saved * 100.0
        );
    }
}
