use crate::{CsrGraph, VertexId, Weight};

/// Dense adjacency-matrix representation.
///
/// CRONO stores APSP and BETW_CENT inputs as adjacency matrices (§IV-F:
/// "APSP and BETW_CENT use an adjacency matrix representation, and it is
/// simulated with a graph containing 16,384 vertices"). Absent entries are
/// [`AdjacencyMatrix::INFINITY`].
///
/// # Examples
///
/// ```
/// use crono_graph::AdjacencyMatrix;
///
/// let mut m = AdjacencyMatrix::new(3);
/// m.set(0, 1, 4);
/// assert_eq!(m.get(0, 1), 4);
/// assert_eq!(m.get(1, 0), AdjacencyMatrix::INFINITY);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdjacencyMatrix {
    n: usize,
    /// Row-major weights; `INFINITY` marks an absent edge.
    data: Vec<Weight>,
}

impl AdjacencyMatrix {
    /// Sentinel weight for "no edge". Large enough that no real path uses
    /// it, small enough that one addition cannot overflow `u32`.
    pub const INFINITY: Weight = u32::MAX / 4;

    /// Creates an `n × n` matrix with no edges and zero-cost self-loops.
    pub fn new(n: usize) -> Self {
        let mut data = vec![Self::INFINITY; n * n];
        for v in 0..n {
            data[v * n + v] = 0;
        }
        AdjacencyMatrix { n, data }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Weight of edge `src -> dst` ([`Self::INFINITY`] if absent).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn get(&self, src: VertexId, dst: VertexId) -> Weight {
        self.data[src as usize * self.n + dst as usize]
    }

    /// Sets the weight of edge `src -> dst`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn set(&mut self, src: VertexId, dst: VertexId, w: Weight) {
        self.data[src as usize * self.n + dst as usize] = w;
    }

    /// Row-major flat storage (used for symbolic addressing by the
    /// execution backends).
    pub fn as_slice(&self) -> &[Weight] {
        &self.data
    }

    /// Index of `(src, dst)` within [`Self::as_slice`].
    pub fn flat_index(&self, src: VertexId, dst: VertexId) -> usize {
        src as usize * self.n + dst as usize
    }

    /// Builds the matrix form of a CSR graph, keeping the minimum weight
    /// among parallel edges.
    pub fn from_csr(g: &CsrGraph) -> Self {
        let mut m = AdjacencyMatrix::new(g.num_vertices());
        for v in 0..g.num_vertices() as VertexId {
            for (u, w) in g.neighbors(v) {
                let cur = m.get(v, u);
                if w < cur {
                    m.set(v, u, w);
                }
            }
        }
        m
    }

    /// Converts back to CSR (dropping absent edges and self-loops).
    pub fn to_csr(&self) -> CsrGraph {
        let mut edges = Vec::new();
        for s in 0..self.n {
            for d in 0..self.n {
                let w = self.data[s * self.n + d];
                if s != d && w != Self::INFINITY {
                    edges.push((s as VertexId, d as VertexId, w));
                }
            }
        }
        CsrGraph::from_edges(self.n, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_has_zero_diagonal() {
        let m = AdjacencyMatrix::new(4);
        for v in 0..4 {
            assert_eq!(m.get(v, v), 0);
        }
        assert_eq!(m.get(0, 3), AdjacencyMatrix::INFINITY);
    }

    #[test]
    fn csr_round_trip_preserves_edges() {
        let g = CsrGraph::from_edges(3, vec![(0, 1, 2), (1, 2, 3), (2, 0, 4)]);
        let m = AdjacencyMatrix::from_csr(&g);
        assert_eq!(m.to_csr(), g);
    }

    #[test]
    fn from_csr_keeps_min_parallel_edge() {
        let g = CsrGraph::from_edges(2, vec![(0, 1, 9), (0, 1, 2)]);
        let m = AdjacencyMatrix::from_csr(&g);
        assert_eq!(m.get(0, 1), 2);
    }

    #[test]
    fn infinity_does_not_overflow_on_addition() {
        let x = AdjacencyMatrix::INFINITY + AdjacencyMatrix::INFINITY;
        assert!(x >= AdjacencyMatrix::INFINITY, "no wrap-around");
    }

    #[test]
    fn flat_index_matches_get() {
        let mut m = AdjacencyMatrix::new(5);
        m.set(3, 2, 7);
        assert_eq!(m.as_slice()[m.flat_index(3, 2)], 7);
    }
}
