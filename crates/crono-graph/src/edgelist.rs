use crate::{GraphError, VertexId, Weight};

/// A mutable list of weighted directed edges, the intermediate form every
/// generator and parser produces before conversion to [`crate::CsrGraph`].
///
/// # Examples
///
/// ```
/// use crono_graph::EdgeList;
///
/// let mut el = EdgeList::new(3);
/// el.push(0, 1, 5).unwrap();
/// el.push_undirected(1, 2, 7).unwrap();
/// assert_eq!(el.len(), 3);
/// let g = el.into_csr();
/// assert_eq!(g.degree(0), 1);
/// assert_eq!(g.degree(2), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EdgeList {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId, Weight)>,
}

impl EdgeList {
    /// Creates an empty edge list over `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        EdgeList {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Creates an empty edge list with capacity for `cap` edges.
    pub fn with_capacity(num_vertices: usize, cap: usize) -> Self {
        EdgeList {
            num_vertices,
            edges: Vec::with_capacity(cap),
        }
    }

    /// Number of vertices this edge list ranges over.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of directed edges currently stored.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if no edges have been added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Adds one directed edge `src -> dst` with weight `w`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if either endpoint is not a
    /// valid vertex id.
    pub fn push(&mut self, src: VertexId, dst: VertexId, w: Weight) -> Result<(), GraphError> {
        self.check(src)?;
        self.check(dst)?;
        self.edges.push((src, dst, w));
        Ok(())
    }

    /// Adds `src <-> dst` as a pair of directed edges of equal weight.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if either endpoint is not a
    /// valid vertex id.
    pub fn push_undirected(
        &mut self,
        src: VertexId,
        dst: VertexId,
        w: Weight,
    ) -> Result<(), GraphError> {
        self.push(src, dst, w)?;
        if src != dst {
            self.push(dst, src, w)?;
        }
        Ok(())
    }

    /// Iterates over the stored `(src, dst, weight)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, VertexId, Weight)> + '_ {
        self.edges.iter().copied()
    }

    /// Removes duplicate edges (same `src`/`dst`, keeping the smallest
    /// weight) and self-loops. Generators use this so requested edge counts
    /// are honored without parallel edges.
    pub fn dedup(&mut self) {
        self.edges.retain(|&(s, d, _)| s != d);
        self.edges.sort_unstable();
        self.edges.dedup_by_key(|&mut (s, d, _)| (s, d));
    }

    /// Converts into a CSR graph, sorting edges by source then destination.
    pub fn into_csr(self) -> crate::CsrGraph {
        crate::CsrGraph::from_edges(self.num_vertices, self.edges)
    }

    /// Fallible conversion into a CSR graph; the production path for
    /// parser- and CLI-sourced edge lists.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::TooManyEdges`] when the directed edge count
    /// overflows the CSR's `u32` offsets. (Endpoints were validated on
    /// `push`, so `VertexOutOfRange` cannot occur here.)
    pub fn try_into_csr(self) -> Result<crate::CsrGraph, GraphError> {
        crate::CsrGraph::try_from_edges(self.num_vertices, self.edges)
    }

    fn check(&self, v: VertexId) -> Result<(), GraphError> {
        if (v as usize) < self.num_vertices {
            Ok(())
        } else {
            Err(GraphError::VertexOutOfRange {
                vertex: v as u64,
                num_vertices: self.num_vertices,
            })
        }
    }
}

impl Extend<(VertexId, VertexId, Weight)> for EdgeList {
    fn extend<T: IntoIterator<Item = (VertexId, VertexId, Weight)>>(&mut self, iter: T) {
        self.edges.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_rejects_out_of_range() {
        let mut el = EdgeList::new(2);
        assert!(el.push(0, 1, 1).is_ok());
        assert!(matches!(
            el.push(0, 2, 1),
            Err(GraphError::VertexOutOfRange { vertex: 2, .. })
        ));
    }

    #[test]
    fn undirected_push_adds_both_directions() {
        let mut el = EdgeList::new(4);
        el.push_undirected(1, 3, 9).unwrap();
        let edges: Vec<_> = el.iter().collect();
        assert_eq!(edges, vec![(1, 3, 9), (3, 1, 9)]);
    }

    #[test]
    fn undirected_self_loop_added_once() {
        let mut el = EdgeList::new(4);
        el.push_undirected(2, 2, 1).unwrap();
        assert_eq!(el.len(), 1);
        el.dedup();
        assert_eq!(el.len(), 0, "dedup removes self loops");
    }

    #[test]
    fn dedup_keeps_smallest_weight() {
        let mut el = EdgeList::new(3);
        el.push(0, 1, 8).unwrap();
        el.push(0, 1, 3).unwrap();
        el.push(0, 2, 5).unwrap();
        el.dedup();
        let edges: Vec<_> = el.iter().collect();
        assert_eq!(edges, vec![(0, 1, 3), (0, 2, 5)]);
    }

    #[test]
    fn extend_collects_edges() {
        let mut el = EdgeList::new(5);
        el.extend(vec![(0, 1, 1), (1, 2, 2)]);
        assert_eq!(el.len(), 2);
    }
}
