//! Graph substrate for the CRONO benchmark suite.
//!
//! CRONO (IISWC 2015) evaluates ten multithreaded graph benchmarks on both
//! synthetic and real-world graphs (Table III of the paper). This crate
//! provides everything those benchmarks need from a graph library:
//!
//! * [`CsrGraph`] — a compressed-sparse-row adjacency-list graph with edge
//!   weights, the representation used by all benchmarks except APSP and
//!   betweenness centrality (the paper: "generated graphs are converted to
//!   an adjacency list representation").
//! * [`AdjacencyMatrix`] — the dense representation the paper uses for
//!   APSP and BETW_CENT on small (≤ 32 K vertex) graphs.
//! * [`gen`] — deterministic synthetic generators reproducing each input
//!   class of Table III: GTgraph-style uniform sparse graphs, R-MAT
//!   power-law graphs standing in for the SNAP Facebook social network,
//!   grid-based road networks standing in for roadNet-TX/PA/CA, and
//!   Euclidean city instances for TSP.
//! * [`io`] — plain edge-list and DIMACS `.gr` readers/writers so real
//!   SNAP datasets can be dropped in unchanged when available.
//! * [`dsu`], [`stats`] — union-find and topology statistics used by the
//!   test-suite oracles and by the characterization harness.
//!
//! # Examples
//!
//! ```
//! use crono_graph::gen::uniform_random;
//!
//! let g = uniform_random(1_000, 8_000, 64, 7);
//! assert_eq!(g.num_vertices(), 1_000);
//! // Undirected: every generated edge appears in both directions.
//! assert_eq!(g.num_directed_edges() % 2, 0);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compressed;
mod csr;
mod edgelist;
mod error;
mod matrix;
mod view;

pub mod dsu;
pub mod gen;
pub mod io;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod stream;

pub use compressed::{CompressedCsr, CompressedPacker};
pub use csr::{CsrGraph, CsrPacker, Neighbors};
pub use edgelist::EdgeList;
pub use error::GraphError;
pub use matrix::AdjacencyMatrix;
pub use view::{view_fingerprint, AdjacencyPacker, AdjacencyView, Packable};

/// Vertex identifier. CRONO's largest evaluated graph has 4 M vertices, so
/// `u32` is ample and keeps the CSR arrays (and the simulated cache
/// footprint) compact, matching the C suite's use of `int`.
pub type VertexId = u32;

/// Non-negative edge weight, as required by Dijkstra-based benchmarks.
pub type Weight = u32;
