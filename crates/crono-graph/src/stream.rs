//! Out-of-core streaming graph construction.
//!
//! The in-memory generators in [`crate::gen`] materialize the full edge
//! list before packing CSR — at Graph500 scale 24 (~268 M directed
//! edges) that is ~3.2 GB of triples before the graph even exists. This
//! module builds the same shard-decomposed representations in bounded
//! resident memory:
//!
//! 1. **Seeded, independently-reproducible edge chunks** — each edge of
//!    [`RmatStream`] / [`UniformStream`] is a pure function of
//!    `(seed, edge_index)`: the R-MAT quad-tree descent draws from a
//!    per-edge RNG keyed by a splitmix64 hash of the pair, so any chunk
//!    of the stream regenerates independently (and a build can be
//!    sliced across processes or resumed mid-stream).
//! 2. **Partition + external sort** — [`build_sharded`] routes each
//!    edge to its shard ([`Partition::shard_of_edge`]), buffering at
//!    most `sort_buffer_edges` triples in RAM; full buffers are sorted
//!    and spilled as 12-byte little-endian `(src, dst, weight)` records.
//! 3. **Shard-by-shard packing** — each shard's sorted runs are k-way
//!    merged straight into an [`AdjacencyPacker`], so peak memory is
//!    the sort buffer plus the packed output (for [`CompressedCsr`],
//!    ~3 bytes/edge), never the flat edge list.
//!
//! The stream generators are deliberately *not* the same distribution
//! as their in-memory namesakes: `gen::rmat` draws from one sequential
//! RNG and deduplicates globally, which cannot be chunked. The stream
//! variants skip self-loops but keep parallel edges (the Graph500
//! reference generator's convention), so fingerprints differ from
//! `gen::rmat` by design while each stream remains bit-reproducible
//! from `(seed, index)` alone.

use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::rng::{splitmix64, SmallRng};
use crate::shard::{Partition, ShardedGraph};
use crate::view::{AdjacencyPacker, Packable};
use crate::{gen::RmatParams, GraphError, VertexId, Weight};

/// Bytes per spilled edge record: three little-endian `u32`s.
const RECORD_BYTES: usize = 12;

/// Read-buffer bytes per sorted run during the k-way merge (a whole
/// number of records, so refills never split one).
const MERGE_BUF_BYTES: usize = (64 * 1024 / RECORD_BYTES) * RECORD_BYTES;

/// Golden-ratio increment decorrelating edge indices before hashing.
const INDEX_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Per-edge RNG keyed by `(seed, index)`: the whole point of the stream
/// generators — edge `i` draws from its own splitmix64-derived RNG, so
/// chunks regenerate independently in any order.
fn edge_rng(seed: u64, index: u64) -> SmallRng {
    let mut state = seed ^ index.wrapping_mul(INDEX_STRIDE);
    SmallRng::seed_from_u64(splitmix64(&mut state))
}

/// Streaming R-MAT generator: `2^scale` vertices, `num_edges` draws,
/// weights in `1..=max_weight`.
///
/// Self-loop draws yield `None` (skipped, not redrawn); parallel edges
/// are kept. See the module docs for why this is a different generator
/// from [`crate::gen::rmat`].
#[derive(Debug, Clone, Copy)]
pub struct RmatStream {
    scale: u32,
    num_edges: u64,
    max_weight: Weight,
    params: RmatParams,
    seed: u64,
}

impl RmatStream {
    /// Creates a stream; `scale` must be in `1..=31` and the parameters
    /// valid probabilities.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidSize`] for a bad scale, weight
    /// bound, or parameter set.
    pub fn new(
        scale: u32,
        num_edges: u64,
        max_weight: Weight,
        params: RmatParams,
        seed: u64,
    ) -> Result<RmatStream, GraphError> {
        if scale == 0 || scale > 31 {
            return Err(GraphError::InvalidSize(format!(
                "r-mat scale must be in 1..=31, got {scale}"
            )));
        }
        if max_weight == 0 {
            return Err(GraphError::InvalidSize(
                "max_weight must be positive".into(),
            ));
        }
        if !(params.a > 0.0
            && params.b > 0.0
            && params.c >= 0.0
            && params.a + params.b + params.c <= 1.0
            && (0.0..1.0).contains(&params.noise))
        {
            return Err(GraphError::InvalidSize(
                "r-mat parameters are not valid probabilities".into(),
            ));
        }
        Ok(RmatStream {
            scale,
            num_edges,
            max_weight,
            params,
            seed,
        })
    }

    /// Number of vertices (`2^scale`).
    pub fn num_vertices(&self) -> usize {
        1usize << self.scale
    }

    /// Number of generator draws (realized edges are slightly fewer:
    /// self-loops are skipped).
    pub fn num_draws(&self) -> u64 {
        self.num_edges
    }

    /// Edge `index` of the stream, or `None` if that draw was a
    /// self-loop. Pure in `(self, index)`.
    pub fn edge(&self, index: u64) -> Option<(VertexId, VertexId, Weight)> {
        let mut rng = edge_rng(self.seed, index);
        let n = 1usize << self.scale;
        let (mut lo_r, mut hi_r) = (0usize, n);
        let (mut lo_c, mut hi_c) = (0usize, n);
        for _ in 0..self.scale {
            // Same per-level multiplicative noise as `gen::rmat`.
            let jitter = |p: f64, rng: &mut SmallRng| {
                p * (1.0 - self.params.noise + 2.0 * self.params.noise * rng.random::<f64>())
            };
            let a = jitter(self.params.a, &mut rng);
            let b = jitter(self.params.b, &mut rng);
            let c = jitter(self.params.c, &mut rng);
            let d = jitter(self.params.d(), &mut rng);
            let total = a + b + c + d;
            let x = rng.random::<f64>() * total;
            let (row_hi, col_hi) = if x < a {
                (false, false)
            } else if x < a + b {
                (false, true)
            } else if x < a + b + c {
                (true, false)
            } else {
                (true, true)
            };
            let mid_r = (lo_r + hi_r) / 2;
            let mid_c = (lo_c + hi_c) / 2;
            if row_hi {
                lo_r = mid_r;
            } else {
                hi_r = mid_r;
            }
            if col_hi {
                lo_c = mid_c;
            } else {
                hi_c = mid_c;
            }
        }
        let (src, dst) = (lo_r as VertexId, lo_c as VertexId);
        if src == dst {
            return None;
        }
        Some((src, dst, rng.random_range(1..=self.max_weight)))
    }

    /// Iterates the realized edges of index range `start..end`
    /// (clamped to the stream length).
    pub fn chunk(
        &self,
        start: u64,
        end: u64,
    ) -> impl Iterator<Item = (VertexId, VertexId, Weight)> + '_ {
        (start..end.min(self.num_edges)).filter_map(move |i| self.edge(i))
    }

    /// Iterates every realized edge of the stream.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId, Weight)> + '_ {
        self.chunk(0, self.num_edges)
    }
}

/// Streaming uniform-random generator over `num_vertices` vertices:
/// endpoints i.i.d. uniform, weights in `1..=max_weight`, self-loops
/// skipped. Pure in `(seed, index)` like [`RmatStream`].
#[derive(Debug, Clone, Copy)]
pub struct UniformStream {
    num_vertices: usize,
    num_edges: u64,
    max_weight: Weight,
    seed: u64,
}

impl UniformStream {
    /// Creates a stream over at least two vertices.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidSize`] for fewer than two vertices
    /// or a zero weight bound.
    pub fn new(
        num_vertices: usize,
        num_edges: u64,
        max_weight: Weight,
        seed: u64,
    ) -> Result<UniformStream, GraphError> {
        if num_vertices < 2 {
            return Err(GraphError::InvalidSize(format!(
                "uniform stream needs >= 2 vertices, got {num_vertices}"
            )));
        }
        if u32::try_from(num_vertices).is_err() {
            return Err(GraphError::InvalidSize(format!(
                "vertex count {num_vertices} exceeds u32 ids"
            )));
        }
        if max_weight == 0 {
            return Err(GraphError::InvalidSize(
                "max_weight must be positive".into(),
            ));
        }
        Ok(UniformStream {
            num_vertices,
            num_edges,
            max_weight,
            seed,
        })
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of generator draws.
    pub fn num_draws(&self) -> u64 {
        self.num_edges
    }

    /// Edge `index`, or `None` if that draw was a self-loop.
    pub fn edge(&self, index: u64) -> Option<(VertexId, VertexId, Weight)> {
        let mut rng = edge_rng(self.seed, index);
        let n = self.num_vertices as u32;
        let src = rng.random_range(0..n as u64) as VertexId;
        let dst = rng.random_range(0..n as u64) as VertexId;
        if src == dst {
            return None;
        }
        Some((src, dst, rng.random_range(1..=self.max_weight)))
    }

    /// Iterates the realized edges of index range `start..end`.
    pub fn chunk(
        &self,
        start: u64,
        end: u64,
    ) -> impl Iterator<Item = (VertexId, VertexId, Weight)> + '_ {
        (start..end.min(self.num_edges)).filter_map(move |i| self.edge(i))
    }

    /// Iterates every realized edge of the stream.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId, Weight)> + '_ {
        self.chunk(0, self.num_edges)
    }
}

/// Mirrors a directed edge stream into its symmetric (undirected)
/// closure: each `(s, d, w)` yields `(s, d, w)` and `(d, s, w)`.
pub fn mirror<I>(edges: I) -> impl Iterator<Item = (VertexId, VertexId, Weight)>
where
    I: IntoIterator<Item = (VertexId, VertexId, Weight)>,
{
    edges
        .into_iter()
        .flat_map(|(s, d, w)| [(s, d, w), (d, s, w)])
}

/// Tuning for [`build_sharded`].
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Total `(src, dst, weight)` triples buffered in RAM across all
    /// shards before spilling (12 bytes each).
    pub sort_buffer_edges: usize,
    /// Directory for spill files; created if missing, spill files are
    /// removed on success.
    pub spill_dir: PathBuf,
}

impl StreamConfig {
    /// A config spilling under `dir` with the default 16 M-edge
    /// (~192 MB) sort buffer.
    pub fn new(dir: impl Into<PathBuf>) -> StreamConfig {
        StreamConfig {
            sort_buffer_edges: 16 << 20,
            spill_dir: dir.into(),
        }
    }

    /// Replaces the sort-buffer budget (clamped to at least 1).
    pub fn with_sort_buffer_edges(mut self, edges: usize) -> StreamConfig {
        self.sort_buffer_edges = edges.max(1);
        self
    }
}

/// What the out-of-core build did, for reporting.
#[derive(Debug, Clone, Default)]
pub struct BuildStats {
    /// Directed edges packed into shards.
    pub edges_packed: u64,
    /// Sorted runs spilled to disk (0 when everything fit in RAM).
    pub runs_spilled: usize,
    /// Total bytes written to spill files.
    pub spill_bytes: u64,
    /// Peak resident set size observed after packing, if the platform
    /// exposes it (Linux `VmHWM`). Diagnostic only — never put this in
    /// a deterministic artifact.
    pub peak_rss_bytes: Option<u64>,
}

/// One shard's spill state: an in-RAM buffer plus sorted runs on disk.
struct ShardSpill {
    buf: Vec<(VertexId, VertexId, Weight)>,
    cap: usize,
    path: PathBuf,
    writer: Option<BufWriter<File>>,
    /// Record count of each sorted run, in file order.
    runs: Vec<u64>,
}

impl ShardSpill {
    fn new(path: PathBuf, cap: usize) -> ShardSpill {
        ShardSpill {
            buf: Vec::new(),
            cap: cap.max(1),
            path,
            writer: None,
            runs: Vec::new(),
        }
    }

    fn push(&mut self, edge: (VertexId, VertexId, Weight)) -> Result<(), GraphError> {
        self.buf.push(edge);
        if self.buf.len() >= self.cap {
            self.spill()?;
        }
        Ok(())
    }

    fn spill(&mut self) -> Result<(), GraphError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.buf.sort_unstable();
        let writer = match self.writer.as_mut() {
            Some(w) => w,
            None => {
                let file = File::create(&self.path)?;
                self.writer.insert(BufWriter::new(file))
            }
        };
        for &(s, d, w) in &self.buf {
            writer.write_all(&s.to_le_bytes())?;
            writer.write_all(&d.to_le_bytes())?;
            writer.write_all(&w.to_le_bytes())?;
        }
        self.runs.push(self.buf.len() as u64);
        self.buf.clear();
        Ok(())
    }
}

/// Buffered reader over one sorted run inside a spill file.
struct RunCursor {
    file: File,
    remaining: u64,
    buf: Vec<u8>,
    pos: usize,
    filled: usize,
}

impl RunCursor {
    fn open(path: &Path, start_record: u64, records: u64) -> Result<RunCursor, GraphError> {
        let mut file = File::open(path)?;
        file.seek(SeekFrom::Start(start_record * RECORD_BYTES as u64))?;
        Ok(RunCursor {
            file,
            remaining: records,
            buf: vec![0; MERGE_BUF_BYTES],
            pos: 0,
            filled: 0,
        })
    }

    fn next(&mut self) -> Result<Option<(VertexId, VertexId, Weight)>, GraphError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        if self.pos == self.filled {
            let want = (self.remaining as usize)
                .saturating_mul(RECORD_BYTES)
                .min(self.buf.len());
            self.file.read_exact(&mut self.buf[..want])?;
            self.pos = 0;
            self.filled = want;
        }
        let rec = &self.buf[self.pos..self.pos + RECORD_BYTES];
        let s = u32::from_le_bytes(rec[0..4].try_into().expect("4-byte slice"));
        let d = u32::from_le_bytes(rec[4..8].try_into().expect("4-byte slice"));
        let w = u32::from_le_bytes(rec[8..12].try_into().expect("4-byte slice"));
        self.pos += RECORD_BYTES;
        self.remaining -= 1;
        Ok(Some((s, d, w)))
    }
}

/// Builds a [`ShardedGraph`] from an arbitrary directed edge stream in
/// bounded resident memory (see the module docs for the pipeline).
///
/// The result is identical to routing the fully materialized edge list
/// through the same packers: external sorting changes where the sort
/// happens, not its outcome (ties beyond `(src, dst, weight)` don't
/// exist — the triple *is* the sort key).
///
/// Pass [`mirror`] around a generator stream to store an undirected
/// graph symmetrically.
///
/// # Errors
///
/// Returns [`GraphError`] on out-of-range endpoints, packer capacity
/// overflow, or spill-file I/O failure.
pub fn build_sharded<G, I>(
    partition: Partition,
    edges: I,
    cfg: &StreamConfig,
) -> Result<(ShardedGraph<G>, BuildStats), GraphError>
where
    G: Packable,
    I: IntoIterator<Item = (VertexId, VertexId, Weight)>,
{
    let num_shards = partition.num_shards();
    let n = partition.num_vertices();
    std::fs::create_dir_all(&cfg.spill_dir)?;
    let per_shard = (cfg.sort_buffer_edges / num_shards).max(1);
    let mut spills: Vec<ShardSpill> = (0..num_shards)
        .map(|k| {
            ShardSpill::new(
                cfg.spill_dir.join(format!("crono-shard-{k}.spill")),
                per_shard,
            )
        })
        .collect();

    let mut stats = BuildStats::default();
    for (s, d, w) in edges {
        let far = s.max(d);
        if far as usize >= n {
            return Err(GraphError::VertexOutOfRange {
                vertex: far as u64,
                num_vertices: n,
            });
        }
        spills[partition.shard_of_edge(s, d)].push((s, d, w))?;
        stats.edges_packed += 1;
    }

    let mut shards = Vec::with_capacity(num_shards);
    for spill in &mut spills {
        let mut packer = G::Packer::new(n);
        if spill.runs.is_empty() {
            // Everything fit in RAM: sort and pack directly.
            spill.buf.sort_unstable();
            for &(s, d, w) in &spill.buf {
                packer.push_edge(s, d, w)?;
            }
            spill.buf.clear();
        } else {
            // Flush the partial tail run, then k-way merge all runs.
            spill.spill()?;
            if let Some(mut w) = spill.writer.take() {
                w.flush()?;
            }
            stats.runs_spilled += spill.runs.len();
            stats.spill_bytes += spill.runs.iter().sum::<u64>() * RECORD_BYTES as u64;
            let mut cursors = Vec::with_capacity(spill.runs.len());
            let mut start = 0u64;
            for &len in &spill.runs {
                cursors.push(RunCursor::open(&spill.path, start, len)?);
                start += len;
            }
            // Min-heap keyed by the edge triple; run index breaks exact
            // ties so the pop order is fully defined.
            let mut heap = BinaryHeap::new();
            for (idx, cursor) in cursors.iter_mut().enumerate() {
                if let Some(e) = cursor.next()? {
                    heap.push(std::cmp::Reverse((e, idx)));
                }
            }
            while let Some(std::cmp::Reverse(((s, d, w), idx))) = heap.pop() {
                packer.push_edge(s, d, w)?;
                if let Some(e) = cursors[idx].next()? {
                    heap.push(std::cmp::Reverse((e, idx)));
                }
            }
            std::fs::remove_file(&spill.path)?;
        }
        shards.push(packer.finish()?);
    }
    stats.peak_rss_bytes = peak_rss_bytes();
    Ok((ShardedGraph::from_parts(partition, shards), stats))
}

/// Peak resident set size of this process in bytes, from Linux's
/// `VmHWM` line in `/proc/self/status`; `None` where unavailable.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::Placement;
    use crate::{CompressedCsr, CsrGraph};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("crono-stream-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn rmat_edges_are_pure_functions_of_index() {
        let s = RmatStream::new(7, 512, 8, RmatParams::default(), 42).unwrap();
        let all: Vec<_> = s.edges().collect();
        // Regenerating any chunk out of order reproduces the same edges.
        let tail: Vec<_> = s.chunk(256, 512).collect();
        let head: Vec<_> = s.chunk(0, 256).collect();
        let mut stitched = head;
        stitched.extend(tail);
        assert_eq!(stitched, all);
        assert_eq!(s.edge(17), s.edge(17));
    }

    #[test]
    fn uniform_stream_respects_bounds() {
        let s = UniformStream::new(50, 400, 9, 7).unwrap();
        let mut count = 0;
        for (src, dst, w) in s.edges() {
            assert!(src < 50 && dst < 50 && src != dst);
            assert!((1..=9).contains(&w));
            count += 1;
        }
        assert!(count > 300, "self-loop skips should be rare: {count}");
    }

    #[test]
    fn rmat_stream_is_skewed() {
        let s = RmatStream::new(9, 8_192, 8, RmatParams::default(), 5).unwrap();
        let p = Partition::one_d(s.num_vertices(), 1);
        let dir = temp_dir("skew");
        let (g, _) =
            build_sharded::<CsrGraph, _>(p, mirror(s.edges()), &StreamConfig::new(&dir)).unwrap();
        let avg = (g.shard(0).num_directed_edges() / g.num_vertices()).max(1);
        assert!(
            g.shard(0).max_degree() > 8 * avg,
            "expected hubs: max={} avg={avg}",
            g.shard(0).max_degree()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spilled_build_equals_in_memory_build() {
        let s = UniformStream::new(64, 2_000, 8, 42).unwrap();
        let p = Partition::one_d(64, 4);
        let dir = temp_dir("equal");
        // Tiny buffer forces many spilled runs.
        let spilled = StreamConfig::new(&dir).with_sort_buffer_edges(64);
        let (a, stats) = build_sharded::<CsrGraph, _>(p, mirror(s.edges()), &spilled).unwrap();
        assert!(stats.runs_spilled > 4, "runs: {}", stats.runs_spilled);
        assert!(stats.spill_bytes > 0);
        // Huge buffer: pure in-memory path.
        let resident = StreamConfig::new(&dir).with_sort_buffer_edges(1 << 20);
        let (b, stats_b) = build_sharded::<CsrGraph, _>(p, mirror(s.edges()), &resident).unwrap();
        assert_eq!(stats_b.runs_spilled, 0);
        for (x, y) in a.shards().iter().zip(b.shards()) {
            assert_eq!(x, y);
        }
        // Buffer size must not change the result, only where sorting ran.
        let mid = StreamConfig::new(&dir).with_sort_buffer_edges(333);
        let (c, _) = build_sharded::<CsrGraph, _>(p, mirror(s.edges()), &mid).unwrap();
        for (x, y) in a.shards().iter().zip(c.shards()) {
            assert_eq!(x, y);
        }
        assert!(
            !dir.read_dir().is_ok_and(|mut d| d.any(|_| true)),
            "spill files must be cleaned up"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compressed_build_matches_plain_build() {
        let s = RmatStream::new(8, 3_000, 8, RmatParams::default(), 11).unwrap();
        let p = Partition::two_d(s.num_vertices(), 2).with_placement(Placement::Hashed);
        let dir = temp_dir("repr");
        let cfg = StreamConfig::new(&dir).with_sort_buffer_edges(128);
        let (plain, _) = build_sharded::<CsrGraph, _>(p, mirror(s.edges()), &cfg).unwrap();
        let (packed, _) = build_sharded::<CompressedCsr, _>(p, mirror(s.edges()), &cfg).unwrap();
        for (a, b) in plain.shards().iter().zip(packed.shards()) {
            assert_eq!(&b.to_csr(), a);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn out_of_range_stream_edge_is_a_typed_error() {
        let p = Partition::one_d(4, 2);
        let dir = temp_dir("range");
        let err = build_sharded::<CsrGraph, _>(p, vec![(0, 9, 1)], &StreamConfig::new(&dir))
            .err()
            .expect("out-of-range endpoint must fail");
        assert!(matches!(err, GraphError::VertexOutOfRange { vertex: 9, .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn peak_rss_reports_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(peak_rss_bytes().unwrap() > 0);
        }
    }
}
