//! Disjoint-set union (union-find), used as the correctness oracle for the
//! connected-components benchmark and by graph statistics.

use crate::VertexId;

/// Union-find with path halving and union by size.
///
/// # Examples
///
/// ```
/// use crono_graph::dsu::Dsu;
///
/// let mut dsu = Dsu::new(4);
/// dsu.union(0, 1);
/// dsu.union(2, 3);
/// assert!(dsu.same(0, 1));
/// assert!(!dsu.same(1, 2));
/// assert_eq!(dsu.num_components(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Dsu {
    parent: Vec<VertexId>,
    size: Vec<u32>,
    components: usize,
}

impl Dsu {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n as VertexId).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Representative of `v`'s set.
    pub fn find(&mut self, mut v: VertexId) -> VertexId {
        while self.parent[v as usize] != v {
            let grandparent = self.parent[self.parent[v as usize] as usize];
            self.parent[v as usize] = grandparent;
            v = grandparent;
        }
        v
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were
    /// previously distinct.
    pub fn union(&mut self, a: VertexId, b: VertexId) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: VertexId, b: VertexId) -> bool {
        self.find(a) == self.find(b)
    }

    /// Current number of disjoint sets.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Canonical labeling: `labels[v]` is the smallest vertex id in `v`'s
    /// component. Useful for comparing against other component algorithms.
    pub fn canonical_labels(&mut self) -> Vec<VertexId> {
        let n = self.parent.len();
        let mut min_of_root = vec![VertexId::MAX; n];
        for v in 0..n as VertexId {
            let r = self.find(v) as usize;
            if v < min_of_root[r] {
                min_of_root[r] = v;
            }
        }
        (0..n as VertexId)
            .map(|v| {
                let r = self.find(v) as usize;
                min_of_root[r]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_reduces_component_count() {
        let mut d = Dsu::new(5);
        assert_eq!(d.num_components(), 5);
        assert!(d.union(0, 1));
        assert!(!d.union(1, 0), "already merged");
        assert_eq!(d.num_components(), 4);
    }

    #[test]
    fn canonical_labels_use_min_vertex() {
        let mut d = Dsu::new(5);
        d.union(4, 2);
        d.union(2, 3);
        let labels = d.canonical_labels();
        assert_eq!(labels, vec![0, 1, 2, 2, 2]);
    }

    #[test]
    fn transitive_connectivity() {
        let mut d = Dsu::new(100);
        for i in 0..99 {
            d.union(i, i + 1);
        }
        assert!(d.same(0, 99));
        assert_eq!(d.num_components(), 1);
    }
}
