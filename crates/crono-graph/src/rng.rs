//! Small, fast, seedable pseudo-random number generation.
//!
//! The suite needs reproducible graphs, not cryptographic randomness: every
//! generator is a pure function of its parameters and a `u64` seed, and the
//! same seed must yield byte-identical graphs on every platform, forever.
//! Pulling in an external RNG crate would tie that guarantee to someone
//! else's versioning, so the generator stack is in-tree and `std`-only:
//!
//! * [`SmallRng`] — xoshiro256++ (Blackman & Vigna), 256 bits of state,
//!   sub-nanosecond output, passes BigCrush.
//! * Seeding — SplitMix64 expands a single `u64` seed into the full state,
//!   the standard remedy for xoshiro's sensitivity to low-entropy seeds.
//!
//! The API mirrors the `rand::rngs::SmallRng` surface the generators were
//! written against (`seed_from_u64`, `random`, `random_range`), so callers
//! read identically to idiomatic `rand` code.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step: advances `state` and returns the next output.
///
/// Used to expand a user seed into xoshiro state; also handy on its own
/// for stateless hashing of test-case indices into seeds.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable xoshiro256++ generator.
///
/// Deterministic: the same seed produces the same stream on every
/// platform. Not cryptographically secure — do not use it for secrets.
///
/// # Examples
///
/// ```
/// use crono_graph::rng::SmallRng;
///
/// let mut a = SmallRng::seed_from_u64(7);
/// let mut b = SmallRng::seed_from_u64(7);
/// assert_eq!(a.random::<u64>(), b.random::<u64>());
/// let w = a.random_range(1..=64u32);
/// assert!((1..=64).contains(&w));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Creates a generator whose full 256-bit state is derived from
    /// `seed` via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SmallRng { s }
    }

    /// The next raw 64-bit output (xoshiro256++ scrambler).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// A uniform random value of type `T` (full domain; `f64`/`f32` in
    /// `[0, 1)`).
    #[inline]
    pub fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// A uniform random value in `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Uniform in `[0, span)` via multiply-free rejection; `span >= 1`.
    #[inline]
    fn bounded_u64(&mut self, span: u64) -> u64 {
        debug_assert!(span >= 1);
        if span.is_power_of_two() {
            return self.next_u64() & (span - 1);
        }
        // Largest multiple of `span` that fits in u64: reject above it so
        // the modulo is exactly uniform.
        let zone = (u64::MAX / span) * span;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % span;
            }
        }
    }
}

/// Types [`SmallRng::random`] can produce.
pub trait Random {
    /// Draws a uniform value from `rng`.
    fn random(rng: &mut SmallRng) -> Self;
}

impl Random for u64 {
    #[inline]
    fn random(rng: &mut SmallRng) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    #[inline]
    fn random(rng: &mut SmallRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for usize {
    #[inline]
    fn random(rng: &mut SmallRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Random for bool {
    #[inline]
    fn random(rng: &mut SmallRng) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn random(rng: &mut SmallRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn random(rng: &mut SmallRng) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Range shapes [`SmallRng::random_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range using `rng`.
    fn sample(self, rng: &mut SmallRng) -> T;
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                self.start + rng.bounded_u64((self.end - self.start) as u64) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut SmallRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "random_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.bounded_u64(span + 1) as $t
            }
        }
    )*};
}

impl_int_ranges!(u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample(self, rng: &mut SmallRng) -> f64 {
        assert!(self.start < self.end, "random_range: empty range");
        self.start + rng.random::<f64>() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_matches_reference_vector() {
        // First three outputs for seed 0 from the reference C
        // implementation (Vigna, prng.di.unimi.it).
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_are_in_range_and_spread() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            lo |= x < 0.1;
            hi |= x > 0.9;
        }
        assert!(lo && hi, "10k draws should reach both tails");
    }

    #[test]
    fn ranges_respect_bounds_and_hit_endpoints() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.random_range(10..=14u32);
            assert!((10..=14).contains(&v));
            seen[(v - 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 5 values should appear");
        for _ in 0..1000 {
            let v = rng.random_range(0..3usize);
            assert!(v < 3);
        }
    }

    #[test]
    fn bounded_draws_are_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(77);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c} off uniform");
        }
    }

    #[test]
    fn full_u64_inclusive_range_does_not_overflow() {
        let mut rng = SmallRng::seed_from_u64(3);
        let _ = rng.random_range(0..=u64::MAX);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SmallRng::seed_from_u64(0).random_range(5..5u32);
    }
}
