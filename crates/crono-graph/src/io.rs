//! Graph file I/O: plain edge lists (SNAP style) and DIMACS `.gr`.
//!
//! These readers accept the exact formats CRONO's inputs ship in, so real
//! SNAP datasets can replace the synthetic stand-ins without code changes:
//!
//! * *Edge list*: one `src dst [weight]` triple per line, `#` comments,
//!   blank lines ignored. Missing weights default to 1. Vertex count is
//!   `max id + 1` unless given.
//! * *DIMACS shortest-path* (`.gr`): `c` comment lines, one
//!   `p sp <n> <m>` problem line, and `a <src> <dst> <weight>` arcs with
//!   1-based vertex ids.
//! * *Matrix Market* (`.mtx`): the `%%MatrixMarket matrix coordinate`
//!   header, a `rows cols entries` size line, then 1-based `row col
//!   [value]` entries; `symmetric` matrices are mirrored.

use crate::{CsrGraph, EdgeList, GraphError, VertexId, Weight};
use std::io::{BufRead, BufReader, Read, Write};

/// Cap on the edge capacity pre-reserved from a file's *declared* sizes.
/// The declared counts are untrusted input: a hostile header like
/// `p sp 4000000000 4000000000` must not reserve gigabytes up front.
/// Larger (honest) files still load — the vectors grow as real edges
/// arrive — this only bounds the speculative reservation.
const MAX_PREALLOC_EDGES: usize = 1 << 20;

/// Reads a whitespace-separated edge list.
///
/// Pass `undirected = true` to mirror every edge (SNAP road networks list
/// each undirected edge once).
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed lines and
/// [`GraphError::Io`] on read failures.
///
/// # Examples
///
/// ```
/// use crono_graph::io::read_edge_list;
///
/// let text = "# comment\n0 1 5\n1 2\n";
/// let g = read_edge_list(text.as_bytes(), false).unwrap();
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.num_directed_edges(), 2);
/// ```
pub fn read_edge_list<R: Read>(reader: R, undirected: bool) -> Result<CsrGraph, GraphError> {
    let reader = BufReader::new(reader);
    let mut edges: Vec<(VertexId, VertexId, Weight)> = Vec::new();
    let mut max_v: u64 = 0;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let src = parse_field(parts.next(), idx + 1, "source vertex")?;
        let dst = parse_field(parts.next(), idx + 1, "destination vertex")?;
        let w: Weight = match parts.next() {
            Some(tok) => tok.parse().map_err(|_| GraphError::Parse {
                line: idx + 1,
                message: format!("invalid weight {tok:?}"),
            })?,
            None => 1,
        };
        max_v = max_v.max(src as u64).max(dst as u64);
        edges.push((src, dst, w));
        if undirected && src != dst {
            edges.push((dst, src, w));
        }
    }
    let n = if edges.is_empty() { 0 } else { max_v as usize + 1 };
    CsrGraph::try_from_edges(n, edges)
}

/// Writes a graph as a plain directed edge list (`src dst weight` lines).
///
/// # Errors
///
/// Returns any I/O error from the writer. Note a `&mut` writer can be
/// passed for `W`.
pub fn write_edge_list<W: Write>(graph: &CsrGraph, mut writer: W) -> std::io::Result<()> {
    for v in 0..graph.num_vertices() as VertexId {
        for (u, w) in graph.neighbors(v) {
            writeln!(writer, "{v} {u} {w}")?;
        }
    }
    Ok(())
}

/// Reads a DIMACS shortest-path `.gr` file (1-based ids).
///
/// # Errors
///
/// Returns [`GraphError::Parse`] if the problem line is missing or
/// malformed, an arc references a vertex outside the declared range, or a
/// field fails to parse.
///
/// # Examples
///
/// ```
/// use crono_graph::io::read_dimacs;
///
/// let text = "c road net\np sp 3 2\na 1 2 10\na 2 3 20\n";
/// let g = read_dimacs(text.as_bytes()).unwrap();
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.neighbors(0).next(), Some((1, 10)));
/// ```
pub fn read_dimacs<R: Read>(reader: R) -> Result<CsrGraph, GraphError> {
    let reader = BufReader::new(reader);
    // Declared arc count + the edges parsed so far, both set by the one
    // `p` line — a single Option so arcs can never exist without it.
    let mut parsed: Option<(usize, EdgeList)> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        let lineno = idx + 1;
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("p ") {
            if parsed.is_some() {
                return Err(GraphError::Parse {
                    line: lineno,
                    message: "duplicate problem line".to_string(),
                });
            }
            let mut parts = rest.split_whitespace();
            let kind = parts.next().unwrap_or("");
            if kind != "sp" {
                return Err(GraphError::Parse {
                    line: lineno,
                    message: format!("unsupported problem type {kind:?}, expected \"sp\""),
                });
            }
            let n = parse_field(parts.next(), lineno, "vertex count")? as usize;
            let m = parse_field(parts.next(), lineno, "edge count")? as usize;
            parsed = Some((m, EdgeList::with_capacity(n, m.min(MAX_PREALLOC_EDGES))));
        } else if let Some(rest) = line.strip_prefix("a ") {
            let Some((_, el)) = parsed.as_mut() else {
                return Err(GraphError::Parse {
                    line: lineno,
                    message: "arc before problem line".to_string(),
                });
            };
            let mut parts = rest.split_whitespace();
            let src = parse_field(parts.next(), lineno, "arc source")?;
            let dst = parse_field(parts.next(), lineno, "arc destination")?;
            let w = parse_field(parts.next(), lineno, "arc weight")?;
            if src == 0 || dst == 0 {
                return Err(GraphError::Parse {
                    line: lineno,
                    message: "dimacs vertex ids are 1-based".to_string(),
                });
            }
            el.push(src - 1, dst - 1, w)?;
        } else {
            return Err(GraphError::Parse {
                line: lineno,
                message: format!("unrecognized line {line:?}"),
            });
        }
    }
    let Some((m, el)) = parsed else {
        return Err(GraphError::Parse {
            line: 0,
            message: "missing problem line".to_string(),
        });
    };
    if el.len() != m {
        return Err(GraphError::Parse {
            line: 0,
            message: format!("problem line declared {m} arcs but file has {}", el.len()),
        });
    }
    el.try_into_csr()
}

/// Writes a graph in DIMACS `.gr` format.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn write_dimacs<W: Write>(graph: &CsrGraph, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "p sp {} {}",
        graph.num_vertices(),
        graph.num_directed_edges()
    )?;
    for v in 0..graph.num_vertices() as VertexId {
        for (u, w) in graph.neighbors(v) {
            writeln!(writer, "a {} {} {}", v + 1, u + 1, w)?;
        }
    }
    Ok(())
}

/// Reads a Matrix Market coordinate file as a graph (rows/columns are
/// vertices, entries are edges; `symmetric` headers mirror each entry).
/// Real entry values are rounded to non-negative integer weights;
/// `pattern` matrices get weight 1.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] for a missing/unsupported header, a
/// non-square matrix, out-of-range indices, or malformed entries.
///
/// # Examples
///
/// ```
/// use crono_graph::io::read_matrix_market;
///
/// let text = "%%MatrixMarket matrix coordinate real symmetric\n\
///             % a comment\n\
///             3 3 2\n\
///             1 2 5.0\n\
///             2 3 7.5\n";
/// let g = read_matrix_market(text.as_bytes()).unwrap();
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.num_directed_edges(), 4, "symmetric entries mirrored");
/// ```
pub fn read_matrix_market<R: Read>(reader: R) -> Result<CsrGraph, GraphError> {
    let reader = BufReader::new(reader);
    let mut lines = reader.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| GraphError::Parse {
        line: 1,
        message: "empty file".to_string(),
    })?;
    let header = header?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.first() != Some(&"%%MatrixMarket")
        || fields.get(1) != Some(&"matrix")
        || fields.get(2) != Some(&"coordinate")
    {
        return Err(GraphError::Parse {
            line: 1,
            message: "expected a \"%%MatrixMarket matrix coordinate\" header".to_string(),
        });
    }
    let pattern = fields.get(3) == Some(&"pattern");
    let symmetric = fields.get(4).map(|s| s.to_ascii_lowercase())
        == Some("symmetric".to_string());

    // Declared entry count + the edges parsed so far, both set by the
    // one size line — a single Option so entries can never exist
    // without it.
    let mut parsed: Option<(usize, EdgeList)> = None;
    let mut seen_entries = 0usize;
    for (idx, line) in lines {
        let line = line?;
        let line = line.trim();
        let lineno = idx + 1;
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let Some((_, el)) = parsed.as_mut() else {
            let rows = parse_field(parts.next(), lineno, "row count")? as usize;
            let cols = parse_field(parts.next(), lineno, "column count")? as usize;
            let declared = parse_field(parts.next(), lineno, "entry count")? as usize;
            if rows != cols {
                return Err(GraphError::Parse {
                    line: lineno,
                    message: format!("graph matrices must be square, got {rows}x{cols}"),
                });
            }
            let cap = declared.saturating_mul(2).min(MAX_PREALLOC_EDGES);
            parsed = Some((declared, EdgeList::with_capacity(rows, cap)));
            continue;
        };
        let row = parse_field(parts.next(), lineno, "row index")?;
        let col = parse_field(parts.next(), lineno, "column index")?;
        if row == 0 || col == 0 {
            return Err(GraphError::Parse {
                line: lineno,
                message: "matrix market indices are 1-based".to_string(),
            });
        }
        let weight: Weight = if pattern {
            1
        } else {
            let tok = parts.next().ok_or_else(|| GraphError::Parse {
                line: lineno,
                message: "missing entry value".to_string(),
            })?;
            let value: f64 = tok.parse().map_err(|_| GraphError::Parse {
                line: lineno,
                message: format!("invalid entry value {tok:?}"),
            })?;
            if !value.is_finite() || value < 0.0 {
                return Err(GraphError::Parse {
                    line: lineno,
                    message: format!("edge weights must be finite and non-negative, got {value}"),
                });
            }
            value.round() as Weight
        };
        if symmetric && row != col {
            el.push_undirected(row - 1, col - 1, weight)?;
        } else {
            el.push(row - 1, col - 1, weight)?;
        }
        seen_entries += 1;
    }
    let Some((declared_entries, el)) = parsed else {
        return Err(GraphError::Parse {
            line: 0,
            message: "missing size line".to_string(),
        });
    };
    if seen_entries != declared_entries {
        return Err(GraphError::Parse {
            line: 0,
            message: format!(
                "size line declared {declared_entries} entries but file has {seen_entries}"
            ),
        });
    }
    el.try_into_csr()
}

/// Streams an edge iterator to a writer as plain `src dst weight` lines
/// in fixed-size chunks, never materializing the edge list — the
/// emit-side counterpart of [`stream_edge_list`]. Returns the number of
/// lines written.
///
/// `crono gen` uses this to write multi-hundred-million-edge graphs
/// with only one chunk of formatted text resident.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn write_edge_stream<W, I>(edges: I, writer: W, chunk_lines: usize) -> std::io::Result<u64>
where
    W: Write,
    I: IntoIterator<Item = (VertexId, VertexId, Weight)>,
{
    let mut writer = std::io::BufWriter::new(writer);
    let chunk_lines = chunk_lines.max(1);
    let mut text = String::new();
    let mut pending = 0usize;
    let mut written = 0u64;
    for (s, d, w) in edges {
        use std::fmt::Write as _;
        let _ = writeln!(text, "{s} {d} {w}");
        pending += 1;
        written += 1;
        if pending == chunk_lines {
            writer.write_all(text.as_bytes())?;
            text.clear();
            pending = 0;
        }
    }
    writer.write_all(text.as_bytes())?;
    writer.flush()?;
    Ok(written)
}

/// Streams a whitespace-separated edge list as an iterator of
/// `(src, dst, weight)` triples, one buffered line at a time — the
/// read-side counterpart of [`write_edge_stream`], shaped to feed
/// [`crate::stream::build_sharded`] directly without collecting the
/// file into memory first. Missing weights default to 1; `#` comments
/// and blank lines are skipped.
///
/// Errors (I/O or parse, with line numbers) surface as `Err` items;
/// the out-of-core builder's `Result` plumbing propagates them.
pub fn stream_edge_list<R: Read>(
    reader: R,
) -> impl Iterator<Item = Result<(VertexId, VertexId, Weight), GraphError>> {
    let reader = BufReader::new(reader);
    reader
        .lines()
        .enumerate()
        .filter_map(|(idx, line)| match line {
            Err(e) => Some(Err(GraphError::Io(e))),
            Ok(line) => {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    return None;
                }
                let parse = || -> Result<(VertexId, VertexId, Weight), GraphError> {
                    let mut parts = line.split_whitespace();
                    let src = parse_field(parts.next(), idx + 1, "source vertex")?;
                    let dst = parse_field(parts.next(), idx + 1, "destination vertex")?;
                    let w = match parts.next() {
                        Some(tok) => tok.parse().map_err(|_| GraphError::Parse {
                            line: idx + 1,
                            message: format!("invalid weight {tok:?}"),
                        })?,
                        None => 1,
                    };
                    Ok((src, dst, w))
                };
                Some(parse())
            }
        })
}

fn parse_field(tok: Option<&str>, line: usize, what: &str) -> Result<u32, GraphError> {
    let tok = tok.ok_or_else(|| GraphError::Parse {
        line,
        message: format!("missing {what}"),
    })?;
    tok.parse().map_err(|_| GraphError::Parse {
        line,
        message: format!("invalid {what} {tok:?}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_list_round_trip() {
        let g = CsrGraph::from_edges(4, vec![(0, 1, 3), (1, 2, 4), (3, 0, 5)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice(), false).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn dimacs_round_trip() {
        let g = CsrGraph::from_edges(3, vec![(0, 2, 7), (2, 1, 9)]);
        let mut buf = Vec::new();
        write_dimacs(&g, &mut buf).unwrap();
        let g2 = read_dimacs(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn undirected_reader_mirrors_edges() {
        let g = read_edge_list("0 1 2\n".as_bytes(), true).unwrap();
        assert_eq!(g.num_directed_edges(), 2);
        assert_eq!(g.neighbors(1).next(), Some((0, 2)));
    }

    #[test]
    fn malformed_weight_reports_line() {
        let err = read_edge_list("0 1 x\n".as_bytes(), false).unwrap_err();
        match err {
            GraphError::Parse { line, message } => {
                assert_eq!(line, 1);
                assert!(message.contains("weight"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn dimacs_requires_problem_line() {
        let err = read_dimacs("a 1 2 3\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("problem line"));
    }

    #[test]
    fn dimacs_rejects_zero_based_ids() {
        let err = read_dimacs("p sp 2 1\na 0 1 5\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("1-based"));
    }

    #[test]
    fn dimacs_arc_count_mismatch_detected() {
        let err = read_dimacs("p sp 2 2\na 1 2 5\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("declared 2 arcs"));
    }

    #[test]
    fn matrix_market_general_is_directed() {
        let text = "%%MatrixMarket matrix coordinate real general
2 2 2
1 2 3.0
2 1 4.0
";
        let g = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(g.neighbors(0).next(), Some((1, 3)));
        assert_eq!(g.neighbors(1).next(), Some((0, 4)));
    }

    #[test]
    fn matrix_market_pattern_defaults_weights() {
        let text = "%%MatrixMarket matrix coordinate pattern general
3 3 1
1 3
";
        let g = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(g.neighbors(0).next(), Some((2, 1)));
    }

    #[test]
    fn matrix_market_rejects_rectangular() {
        let text = "%%MatrixMarket matrix coordinate real general
2 3 1
1 2 1.0
";
        let err = read_matrix_market(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("square"));
    }

    #[test]
    fn matrix_market_rejects_negative_weights() {
        let text = "%%MatrixMarket matrix coordinate real general
2 2 1
1 2 -4.0
";
        let err = read_matrix_market(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("non-negative"));
    }

    #[test]
    fn matrix_market_entry_count_checked() {
        let text = "%%MatrixMarket matrix coordinate real general
2 2 2
1 2 1.0
";
        let err = read_matrix_market(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("declared 2 entries"));
    }

    #[test]
    fn matrix_market_missing_header_rejected() {
        let err = read_matrix_market("1 1 0
".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("header"));
    }

    #[test]
    fn edge_stream_round_trips_with_reader() {
        let s = crate::stream::UniformStream::new(32, 200, 8, 3).unwrap();
        let mut buf = Vec::new();
        let written = write_edge_stream(s.edges(), &mut buf, 7).unwrap();
        assert_eq!(written as usize, s.edges().count());
        let back: Vec<_> = stream_edge_list(buf.as_slice())
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(back, s.edges().collect::<Vec<_>>());
        // Chunk size is a buffering detail, not a format change.
        let mut buf2 = Vec::new();
        write_edge_stream(s.edges(), &mut buf2, 1000).unwrap();
        assert_eq!(buf, buf2);
    }

    #[test]
    fn edge_stream_reader_reports_bad_lines() {
        let items: Vec<_> = stream_edge_list("0 1 2\nbogus\n".as_bytes()).collect();
        assert_eq!(items.len(), 2);
        assert!(items[0].is_ok());
        assert!(matches!(items[1], Err(GraphError::Parse { line: 2, .. })));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let g = read_edge_list("# hello\n\n0 1\n".as_bytes(), false).unwrap();
        assert_eq!(g.num_directed_edges(), 1);
        assert_eq!(g.weight_slice(), &[1], "missing weight defaults to 1");
    }
}
