//! A representation-neutral read view over adjacency structure.
//!
//! The scale track stores graphs two ways: the flat [`CsrGraph`] (fast
//! random access, 8+ bytes per directed edge) and the varint/delta
//! [`crate::CompressedCsr`] (sequential decode, ~3 bytes per edge). Kernels
//! that only ever *sweep* adjacency lists — BFS, SSSP relaxation, pull
//! PageRank — are written once against this trait and run on either
//! representation unchanged.

use crate::{CsrGraph, GraphError, VertexId, Weight};

/// Read-only view of a directed graph's adjacency lists.
///
/// Implementors guarantee that for each vertex the `(neighbor, weight)`
/// pairs come back in the same canonical order as [`CsrGraph`] stores
/// them: ascending by `(dst, weight)`. That invariant is what makes
/// floating-point kernels (pull PageRank) bit-identical across
/// representations.
pub trait AdjacencyView {
    /// Iterator over one vertex's `(neighbor, weight)` pairs.
    type Neighbors<'a>: Iterator<Item = (VertexId, Weight)>
    where
        Self: 'a;

    /// Number of vertices.
    fn num_vertices(&self) -> usize;

    /// Number of directed edges stored.
    fn num_directed_edges(&self) -> usize;

    /// Out-degree of `v`.
    fn degree(&self, v: VertexId) -> usize;

    /// Iterates `(neighbor, weight)` pairs of `v` in canonical
    /// ascending order.
    fn neighbors_of(&self, v: VertexId) -> Self::Neighbors<'_>;

    /// Resident bytes of the adjacency structure (offsets + neighbor
    /// data + weights), the numerator of the bytes-per-edge metric.
    fn adjacency_bytes(&self) -> u64;

    /// Adjacency bytes divided by directed edge count (0.0 for an
    /// edgeless graph).
    fn bytes_per_edge(&self) -> f64 {
        let m = self.num_directed_edges();
        if m == 0 {
            0.0
        } else {
            self.adjacency_bytes() as f64 / m as f64
        }
    }
}

impl AdjacencyView for CsrGraph {
    type Neighbors<'a> = crate::csr::Neighbors<'a>;

    fn num_vertices(&self) -> usize {
        CsrGraph::num_vertices(self)
    }

    fn num_directed_edges(&self) -> usize {
        CsrGraph::num_directed_edges(self)
    }

    fn degree(&self, v: VertexId) -> usize {
        CsrGraph::degree(self, v)
    }

    fn neighbors_of(&self, v: VertexId) -> Self::Neighbors<'_> {
        self.neighbors(v)
    }

    fn adjacency_bytes(&self) -> u64 {
        // u32 offsets (n + 1) + u32 neighbor + u32 weight per edge.
        4 * (self.offset_slice().len() as u64
            + self.neighbor_slice().len() as u64
            + self.weight_slice().len() as u64)
    }
}

/// Incremental construction of an adjacency representation from an edge
/// stream sorted by `(src, dst, weight)` — the order the out-of-core
/// merge in [`crate::stream`] produces.
pub trait AdjacencyPacker: Sized {
    /// The representation this packer produces.
    type Graph: AdjacencyView;

    /// Creates a packer for a graph over `num_vertices` vertices.
    fn new(num_vertices: usize) -> Self;

    /// Appends one edge; the stream must be sorted by `(src, dst)`.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] on a bad endpoint, a sort-order
    /// violation, or representation capacity overflow.
    fn push_edge(&mut self, src: VertexId, dst: VertexId, w: Weight) -> Result<(), GraphError>;

    /// Finalizes the representation.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if the accumulated graph exceeds the
    /// representation's capacity.
    fn finish(self) -> Result<Self::Graph, GraphError>;
}

/// Links a representation to its streaming packer so generic builders
/// (the sharded out-of-core pipeline) can be written once over `G`.
pub trait Packable: AdjacencyView + Sized {
    /// The packer that produces this representation.
    type Packer: AdjacencyPacker<Graph = Self>;
}

impl AdjacencyPacker for crate::csr::CsrPacker {
    type Graph = CsrGraph;

    fn new(num_vertices: usize) -> Self {
        crate::csr::CsrPacker::new(num_vertices)
    }

    fn push_edge(&mut self, src: VertexId, dst: VertexId, w: Weight) -> Result<(), GraphError> {
        crate::csr::CsrPacker::push_edge(self, src, dst, w)
    }

    fn finish(self) -> Result<CsrGraph, GraphError> {
        crate::csr::CsrPacker::finish(self)
    }
}

impl Packable for CsrGraph {
    type Packer = crate::csr::CsrPacker;
}

impl AdjacencyPacker for crate::CompressedPacker {
    type Graph = crate::CompressedCsr;

    fn new(num_vertices: usize) -> Self {
        crate::CompressedPacker::new(num_vertices)
    }

    fn push_edge(&mut self, src: VertexId, dst: VertexId, w: Weight) -> Result<(), GraphError> {
        crate::CompressedPacker::push_edge(self, src, dst, w)
    }

    fn finish(self) -> Result<crate::CompressedCsr, GraphError> {
        crate::CompressedPacker::finish(self)
    }
}

impl Packable for crate::CompressedCsr {
    type Packer = crate::CompressedPacker;
}

/// FNV-1a fingerprint of a view's full directed edge set, matching the
/// golden constants in `tests/determinism.rs`: every `(src, dst, weight)`
/// triple hashed as three little-endian `u64`s in canonical CSR order.
///
/// Two views of the same graph fingerprint identically regardless of
/// representation, which is how the equivalence tests compare
/// [`crate::CompressedCsr`] against [`CsrGraph`].
pub fn view_fingerprint<V: AdjacencyView>(view: &V) -> u64 {
    const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut hash = FNV_OFFSET;
    let mut mix = |value: u64| {
        for byte in value.to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    };
    for v in 0..view.num_vertices() as VertexId {
        for (n, w) in view.neighbors_of(v) {
            mix(v as u64);
            mix(n as u64);
            mix(w as u64);
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_view_matches_direct_accessors() {
        let g = CsrGraph::from_edges(4, vec![(0, 1, 5), (0, 2, 3), (2, 3, 1)]);
        assert_eq!(AdjacencyView::num_vertices(&g), 4);
        assert_eq!(AdjacencyView::num_directed_edges(&g), 3);
        assert_eq!(AdjacencyView::degree(&g, 0), 2);
        let ns: Vec<_> = g.neighbors_of(0).collect();
        assert_eq!(ns, vec![(1, 5), (2, 3)]);
    }

    #[test]
    fn csr_bytes_per_edge_counts_offsets_and_payload() {
        let g = CsrGraph::from_edges(4, vec![(0, 1, 5), (0, 2, 3), (2, 3, 1)]);
        // 5 offsets * 4 + 3 neighbors * 4 + 3 weights * 4 = 44 bytes.
        assert_eq!(g.adjacency_bytes(), 44);
        assert!((g.bytes_per_edge() - 44.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fingerprint_changes_with_edges() {
        let a = CsrGraph::from_edges(3, vec![(0, 1, 1)]);
        let b = CsrGraph::from_edges(3, vec![(0, 2, 1)]);
        assert_ne!(view_fingerprint(&a), view_fingerprint(&b));
    }
}
